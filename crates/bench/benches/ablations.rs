//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! * **BF-based G-FIB vs exact replica** — the §III-D.2 space/time
//!   trade-off: query cost of the bloom bank against an exact
//!   `BTreeMap<MacAddr, SwitchId>` replica (which would need per-host
//!   state, exactly what the paper avoids), plus their storage footprint
//!   printed once.
//! * **IncUpdate vs full IniGroup** — the incremental-update claim: repair
//!   cost after a traffic shift, merge/split versus partition-from-scratch.
//! * **Serial vs parallel IncUpdate** — Appendix B's parallel merge/split.

use std::collections::BTreeMap;

use criterion::{criterion_group, criterion_main, Criterion};
use lazyctrl_net::{MacAddr, SwitchId};
use lazyctrl_partition::{mlkp, MlkpConfig, Sgi, SgiConfig, WeightedGraph};
use lazyctrl_switch::{build_gfib_update, Gfib};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn ablation_gfib_vs_exact(c: &mut Criterion) {
    let peers = 45usize; // the paper's 46-switch example
    let hosts = 24u64;

    let mut gfib = Gfib::new();
    let mut exact: BTreeMap<MacAddr, SwitchId> = BTreeMap::new();
    for p in 0..peers {
        let macs: Vec<MacAddr> = (0..hosts)
            .map(|h| MacAddr::for_host(((p as u64) << 32) | h))
            .collect();
        for &m in &macs {
            exact.insert(m, SwitchId::new(p as u32));
        }
        gfib.apply_update(&build_gfib_update(SwitchId::new(p as u32), 1, macs));
    }
    let exact_bytes = exact.len() * (6 + 4);
    println!(
        "[ablation] G-FIB storage: bloom {} B vs exact ≥ {} B for {} hosts",
        gfib.storage_bytes(),
        exact_bytes,
        exact.len()
    );

    let present = MacAddr::for_host((7u64 << 32) | 3);
    let absent = MacAddr::for_host(999_999_999);
    let mut group = c.benchmark_group("ablation_gfib");
    group.bench_function("bloom_query_present", |b| b.iter(|| gfib.query(present)));
    group.bench_function("bloom_query_absent", |b| b.iter(|| gfib.query(absent)));
    group.bench_function("exact_query_present", |b| b.iter(|| exact.get(&present)));
    group.bench_function("exact_query_absent", |b| b.iter(|| exact.get(&absent)));
    group.finish();
}

fn dc_graph(n: usize, seed: u64) -> WeightedGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = WeightedGraph::new(n);
    let cluster = 12;
    for c in 0..n.div_ceil(cluster) {
        let base = c * cluster;
        for i in 0..cluster {
            for j in (i + 1)..cluster {
                let (u, v) = (base + i, base + j);
                if u < n && v < n && rng.gen_bool(0.5) {
                    g.add_edge(u, v, 1.0 + rng.gen::<f64>() * 20.0);
                }
            }
        }
    }
    g
}

fn ablation_incupdate_vs_full(c: &mut Criterion) {
    let n = 272;
    let g = dc_graph(n, 7);
    let base = Sgi::ini_group(
        g.clone(),
        SgiConfig::new(46).with_thresholds(0.0, 0.0).with_seed(1),
    );
    let mut shifted = g.clone();
    for i in 0..8 {
        shifted.add_edge(i, n / 2 + i, 500.0);
    }
    let mut group = c.benchmark_group("ablation_regroup");
    group.sample_size(10);
    group.bench_function("incremental_repair", |b| {
        b.iter(|| {
            let mut sgi = base.clone();
            sgi.set_intensity(shifted.clone());
            sgi.inc_update(f64::INFINITY)
        })
    });
    group.bench_function("full_inigroup", |b| {
        b.iter(|| {
            mlkp(
                &shifted,
                &MlkpConfig::new(n.div_ceil(46))
                    .with_max_part_weight(46.0)
                    .with_seed(1),
            )
        })
    });
    group.bench_function("parallel_repair_4", |b| {
        b.iter(|| {
            let mut sgi = base.clone();
            sgi.set_intensity(shifted.clone());
            sgi.par_inc_update(f64::INFINITY, 4)
        })
    });
    group.finish();
}

criterion_group!(benches, ablation_gfib_vs_exact, ablation_incupdate_vs_full);
criterion_main!(benches);
