//! Microbenchmarks for the G-FIB substrate: bloom insert/query at the
//! paper's §V-D geometry, and full G-FIB candidate queries at several
//! group sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lazyctrl_bloom::{BloomFilter, CountingBloomFilter};
use lazyctrl_net::{MacAddr, SwitchId};
use lazyctrl_switch::{build_gfib_update, Gfib};

fn bench_filter_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("bloom");
    // The paper's example filter: 2048 bytes, 7 hashes, ~24 hosts.
    group.bench_function("insert", |b| {
        let mut bf = BloomFilter::new(2048 * 8, 7);
        let mut i = 0u64;
        b.iter(|| {
            bf.insert(MacAddr::for_host(i).octets());
            i += 1;
        })
    });
    group.bench_function("query_hit", |b| {
        let mut bf = BloomFilter::new(2048 * 8, 7);
        for h in 0..24 {
            bf.insert(MacAddr::for_host(h).octets());
        }
        b.iter(|| bf.contains(MacAddr::for_host(7).octets()))
    });
    group.bench_function("query_miss", |b| {
        let mut bf = BloomFilter::new(2048 * 8, 7);
        for h in 0..24 {
            bf.insert(MacAddr::for_host(h).octets());
        }
        b.iter(|| bf.contains(MacAddr::for_host(999_999).octets()))
    });
    group.bench_function("counting_insert_remove", |b| {
        let mut cbf = CountingBloomFilter::new(2048 * 8, 7);
        let mut i = 0u64;
        b.iter(|| {
            cbf.insert(MacAddr::for_host(i).octets());
            cbf.remove(MacAddr::for_host(i).octets());
            i += 1;
        })
    });
    group.finish();
}

fn bench_gfib_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("gfib_query");
    for &peers in &[9usize, 45, 91] {
        let mut gfib = Gfib::new();
        for p in 0..peers {
            let macs: Vec<MacAddr> = (0..24)
                .map(|h| MacAddr::for_host(((p as u64) << 32) | h))
                .collect();
            gfib.apply_update(&build_gfib_update(SwitchId::new(p as u32), 1, macs));
        }
        group.bench_with_input(BenchmarkId::from_parameter(peers), &peers, |b, _| {
            let target = MacAddr::for_host((3u64 << 32) | 7);
            b.iter(|| gfib.query(target))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_filter_ops, bench_gfib_query);
criterion_main!(benches);
