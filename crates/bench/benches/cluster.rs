//! Criterion bench: end-to-end cluster runs at 1 / 2 / 4 controllers on
//! the same workload — wall-clock cost of the control plane as the
//! cluster grows — plus the plane's hot paths in isolation. (The
//! dissemination-strategy bench lives in `benches/perf.rs`, the single
//! entry point for the headline performance numbers.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lazyctrl_cluster::{ClusterConfig, ClusterControlPlane};
use lazyctrl_core::{ControlMode, Experiment, ExperimentConfig};
use lazyctrl_partition::WeightedGraph;
use lazyctrl_trace::realistic::{generate, RealTraceConfig};

fn cluster_trace() -> lazyctrl_trace::Trace {
    let mut tc = RealTraceConfig::small();
    tc.num_flows = 3_000;
    generate(&tc)
}

fn bench_cluster_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("cluster_run");
    group.sample_size(10);
    for controllers in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(controllers),
            &controllers,
            |b, &n| {
                b.iter(|| {
                    let mut cfg = ExperimentConfig::new(ControlMode::LazyStatic)
                        .with_group_size_limit(8)
                        .with_seed(3)
                        .with_cluster(n)
                        .with_horizon_hours(2.0);
                    cfg.sync_interval_ms = 10_000;
                    Experiment::new(cluster_trace(), cfg).run()
                })
            },
        );
    }
    group.finish();
}

fn bench_plane_bootstrap(c: &mut Criterion) {
    let mut group = c.benchmark_group("cluster_bootstrap");
    group.sample_size(10);
    for controllers in [2usize, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(controllers),
            &controllers,
            |b, &n| {
                b.iter(|| {
                    let num_switches = 48;
                    let mut graph = WeightedGraph::new(num_switches);
                    for i in 0..num_switches {
                        for j in (i + 1)..num_switches {
                            if i / 6 == j / 6 {
                                graph.add_edge(i, j, 10.0);
                            }
                        }
                    }
                    let mut plane =
                        ClusterControlPlane::new(num_switches, ClusterConfig::with_controllers(n));
                    let mut sink = lazyctrl_proto::OutputSink::new();
                    plane.bootstrap(0, graph, &mut sink);
                    sink.take_buf()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_cluster_scaling, bench_plane_bootstrap);
criterion_main!(benches);
