//! Microbenchmarks behind Fig. 6(b): size-constrained MLkP (`IniGroup`)
//! and the merge/split refinement (`IncUpdate`) at several group size
//! limits.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lazyctrl_partition::{mlkp, MlkpConfig, Sgi, SgiConfig, WeightedGraph};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A clustered intensity graph shaped like a multi-tenant DC: `n` switches,
/// dense tenant neighbourhoods, sparse global chatter.
fn dc_graph(n: usize, seed: u64) -> WeightedGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = WeightedGraph::new(n);
    let cluster = 12;
    for c in 0..n.div_ceil(cluster) {
        let base = c * cluster;
        for i in 0..cluster {
            for j in (i + 1)..cluster {
                let (u, v) = (base + i, base + j);
                if u < n && v < n && rng.gen_bool(0.5) {
                    g.add_edge(u, v, 1.0 + rng.gen::<f64>() * 20.0);
                }
            }
        }
    }
    for _ in 0..n {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u != v {
            g.add_edge(u, v, 0.2);
        }
    }
    g
}

fn bench_inigroup(c: &mut Criterion) {
    let mut group = c.benchmark_group("inigroup");
    group.sample_size(10);
    for &n in &[272usize, 680] {
        let g = dc_graph(n, 42);
        for &limit in &[23usize, 46, 92] {
            group.bench_with_input(
                BenchmarkId::new(format!("n{n}"), limit),
                &limit,
                |b, &limit| {
                    b.iter(|| {
                        mlkp(
                            &g,
                            &MlkpConfig::new(n.div_ceil(limit))
                                .with_max_part_weight(limit as f64)
                                .with_seed(1),
                        )
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_incupdate(c: &mut Criterion) {
    let mut group = c.benchmark_group("incupdate");
    group.sample_size(10);
    let n = 272;
    let g = dc_graph(n, 42);
    let base = Sgi::ini_group(
        g.clone(),
        SgiConfig::new(46).with_thresholds(0.0, 0.0).with_seed(1),
    );
    // Shifted intensity: two clusters start talking.
    let mut shifted = g.clone();
    for i in 0..8 {
        shifted.add_edge(i, n / 2 + i, 500.0);
    }
    group.bench_function("merge_split_round", |b| {
        b.iter(|| {
            let mut sgi = base.clone();
            sgi.set_intensity(shifted.clone());
            sgi.inc_update(f64::INFINITY)
        })
    });
    group.bench_function("par_merge_split_2", |b| {
        b.iter(|| {
            let mut sgi = base.clone();
            sgi.set_intensity(shifted.clone());
            sgi.par_inc_update(f64::INFINITY, 2)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_inigroup, bench_incupdate);
criterion_main!(benches);
