//! Hot-path benches: scheduler backends head to head, end-to-end
//! flow-setup throughput, and the cluster dissemination strategies — one
//! `cargo bench -p lazyctrl-bench --bench perf` entry point for the
//! numbers `repro_perf` tracks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lazyctrl_core::{
    ControlMode, DisseminationStrategy, Experiment, ExperimentConfig, SchedulerKind,
};
use lazyctrl_sim::{EventQueue, SimDuration, SimTime};
use lazyctrl_trace::realistic::{generate as generate_real, RealTraceConfig};
use lazyctrl_trace::synthetic::{generate as generate_syn, SyntheticConfig};

fn cluster_trace() -> lazyctrl_trace::Trace {
    let mut tc = RealTraceConfig::small();
    tc.num_flows = 3_000;
    generate_real(&tc)
}

/// Mimics a simulation's schedule shape: a large pre-scheduled horizon
/// (flow arrivals) plus short-delay churn (deliveries, timers) popped in
/// order.
fn drive_queue(kind: SchedulerKind, pre: u64, churn: u64) -> u64 {
    let mut q: EventQueue<u64> = EventQueue::with_kind(kind);
    // Pre-schedule `pre` arrivals spread over 24 virtual hours.
    let horizon_ns: u64 = 24 * 3_600_000_000_000;
    for i in 0..pre {
        q.schedule(SimTime::from_nanos(i * (horizon_ns / pre)), i);
    }
    let mut handled = 0u64;
    while let Some((now, ev)) = q.pop() {
        handled += 1;
        // Every popped pre-scheduled event chains `churn` short-delay
        // follow-ups (sub-ms latencies), like frame deliveries would.
        if ev < pre {
            for c in 0..churn {
                q.schedule(now + SimDuration::from_micros(50 + 150 * c), pre + handled);
            }
        }
    }
    handled
}

fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");
    group.sample_size(10);
    for kind in [SchedulerKind::Wheel, SchedulerKind::Heap] {
        group.bench_with_input(BenchmarkId::from_parameter(kind.label()), &kind, |b, &k| {
            b.iter(|| drive_queue(k, 20_000, 4))
        });
    }
    group.finish();
}

fn bench_flow_setup_throughput(c: &mut Criterion) {
    let trace = generate_syn(&SyntheticConfig::syn_a().scaled_down(32));
    let mut group = c.benchmark_group("flow_setup_throughput");
    group.sample_size(10);
    for kind in [SchedulerKind::Wheel, SchedulerKind::Heap] {
        group.bench_with_input(BenchmarkId::from_parameter(kind.label()), &kind, |b, &k| {
            b.iter(|| {
                let cfg = ExperimentConfig::new(ControlMode::LazyStatic)
                    .with_group_size_limit(46)
                    .with_seed(7)
                    .with_scheduler(k);
                Experiment::new(trace.clone(), cfg).run()
            })
        });
    }
    group.finish();
}

fn bench_dissemination(c: &mut Criterion) {
    let mut group = c.benchmark_group("cluster_dissemination");
    group.sample_size(10);
    for strategy in [
        DisseminationStrategy::Flood,
        DisseminationStrategy::Ring,
        DisseminationStrategy::tree(),
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(strategy.label()),
            &strategy,
            |b, &s| {
                b.iter(|| {
                    let mut cfg = ExperimentConfig::new(ControlMode::LazyStatic)
                        .with_group_size_limit(8)
                        .with_seed(3)
                        .with_cluster(8)
                        .with_horizon_hours(2.0)
                        .with_dissemination(s)
                        .with_cluster_flush_ms(20_000);
                    cfg.sync_interval_ms = 10_000;
                    Experiment::new(cluster_trace(), cfg).run()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_flow_setup_throughput,
    bench_dissemination
);
criterion_main!(benches);
