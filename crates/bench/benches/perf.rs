//! Hot-path benches: scheduler backends head to head, end-to-end
//! flow-setup throughput, message-dispatch micro-benches (sink-vs-Vec
//! handler dispatch, boxed-vs-inline `Message` moves), and the cluster
//! dissemination strategies — one `cargo bench -p lazyctrl-bench --bench
//! perf` entry point for the numbers `repro_perf` tracks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lazyctrl_core::{
    ControlMode, DisseminationStrategy, Experiment, ExperimentConfig, SchedulerKind,
};
use lazyctrl_net::{EtherType, EthernetFrame, HostId, PortNo, SwitchId, TenantId, VlanTag};
use lazyctrl_proto::{
    ClusterMsg, GroupAssignMsg, KeepAliveMsg, LazyMsg, Message, OfMessage, OutputSink, PacketInMsg,
    PacketInReason,
};
use lazyctrl_sim::{EventQueue, SimDuration, SimTime};
use lazyctrl_switch::{EdgeSwitch, SwitchOutput};
use lazyctrl_trace::realistic::{generate as generate_real, RealTraceConfig};
use lazyctrl_trace::synthetic::{generate as generate_syn, SyntheticConfig};

fn cluster_trace() -> lazyctrl_trace::Trace {
    let mut tc = RealTraceConfig::small();
    tc.num_flows = 3_000;
    generate_real(&tc)
}

/// Mimics a simulation's schedule shape: a large pre-scheduled horizon
/// (flow arrivals) plus short-delay churn (deliveries, timers) popped in
/// order.
fn drive_queue(kind: SchedulerKind, pre: u64, churn: u64) -> u64 {
    let mut q: EventQueue<u64> = EventQueue::with_kind(kind);
    // Pre-schedule `pre` arrivals spread over 24 virtual hours.
    let horizon_ns: u64 = 24 * 3_600_000_000_000;
    for i in 0..pre {
        q.schedule(SimTime::from_nanos(i * (horizon_ns / pre)), i);
    }
    let mut handled = 0u64;
    while let Some((now, ev)) = q.pop() {
        handled += 1;
        // Every popped pre-scheduled event chains `churn` short-delay
        // follow-ups (sub-ms latencies), like frame deliveries would.
        if ev < pre {
            for c in 0..churn {
                q.schedule(now + SimDuration::from_micros(50 + 150 * c), pre + handled);
            }
        }
    }
    handled
}

fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");
    group.sample_size(10);
    for kind in [SchedulerKind::Wheel, SchedulerKind::Heap] {
        group.bench_with_input(BenchmarkId::from_parameter(kind.label()), &kind, |b, &k| {
            b.iter(|| drive_queue(k, 20_000, 4))
        });
    }
    group.finish();
}

fn bench_flow_setup_throughput(c: &mut Criterion) {
    let trace = generate_syn(&SyntheticConfig::syn_a().scaled_down(32));
    let mut group = c.benchmark_group("flow_setup_throughput");
    group.sample_size(10);
    for kind in [SchedulerKind::Wheel, SchedulerKind::Heap] {
        group.bench_with_input(BenchmarkId::from_parameter(kind.label()), &kind, |b, &k| {
            b.iter(|| {
                let cfg = ExperimentConfig::new(ControlMode::LazyStatic)
                    .with_group_size_limit(46)
                    .with_seed(7)
                    .with_scheduler(k);
                Experiment::new(trace.clone(), cfg).run()
            })
        });
    }
    group.finish();
}

// ---------------------------------------------------------------------------
// message_dispatch: the two hot-path layouts, individually attributable
// ---------------------------------------------------------------------------

/// A grouped switch with a locally learned host, ready to forward.
fn dispatch_switch() -> EdgeSwitch {
    let mut sw = EdgeSwitch::new(SwitchId::new(1));
    let ga = GroupAssignMsg {
        group: lazyctrl_net::GroupId::new(0),
        epoch: 1,
        members: vec![SwitchId::new(1), SwitchId::new(2), SwitchId::new(3)],
        designated: SwitchId::new(2),
        backups: vec![SwitchId::new(3)],
        ring_prev: SwitchId::new(3),
        ring_next: SwitchId::new(2),
        sync_interval_ms: 1000,
        keepalive_interval_ms: 1000,
        group_size_limit: 3,
    };
    let mut sink = OutputSink::new();
    sw.handle_control_message(0, &Message::lazy(1, LazyMsg::group_assign(ga)), &mut sink);
    sink.clear();
    // Host 20 is local on port 7 → traffic to it is a pure datapath hit.
    let learn = EthernetFrame::tagged(
        HostId::new(20).mac(),
        HostId::new(99).mac(),
        VlanTag::for_tenant(TenantId::new(1)),
        EtherType::IPV4,
        vec![0; 8],
    );
    sw.handle_local_frame(0, PortNo::new(7), learn, &mut sink);
    sink.clear();
    sw
}

/// Sink-vs-Vec handler dispatch: the same warm-path frame handled with
/// the world's reused scratch sink versus a fresh sink per event (the
/// allocation pattern the old `Vec<SwitchOutput>` returns had). The gap
/// between the two is exactly the per-event allocation cost the sink
/// refactor removed.
fn bench_handler_dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("message_dispatch/handler");
    let frame = EthernetFrame::tagged(
        HostId::new(10).mac(),
        HostId::new(20).mac(),
        VlanTag::for_tenant(TenantId::new(1)),
        EtherType::IPV4,
        vec![0; 8],
    );
    group.bench_function("sink_reused", |b| {
        let mut sw = dispatch_switch();
        let mut sink = OutputSink::new();
        let mut now = 0u64;
        b.iter(|| {
            now += 1_000;
            sw.handle_local_frame(now, PortNo::new(1), frame.clone(), &mut sink);
            let n = sink.len();
            sink.clear();
            n
        })
    });
    group.bench_function("sink_fresh_per_event", |b| {
        let mut sw = dispatch_switch();
        let mut now = 0u64;
        b.iter(|| {
            now += 1_000;
            let mut sink: OutputSink<SwitchOutput> = OutputSink::new();
            sw.handle_local_frame(now, PortNo::new(1), frame.clone(), &mut sink);
            sink.len()
        })
    });
    group.finish();
}

/// The pre-boxing ~88-byte message layout, reconstructed locally: the
/// same families with every payload inline. Only used to move through a
/// scheduler, so the variants never need constructing beyond the two
/// hot ones.
#[allow(dead_code)]
#[derive(Clone)]
enum InlineBody {
    Of(OfMessage),
    Lazy(InlineLazy),
    Cluster(ClusterMsg),
}

#[allow(dead_code)]
#[derive(Clone)]
enum InlineLazy {
    GroupAssign(GroupAssignMsg),
    KeepAlive(KeepAliveMsg),
}

#[allow(dead_code)]
#[derive(Clone)]
struct InlineMessage {
    xid: u32,
    body: InlineBody,
}

/// Boxed-vs-inline `Message` moves: a realistic hot mix (PacketIns and
/// keep-alives) scheduled and popped through the timing wheel, once as
/// today's ≤64-byte boxed-variant `Message` and once as the old fully
/// inline layout. The delta is the per-entry copy cost the boxing
/// removed from every scheduler entry and channel hop.
fn bench_message_moves(c: &mut Criterion) {
    let mut group = c.benchmark_group("message_dispatch/moves");
    let frame = EthernetFrame::tagged(
        HostId::new(10).mac(),
        HostId::new(20).mac(),
        VlanTag::for_tenant(TenantId::new(1)),
        EtherType::IPV4,
        vec![0; 8],
    );
    let data = bytes::Bytes::from(frame.encode());
    let packet_in = |xid: u32| {
        OfMessage::PacketIn(PacketInMsg {
            buffer_id: u32::MAX,
            in_port: PortNo::new(1),
            reason: PacketInReason::NoMatch,
            data: data.clone(),
        })
        .pipe_of(xid)
    };
    let keepalive = |xid: u32| {
        Message::lazy(
            xid,
            LazyMsg::KeepAlive(KeepAliveMsg {
                from: SwitchId::new(7),
                seq: xid as u64,
            }),
        )
    };
    const N: u32 = 4_096;
    group.bench_function("boxed_message_64b", |b| {
        b.iter(|| {
            let mut q: EventQueue<Message> = EventQueue::with_kind(SchedulerKind::Wheel);
            for i in 0..N {
                let msg = if i % 4 == 0 {
                    keepalive(i)
                } else {
                    packet_in(i)
                };
                q.schedule(SimTime::from_nanos(i as u64 * 50_000), msg);
            }
            let mut n = 0u32;
            while let Some((_, msg)) = q.pop() {
                n = n.wrapping_add(msg.xid);
            }
            n
        })
    });
    group.bench_function("inline_message_88b", |b| {
        b.iter(|| {
            let mut q: EventQueue<InlineMessage> = EventQueue::with_kind(SchedulerKind::Wheel);
            for i in 0..N {
                let body = if i % 4 == 0 {
                    InlineBody::Lazy(InlineLazy::KeepAlive(KeepAliveMsg {
                        from: SwitchId::new(7),
                        seq: i as u64,
                    }))
                } else {
                    InlineBody::Of(OfMessage::PacketIn(PacketInMsg {
                        buffer_id: u32::MAX,
                        in_port: PortNo::new(1),
                        reason: PacketInReason::NoMatch,
                        data: data.clone(),
                    }))
                };
                q.schedule(
                    SimTime::from_nanos(i as u64 * 50_000),
                    InlineMessage { xid: i, body },
                );
            }
            let mut n = 0u32;
            while let Some((_, msg)) = q.pop() {
                n = n.wrapping_add(msg.xid);
            }
            n
        })
    });
    group.finish();
}

/// Small helper: wrap an [`OfMessage`] like `Message::of` (kept local so
/// the closure above reads naturally).
trait PipeOf {
    fn pipe_of(self, xid: u32) -> Message;
}
impl PipeOf for OfMessage {
    fn pipe_of(self, xid: u32) -> Message {
        Message::of(xid, self)
    }
}

fn bench_dissemination(c: &mut Criterion) {
    let mut group = c.benchmark_group("cluster_dissemination");
    group.sample_size(10);
    for strategy in [
        DisseminationStrategy::Flood,
        DisseminationStrategy::Ring,
        DisseminationStrategy::tree(),
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(strategy.label()),
            &strategy,
            |b, &s| {
                b.iter(|| {
                    let mut cfg = ExperimentConfig::new(ControlMode::LazyStatic)
                        .with_group_size_limit(8)
                        .with_seed(3)
                        .with_cluster(8)
                        .with_horizon_hours(2.0)
                        .with_dissemination(s)
                        .with_cluster_flush_ms(20_000);
                    cfg.sync_interval_ms = 10_000;
                    Experiment::new(cluster_trace(), cfg).run()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_flow_setup_throughput,
    bench_handler_dispatch,
    bench_message_moves,
    bench_dissemination
);
criterion_main!(benches);
