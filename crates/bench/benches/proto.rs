//! Wire-protocol throughput: encode/decode of the hot control messages
//! (PacketIn, FlowMod, LfibSync) and codec framing.

use criterion::{criterion_group, criterion_main, Criterion};
use lazyctrl_net::{MacAddr, PortNo, SwitchId, TenantId};
use lazyctrl_proto::codec::MessageCodec;
use lazyctrl_proto::{
    Action, FlowMatch, FlowModCommand, FlowModMsg, LazyMsg, LfibEntry, LfibSyncMsg, Message,
    OfMessage, PacketInMsg, PacketInReason,
};

fn packet_in() -> Message {
    Message::of(
        7,
        OfMessage::PacketIn(PacketInMsg {
            buffer_id: u32::MAX,
            in_port: PortNo::new(3),
            reason: PacketInReason::NoMatch,
            data: vec![0xAA; 64].into(),
        }),
    )
}

fn flow_mod() -> Message {
    Message::of(
        8,
        OfMessage::flow_mod(FlowModMsg {
            command: FlowModCommand::Add,
            flow_match: FlowMatch::to_dst(MacAddr::for_host(42)),
            priority: 10,
            idle_timeout: 30,
            hard_timeout: 0,
            cookie: 1,
            actions: vec![Action::Encap {
                remote: SwitchId::new(9).underlay_ip(),
                key: 3,
            }],
        }),
    )
}

fn lfib_sync(entries: usize) -> Message {
    Message::lazy(
        9,
        LazyMsg::lfib_sync(LfibSyncMsg {
            origin: SwitchId::new(1),
            epoch: 2,
            entries: (0..entries as u64)
                .map(|h| LfibEntry {
                    mac: MacAddr::for_host(h),
                    tenant: TenantId::new(1),
                    port: PortNo::new(1),
                })
                .collect(),
            removed: vec![],
        }),
    )
}

fn bench_roundtrips(c: &mut Criterion) {
    let mut group = c.benchmark_group("proto_roundtrip");
    for (name, msg) in [
        ("packet_in", packet_in()),
        ("flow_mod", flow_mod()),
        ("lfib_sync_24", lfib_sync(24)),
        ("lfib_sync_512", lfib_sync(512)),
    ] {
        let wire = msg.encode();
        group.bench_function(format!("encode/{name}"), |b| b.iter(|| msg.encode()));
        group.bench_function(format!("decode/{name}"), |b| {
            b.iter(|| Message::decode(&wire).expect("valid frame"))
        });
    }
    group.finish();
}

fn bench_codec(c: &mut Criterion) {
    let mut stream = Vec::new();
    for _ in 0..64 {
        stream.extend(packet_in().encode());
        stream.extend(flow_mod().encode());
    }
    c.bench_function("codec_drain_128_msgs", |b| {
        b.iter(|| {
            let mut codec = MessageCodec::new();
            codec.feed(&stream);
            codec.drain().expect("clean stream").len()
        })
    });
}

criterion_group!(benches, bench_roundtrips, bench_codec);
criterion_main!(benches);
