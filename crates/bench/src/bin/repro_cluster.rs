//! Cluster scaling experiment: the same workload under a `lazyctrl-cluster`
//! of 1, 2 and 4 controllers, plus the peer-sync dissemination strategies
//! head to head at the scale's largest cluster (16 controllers at
//! `LAZYCTRL_SCALE=paper`).
//!
//! The claims under test (the ROADMAP's control-plane-scaling step, built
//! on the devolved-controllers line of work the paper cites):
//!
//! 1. sharding the switch groups across N cooperating controllers divides
//!    the per-controller request rate, so the control plane's capacity
//!    grows with N;
//! 2. the inter-controller replication fabric scales *sub-quadratically*
//!    when deltas ride a ring/tree relay overlay instead of a full flood —
//!    flood pays ≈ n−1 wire messages per delta chunk (O(n²) per flush
//!    round), the overlays amortize bundled relays towards O(1) per chunk
//!    (O(n) per round), which is what makes 16 controllers feasible.
//!
//! Also replays the registry's cluster scenarios (crash-under-load,
//! crash-recover, shard-rebalance, peer-sync-storm) through their own
//! verdicts, plus the detailed per-shard reachability analysis of a
//! crash. Use `repro_scenario` for the full scenario catalogue.
//!
//! ```sh
//! cargo run --release -p lazyctrl-bench --bin repro_cluster
//! LAZYCTRL_SCALE=paper cargo run --release -p lazyctrl-bench --bin repro_cluster
//! ```
//!
//! Exits non-zero if any scenario verdict fails (including the overlays
//! failing to undercut flood).

use std::process::ExitCode;
use std::time::Instant;

use lazyctrl_bench::{real_trace, render_table, syn_a_trace, Scale};
use lazyctrl_core::scenarios::controller_crash;
use lazyctrl_core::{
    run_scenario, ControlMode, DisseminationStrategy, Experiment, ExperimentConfig,
    ScenarioRegistry,
};

fn main() -> ExitCode {
    let scale = Scale::from_env();
    println!(
        "lazyctrl-cluster — control-plane scaling (scale: {})\n",
        scale.label()
    );

    let trace = real_trace(scale);
    let group_limit = (trace.topology.num_switches / 8).max(4);

    let mut rows = Vec::new();
    for controllers in [1usize, 2, 4] {
        let mut cfg = ExperimentConfig::new(ControlMode::LazyStatic)
            .with_group_size_limit(group_limit)
            .with_seed(17)
            .with_cluster(controllers);
        cfg.sync_interval_ms = 10_000;
        let report = Experiment::new(trace.clone(), cfg).run();
        let cluster = report.cluster.as_ref().expect("cluster run");
        let total_rps: f64 = cluster.per_controller_rps.iter().sum();
        rows.push(vec![
            controllers.to_string(),
            format!("{:.2}", cluster.max_controller_rps()),
            format!("{total_rps:.2}"),
            format!("{:.3}", report.mean_latency_ms),
            cluster.ctrl_peer_messages.to_string(),
            cluster.rebalance_transfers.to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "controllers",
                "max ctrl rps",
                "total rps",
                "latency (ms)",
                "peer msgs",
                "rebalances",
            ],
            &rows,
        )
    );
    println!("expected shape: max per-controller rate drops as controllers grow 1 → 2 → 4\n");

    // ---- Dissemination strategies at the big cluster ------------------
    // Paper scale runs the full 16-controller cluster the ROADMAP asks
    // for, with a group limit small enough that every member owns groups;
    // the shared frozen grouping keeps the 16 inner controllers at one
    // grouping's worth of memory, and a 20 s flush cadence lets the
    // ring/tree bundles aggregate. Time-boxed via the run horizon.
    let (members, group_limit_big, flush_ms, horizon) = match scale {
        Scale::Quick => (4usize, group_limit.min(8), 10_000u32, 2.0f64),
        Scale::Paper | Scale::X10 => (16, (trace.topology.num_switches / 24).max(4), 20_000, 4.0),
    };
    println!("dissemination strategies at {members} controllers (horizon {horizon} h):");
    let mut rows = Vec::new();
    let mut flood_cost = f64::NAN;
    let mut overlay_beats_flood = true;
    for strategy in [
        DisseminationStrategy::Flood,
        DisseminationStrategy::Ring,
        DisseminationStrategy::tree(),
    ] {
        let mut cfg = ExperimentConfig::new(ControlMode::LazyStatic)
            .with_group_size_limit(group_limit_big)
            .with_seed(17)
            .with_cluster(members)
            .with_horizon_hours(horizon)
            .with_dissemination(strategy)
            .with_cluster_flush_ms(flush_ms);
        cfg.sync_interval_ms = 10_000;
        let report = Experiment::new(trace.clone(), cfg).run();
        let cluster = report.cluster.as_ref().expect("cluster run");
        let cost = cluster.messages_per_chunk();
        if strategy == DisseminationStrategy::Flood {
            flood_cost = cost;
        } else if cost >= flood_cost {
            overlay_beats_flood = false;
        }
        rows.push(vec![
            cluster.dissemination.clone(),
            cluster.peer_sync_messages_total().to_string(),
            cluster.peer_sync_chunks.iter().sum::<u64>().to_string(),
            format!("{cost:.2}"),
            cluster.peer_sync_bytes_total().to_string(),
            cluster
                .anti_entropy_catchups
                .iter()
                .sum::<u64>()
                .to_string(),
            report.delivered_flows.to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "strategy",
                "sync msgs",
                "chunks",
                "msgs/chunk",
                "sync bytes",
                "catchups",
                "delivered",
            ],
            &rows,
        )
    );
    println!(
        "expected shape: flood pays ~{:.0} msgs/chunk (n-1); ring/tree amortize far below it\n",
        members as f64 - 1.0
    );

    // ---- Syn-A (×10 at paper scale) under the big cluster -------------
    // The ROADMAP's remaining scale milestone: the 2713-switch / 65090-host
    // synthetic topology, sharded across the full cluster. The hot-path
    // engine (timing-wheel scheduler, zero-copy frames, dense link state)
    // is what makes the whole 24 h trace complete inside the CI time box.
    let syn_a = syn_a_trace(scale);
    println!(
        "syn-a at {} controllers ({} switches, {} hosts, {} flows):",
        members,
        syn_a.topology.num_switches,
        syn_a.topology.num_hosts(),
        syn_a.num_flows()
    );
    let mut cfg = ExperimentConfig::new(ControlMode::LazyStatic)
        .with_group_size_limit(46)
        .with_seed(17)
        .with_cluster(members)
        .with_dissemination(DisseminationStrategy::tree())
        .with_cluster_flush_ms(flush_ms);
    cfg.sync_interval_ms = 10_000;
    let t0 = Instant::now();
    let report = Experiment::new(syn_a, cfg).run();
    let cluster = report.cluster.as_ref().expect("cluster run");
    println!(
        "  completed in {:.1}s: {} events, {} flows, {} delivered, \
         max ctrl rps {:.2}, msgs/chunk {:.2}\n",
        t0.elapsed().as_secs_f64(),
        report.events_processed,
        report.flows_started,
        report.delivered_flows,
        cluster.max_controller_rps(),
        cluster.messages_per_chunk(),
    );
    let syn_a_ok = report.delivered_flows > 0 && report.events_processed > 0;

    println!("scenario: controller-crash-under-load (2 controllers, crash member 1)");
    let crash = controller_crash(2, 5);
    let cluster = crash.report.cluster.as_ref().expect("cluster run");
    println!("  confirmed dead:        {:?}", cluster.confirmed_dead);
    println!("  failover transfers:    {}", cluster.failover_transfers);
    println!(
        "  affected shard delivered: before={} outage={} after-takeover={}",
        crash.affected_before, crash.affected_during_outage, crash.affected_after_takeover
    );
    println!(
        "  survivor shards during outage: {}",
        crash.survivor_during_outage
    );
    println!(
        "  => inter-group reachability {} after takeover\n",
        if crash.affected_after_takeover > 0 {
            "RECOVERED"
        } else {
            "NOT recovered"
        }
    );

    // The registry's cluster scenarios, each judged by its own contract
    // (see `repro_scenario --list` for the full catalogue).
    let registry = ScenarioRegistry::builtin();
    // The detailed reachability analysis above counts as a check too, as
    // does the overlays-beat-flood shape of the dissemination table.
    let mut failures = usize::from(crash.affected_after_takeover == 0)
        + usize::from(!overlay_beats_flood)
        + usize::from(!syn_a_ok);
    for name in [
        "crash_under_load",
        "crash_recover",
        "shard_rebalance",
        "peer_sync_storm",
    ] {
        let scenario = registry.get(name).expect("built-in scenario");
        let run = run_scenario(scenario, 13);
        println!("scenario: {name} — {}", scenario.summary());
        for note in &run.verdict.notes {
            println!("  {note}");
        }
        println!(
            "  verdict: {}",
            if run.verdict.passed() { "PASS" } else { "FAIL" }
        );
        for f in &run.verdict.failures {
            println!("    ✗ {f}");
        }
        if !run.verdict.passed() {
            failures += 1;
        }
    }
    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
