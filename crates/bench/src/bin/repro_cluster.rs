//! Cluster scaling experiment: the same workload under a `lazyctrl-cluster`
//! of 1, 2 and 4 controllers.
//!
//! The claim under test (the ROADMAP's control-plane-scaling step, built
//! on the devolved-controllers line of work the paper cites): sharding the
//! switch groups across N cooperating controllers divides the per-
//! controller request rate, so the control plane's capacity grows with N.
//! The table reports, per cluster size: the busiest member's request rate,
//! the total rate, steady-state mean first-packet latency, and the
//! controller-to-controller overhead the cluster pays for replication and
//! heartbeats.
//!
//! Also replays the registry's cluster scenarios (crash-under-load,
//! crash-recover, shard-rebalance) through their own verdicts, plus the
//! detailed per-shard reachability analysis of a crash. Use
//! `repro_scenario` for the full scenario catalogue.
//!
//! ```sh
//! cargo run --release -p lazyctrl-bench --bin repro_cluster
//! ```
//!
//! Exits non-zero if any scenario verdict fails.

use std::process::ExitCode;

use lazyctrl_bench::{real_trace, render_table, Scale};
use lazyctrl_core::scenarios::controller_crash;
use lazyctrl_core::{run_scenario, ControlMode, Experiment, ExperimentConfig, ScenarioRegistry};

fn main() -> ExitCode {
    let scale = Scale::from_env();
    println!(
        "lazyctrl-cluster — control-plane scaling (scale: {})\n",
        scale.label()
    );

    let trace = real_trace(scale);
    let group_limit = (trace.topology.num_switches / 8).max(4);

    let mut rows = Vec::new();
    for controllers in [1usize, 2, 4] {
        let mut cfg = ExperimentConfig::new(ControlMode::LazyStatic)
            .with_group_size_limit(group_limit)
            .with_seed(17)
            .with_cluster(controllers);
        cfg.sync_interval_ms = 10_000;
        let report = Experiment::new(trace.clone(), cfg).run();
        let cluster = report.cluster.as_ref().expect("cluster run");
        let total_rps: f64 = cluster.per_controller_rps.iter().sum();
        rows.push(vec![
            controllers.to_string(),
            format!("{:.2}", cluster.max_controller_rps()),
            format!("{total_rps:.2}"),
            format!("{:.3}", report.mean_latency_ms),
            cluster.ctrl_peer_messages.to_string(),
            cluster.rebalance_transfers.to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "controllers",
                "max ctrl rps",
                "total rps",
                "latency (ms)",
                "peer msgs",
                "rebalances",
            ],
            &rows,
        )
    );
    println!("expected shape: max per-controller rate drops as controllers grow 1 → 2 → 4\n");

    println!("scenario: controller-crash-under-load (2 controllers, crash member 1)");
    let crash = controller_crash(2, 5);
    let cluster = crash.report.cluster.as_ref().expect("cluster run");
    println!("  confirmed dead:        {:?}", cluster.confirmed_dead);
    println!("  failover transfers:    {}", cluster.failover_transfers);
    println!(
        "  affected shard delivered: before={} outage={} after-takeover={}",
        crash.affected_before, crash.affected_during_outage, crash.affected_after_takeover
    );
    println!(
        "  survivor shards during outage: {}",
        crash.survivor_during_outage
    );
    println!(
        "  => inter-group reachability {} after takeover\n",
        if crash.affected_after_takeover > 0 {
            "RECOVERED"
        } else {
            "NOT recovered"
        }
    );

    // The registry's cluster scenarios, each judged by its own contract
    // (see `repro_scenario --list` for the full catalogue).
    let registry = ScenarioRegistry::builtin();
    // The detailed reachability analysis above counts as a check too.
    let mut failures = usize::from(crash.affected_after_takeover == 0);
    for name in ["crash_under_load", "crash_recover", "shard_rebalance"] {
        let scenario = registry.get(name).expect("built-in scenario");
        let run = run_scenario(scenario, 13);
        println!("scenario: {name} — {}", scenario.summary());
        for note in &run.verdict.notes {
            println!("  {note}");
        }
        println!(
            "  verdict: {}",
            if run.verdict.passed() { "PASS" } else { "FAIL" }
        );
        for f in &run.verdict.failures {
            println!("    ✗ {f}");
        }
        if !run.verdict.passed() {
            failures += 1;
        }
    }
    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
