//! Regenerates the **§V-E cold-cache latency** experiment: first-packet
//! latency for fresh flows among newly deployed hosts.
//!
//! Paper values: intra-group 0.83 ms (LazyCtrl) vs 15.06 ms (OpenFlow);
//! inter-group 5.38 ms (LazyCtrl).
//!
//! ```sh
//! cargo run --release -p lazyctrl-bench --bin repro_coldcache
//! ```

use lazyctrl_bench::render_table;
use lazyctrl_core::scenarios::cold_cache;
use lazyctrl_core::ControlMode;

fn main() {
    println!("§V-E — cold-cache first-packet latency\n");

    let lazy = cold_cache(ControlMode::LazyStatic, 0xCC);
    let base = cold_cache(ControlMode::Baseline, 0xCC);

    let rows = vec![
        vec![
            "lazyctrl".into(),
            format!("{:.2}", lazy.intra_group_ms),
            format!("{:.2}", lazy.inter_group_ms),
            "0.83".into(),
            "5.38".into(),
        ],
        vec![
            "openflow".into(),
            format!("{:.2}", base.intra_group_ms),
            format!("{:.2}", base.inter_group_ms),
            "15.06".into(),
            "15.06".into(),
        ],
    ];
    println!(
        "{}",
        render_table(
            &[
                "mode",
                "intra (ms)",
                "inter (ms)",
                "paper intra",
                "paper inter"
            ],
            &rows
        )
    );
    println!(
        "intra-group speedup vs OpenFlow: {:.1}× (paper: 18×)",
        base.intra_group_ms / lazy.intra_group_ms.max(1e-9)
    );
    println!("\nreproduction target: order-of-magnitude intra-group gap; LazyCtrl's");
    println!("own intra ≪ inter split. (Our baseline omits Floodlight's slow");
    println!("passive topology learning, so its absolute cold path is faster than");
    println!("the paper's 15 ms — see EXPERIMENTS.md.)");
}
