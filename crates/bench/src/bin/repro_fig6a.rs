//! Regenerates **Fig. 6(a)** — normalized inter-group traffic intensity
//! versus the number of groups, on Syn-A/B/C.
//!
//! Paper shape: `W_inter` grows roughly linearly with the group count and
//! orders Syn-A < Syn-B < Syn-C at every k (higher centrality ⇒ less
//! inter-group traffic).
//!
//! ```sh
//! cargo run --release -p lazyctrl-bench --bin repro_fig6a
//! ```

use lazyctrl_bench::{render_table, synthetic_traces, Scale};
use lazyctrl_partition::{metrics, mlkp, MlkpConfig};
use lazyctrl_trace::IntensityMatrix;

fn main() {
    let scale = Scale::from_env();
    println!(
        "Fig. 6(a) — normalized inter-group traffic intensity vs #groups (scale: {})\n",
        scale.label()
    );

    let traces = synthetic_traces(scale);
    let graphs: Vec<_> = traces
        .iter()
        .map(|t| IntensityMatrix::from_trace(t).to_graph())
        .collect();
    println!(
        "intensity graphs: {} switches; {} / {} / {} communicating pairs\n",
        graphs[0].num_vertices(),
        graphs[0].num_edges(),
        graphs[1].num_edges(),
        graphs[2].num_edges()
    );

    // The paper sweeps 5..140 groups at full scale; scale the sweep to the
    // topology so group sizes stay meaningful.
    let n = graphs[0].num_vertices();
    let ks: Vec<usize> = [5, 10, 20, 40, 60, 80, 100, 120, 140]
        .into_iter()
        .filter(|&k| k * 2 <= n)
        .collect();

    let mut rows = Vec::new();
    for &k in &ks {
        let mut row = vec![format!("{k}")];
        for g in &graphs {
            // Size-constrained, as in IniGroup: k groups of at most
            // ceil(n/k)·1.1 switches (the paper's roughly-equal parts).
            let cap = (g.num_vertices() as f64 / k as f64 * 1.1).ceil();
            let part = mlkp(
                g,
                &MlkpConfig::new(k).with_max_part_weight(cap).with_seed(0x6a),
            );
            let w = metrics::normalized_inter_group_intensity(g, &part);
            row.push(format!("{:.1}%", w * 100.0));
        }
        rows.push(row);
    }
    println!(
        "{}",
        render_table(&["#groups", "syn-a", "syn-b", "syn-c"], &rows)
    );
    println!("reproduction target: monotone growth in k; syn-a < syn-b < syn-c per row");
    println!("(paper range: ≈5% at k=5 up to ≈50% at k=140).");
}
