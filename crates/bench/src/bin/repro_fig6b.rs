//! Regenerates **Fig. 6(b)** — switch-grouping computation time versus the
//! group size limit, plus the IniGroup/IncUpdate speed comparison.
//!
//! Paper shape: grouping completes within ~5 s at 2713 switches; time falls
//! as the size limit grows (fewer groups); `IncUpdate` is more than an
//! order of magnitude faster than `IniGroup`.
//!
//! ```sh
//! cargo run --release -p lazyctrl-bench --bin repro_fig6b
//! ```

use std::time::Instant;

use lazyctrl_bench::{render_table, synthetic_traces, Scale};
use lazyctrl_partition::{mlkp, MlkpConfig, Sgi, SgiConfig};
use lazyctrl_trace::IntensityMatrix;

fn main() {
    let scale = Scale::from_env();
    println!(
        "Fig. 6(b) — grouping computation time vs group size limit (scale: {})\n",
        scale.label()
    );

    let traces = synthetic_traces(scale);
    let graphs: Vec<_> = traces
        .iter()
        .map(|t| IntensityMatrix::from_trace(t).to_graph())
        .collect();
    let n = graphs[0].num_vertices();
    println!("switches: {n}\n");

    let limits: Vec<usize> = [50usize, 100, 200, 300, 400, 500, 600]
        .into_iter()
        .map(|l| (l * n / 2713).max(4)) // scale the sweep to the topology
        .collect();

    let mut rows = Vec::new();
    for &limit in &limits {
        let mut row = vec![format!("{limit}")];
        for g in &graphs {
            let k = n.div_ceil(limit);
            let start = Instant::now();
            let _ = mlkp(
                g,
                &MlkpConfig::new(k)
                    .with_max_part_weight(limit as f64)
                    .with_seed(0x6b),
            );
            row.push(format!("{:.1} ms", start.elapsed().as_secs_f64() * 1e3));
        }
        rows.push(row);
    }
    println!(
        "{}",
        render_table(&["size limit", "syn-a", "syn-b", "syn-c"], &rows)
    );

    // IniGroup vs IncUpdate speed (the ">10× faster" claim).
    let g = &graphs[0];
    let limit = limits[limits.len() / 2];
    let start = Instant::now();
    let mut sgi = Sgi::ini_group(
        g.clone(),
        SgiConfig::new(limit).with_thresholds(0.0, 0.0).with_seed(1),
    );
    let ini = start.elapsed();
    // Shift traffic, then measure one incremental repair.
    let mut shifted = g.clone();
    for i in 0..8 {
        let (a, b) = (i, g.num_vertices() / 2 + i);
        if a != b {
            shifted.add_edge(a, b, 1e4);
        }
    }
    sgi.set_intensity(shifted);
    let start = Instant::now();
    let report = sgi.inc_update(f64::INFINITY);
    let inc = start.elapsed();
    println!(
        "IniGroup (limit {limit}):  {:.2} ms",
        ini.as_secs_f64() * 1e3
    );
    println!(
        "IncUpdate ({} rounds): {:.2} ms  — {:.0}× faster",
        report.rounds,
        inc.as_secs_f64() * 1e3,
        ini.as_secs_f64() / inc.as_secs_f64().max(1e-9)
    );
    println!("\nreproduction target: time falls with larger limits; IncUpdate ≫ faster;");
    println!("full-scale grouping below the paper's 5 s budget.");
}
