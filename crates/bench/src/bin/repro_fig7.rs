//! Regenerates **Fig. 7** — controller workload over the day, five curves:
//! OpenFlow, LazyCtrl static/dynamic on the real trace, LazyCtrl
//! static/dynamic on the expanded trace.
//!
//! Paper shape: LazyCtrl cuts controller workload by 61–82%; on the real
//! trace static ≈ dynamic; on the expanded trace (locality eroding over
//! hours 8–24) dynamic holds the line while static degrades.
//!
//! ```sh
//! cargo run --release -p lazyctrl-bench --bin repro_fig7
//! ```

use lazyctrl_bench::{expanded_trace, real_trace, render_table, Scale};
use lazyctrl_core::{ControlMode, Experiment, ExperimentConfig};

fn main() {
    let scale = Scale::from_env();
    println!(
        "Fig. 7 — controller workload over 24 h (scale: {})\n",
        scale.label()
    );

    let real = real_trace(scale);
    let expanded = expanded_trace(&real);
    let group_limit = (real.topology.num_switches / 4).max(4);

    let runs = [
        ("openflow", ControlMode::Baseline, &real),
        ("lazy-static/real", ControlMode::LazyStatic, &real),
        ("lazy-dynamic/real", ControlMode::LazyDynamic, &real),
        ("lazy-static/exp", ControlMode::LazyStatic, &expanded),
        ("lazy-dynamic/exp", ControlMode::LazyDynamic, &expanded),
    ];

    let mut reports = Vec::new();
    for (label, mode, trace) in runs {
        let cfg = ExperimentConfig::new(mode)
            .with_group_size_limit(group_limit)
            .with_seed(7);
        let report = Experiment::new((*trace).clone(), cfg).run();
        eprintln!(
            "[{label}] total={} packet_ins={}",
            report.controller_messages, report.packet_ins
        );
        reports.push((label, report));
    }

    // Per-2h workload table (the plotted series).
    let buckets = reports
        .iter()
        .map(|(_, r)| r.workload_rps.len())
        .max()
        .unwrap_or(0);
    let mut rows = Vec::new();
    for b in 0..buckets {
        let hour = b as f64 * 2.0;
        let mut row = vec![format!("{hour:.0}-{:.0}", hour + 2.0)];
        for (_, r) in &reports {
            row.push(
                r.workload_rps
                    .iter()
                    .find(|p| (p.hour - hour).abs() < 0.5)
                    .map(|p| format!("{:.2}", p.value))
                    .unwrap_or_else(|| "-".into()),
            );
        }
        rows.push(row);
    }
    let headers: Vec<&str> = std::iter::once("hours")
        .chain(reports.iter().map(|(l, _)| *l))
        .collect();
    println!("{}", render_table(&headers, &rows));

    let baseline_mean = reports[0].1.mean_workload_rps();
    println!("mean workload (rps): baseline {baseline_mean:.2}");
    for (label, r) in &reports[1..] {
        println!(
            "  {label:<18} {:.2}  (reduction {:.0}%)",
            r.mean_workload_rps(),
            r.workload_reduction_vs(&reports[0].1) * 100.0
        );
    }
    println!("\nreproduction target: every LazyCtrl curve far below OpenFlow");
    println!("(paper: 61–82% reduction); on the expanded trace the dynamic");
    println!("variant outperforms the static one over hours 8–24.");
}
