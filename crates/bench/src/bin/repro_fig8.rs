//! Regenerates **Fig. 8** — switch grouping update frequency (updates per
//! hour) under dynamic LazyCtrl, on the real and expanded traces.
//!
//! Paper shape: ~10 updates/hour on the real trace (stable locality); up
//! to ~34 updates/hour on the expanded trace as fresh host pairs keep
//! eroding the grouping after hour 8.
//!
//! ```sh
//! cargo run --release -p lazyctrl-bench --bin repro_fig8
//! ```

use lazyctrl_bench::{expanded_trace, real_trace, render_table, Scale};
use lazyctrl_core::{ControlMode, Experiment, ExperimentConfig};

fn main() {
    let scale = Scale::from_env();
    println!(
        "Fig. 8 — grouping updates per hour (scale: {})\n",
        scale.label()
    );

    let real = real_trace(scale);
    let expanded = expanded_trace(&real);
    let group_limit = (real.topology.num_switches / 4).max(4);

    let mut series = Vec::new();
    for (label, trace) in [("real", &real), ("expanded", &expanded)] {
        let cfg = ExperimentConfig::new(ControlMode::LazyDynamic)
            .with_group_size_limit(group_limit)
            .with_seed(8);
        let report = Experiment::new((*trace).clone(), cfg).run();
        eprintln!(
            "[{label}] total updates: {:.0}",
            report.updates_per_hour.iter().map(|p| p.value).sum::<f64>()
        );
        series.push((label, report.updates_per_hour));
    }

    let hours = series
        .iter()
        .flat_map(|(_, s)| s.iter().map(|p| p.hour as u64))
        .max()
        .unwrap_or(0);
    let mut rows = Vec::new();
    for h in 0..=hours {
        let mut row = vec![format!("{h}")];
        for (_, s) in &series {
            row.push(
                s.iter()
                    .find(|p| (p.hour - h as f64).abs() < 0.5)
                    .map(|p| format!("{:.0}", p.value))
                    .unwrap_or_else(|| "0".into()),
            );
        }
        rows.push(row);
    }
    println!("{}", render_table(&["hour", "real", "expanded"], &rows));
    println!("reproduction target: low, steady update rate on the real trace;");
    println!("clearly higher rate on the expanded trace during hours 8–24");
    println!("(paper: ≈10/h real, up to 34/h expanded).");
}
