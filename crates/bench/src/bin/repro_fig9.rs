//! Regenerates **Fig. 9** — steady-state average forwarding latency per
//! 2-hour bucket, OpenFlow vs LazyCtrl.
//!
//! Paper shape: LazyCtrl sits ≈10% below OpenFlow across the day — a
//! byproduct of the lighter controller load (lower queueing delay) and of
//! intra-group flows resolving without the controller.
//!
//! ```sh
//! cargo run --release -p lazyctrl-bench --bin repro_fig9
//! ```

use lazyctrl_bench::{real_trace, render_table, Scale};
use lazyctrl_core::{ControlMode, Experiment, ExperimentConfig};

fn main() {
    let scale = Scale::from_env();
    println!(
        "Fig. 9 — steady-state latency over 24 h (scale: {})\n",
        scale.label()
    );

    let real = real_trace(scale);
    let group_limit = (real.topology.num_switches / 4).max(4);

    let mut series = Vec::new();
    let mut means = Vec::new();
    for (label, mode) in [
        ("openflow", ControlMode::Baseline),
        ("lazyctrl", ControlMode::LazyStatic),
    ] {
        let cfg = ExperimentConfig::new(mode)
            .with_group_size_limit(group_limit)
            .with_seed(9);
        let report = Experiment::new(real.clone(), cfg).run();
        means.push((label, report.mean_latency_ms));
        series.push((label, report.latency_ms));
    }

    let buckets = series.iter().map(|(_, s)| s.len()).max().unwrap_or(0);
    let mut rows = Vec::new();
    for b in 0..buckets {
        let hour = b as f64 * 2.0;
        let mut row = vec![format!("{hour:.0}-{:.0}", hour + 2.0)];
        for (_, s) in &series {
            row.push(
                s.iter()
                    .find(|p| (p.hour - hour).abs() < 0.5)
                    .map(|p| format!("{:.3}", p.value))
                    .unwrap_or_else(|| "-".into()),
            );
        }
        rows.push(row);
    }
    println!(
        "{}",
        render_table(&["hours", "openflow (ms)", "lazyctrl (ms)"], &rows)
    );
    let (_, base) = means[0];
    let (_, lazy) = means[1];
    println!("mean latency: openflow {base:.3} ms, lazyctrl {lazy:.3} ms");
    println!(
        "lazyctrl is {:.0}% below openflow (paper: ≈10%, 0.45–0.65 ms band)",
        (1.0 - lazy / base) * 100.0
    );
}
