//! Model-checking harness for the cluster protocols: exhaustive bounded
//! exploration of message reorderings, drops, duplications, and member
//! crash/recovery over the pure cluster state machine, with the five
//! protocol invariants checked in every reachable state (see the
//! `lazyctrl-mc` crate docs).
//!
//! Phases:
//!
//! 1. **Exhaustive, 3 members** — DFS with state-fingerprint dedup over
//!    a faulty network (one drop, one duplicate, one crash per
//!    schedule). Must find zero violations.
//! 2. **Guided, 5 members** — seeded random walks with a two-crash
//!    budget, deep enough to cross detection, election, and handoff
//!    windows. Must find zero violations.
//! 3. **Guided partition, 3 members** — seeded random walks whose fault
//!    budget includes a partition start and a heal (isolating any one
//!    member), alongside a drop, a duplicate, and a crash. Settling
//!    heals before the terminal invariants run, so this phase checks
//!    both split behavior (no double leader, no double apply) and
//!    post-heal convergence. Must find zero violations.
//!
//! Compiled with `--features mc-mutations`, the phases invert into a
//! self-test: the cluster crate's deliberate relay-dedup bypass is
//! compiled in, and the checker must *find* it, print the counterexample
//! schedule, and reproduce it by replay. Exits non-zero on any
//! unexpected outcome either way.
//!
//! ```sh
//! cargo run --release -p lazyctrl-bench --bin repro_mc
//! cargo run --release -p lazyctrl-bench --bin repro_mc --features mc-mutations
//! ```

use std::process::ExitCode;
use std::time::Instant;

use lazyctrl_cluster::{ClusterConfig, DisseminationStrategy};
use lazyctrl_mc::{check, CheckOutcome, CheckerConfig, FaultBudget, McState, Mode};

const SEC: u64 = 1_000_000_000;

/// The cluster configuration under check: 1 s flush/heartbeat ticks, 3 s
/// anti-entropy, the default 3 s election timeout — the same shape the
/// cluster integration tests pin.
fn mc_config(n: usize) -> ClusterConfig {
    let mut cfg = ClusterConfig::with_controllers(n);
    // Ring dissemination, not the flood default: the relay path (dedup
    // windows, re-fanning, at-most-once forwarding) is the protocol under
    // test, and flood never relays.
    cfg.dissemination = DisseminationStrategy::Ring;
    cfg.lazy.group_size_limit = 3;
    cfg.replica_flush_interval_ms = 1_000;
    cfg.heartbeat_interval_ms = 1_000;
    cfg.heartbeat_miss_factor = 3;
    cfg.anti_entropy_interval_ms = 3_000;
    cfg.delta_log_flushes = 10_000;
    cfg
}

/// The initial state all phases explore from: `n` members over `n`
/// switch groups, replication work seeded on two members, pre-rolled
/// through the first flush/heartbeat round so the frontier has real
/// traffic in flight.
fn initial_state(n: usize) -> McState {
    let mut state = McState::bootstrap(n, mc_config(n));
    state.seed_host(0, 1_001);
    state.seed_host(1, 2_001);
    state.advance_to(SEC);
    state
}

fn print_outcome(phase: &str, outcome: &CheckOutcome, wall: f64) {
    let s = &outcome.stats;
    println!(
        "{phase}: {} transitions, {} distinct states, {} deduped, \
         {} leaves ({} settled){} in {wall:.2}s",
        s.explored,
        s.distinct,
        s.deduped,
        s.leaves,
        s.settled,
        if s.truncated { ", truncated" } else { "" },
    );
    match &outcome.violation {
        None => println!("{phase}: all invariants held\n"),
        Some(cx) => println!("{phase}: VIOLATION\n{cx}\n"),
    }
}

/// A violation is the expected outcome iff the protocol mutation is
/// compiled in.
fn expect_violation() -> bool {
    cfg!(feature = "mc-mutations")
}

fn run_phase(phase: &str, state: &McState, cfg: &CheckerConfig) -> Result<(), String> {
    let t = Instant::now();
    let outcome = check(state, cfg);
    print_outcome(phase, &outcome, t.elapsed().as_secs_f64());
    match (&outcome.violation, expect_violation()) {
        (None, false) => Ok(()),
        (Some(cx), true) => {
            // The counterexample must reproduce from the same initial
            // state — a schedule that cannot be replayed is useless.
            match cx.replay(state) {
                Some(v) => {
                    println!(
                        "{phase}: replay reproduces the violation ({})\n\
                         {phase}: fault-plan skeleton: {} injected event(s)\n",
                        v.invariant,
                        cx.fault_plan(state.plane.num_controllers()).len()
                    );
                    Ok(())
                }
                None => Err(format!("{phase}: counterexample did not replay")),
            }
        }
        (Some(cx), false) => Err(format!("{phase}: unexpected violation: {}", cx.violation)),
        (None, true) => Err(format!(
            "{phase}: mutation compiled in but no violation found"
        )),
    }
}

fn main() -> ExitCode {
    let mutated = expect_violation();
    println!(
        "lazyctrl-mc — bounded model checking of the cluster protocols{}\n",
        if mutated {
            " (mutation self-test: a violation MUST be found)"
        } else {
            ""
        }
    );

    // Phase 1: exhaustive DFS on 3 members. The fault budget keeps the
    // frontier finite; the depth crosses two full tick rounds.
    let exhaustive = CheckerConfig {
        mode: Mode::Exhaustive,
        max_depth: 11,
        max_states: 400_000,
        budget: FaultBudget {
            drops: 1,
            dups: 1,
            crashes: 1,
            ..FaultBudget::none()
        },
        max_pending: 14,
        settle_horizon_ns: 45 * SEC,
        settle_every: 512,
    };
    let state3 = initial_state(3);
    let mut failures = Vec::new();
    if let Err(e) = run_phase("exhaustive-3", &state3, &exhaustive) {
        failures.push(e);
    }

    // Phase 2: guided random walks on 5 members, two crashes allowed,
    // deep enough (~8 virtual seconds) to cross failure detection, an
    // election, and the ownership handoff it triggers.
    let guided = CheckerConfig {
        mode: Mode::RandomWalk {
            walks: 600,
            depth: 220,
            seed: 0xC1C1,
        },
        budget: FaultBudget {
            drops: 2,
            dups: 2,
            crashes: 2,
            ..FaultBudget::none()
        },
        max_pending: 24,
        settle_horizon_ns: 45 * SEC,
        settle_every: 16,
        ..CheckerConfig::default()
    };
    let state5 = initial_state(5);
    if let Err(e) = run_phase("guided-5", &state5, &guided) {
        failures.push(e);
    }

    // Phase 3: guided walks on 3 members with a partition in the fault
    // model — any one member may be severed from its peers mid-schedule
    // and healed later (or left cut until settling heals it). Depth
    // crosses the detection deadline and the leader-lease window, so
    // isolated-leader demotion and majority takeover both happen inside
    // explored schedules, not only during settling.
    let partitioned = CheckerConfig {
        mode: Mode::RandomWalk {
            walks: 500,
            depth: 240,
            seed: 0xBADCA57,
        },
        budget: FaultBudget {
            drops: 1,
            dups: 1,
            crashes: 1,
            partitions: 1,
            heals: 1,
        },
        max_pending: 24,
        settle_horizon_ns: 45 * SEC,
        settle_every: 16,
        ..CheckerConfig::default()
    };
    if let Err(e) = run_phase("guided-partition-3", &state3, &partitioned) {
        failures.push(e);
    }

    if failures.is_empty() {
        println!(
            "repro_mc: PASS{}",
            if mutated {
                " (mutation detected and replayed)"
            } else {
                ""
            }
        );
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("repro_mc: FAIL — {f}");
        }
        ExitCode::FAILURE
    }
}
