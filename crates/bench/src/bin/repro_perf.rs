//! Hot-path performance baseline: runs fixed workloads, prints a table,
//! and emits `BENCH_perf.json` (events/sec, flow-setups/sec, peak-RSS
//! proxy, wall time per scenario) — the trajectory baseline future PRs
//! measure against.
//!
//! Workloads (all deterministic, seed 7):
//!
//! * `flow_setup_throughput` — Syn-A under a single lazy controller with
//!   explicit ARP resolution for every fresh pair: the paper's flow-setup
//!   operation, end to end. `LAZYCTRL_SCALE=paper` runs the full ×10
//!   topology (2713 switches, 65090 hosts, 500 k flows); the default
//!   quick scale runs the ⅛ topology. Also run on the retained heap
//!   scheduler (`…_heap`) so the artifact records the backend delta.
//! * `steady_state` — same trace without ARP emission (warm-path mix).
//! * `scenario:<name>` — wall-clock of three registry scenarios.
//!
//! The JSON carries the **pre-PR baseline** for the headline workloads —
//! the heap-scheduler, per-hop-encode engine as of PR 3, measured on the
//! same machine and workloads — so the artifact itself documents the
//! speedup (acceptance: ≥2× events/sec on `flow_setup_throughput`).
//!
//! ```sh
//! cargo run --release -p lazyctrl-bench --bin repro_perf            # writes ./BENCH_perf.json
//! cargo run --release -p lazyctrl-bench --bin repro_perf -- \
//!     --out /tmp/BENCH_perf.json --check BENCH_perf.json           # CI: fail on >25% regression
//! ```
//!
//! The committed `BENCH_perf.json` carries **both** scales' rows (the
//! `--check` gate only compares rows matching the current scale, and
//! CI's quick job never exercises the paper rows). A run's `--out` file
//! contains only the current scale — to refresh the committed artifact,
//! run at both scales and merge, rather than committing a single run's
//! output and silently dropping the other scale's baseline.

use std::time::Instant;

use lazyctrl_bench::{render_table, syn_a_trace, Scale};
use lazyctrl_core::scenarios::{run_built, ScenarioRegistry};
use lazyctrl_core::{ControlMode, Experiment, ExperimentConfig, SchedulerKind};
use lazyctrl_trace::Trace;

/// Pre-PR reference numbers (PR 3 engine: `BinaryHeap` scheduler, per-hop
/// `encode()`/`to_vec()`, string-keyed metrics), measured on the same
/// workloads/seed on the development machine. `(wall_s, events)`.
fn pre_pr_baseline(scale: Scale, name: &str) -> Option<(f64, u64)> {
    match (scale, name) {
        (Scale::Quick, "flow_setup_throughput") => Some((1.450, 2_851_007)),
        (Scale::Quick, "steady_state") => Some((0.998, 2_456_303)),
        (Scale::Paper, "flow_setup_throughput") => Some((44.90, 23_178_412)),
        _ => None,
    }
}

/// Peak resident set size proxy (kB) — `VmHWM` on Linux, 0 elsewhere.
/// This is the *process-wide high-water mark at the time of sampling*:
/// it is monotone across the scenario sequence, so a scenario's entry
/// attributes memory to "everything run so far", not to that scenario
/// alone (only the first entry and the global maximum are per-workload
/// meaningful).
fn peak_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(0)
}

struct Measurement {
    name: String,
    wall_s: f64,
    events: u64,
    flows: u64,
    peak_rss_kb: u64,
}

impl Measurement {
    fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.wall_s
    }

    fn json_line(&self, scale: Scale) -> String {
        format!(
            "{{\"scale\": \"{}\", \"name\": \"{}\", \"wall_s\": {:.3}, \"events\": {}, \
             \"events_per_sec\": {:.0}, \"flow_setups_per_sec\": {:.0}, \"peak_rss_kb\": {}}}",
            scale.label(),
            self.name,
            self.wall_s,
            self.events,
            self.events_per_sec(),
            self.flows as f64 / self.wall_s,
            self.peak_rss_kb,
        )
    }
}

fn run_workload(name: &str, trace: &Trace, arp: bool, kind: SchedulerKind) -> Measurement {
    let mut cfg = ExperimentConfig::new(ControlMode::LazyStatic)
        .with_group_size_limit(46)
        .with_seed(7)
        .with_scheduler(kind);
    cfg.emit_arp = arp;
    let t0 = Instant::now();
    let report = Experiment::new(trace.clone(), cfg).run();
    Measurement {
        name: name.to_owned(),
        wall_s: t0.elapsed().as_secs_f64(),
        events: report.events_processed,
        flows: report.flows_started,
        peak_rss_kb: peak_rss_kb(),
    }
}

/// Extracts `(scale, name, events_per_sec, wall_s)` rows from a baseline
/// file written by this binary (one scenario object per line).
fn parse_baseline(text: &str) -> Vec<(String, String, f64, f64)> {
    let field = |line: &str, key: &str| -> Option<String> {
        let pat = format!("\"{key}\": ");
        let start = line.find(&pat)? + pat.len();
        let rest = &line[start..];
        let end = rest.find([',', '}']).unwrap_or(rest.len());
        Some(rest[..end].trim().trim_matches('"').to_owned())
    };
    text.lines()
        .filter(|l| l.contains("\"events_per_sec\"") && l.contains("\"name\""))
        .filter_map(|l| {
            Some((
                field(l, "scale")?,
                field(l, "name")?,
                field(l, "events_per_sec")?.parse().ok()?,
                field(l, "wall_s")?.parse().ok()?,
            ))
        })
        .collect()
}

/// The workload whose heap-backend run calibrates hardware speed between
/// the machine that committed the baseline and the machine running the
/// check (the heap scheduler is the stable reference implementation, so
/// its throughput moves with hardware, not with hot-path work).
const CALIBRATOR: &str = "flow_setup_throughput_heap";

/// Committed entries faster than this are dominated by scheduler noise
/// and are reported but never gated.
const MIN_GATED_WALL_S: f64 = 0.25;

fn main() {
    let mut out_path = String::from("BENCH_perf.json");
    let mut check_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--check" => check_path = Some(args.next().expect("--check needs a path")),
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    let scale = Scale::from_env();
    println!("lazyctrl repro_perf (scale: {})\n", scale.label());

    let trace = syn_a_trace(scale);
    println!(
        "Syn-A: {} switches, {} hosts, {} flows\n",
        trace.topology.num_switches,
        trace.topology.num_hosts(),
        trace.num_flows()
    );

    let mut measurements = vec![
        run_workload("flow_setup_throughput", &trace, true, SchedulerKind::Wheel),
        run_workload(
            "flow_setup_throughput_heap",
            &trace,
            true,
            SchedulerKind::Heap,
        ),
        run_workload("steady_state", &trace, false, SchedulerKind::Wheel),
    ];

    // Registry scenarios, wall-timed (verdicts are repro_scenario's job).
    let registry = ScenarioRegistry::builtin();
    for name in ["cold_cache", "crash_under_load", "peer_sync_storm"] {
        let s = registry.get(name).expect("built-in scenario");
        let (strace, cfg, plan) = s.build(0xC1);
        let t0 = Instant::now();
        let run = run_built(s, strace, cfg, plan);
        measurements.push(Measurement {
            name: format!("scenario:{name}"),
            wall_s: t0.elapsed().as_secs_f64(),
            events: run.report.events_processed,
            flows: run.report.flows_started,
            peak_rss_kb: peak_rss_kb(),
        });
    }

    let mut rows = Vec::new();
    for m in &measurements {
        let speedup = pre_pr_baseline(scale, &m.name)
            .map(|(w, e)| format!("{:.2}x", m.events_per_sec() / (e as f64 / w)))
            .unwrap_or_else(|| "-".into());
        rows.push(vec![
            m.name.clone(),
            format!("{:.3}", m.wall_s),
            m.events.to_string(),
            format!("{:.0}", m.events_per_sec()),
            format!("{:.0}", m.flows as f64 / m.wall_s),
            m.peak_rss_kb.to_string(),
            speedup,
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "scenario",
                "wall (s)",
                "events",
                "events/s",
                "flow-setups/s",
                "peak RSS (kB)",
                "vs pre-PR",
            ],
            &rows,
        )
    );

    // ---- BENCH_perf.json ------------------------------------------------
    let mut json = String::from("{\n  \"schema\": 1,\n  \"scenarios\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        json.push_str("    ");
        json.push_str(&m.json_line(scale));
        json.push_str(if i + 1 < measurements.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    json.push_str("  ],\n  \"pre_pr_baseline\": [\n");
    let baselines: Vec<String> = measurements
        .iter()
        .filter_map(|m| {
            pre_pr_baseline(scale, &m.name).map(|(w, e)| {
                format!(
                    "    {{\"scale\": \"{}\", \"name\": \"{}\", \"engine\": \"heap+encode (PR 3)\", \
                     \"wall_s\": {:.3}, \"events\": {}, \"baseline_events_per_sec\": {:.0}}}",
                    scale.label(),
                    m.name,
                    w,
                    e,
                    e as f64 / w
                )
            })
        })
        .collect();
    json.push_str(&baselines.join(",\n"));
    json.push_str("\n  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write BENCH_perf.json");
    println!("wrote {out_path}");

    // ---- regression gate ------------------------------------------------
    // Absolute events/sec moves with hardware, so the committed numbers
    // are first rescaled by how this machine's *heap-backend* run (the
    // stable reference implementation) compares to the committed one;
    // after that normalization, a >25% drop is a real hot-path
    // regression, not a slower runner. Sub-`MIN_GATED_WALL_S` entries
    // are reported but not gated (pure timer noise at that size).
    if let Some(path) = check_path {
        let committed = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let rows = parse_baseline(&committed);
        let calibration = rows
            .iter()
            .find(|(bscale, name, eps, _)| {
                bscale == scale.label() && name == CALIBRATOR && *eps > 0.0
            })
            .and_then(|(_, _, base_eps, _)| {
                measurements
                    .iter()
                    .find(|m| m.name == CALIBRATOR)
                    .map(|m| (m.events_per_sec() / base_eps).clamp(0.1, 10.0))
            })
            .unwrap_or(1.0);
        println!("hardware calibration ({CALIBRATOR}): {calibration:.2}x committed");
        let mut failures = 0;
        for (bscale, name, base_eps, base_wall) in rows {
            if bscale != scale.label() || base_eps <= 0.0 || name == CALIBRATOR {
                continue;
            }
            let Some(m) = measurements.iter().find(|m| m.name == name) else {
                // A committed row with no fresh counterpart means a
                // workload was renamed or dropped; losing its gate must
                // be loud, not silent.
                if base_wall >= MIN_GATED_WALL_S {
                    println!(
                        "check {name}: MISSING from this run (committed row has no counterpart)"
                    );
                    failures += 1;
                }
                continue;
            };
            let ratio = m.events_per_sec() / (base_eps * calibration);
            let gated = base_wall >= MIN_GATED_WALL_S;
            let verdict = match (gated, ratio < 0.75) {
                (true, true) => "REGRESSION",
                (true, false) => "ok",
                (false, _) => "not gated (too short)",
            };
            println!(
                "check {name}: {:.0} ev/s vs committed {:.0} ({ratio:.2}x normalized) — {verdict}",
                m.events_per_sec(),
                base_eps,
            );
            if gated && ratio < 0.75 {
                failures += 1;
            }
        }
        if failures > 0 {
            eprintln!("{failures} scenario(s) regressed >25% vs {path} (hardware-normalized)");
            std::process::exit(1);
        }
    }
}
