//! Hot-path performance baseline: runs fixed workloads, prints a table,
//! and emits `BENCH_perf.json` (events/sec, flow-setups/sec, peak-RSS
//! proxy, wall time per scenario) — the trajectory baseline future PRs
//! measure against.
//!
//! Workloads (all deterministic, seed 7):
//!
//! * `flow_setup_throughput` — Syn-A under a single lazy controller with
//!   explicit ARP resolution for every fresh pair: the paper's flow-setup
//!   operation, end to end. `LAZYCTRL_SCALE=paper` runs the full ×10
//!   topology (2713 switches, 65090 hosts, 500 k flows); the default
//!   quick scale runs the ⅛ topology. Also run on the retained heap
//!   scheduler (`…_heap`) so the artifact records the backend delta.
//! * `steady_state` — same trace without ARP emission (warm-path mix).
//! * `flow_setup_throughput_bw` — the headline workload with every
//!   control-plane channel class capacitated far above the offered load.
//!   No link ever saturates, so the row measures the pure bookkeeping
//!   cost of the fair-share bandwidth model (wire lengths, per-link
//!   watermarks); it is asserted within 5% of the plain row's
//!   events/sec (best of four alternating runs each, to ride out
//!   runner noise).
//! * `flow_setup_throughput_w1` / `_wN` — the same headline workload on
//!   the sharded multi-core engine at 1 and N worker threads (only with
//!   `--workers N`); the two reports are asserted bit-identical before
//!   either row is recorded.
//! * `scenario:<name>` — wall-clock of three registry scenarios.
//!
//! The JSON carries the **pre-PR baseline** for the headline workloads —
//! the PR 4 engine (timing wheel with inline entries, `Vec`-returning
//! handlers, ~88-byte `Message`), measured on the same workloads — so
//! the artifact itself documents the allocation-free-dispatch speedup
//! (acceptance: ≥1.25× events/sec on paper-scale
//! `flow_setup_throughput`). Peak RSS is sampled **per scenario**: the
//! kernel's high-water mark is reset before each workload, so a row's
//! `peak_rss_kb` belongs to that workload alone instead of carrying the
//! run-wide maximum forward.
//!
//! ```sh
//! cargo run --release -p lazyctrl-bench --bin repro_perf            # writes ./BENCH_perf.json
//! cargo run --release -p lazyctrl-bench --bin repro_perf -- \
//!     --workers 4 \
//!     --out /tmp/BENCH_perf.json --check BENCH_perf.json           # CI: fail on >25% regression
//! ```
//!
//! The committed `BENCH_perf.json` carries **both** scales' rows (the
//! `--check` gate only compares rows matching the current scale, and
//! CI's quick job never exercises the paper rows). A run's `--out` file
//! contains only the current scale — to refresh the committed artifact,
//! run at both scales and merge, rather than committing a single run's
//! output and silently dropping the other scale's baseline.

use std::time::Instant;

use lazyctrl_bench::{render_table, syn_a_trace, Scale};
use lazyctrl_core::scenarios::{run_built_detailed, ScenarioRegistry};
use lazyctrl_core::{BandwidthModel, ControlMode, Experiment, ExperimentConfig, SchedulerKind};
use lazyctrl_obs::PhaseTimings;
use lazyctrl_trace::Trace;

/// Pre-PR reference numbers (PR 4 engine: timing wheel with inline
/// entries, `Vec`-returning handlers, ~88-byte `Message`), measured on
/// the same workloads/seed. `(wall_s, events)`.
fn pre_pr_baseline(scale: Scale, name: &str) -> Option<(f64, u64)> {
    match (scale, name) {
        (Scale::Quick, "flow_setup_throughput") => Some((0.890, 2_846_317)),
        (Scale::Quick, "steady_state") => Some((0.722, 2_463_620)),
        (Scale::Paper, "flow_setup_throughput") => Some((10.781, 23_094_763)),
        (Scale::Paper, "steady_state") => Some((9.121, 19_684_073)),
        _ => None,
    }
}

/// Peak resident set size proxy (kB) — `VmHWM` on Linux, 0 elsewhere.
fn peak_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(0)
}

/// Resets the kernel's RSS high-water mark (`echo 5 > /proc/self/clear_refs`),
/// so the next [`peak_rss_kb`] read is *this scenario's* peak rather than
/// the run-wide maximum carried forward from every workload before it.
/// Returns false where unsupported (non-Linux, restricted procfs); the
/// sample then degrades to the old monotone process-wide behaviour.
fn reset_peak_rss() -> bool {
    std::fs::write("/proc/self/clear_refs", "5").is_ok()
}

struct Measurement {
    name: String,
    wall_s: f64,
    events: u64,
    flows: u64,
    peak_rss_kb: u64,
    /// Worker threads on the sharded engine; 0 = the sequential engine.
    workers: u64,
    /// Trace-build vs event-loop vs report-collection wall split (the
    /// engine's own phase timers; `wall_s` additionally covers trace
    /// cloning and driver overhead around them).
    phases: PhaseTimings,
    /// Flow-setup latency tail (virtual time, ms) — p99/p999 of the
    /// end-to-end delivery histogram, 0.0 when the run delivered nothing.
    p99_latency_ms: f64,
    p999_latency_ms: f64,
}

impl Measurement {
    fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.wall_s
    }

    fn phase_cell(&self) -> String {
        format!(
            "{:.2}/{:.2}/{:.2}",
            self.phases.build_s, self.phases.run_s, self.phases.report_s
        )
    }

    fn json_line(&self, scale: Scale) -> String {
        format!(
            "{{\"scale\": \"{}\", \"name\": \"{}\", \"workers\": {}, \"wall_s\": {:.3}, \
             \"events\": {}, \"events_per_sec\": {:.0}, \"flow_setups_per_sec\": {:.0}, \
             \"peak_rss_kb\": {}, \"build_s\": {:.3}, \"run_s\": {:.3}, \"report_s\": {:.3}, \
             \"p99_latency_ms\": {:.3}, \"p999_latency_ms\": {:.3}}}",
            scale.label(),
            self.name,
            self.workers,
            self.wall_s,
            self.events,
            self.events_per_sec(),
            self.flows as f64 / self.wall_s,
            self.peak_rss_kb,
            self.phases.build_s,
            self.phases.run_s,
            self.phases.report_s,
            self.p99_latency_ms,
            self.p999_latency_ms,
        )
    }
}

/// Runs one workload and returns the measurement plus the full report
/// (the worker-count rows compare reports for bit-identity). Peak RSS is
/// recorded as 0 when per-scenario reset is unsupported (`rss_ok` false):
/// a monotone process-wide high-water mark is garbage per row, and a 0
/// sample is never gated downstream.
fn run_workload(
    name: &str,
    trace: &Trace,
    arp: bool,
    kind: SchedulerKind,
    workers: Option<usize>,
    rss_ok: bool,
    bandwidth: Option<BandwidthModel>,
) -> (Measurement, lazyctrl_core::ExperimentReport) {
    let mut cfg = ExperimentConfig::new(ControlMode::LazyStatic)
        .with_group_size_limit(46)
        .with_seed(7)
        .with_scheduler(kind);
    cfg.emit_arp = arp;
    cfg.workers = workers;
    if workers.is_some() {
        cfg.shard_window_us = Some(SHARD_WINDOW_US);
    }
    if let Some(bw) = bandwidth {
        cfg = cfg.with_bandwidth(bw);
    }
    if rss_ok {
        reset_peak_rss();
    }
    let t0 = Instant::now();
    let detailed = Experiment::new(trace.clone(), cfg).run_detailed();
    let m = Measurement {
        name: name.to_owned(),
        wall_s: t0.elapsed().as_secs_f64(),
        events: detailed.report.events_processed,
        flows: detailed.report.flows_started,
        peak_rss_kb: if rss_ok { peak_rss_kb() } else { 0 },
        workers: workers.map_or(0, |w| w as u64),
        phases: detailed.phases,
        p99_latency_ms: detailed.report.p99_latency_ms,
        p999_latency_ms: detailed.report.p999_latency_ms,
    };
    (m, detailed.report)
}

/// One committed baseline row (parsed from a file this binary wrote).
struct BaselineRow {
    scale: String,
    name: String,
    events_per_sec: f64,
    wall_s: f64,
    peak_rss_kb: u64,
    /// Worker threads the committed row was measured with (0 = sequential
    /// engine; absent in pre-worker baselines, parsed as 0).
    workers: u64,
}

/// Extracts the scenario rows from a baseline file written by this binary
/// (one scenario object per line).
fn parse_baseline(text: &str) -> Vec<BaselineRow> {
    let field = |line: &str, key: &str| -> Option<String> {
        let pat = format!("\"{key}\": ");
        let start = line.find(&pat)? + pat.len();
        let rest = &line[start..];
        let end = rest.find([',', '}']).unwrap_or(rest.len());
        Some(rest[..end].trim().trim_matches('"').to_owned())
    };
    text.lines()
        .filter(|l| l.contains("\"events_per_sec\"") && l.contains("\"name\""))
        .filter_map(|l| {
            Some(BaselineRow {
                scale: field(l, "scale")?,
                name: field(l, "name")?,
                events_per_sec: field(l, "events_per_sec")?.parse().ok()?,
                wall_s: field(l, "wall_s")?.parse().ok()?,
                peak_rss_kb: field(l, "peak_rss_kb")
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(0),
                workers: field(l, "workers")
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(0),
            })
        })
        .collect()
}

/// The workload whose heap-backend run calibrates hardware speed between
/// the machine that committed the baseline and the machine running the
/// check (the heap scheduler is the stable reference implementation, so
/// its throughput moves with hardware, not with hot-path work).
const CALIBRATOR: &str = "flow_setup_throughput_heap";

/// Synchronization window (µs of virtual time) for the sharded worker
/// rows. The default window (the lookahead floor, ~114 µs) reproduces
/// sequential timing exactly but yields epochs too small to parallelize;
/// the bench rows run in throughput mode with a wide window instead —
/// cross-partition arrivals are deterministically bumped to epoch
/// boundaries, which is the documented accuracy/throughput trade
/// (reports remain bit-identical across worker counts either way).
const SHARD_WINDOW_US: u64 = 1_000_000;

/// Committed entries faster than this are dominated by scheduler noise
/// and are reported but never gated.
const MIN_GATED_WALL_S: f64 = 0.25;

/// Maximum fraction of events/sec the *unsaturated* bandwidth model may
/// cost on the headline workload. The model is on the dispatch hot path,
/// so its bookkeeping (wire lengths + per-link watermarks) must stay in
/// the noise; a bigger gap means the fast path regressed.
const BW_OVERHEAD_TOLERANCE: f64 = 0.05;

/// A peak-RSS regression must exceed the >25% ratio *and* this absolute
/// growth: quick-scale baselines are ~30 MB, where environment (malloc
/// arenas, runner image) moves several percent without any code change.
const RSS_NOISE_FLOOR_KB: u64 = 16_384;

fn main() {
    let mut out_path = String::from("BENCH_perf.json");
    let mut check_path: Option<String> = None;
    let mut workers_flag: Option<usize> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--check" => check_path = Some(args.next().expect("--check needs a path")),
            "--workers" => {
                let n: usize = args
                    .next()
                    .expect("--workers needs a count")
                    .parse()
                    .expect("--workers needs a number");
                assert!(n > 0, "--workers must be positive");
                workers_flag = Some(n);
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    let scale = Scale::from_env();
    println!("lazyctrl repro_perf (scale: {})\n", scale.label());

    // Probe per-scenario RSS sampling once up front; when the reset is
    // unsupported (non-Linux, restricted procfs) every row carries 0 and
    // the RSS gate below is skipped — a monotone process-wide high-water
    // mark compared against per-scenario baselines is worse than nothing.
    let rss_ok = reset_peak_rss();
    if !rss_ok {
        println!("warning: peak-RSS reset unsupported; RSS columns carry 0 and the RSS gate is skipped\n");
    }

    let trace = syn_a_trace(scale);
    println!(
        "Syn-A: {} switches, {} hosts, {} flows\n",
        trace.topology.num_switches,
        trace.topology.num_hosts(),
        trace.num_flows()
    );

    let mut measurements = vec![
        run_workload(
            "flow_setup_throughput",
            &trace,
            true,
            SchedulerKind::Wheel,
            None,
            rss_ok,
            None,
        )
        .0,
        run_workload(
            "flow_setup_throughput_heap",
            &trace,
            true,
            SchedulerKind::Heap,
            None,
            rss_ok,
            None,
        )
        .0,
        run_workload(
            "steady_state",
            &trace,
            false,
            SchedulerKind::Wheel,
            None,
            rss_ok,
            None,
        )
        .0,
    ];

    // Bandwidth-model overhead row: every channel class capacitated at
    // 10 GB/s — orders of magnitude above the offered control-plane load,
    // so no link ever queues and the row isolates the model's bookkeeping
    // cost (wire-length computation + per-link watermark updates) on the
    // headline workload. The off-path guarantee (capacity `None` ⇒ one
    // array read) is asserted separately: this *on-but-unsaturated* row
    // must stay within `BW_OVERHEAD_TOLERANCE` of the plain row.
    {
        // Every *control-plane* class is capacitated — the classes the
        // overload ladder prices. The data class stays unmodeled, as in
        // the congestion scenarios themselves: LazyCtrl's core–edge
        // separation keeps the tunnelled data path at line rate, and
        // per-frame pricing of it is deliberately out of the 5% budget.
        let mut bw = BandwidthModel::unmodeled();
        for class in lazyctrl_core::ChannelClass::ALL {
            if class != lazyctrl_core::ChannelClass::Data {
                bw = bw.with_capacity(class, 10_000_000_000);
            }
        }
        // Run-to-run wall noise on shared runners can exceed the whole 5%
        // budget at ~1 s per run, so the gate runs four back-to-back
        // (plain, bw) pairs and takes each round's ratio: adjacent runs
        // see the same machine conditions, so a round's ratio cancels
        // drift that would poison a cross-block comparison. The *best*
        // round is the cleanest observation of the intrinsic overhead —
        // noise only ever inflates the measured cost, never hides it
        // below the true value for a whole round's pair.
        let one = |bandwidth: Option<&BandwidthModel>, name: &str| {
            run_workload(
                name,
                &trace,
                true,
                SchedulerKind::Wheel,
                None,
                rss_ok,
                bandwidth.cloned(),
            )
            .0
        };
        let mut best_ratio = f64::MIN;
        let mut bw_row: Option<Measurement> = None;
        let mut plain_wall = f64::MAX;
        for round in 0..4 {
            let plain = one(None, "flow_setup_throughput");
            let bw_run = one(Some(&bw), "flow_setup_throughput_bw");
            let ratio = bw_run.events_per_sec() / plain.events_per_sec();
            println!(
                "bandwidth overhead round {round}: {:.0} ev/s vs {:.0} plain ({ratio:.3}x)",
                bw_run.events_per_sec(),
                plain.events_per_sec(),
            );
            best_ratio = best_ratio.max(ratio);
            plain_wall = plain_wall.min(plain.wall_s);
            if bw_row
                .as_ref()
                .is_none_or(|b| bw_run.events_per_sec() > b.events_per_sec())
            {
                bw_row = Some(bw_run);
            }
        }
        println!("bandwidth overhead (unsaturated, best of 4 rounds): {best_ratio:.3}x\n");
        // Gate only above the timer-noise floor, like every other gate.
        if plain_wall >= MIN_GATED_WALL_S {
            assert!(
                best_ratio >= 1.0 - BW_OVERHEAD_TOLERANCE,
                "unsaturated bandwidth model cost {:.1}% events/sec in every round \
                 (tolerance {:.0}%)",
                (1.0 - best_ratio) * 100.0,
                BW_OVERHEAD_TOLERANCE * 100.0,
            );
        }
        measurements.push(bw_row.expect("four rounds ran"));
    }

    // Sharded-engine rows: the same headline workload at 1 and N worker
    // threads. The reports must be bit-identical — the shard layout is
    // fixed by configuration, so worker count may only change wall clock.
    if let Some(n) = workers_flag {
        let (w1, report1) = run_workload(
            "flow_setup_throughput_w1",
            &trace,
            true,
            SchedulerKind::Wheel,
            Some(1),
            rss_ok,
            None,
        );
        let (wn, report_n) = run_workload(
            &format!("flow_setup_throughput_w{n}"),
            &trace,
            true,
            SchedulerKind::Wheel,
            Some(n),
            rss_ok,
            None,
        );
        assert_eq!(
            report1, report_n,
            "sharded reports diverged between 1 and {n} workers"
        );
        println!("workers: reports bit-identical at 1 vs {n} workers\n");
        measurements.push(w1);
        measurements.push(wn);
    }

    // Registry scenarios, wall-timed (verdicts are repro_scenario's job).
    // Peak RSS is reset before each scenario (see `reset_peak_rss`), so
    // every row carries that scenario's own high-water mark.
    let registry = ScenarioRegistry::builtin();
    for name in ["cold_cache", "crash_under_load", "peer_sync_storm"] {
        let s = registry.get(name).expect("built-in scenario");
        let (strace, cfg, plan) = s.build(0xC1);
        if rss_ok {
            reset_peak_rss();
        }
        let t0 = Instant::now();
        let (run, detailed) = run_built_detailed(s, strace, cfg, plan);
        measurements.push(Measurement {
            name: format!("scenario:{name}"),
            wall_s: t0.elapsed().as_secs_f64(),
            events: run.report.events_processed,
            flows: run.report.flows_started,
            peak_rss_kb: if rss_ok { peak_rss_kb() } else { 0 },
            workers: 0,
            phases: detailed.phases,
            p99_latency_ms: run.report.p99_latency_ms,
            p999_latency_ms: run.report.p999_latency_ms,
        });
    }

    let mut rows = Vec::new();
    for m in &measurements {
        let speedup = pre_pr_baseline(scale, &m.name)
            .map(|(w, e)| format!("{:.2}x", m.events_per_sec() / (e as f64 / w)))
            .unwrap_or_else(|| "-".into());
        rows.push(vec![
            m.name.clone(),
            format!("{:.3}", m.wall_s),
            m.phase_cell(),
            m.events.to_string(),
            format!("{:.0}", m.events_per_sec()),
            format!("{:.0}", m.flows as f64 / m.wall_s),
            format!("{:.2}/{:.2}", m.p99_latency_ms, m.p999_latency_ms),
            m.peak_rss_kb.to_string(),
            speedup,
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "scenario",
                "wall (s)",
                "build/run/report (s)",
                "events",
                "events/s",
                "flow-setups/s",
                "p99/p999 (ms)",
                "peak RSS (kB)",
                "vs pre-PR",
            ],
            &rows,
        )
    );

    // ---- BENCH_perf.json ------------------------------------------------
    let mut json = String::from("{\n  \"schema\": 1,\n  \"scenarios\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        json.push_str("    ");
        json.push_str(&m.json_line(scale));
        json.push_str(if i + 1 < measurements.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    json.push_str("  ],\n  \"pre_pr_baseline\": [\n");
    let baselines: Vec<String> = measurements
        .iter()
        .filter_map(|m| {
            pre_pr_baseline(scale, &m.name).map(|(w, e)| {
                format!(
                    "    {{\"scale\": \"{}\", \"name\": \"{}\", \"engine\": \"wheel+vec-dispatch (PR 4)\", \
                     \"wall_s\": {:.3}, \"events\": {}, \"baseline_events_per_sec\": {:.0}}}",
                    scale.label(),
                    m.name,
                    w,
                    e,
                    e as f64 / w
                )
            })
        })
        .collect();
    json.push_str(&baselines.join(",\n"));
    json.push_str("\n  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write BENCH_perf.json");
    println!("wrote {out_path}");

    // ---- regression gate ------------------------------------------------
    // Absolute events/sec moves with hardware, so the committed numbers
    // are first rescaled by how this machine's *heap-backend* run (the
    // stable reference implementation) compares to the committed one;
    // after that normalization, a >25% drop is a real hot-path
    // regression, not a slower runner. Sub-`MIN_GATED_WALL_S` entries
    // are reported but not gated (pure timer noise at that size).
    //
    // Peak RSS is gated too (>25% growth fails): memory is far less
    // hardware-sensitive than wall time, and per-scenario sampling (see
    // `reset_peak_rss`) makes the committed numbers attributable. Rows
    // whose committed sample is 0 (non-Linux writer) are skipped.
    if let Some(path) = check_path {
        let committed = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let rows = parse_baseline(&committed);
        let calibration = rows
            .iter()
            .find(|r| r.scale == scale.label() && r.name == CALIBRATOR && r.events_per_sec > 0.0)
            .and_then(|base| {
                measurements
                    .iter()
                    .find(|m| m.name == CALIBRATOR)
                    .map(|m| (m.events_per_sec() / base.events_per_sec).clamp(0.1, 10.0))
            })
            .unwrap_or(1.0);
        println!("hardware calibration ({CALIBRATOR}): {calibration:.2}x committed");
        let rss_sampling_works = rss_ok;
        let mut failures = 0;
        for base in rows {
            if base.scale != scale.label() || base.events_per_sec <= 0.0 || base.name == CALIBRATOR
            {
                continue;
            }
            // Committed worker rows only exist when the run was invoked
            // with --workers; without the flag they are absent by design,
            // not renamed — don't fire the MISSING tripwire for them.
            if base.workers > 0 && workers_flag.is_none() {
                continue;
            }
            let gated = base.wall_s >= MIN_GATED_WALL_S;
            let Some(m) = measurements.iter().find(|m| m.name == base.name) else {
                // A committed row with no fresh counterpart means a
                // workload was renamed or dropped; losing its gate must
                // be loud, not silent.
                if gated {
                    println!(
                        "check {}: MISSING from this run (committed row has no counterpart)",
                        base.name
                    );
                    failures += 1;
                }
                continue;
            };
            let ratio = m.events_per_sec() / (base.events_per_sec * calibration);
            let verdict = match (gated, ratio < 0.75) {
                (true, true) => "REGRESSION",
                (true, false) => "ok",
                (false, _) => "not gated (too short)",
            };
            println!(
                "check {}: {:.0} ev/s vs committed {:.0} ({ratio:.2}x normalized) — {verdict}",
                base.name,
                m.events_per_sec(),
                base.events_per_sec,
            );
            if gated && ratio < 0.75 {
                failures += 1;
            }
            if gated && rss_sampling_works && base.peak_rss_kb > 0 && m.peak_rss_kb > 0 {
                let rss_ratio = m.peak_rss_kb as f64 / base.peak_rss_kb as f64;
                // Small baselines move double-digit percent on allocator
                // arena count / runner image alone, so the ratio gate
                // also requires absolute growth past a noise floor — a
                // real engine regression (e.g. reverting the pooled
                // slab) adds tens of MB even at quick scale.
                let grew_kb = m.peak_rss_kb.saturating_sub(base.peak_rss_kb);
                let regressed = rss_ratio > 1.25 && grew_kb > RSS_NOISE_FLOOR_KB;
                let rss_verdict = if regressed { "RSS REGRESSION" } else { "ok" };
                println!(
                    "check {}: peak RSS {} kB vs committed {} kB ({rss_ratio:.2}x) — {rss_verdict}",
                    base.name, m.peak_rss_kb, base.peak_rss_kb,
                );
                if regressed {
                    failures += 1;
                }
            }
        }
        if failures > 0 {
            eprintln!(
                "{failures} check(s) regressed >25% vs {path} (events/sec hardware-normalized, \
                 peak RSS absolute)"
            );
            std::process::exit(1);
        }
    }
}
