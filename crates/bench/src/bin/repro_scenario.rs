//! Discover and replay the canned scenarios: every entry in the
//! [`ScenarioRegistry`], by name.
//!
//! ```sh
//! cargo run --release -p lazyctrl-bench --bin repro_scenario -- --list
//! cargo run --release -p lazyctrl-bench --bin repro_scenario -- crash_under_load
//! cargo run --release -p lazyctrl-bench --bin repro_scenario -- all --seed 7
//! ```
//!
//! Runs are deterministic: the same scenario at the same seed (and
//! `LAZYCTRL_SCALE`) reproduces the report bit-identically. Exits
//! non-zero if any executed scenario's verdict fails.

use std::process::ExitCode;

use lazyctrl_core::{run_built, Scenario, ScenarioRegistry, ScenarioRun};

const DEFAULT_SEED: u64 = 0xC1;

fn print_list(reg: &ScenarioRegistry) {
    println!("available scenarios ({}):\n", reg.len());
    let width = reg.names().iter().map(|n| n.len()).max().unwrap_or(0);
    for s in reg.iter() {
        println!("  {:<width$}  {}", s.name(), s.summary());
    }
    println!("\nrun one:   repro_scenario <name> [--seed N]");
    println!("run all:   repro_scenario all [--seed N]");
}

fn run_one(scenario: &dyn Scenario, seed: u64) -> ScenarioRun {
    println!("=== scenario: {} (seed {seed:#x}) ===", scenario.name());
    println!("    {}", scenario.summary());
    let (trace, cfg, plan) = scenario.build(seed);
    if plan.is_empty() {
        println!("    plan: (no injected events)");
    } else {
        println!("    plan:");
        for e in plan.events() {
            println!("      {e}");
        }
    }
    let run = run_built(scenario, trace, cfg, plan);
    let r = &run.report;
    println!(
        "    ran `{}` over trace `{}`: {} flows started, {} delivered, mean latency {:.3} ms",
        r.mode, r.trace, r.flows_started, r.delivered_flows, r.mean_latency_ms
    );
    if let Some(c) = &r.cluster {
        println!(
            "    cluster: {} controllers, requests {:?}, failover transfers {}, dead {:?}",
            c.controllers, c.requests_per_controller, c.failover_transfers, c.confirmed_dead
        );
    }
    for note in &run.verdict.notes {
        println!("    note: {note}");
    }
    if run.verdict.passed() {
        println!("    verdict: PASS\n");
    } else {
        println!("    verdict: FAIL");
        for f in &run.verdict.failures {
            println!("      ✗ {f}");
        }
        println!();
    }
    run
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let reg = ScenarioRegistry::builtin();

    let mut seed = DEFAULT_SEED;
    let mut targets: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--list" | "-l" => {
                print_list(&reg);
                return ExitCode::SUCCESS;
            }
            "--seed" => match it.next().and_then(|s| parse_seed(s)) {
                Some(s) => seed = s,
                None => {
                    eprintln!("--seed needs a number");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!("usage: repro_scenario [--list] [--seed N] <name>|all");
                return ExitCode::SUCCESS;
            }
            name => targets.push(name.to_string()),
        }
    }
    if targets.is_empty() {
        print_list(&reg);
        return ExitCode::SUCCESS;
    }

    let names: Vec<&'static str> = if targets.iter().any(|t| t == "all") {
        reg.names()
    } else {
        let mut names = Vec::new();
        for t in &targets {
            match reg.get(t) {
                Some(s) => names.push(s.name()),
                None => {
                    eprintln!("unknown scenario {t:?}; try --list");
                    return ExitCode::FAILURE;
                }
            }
        }
        names
    };

    let mut failures = 0usize;
    for name in &names {
        let scenario = reg.get(name).expect("validated above");
        if !run_one(scenario, seed).verdict.passed() {
            failures += 1;
        }
    }
    if names.len() > 1 {
        println!("{} scenario(s) run, {} failed", names.len(), failures);
    }
    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn parse_seed(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}
