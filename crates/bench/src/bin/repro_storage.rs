//! Regenerates the **§V-D storage overhead** analysis: the memory a
//! BF-based G-FIB needs per switch, and the resulting false-positive rate.
//!
//! Paper example: a 46-switch group ⇒ 45 bloom filters per switch; with
//! 16 × 128-byte entries per filter that is 45 × 2048 = 92,160 bytes, at a
//! false-positive rate below 0.1%.
//!
//! ```sh
//! cargo run --release -p lazyctrl-bench --bin repro_storage
//! ```

use lazyctrl_bench::render_table;
use lazyctrl_bloom::BloomFilter;
use lazyctrl_net::{MacAddr, SwitchId};
use lazyctrl_switch::{build_gfib_update, Gfib};

fn main() {
    println!("§V-D — G-FIB storage overhead and false-positive rate\n");

    // The paper's fixed-geometry example: one 2048-byte filter per peer.
    let hosts_per_switch = 24; // 6509 hosts / 272 switches
    let mut rows = Vec::new();
    for group_size in [10usize, 23, 46, 92, 184] {
        let peers = group_size - 1;
        // Paper geometry: 16 × 128 B = 2048 B per peer filter.
        let mut paper_filter = BloomFilter::new(2048 * 8, 7);
        for h in 0..hosts_per_switch {
            paper_filter.insert(MacAddr::for_host(h).octets());
        }
        let paper_bytes = peers * paper_filter.storage_bytes();
        let paper_fp = paper_filter.estimated_fp_rate();

        // Our adaptive geometry (sized for the actual host count at 0.1%).
        let mut gfib = Gfib::new();
        for p in 0..peers {
            let macs: Vec<MacAddr> = (0..hosts_per_switch)
                .map(|h| MacAddr::for_host((p as u64) << 32 | h))
                .collect();
            gfib.apply_update(&build_gfib_update(SwitchId::new(p as u32), 1, macs));
        }
        rows.push(vec![
            format!("{group_size}"),
            format!("{peers}"),
            format!("{}", paper_bytes),
            format!("{:.4}%", paper_fp * 100.0),
            format!("{}", gfib.storage_bytes()),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "group size",
                "filters",
                "paper-geometry bytes",
                "est. fp rate",
                "adaptive bytes",
            ],
            &rows
        )
    );

    // Measured FP rate at the paper's exact example point.
    let mut bf = BloomFilter::new(2048 * 8, 7);
    for h in 0..hosts_per_switch {
        bf.insert(MacAddr::for_host(h).octets());
    }
    let probes = 200_000u64;
    let fps = (0..probes)
        .filter(|i| bf.contains(MacAddr::for_host(1_000_000 + i).octets()))
        .count();
    println!(
        "measured fp at 46-switch example: {:.4}% over {probes} probes (paper: <0.1%)",
        fps as f64 / probes as f64 * 100.0
    );
    println!("paper example: 45 × 2048 B = 92,160 B per switch — matches the");
    println!("46-switch row above; storage grows linearly with group size.");
}
