//! Regenerates **Table II** — characteristics of the traffic traces.
//!
//! Paper values: Real 271M flows / centrality 0.85; Syn-A (p=90, q=10)
//! 2720M / 0.85; Syn-B (70, 20) 3806M / 0.72; Syn-C (70, 30) 5071M / 0.61.
//! Flow counts scale with the generator's `num_flows`; the reproduction
//! target is the centrality ladder.
//!
//! ```sh
//! cargo run --release -p lazyctrl-bench --bin repro_table2
//! ```

use lazyctrl_bench::{real_trace, render_table, synthetic_traces, Scale};
use lazyctrl_trace::stats;

fn main() {
    let scale = Scale::from_env();
    println!(
        "Table II — trace characteristics (scale: {})\n",
        scale.label()
    );

    let mut traces = vec![real_trace(scale)];
    traces.extend(synthetic_traces(scale));

    let paper = [
        ("real", "271M", 0.85),
        ("syn-a", "2720M", 0.85),
        ("syn-b", "3806M", 0.72),
        ("syn-c", "5071M", 0.61),
    ];

    let mut rows = Vec::new();
    for (trace, (pname, pflows, pcent)) in traces.iter().zip(paper) {
        let s = stats::compute(trace, 5, 0xAB);
        assert_eq!(trace.name, pname);
        rows.push(vec![
            s.name.clone(),
            format!("{}", s.num_flows),
            format!("{}", s.distinct_pairs),
            s.p.map(|v| format!("{v:.0}"))
                .unwrap_or_else(|| "N/A".into()),
            s.q.map(|v| format!("{v:.0}"))
                .unwrap_or_else(|| "N/A".into()),
            format!("{:.2}", s.avg_centrality),
            format!("{:.1}%", s.inter_group_fraction * 100.0),
            format!("{:.2}", s.top10_share),
            pflows.to_string(),
            format!("{pcent:.2}"),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "trace",
                "flows",
                "pairs",
                "p(%)",
                "q(%)",
                "centrality",
                "inter-group",
                "top10-share",
                "paper-flows",
                "paper-centrality",
            ],
            &rows,
        )
    );
    println!("reproduction target: centrality ladder real ≈ syn-a > syn-b > syn-c,");
    println!("real-trace inter-group share < 9.8%, top-10% pairs ≈ 90% of flows.");
}
