//! Flight-recorder driver: run a scenario with full tracing, dump the
//! recorder (JSONL + chrome://tracing), print the engine's self-profile,
//! and reconstruct one flow's PacketIn → FlowMod → delivery causal chain.
//!
//! ```sh
//! # trace one scenario (dumps on failed verdict; --always to dump regardless)
//! cargo run --release -p lazyctrl-bench --bin repro_trace -- cold_cache
//! cargo run --release -p lazyctrl-bench --bin repro_trace -- cold_cache --always
//!
//! # CI smoke: traced scenario + telemetry round-trip + overhead gate
//! cargo run --release -p lazyctrl-bench --bin repro_trace -- --smoke
//! ```
//!
//! The `--smoke` mode is the CI `obs-smoke` contract: it runs `cold_cache`
//! fully traced, writes and re-parses `telemetry.json` against the schema,
//! asserts the traced report is bit-identical to the untraced one, and
//! fails if traced quick-scale `flow_setup_throughput` regresses more than
//! 10% vs the untraced run in the same process.

use std::process::ExitCode;
use std::time::Instant;

use lazyctrl_bench::{syn_a_trace, Scale};
use lazyctrl_core::scenarios::run_built_detailed;
use lazyctrl_core::telemetry::{telemetry_json, validate_telemetry};
use lazyctrl_core::{
    ControlMode, DetailedRun, Experiment, ExperimentConfig, ObsConfig, ScenarioRegistry,
    EVENT_KIND_NAMES,
};
use lazyctrl_obs::intern::{kind, subsys};
use lazyctrl_obs::{chrome_trace_json, json, jsonl_dump, trace_id_dst, TraceRecord};

const DEFAULT_SEED: u64 = 0xC1;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut scenario_name: Option<String> = None;
    let mut seed = DEFAULT_SEED;
    let mut always = false;
    let mut smoke = false;
    let mut out_dir = String::from("target/obs");
    while let Some(a) = args.next() {
        match a.as_str() {
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--seed needs a number");
            }
            "--always" => always = true,
            "--smoke" => smoke = true,
            "--out-dir" => out_dir = args.next().expect("--out-dir needs a path"),
            other if !other.starts_with('-') => scenario_name = Some(other.to_owned()),
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::from(2);
            }
        }
    }

    if smoke {
        return run_smoke(&out_dir);
    }
    let Some(name) = scenario_name else {
        eprintln!("usage: repro_trace <scenario> [--seed N] [--always] [--out-dir DIR]");
        eprintln!("       repro_trace --smoke");
        return ExitCode::from(2);
    };
    run_traced_scenario(&name, seed, always, &out_dir)
}

fn obs_full(out_dir: &str) -> ObsConfig {
    ObsConfig::full()
        .with_ring_capacity(1 << 18)
        .with_dump_dir(out_dir)
}

fn run_traced_scenario(name: &str, seed: u64, always: bool, out_dir: &str) -> ExitCode {
    let registry = ScenarioRegistry::builtin();
    let Some(scenario) = registry.get(name) else {
        eprintln!("unknown scenario `{name}`; try repro_scenario --list");
        return ExitCode::from(2);
    };
    println!("=== repro_trace: {name} (seed {seed:#x}, full tracing) ===");
    let (trace, cfg, plan) = scenario.build(seed);
    let mut cfg = cfg.with_obs(obs_full(out_dir));
    cfg.record_flow_latencies = true;
    let (run, detailed) = run_built_detailed(scenario, trace, cfg, plan);

    print_summary(&detailed);
    print_profile(&detailed);
    print_sample_chain(&detailed);

    // `run_built_detailed` already dumped on a failed verdict; `--always`
    // forces the same dumps for a passing run.
    if always && run.verdict.passed() {
        dump_all(name, &detailed, out_dir);
    }
    if run.verdict.passed() {
        println!("verdict: PASS");
        ExitCode::SUCCESS
    } else {
        for f in &run.verdict.failures {
            println!("verdict failure: {f}");
        }
        println!(
            "verdict: FAIL — flight recorder dumped to {out_dir}/{name}.trace.jsonl \
             (+ .chrome.json, .telemetry.json)"
        );
        ExitCode::FAILURE
    }
}

fn dump_all(name: &str, detailed: &DetailedRun, out_dir: &str) {
    let Some(obs) = &detailed.obs else { return };
    let dir = std::path::Path::new(out_dir);
    std::fs::create_dir_all(dir).expect("create dump dir");
    std::fs::write(
        dir.join(format!("{name}.trace.jsonl")),
        jsonl_dump(&obs.recorder),
    )
    .expect("write jsonl");
    std::fs::write(
        dir.join(format!("{name}.chrome.json")),
        chrome_trace_json(&obs.recorder, name),
    )
    .expect("write chrome trace");
    std::fs::write(
        dir.join(format!("{name}.telemetry.json")),
        telemetry_json(detailed).to_json_pretty(),
    )
    .expect("write telemetry");
    println!("dumped {out_dir}/{name}.trace.jsonl (+ .chrome.json, .telemetry.json)");
}

fn print_summary(detailed: &DetailedRun) {
    let r = &detailed.report;
    let obs = detailed.obs.as_ref().expect("tracing enabled");
    println!(
        "run: {} events, {} flows started, {} delivered, mean latency {:.3} ms",
        r.events_processed, r.flows_started, r.delivered_flows, r.mean_latency_ms
    );
    println!(
        "phases: build {:.3} s, run {:.3} s, report {:.3} s",
        detailed.phases.build_s, detailed.phases.run_s, detailed.phases.report_s
    );
    println!(
        "recorder: {} recorded, {} retained (capacity {}), {} overwritten",
        obs.stats.recorded, obs.stats.retained, obs.stats.capacity, obs.stats.dropped
    );
}

fn print_profile(detailed: &DetailedRun) {
    let obs = detailed.obs.as_ref().expect("tracing enabled");
    println!(
        "\nself-profile ({} sampled dispatches of {}):",
        obs.profile.samples(),
        obs.profile.total_events()
    );
    println!(
        "  {:<18} {:<11} {:>12} {:>9} {:>11} {:>11}",
        "event kind", "subsystem", "count", "sampled", "mean ns", "p99 ns"
    );
    for k in obs.profile.kind_profiles() {
        println!(
            "  {:<18} {:<11} {:>12} {:>9} {:>11} {:>11}",
            EVENT_KIND_NAMES[k.kind as usize],
            subsys::name(k.subsys),
            k.count,
            k.ns.len(),
            k.ns.mean().map_or("-".into(), |v| format!("{v:.0}")),
            k.ns.quantile(0.99)
                .map_or("-".into(), |v| format!("{v:.0}")),
        );
    }
    println!("  per-subsystem dispatch counts:");
    for (s, count, sampled_ns) in obs.profile.subsys_rollup() {
        println!(
            "    {:<11} {:>12} events, {:>12.0} sampled ns",
            subsys::name(s),
            count,
            sampled_ns
        );
    }
}

/// Reconstruct and print one flow's causal chain from the recorder: the
/// first delivered flow whose records survive in the ring with a complete
/// PacketIn → FlowMod → delivery sequence.
fn print_sample_chain(detailed: &DetailedRun) {
    let obs = detailed.obs.as_ref().expect("tracing enabled");
    let complete = |chain: &[TraceRecord]| -> bool {
        let has = |k: u16| chain.iter().any(|r| r.kind == k);
        has(kind::PACKET_IN_SENT) && has(kind::FLOW_MOD_RECV) && has(kind::FRAME_DELIVERED)
    };
    let found = detailed.flow_latencies.iter().find_map(|((s, d, _), _)| {
        let chain = obs.recorder.flow_chain(*s as u64, *d as u64);
        complete(&chain).then_some((*s, *d, chain))
    });
    let Some((src, dst, chain)) = found else {
        println!(
            "\nno complete PacketIn→FlowMod→delivery chain retained \
             (ring too small, or flows warm-path only)"
        );
        return;
    };
    println!(
        "\ncausal chain for flow {src} → {dst} ({} records):",
        chain.len()
    );
    for r in &chain {
        println!(
            "  t={:>12} ns  {:<18} [{}]  a={} b={} (dst host {})",
            r.t_ns,
            kind::name(r.kind),
            subsys::name(r.subsys),
            r.a,
            r.b,
            trace_id_dst(r.trace_id),
        );
    }
}

/// The CI `obs-smoke` contract (see `.github/workflows/ci.yml`).
fn run_smoke(out_dir: &str) -> ExitCode {
    let mut failures = 0;

    // 1. One scenario with full tracing on; recorder must capture records.
    println!("obs-smoke 1/3: traced cold_cache scenario");
    let registry = ScenarioRegistry::builtin();
    let scenario = registry.get("cold_cache").expect("built-in scenario");
    let (trace, cfg, plan) = scenario.build(DEFAULT_SEED);
    let (untraced_run, _) = run_built_detailed(scenario, trace, cfg, plan);
    let (trace, cfg, plan) = scenario.build(DEFAULT_SEED);
    let (traced_run, traced) =
        run_built_detailed(scenario, trace, cfg.with_obs(obs_full(out_dir)), plan);
    let obs = traced.obs.as_ref().expect("tracing enabled");
    println!(
        "  recorded {} records, {} retained; profiled {} of {} events",
        obs.stats.recorded,
        obs.stats.retained,
        obs.profile.samples(),
        obs.profile.total_events()
    );
    if obs.stats.recorded == 0 {
        println!("  FAIL: recorder captured nothing");
        failures += 1;
    }
    if untraced_run.report != traced_run.report {
        println!("  FAIL: traced report diverged from untraced report");
        failures += 1;
    } else {
        println!("  traced report bit-identical to untraced: ok");
    }

    // 2. telemetry.json schema round-trip.
    println!("obs-smoke 2/3: telemetry.json round-trip");
    let doc = telemetry_json(&traced);
    let dir = std::path::Path::new(out_dir);
    std::fs::create_dir_all(dir).expect("create out dir");
    let path = dir.join("telemetry.json");
    std::fs::write(&path, doc.to_json_pretty()).expect("write telemetry.json");
    let read_back = std::fs::read_to_string(&path).expect("read telemetry.json");
    match json::parse(&read_back) {
        Ok(parsed) => {
            if parsed != doc {
                println!("  FAIL: parsed document differs from written one");
                failures += 1;
            } else if let Err(e) = validate_telemetry(&parsed) {
                println!("  FAIL: schema validation: {e}");
                failures += 1;
            } else {
                println!("  wrote, re-parsed and validated {}: ok", path.display());
            }
        }
        Err(e) => {
            println!("  FAIL: telemetry.json does not parse: {e}");
            failures += 1;
        }
    }

    // 3. Tracing overhead on quick-scale flow_setup_throughput: traced
    //    must stay within 10% of untraced (same process, interleaved
    //    untraced-traced-untraced to average out machine drift), and the
    //    reports must be bit-identical.
    println!("obs-smoke 3/3: tracing overhead on flow_setup_throughput (quick)");
    let trace = syn_a_trace(Scale::Quick);
    let workload = |obs: Option<ObsConfig>| {
        let mut cfg = ExperimentConfig::new(ControlMode::LazyStatic)
            .with_group_size_limit(46)
            .with_seed(7);
        cfg.emit_arp = true;
        if let Some(o) = obs {
            cfg = cfg.with_obs(o);
        }
        let t0 = Instant::now();
        let detailed = Experiment::new(trace.clone(), cfg).run_detailed();
        (t0.elapsed().as_secs_f64(), detailed)
    };
    // Same config scenario tracing uses (large ring and all), so the gate
    // covers the real deployment. Best-of-2 on both sides, interleaved,
    // to absorb machine drift.
    let traced_cfg = || {
        let mut o = obs_full(out_dir);
        o.dump_on_failure = false;
        o
    };
    let (wall_plain_a, plain) = workload(None);
    let (wall_traced_a, traced) = workload(Some(traced_cfg()));
    let (wall_plain_b, _) = workload(None);
    let (wall_traced_b, _) = workload(Some(traced_cfg()));
    let wall_plain = wall_plain_a.min(wall_plain_b);
    let wall_traced = wall_traced_a.min(wall_traced_b);
    if plain.report != traced.report {
        println!("  FAIL: traced flow_setup_throughput report diverged");
        failures += 1;
    }
    let events = plain.report.events_processed as f64;
    let ratio = wall_traced / wall_plain;
    println!(
        "  untraced {:.3} s ({:.0} ev/s), traced {:.3} s ({:.0} ev/s): {:.1}% overhead",
        wall_plain,
        events / wall_plain,
        wall_traced,
        events / wall_traced,
        (ratio - 1.0) * 100.0
    );
    if ratio > 1.10 {
        println!(
            "  FAIL: tracing overhead {:.1}% exceeds 10%",
            (ratio - 1.0) * 100.0
        );
        failures += 1;
    }

    if failures > 0 {
        eprintln!("obs-smoke: {failures} check(s) failed");
        ExitCode::FAILURE
    } else {
        println!("obs-smoke: all checks passed");
        ExitCode::SUCCESS
    }
}
