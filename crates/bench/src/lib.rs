//! Shared harness for the reproduction binaries (`repro-*`) and Criterion
//! benches: trace construction at a chosen scale, and table rendering.
//!
//! Every binary honours the `LAZYCTRL_SCALE` environment variable:
//!
//! * `quick` (default) — laptop-scale versions of each experiment
//!   (40–340 switches, 10⁵-ish flows); minutes end to end;
//! * `paper` — the paper's full topology sizes (272 switches / 6509 hosts
//!   for the real trace, 2713 / 65090 for Syn-A/B/C); slower but the same
//!   code path;
//! * `x10` — 10× the paper's synthetic topology (~27k switches / ~650k
//!   hosts, flow count unchanged): the multi-core stress tier for the
//!   sharded engine.
//!
//! Absolute numbers scale with flow counts; the *shapes* the paper reports
//! (orderings, ratios, crossovers) are the reproduction target — see
//! `EXPERIMENTS.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use lazyctrl_trace::expand::expand;
use lazyctrl_trace::realistic::{generate as generate_real, RealTraceConfig};
use lazyctrl_trace::synthetic::{generate as generate_syn, SyntheticConfig};
use lazyctrl_trace::Trace;

/// Which scale the harness runs at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Laptop-scale (default).
    Quick,
    /// The paper's topology sizes.
    Paper,
    /// 10× the paper's synthetic topology (~27k switches, ~650k hosts) —
    /// the multi-core stress tier. Flow count stays at the paper's 500k,
    /// so the tier scales topology state, not trace length.
    X10,
}

impl Scale {
    /// Reads `LAZYCTRL_SCALE` (`quick`/`paper`/`x10`); defaults to quick.
    pub fn from_env() -> Scale {
        match std::env::var("LAZYCTRL_SCALE").as_deref() {
            Ok("paper") => Scale::Paper,
            Ok("x10") => Scale::X10,
            _ => Scale::Quick,
        }
    }

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            Scale::Quick => "quick",
            Scale::Paper => "paper",
            Scale::X10 => "x10",
        }
    }
}

/// The "real" trace surrogate at the chosen scale. The ×10 tier only
/// exists for the synthetic family (the real trace is pinned to the
/// paper's measured topology), so `X10` falls back to paper here.
pub fn real_trace(scale: Scale) -> Trace {
    let cfg = match scale {
        Scale::Quick => {
            let mut cfg = RealTraceConfig::small();
            cfg.num_flows = 120_000;
            cfg
        }
        Scale::Paper | Scale::X10 => RealTraceConfig::default(),
    };
    generate_real(&cfg)
}

/// The §V-D expanded trace: +30% flows among fresh pairs in hours 8–24.
pub fn expanded_trace(base: &Trace) -> Trace {
    expand(base, 0.30, 8.0, 24.0, 0xE0A)
}

/// Syn-A alone at the chosen scale (the perf/cluster workloads; cheaper
/// than materializing the whole [`synthetic_traces`] family).
pub fn syn_a_trace(scale: Scale) -> Trace {
    let cfg = match scale {
        Scale::Quick => SyntheticConfig::syn_a().scaled_down(8),
        Scale::Paper => SyntheticConfig::syn_a(),
        Scale::X10 => SyntheticConfig::syn_a().scaled_up(10),
    };
    generate_syn(&cfg)
}

/// Syn-A/B/C at the chosen scale.
pub fn synthetic_traces(scale: Scale) -> Vec<Trace> {
    [
        SyntheticConfig::syn_a(),
        SyntheticConfig::syn_b(),
        SyntheticConfig::syn_c(),
    ]
    .into_iter()
    .map(|cfg| {
        let cfg = match scale {
            Scale::Quick => cfg.scaled_down(8),
            Scale::Paper => cfg,
            Scale::X10 => cfg.scaled_up(10),
        };
        generate_syn(&cfg)
    })
    .collect()
}

/// Renders an aligned text table.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_defaults_to_quick() {
        // Do not mutate the environment (tests run in parallel); just
        // check the default path when the var is absent or garbage.
        if std::env::var("LAZYCTRL_SCALE").is_err() {
            assert_eq!(Scale::from_env(), Scale::Quick);
        }
        assert_eq!(Scale::Quick.label(), "quick");
        assert_eq!(Scale::Paper.label(), "paper");
        assert_eq!(Scale::X10.label(), "x10");
    }

    #[test]
    fn scaled_up_grows_topology_but_not_flows() {
        let base = SyntheticConfig::syn_a();
        let big = SyntheticConfig::syn_a().scaled_up(10);
        assert_eq!(big.tenants.num_switches, base.tenants.num_switches * 10);
        assert_eq!(big.tenants.num_hosts, base.tenants.num_hosts * 10);
        assert_eq!(big.hot_pairs, base.hot_pairs * 10);
        assert_eq!(big.num_flows, base.num_flows);
    }

    #[test]
    fn table_renders_aligned() {
        let t = render_table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["long-name".into(), "2".into()],
            ],
        );
        assert!(t.contains("name"));
        assert!(t.contains("long-name"));
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
    }

    #[test]
    fn quick_traces_have_expected_shape() {
        let real = real_trace(Scale::Quick);
        assert_eq!(real.topology.num_switches, 40);
        assert_eq!(real.num_flows(), 120_000);
        let syn = synthetic_traces(Scale::Quick);
        assert_eq!(syn.len(), 3);
        assert_eq!(syn[0].name, "syn-a");
        let exp = expanded_trace(&real);
        assert!(exp.num_flows() > real.num_flows());
    }
}
