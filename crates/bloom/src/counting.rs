//! Counting Bloom filter: supports removals.
//!
//! The switch that *owns* an L-FIB keeps a counting filter so VM departures
//! (migration, teardown — §III-D.3 live state dissemination) can withdraw an
//! address without rebuilding the filter from scratch. Peers receive the
//! exported plain [`BloomFilter`] snapshot, which is what travels in
//! `GfibUpdate` messages.

use serde::{Deserialize, Serialize};

use crate::{hashing, BloomFilter};

/// A Bloom filter with 8-bit saturating counters instead of bits.
///
/// # Example
///
/// ```
/// use lazyctrl_bloom::CountingBloomFilter;
///
/// let mut cbf = CountingBloomFilter::with_capacity(100, 0.01);
/// cbf.insert(b"vm-a");
/// assert!(cbf.contains(b"vm-a"));
/// cbf.remove(b"vm-a");
/// assert!(!cbf.contains(b"vm-a"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CountingBloomFilter {
    counters: Vec<u8>,
    m: u64,
    k: u32,
    items: u64,
}

impl CountingBloomFilter {
    /// Creates a filter with `m_slots` counters and `k` hash functions.
    ///
    /// # Panics
    ///
    /// Panics if `m_slots` or `k` is zero.
    pub fn new(m_slots: u64, k: u32) -> Self {
        assert!(m_slots > 0, "filter must have at least one slot");
        assert!(k > 0, "filter must use at least one hash");
        CountingBloomFilter {
            counters: vec![0; m_slots as usize],
            m: m_slots,
            k,
            items: 0,
        }
    }

    /// Sizes the filter like [`BloomFilter::with_capacity`] (same slot
    /// count, counters instead of bits).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < target_fp < 1` and `expected_items > 0`.
    pub fn with_capacity(expected_items: u64, target_fp: f64) -> Self {
        let proto = BloomFilter::with_capacity(expected_items, target_fp);
        CountingBloomFilter::new(proto.num_bits(), proto.num_hashes())
    }

    /// Number of counter slots.
    pub fn num_slots(&self) -> u64 {
        self.m
    }

    /// Number of hash functions.
    pub fn num_hashes(&self) -> u32 {
        self.k
    }

    /// Net number of items (inserts minus removals).
    pub fn len(&self) -> u64 {
        self.items
    }

    /// True if no items are present.
    pub fn is_empty(&self) -> bool {
        self.items == 0
    }

    /// Inserts a key, saturating counters at 255.
    pub fn insert<K: AsRef<[u8]>>(&mut self, key: K) {
        for idx in hashing::indexes(key.as_ref(), self.k, self.m) {
            let c = &mut self.counters[idx as usize];
            *c = c.saturating_add(1);
        }
        self.items += 1;
    }

    /// Tests membership (same semantics as a plain Bloom filter).
    pub fn contains<K: AsRef<[u8]>>(&self, key: K) -> bool {
        hashing::indexes(key.as_ref(), self.k, self.m).all(|idx| self.counters[idx as usize] > 0)
    }

    /// Removes one occurrence of a key.
    ///
    /// Removing a key that was never inserted can corrupt unrelated
    /// memberships (standard counting-filter caveat), so this returns
    /// `false` and does nothing when any probe counter is already zero.
    pub fn remove<K: AsRef<[u8]>>(&mut self, key: K) -> bool {
        let key = key.as_ref();
        if !self.contains(key) {
            return false;
        }
        for idx in hashing::indexes(key, self.k, self.m) {
            let c = &mut self.counters[idx as usize];
            // Saturated counters must stay saturated: decrementing one
            // would under-count other keys sharing the slot.
            if *c != u8::MAX {
                *c -= 1;
            }
        }
        self.items = self.items.saturating_sub(1);
        true
    }

    /// Removes everything.
    pub fn clear(&mut self) {
        self.counters.fill(0);
        self.items = 0;
    }

    /// Exports a plain [`BloomFilter`] snapshot with identical geometry —
    /// the artifact shipped to peers in `GfibUpdate`.
    pub fn to_bloom(&self) -> BloomFilter {
        // Reconstruct bit-level state directly from the counters.
        let words = self.m.div_ceil(64) as usize;
        let mut bits = vec![0u64; words];
        for (i, &c) in self.counters.iter().enumerate() {
            if c > 0 {
                bits[i / 64] |= 1 << (i % 64);
            }
        }
        let mut bytes = Vec::with_capacity(words * 8);
        for w in &bits {
            bytes.extend_from_slice(&w.to_be_bytes());
        }
        BloomFilter::from_bytes(&bytes, self.m, self.k, self.items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_cycle() {
        let mut cbf = CountingBloomFilter::with_capacity(50, 0.01);
        for i in 0u32..50 {
            cbf.insert(i.to_be_bytes());
        }
        assert_eq!(cbf.len(), 50);
        for i in 0u32..50 {
            assert!(cbf.contains(i.to_be_bytes()));
        }
        for i in 0u32..25 {
            assert!(cbf.remove(i.to_be_bytes()));
        }
        for i in 0u32..25 {
            assert!(!cbf.contains(i.to_be_bytes()), "key {i} lingered");
        }
        for i in 25u32..50 {
            assert!(cbf.contains(i.to_be_bytes()), "key {i} lost by removal");
        }
        assert_eq!(cbf.len(), 25);
    }

    #[test]
    fn removing_absent_key_is_refused() {
        let mut cbf = CountingBloomFilter::new(1024, 4);
        assert!(!cbf.remove(b"ghost"));
        assert_eq!(cbf.len(), 0);
    }

    #[test]
    fn double_insert_requires_double_remove() {
        let mut cbf = CountingBloomFilter::new(1024, 4);
        cbf.insert(b"dup");
        cbf.insert(b"dup");
        assert!(cbf.remove(b"dup"));
        assert!(cbf.contains(b"dup"), "one copy should remain");
        assert!(cbf.remove(b"dup"));
        assert!(!cbf.contains(b"dup"));
    }

    #[test]
    fn exported_bloom_matches_membership() {
        let mut cbf = CountingBloomFilter::with_capacity(200, 0.01);
        for i in 0u32..200 {
            cbf.insert(i.to_be_bytes());
        }
        for i in 0u32..100 {
            cbf.remove(i.to_be_bytes());
        }
        let bf = cbf.to_bloom();
        assert_eq!(bf.num_bits(), cbf.num_slots());
        assert_eq!(bf.num_hashes(), cbf.num_hashes());
        for i in 100u32..200 {
            assert!(bf.contains(i.to_be_bytes()), "exported filter lost {i}");
        }
        // Removed keys should mostly be gone (false positives possible).
        let lingering = (0u32..100).filter(|i| bf.contains(i.to_be_bytes())).count();
        assert!(lingering < 10, "{lingering} removed keys still positive");
    }

    #[test]
    fn clear_resets_everything() {
        let mut cbf = CountingBloomFilter::new(128, 2);
        cbf.insert(b"a");
        cbf.clear();
        assert!(cbf.is_empty());
        assert!(!cbf.contains(b"a"));
    }

    #[test]
    fn saturated_counters_never_underflow() {
        let mut cbf = CountingBloomFilter::new(1, 1);
        // Everything hashes to slot 0 with m=1; saturate it.
        for i in 0u32..300 {
            cbf.insert(i.to_be_bytes());
        }
        // Counter is pinned at 255; removals must not drop it to zero.
        for i in 0u32..300 {
            cbf.remove(i.to_be_bytes());
        }
        assert!(cbf.contains(b"anything"), "saturated slot must stay set");
    }
}
