//! Deterministic double hashing for the filters.
//!
//! Kirsch–Mitzenmacher: two independent base hashes `h1`, `h2` generate the
//! `k` probe indexes as `h1 + i·h2 (mod m)` with no loss of asymptotic
//! false-positive behaviour. The base hashes are FNV-1a runs with different
//! offsets, finalized with splitmix64 for avalanche.

/// Iterator over the `k` probe indexes for a key.
#[derive(Debug, Clone)]
pub struct IndexIter {
    h1: u64,
    h2: u64,
    m: u64,
    i: u32,
    k: u32,
}

impl Iterator for IndexIter {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        if self.i >= self.k {
            return None;
        }
        let idx = self.h1.wrapping_add((self.i as u64).wrapping_mul(self.h2)) % self.m;
        self.i += 1;
        Some(idx)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = (self.k - self.i) as usize;
        (left, Some(left))
    }
}

impl ExactSizeIterator for IndexIter {}

/// Produces the probe indexes for `key` with `k` hashes over `m` bits.
pub(crate) fn indexes(key: &[u8], k: u32, m: u64) -> IndexIter {
    let h1 = splitmix64(fnv1a(key, 0xcbf2_9ce4_8422_2325));
    let mut h2 = splitmix64(fnv1a(key, 0x6c62_272e_07bb_0142));
    // h2 must be odd so successive probes differ even for tiny m.
    h2 |= 1;
    IndexIter { h1, h2, m, i: 0, k }
}

fn fnv1a(data: &[u8], offset_basis: u64) -> u64 {
    let mut hash = offset_basis;
    for &b in data {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexes_are_deterministic() {
        let a: Vec<u64> = indexes(b"mac-1", 5, 1024).collect();
        let b: Vec<u64> = indexes(b"mac-1", 5, 1024).collect();
        assert_eq!(a, b);
        assert_eq!(a.len(), 5);
    }

    #[test]
    fn different_keys_probe_differently() {
        let a: Vec<u64> = indexes(b"mac-1", 8, 1 << 20).collect();
        let b: Vec<u64> = indexes(b"mac-2", 8, 1 << 20).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn indexes_stay_in_range() {
        for m in [1u64, 2, 63, 64, 65, 100, 1 << 16] {
            for idx in indexes(b"key", 16, m) {
                assert!(idx < m, "index {idx} out of range for m={m}");
            }
        }
    }

    #[test]
    fn probe_positions_spread_for_small_m() {
        // With h2 forced odd, k=2 probes of a key should usually differ even
        // at tiny m; check the distribution is not degenerate.
        let mut distinct = 0;
        for key in 0u32..100 {
            let v: Vec<u64> = indexes(&key.to_be_bytes(), 2, 8).collect();
            if v[0] != v[1] {
                distinct += 1;
            }
        }
        assert!(
            distinct > 70,
            "only {distinct}/100 keys had distinct probes"
        );
    }

    #[test]
    fn exact_size_iterator() {
        let mut it = indexes(b"x", 4, 100);
        assert_eq!(it.len(), 4);
        it.next();
        assert_eq!(it.len(), 3);
    }

    #[test]
    fn avalanche_of_similar_keys() {
        // One-bit-different keys should produce uncorrelated first probes.
        let mut same = 0;
        for i in 0u64..256 {
            let a: Vec<u64> = indexes(&i.to_be_bytes(), 1, 1 << 30).collect();
            let b: Vec<u64> = indexes(&(i ^ 1).to_be_bytes(), 1, 1 << 30).collect();
            if a == b {
                same += 1;
            }
        }
        assert_eq!(same, 0);
    }
}
