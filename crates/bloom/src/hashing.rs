//! Deterministic double hashing for the filters.
//!
//! Kirsch–Mitzenmacher: two independent base hashes `h1`, `h2` generate the
//! `k` probe indexes as `h1 + i·h2 (mod m)` with no loss of asymptotic
//! false-positive behaviour. The base hashes are FNV-1a runs with different
//! offsets, finalized with splitmix64 for avalanche.

/// Iterator over the `k` probe indexes for a key.
///
/// The base hashes are reduced into `[0, m)` once (multiply-shift, no
/// division), and subsequent probes step by a fixed non-zero increment
/// with a conditional subtract — so the per-probe cost is an add and a
/// compare, and successive probes are guaranteed distinct (the property
/// the classic `h1 + i·h2 mod m` with odd `h2` provides).
#[derive(Debug, Clone)]
pub struct IndexIter {
    /// Next probe index, already in `[0, m)`.
    idx: u64,
    /// Probe stride in `[1, m)` (`[0, 1)` collapses to 1 when `m == 1`).
    step: u64,
    m: u64,
    i: u32,
    k: u32,
}

impl Iterator for IndexIter {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        if self.i >= self.k {
            return None;
        }
        let idx = self.idx;
        self.i += 1;
        self.idx += self.step;
        if self.idx >= self.m {
            self.idx -= self.m;
        }
        Some(idx)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = (self.k - self.i) as usize;
        (left, Some(left))
    }
}

impl ExactSizeIterator for IndexIter {}

/// The two Kirsch–Mitzenmacher base hashes for `key`. Depends only on the
/// key — callers probing many filters for one key (the G-FIB's filter
/// bank) compute this once and reuse it per filter.
pub fn base_hashes(key: &[u8]) -> (u64, u64) {
    let h1 = splitmix64(fnv1a(key, 0xcbf2_9ce4_8422_2325));
    let h2 = splitmix64(fnv1a(key, 0x6c62_272e_07bb_0142));
    (h1, h2)
}

/// Multiply-shift range reduction: maps a full-width hash onto `[0, m)`
/// without the integer division a `% m` would cost (Lemire's fast
/// alternative to the modulo reduction).
#[inline]
fn reduce(h: u64, m: u64) -> u64 {
    (((h as u128) * (m as u128)) >> 64) as u64
}

/// Probe indexes from precomputed base hashes, `k` probes over `m` bits.
pub(crate) fn indexes_from_base(base: (u64, u64), k: u32, m: u64) -> IndexIter {
    IndexIter {
        idx: reduce(base.0, m),
        // A stride of zero would collapse every probe onto one bit;
        // clamping to ≥1 restores "successive probes differ" for every
        // key and filter size (m = 1 degenerates harmlessly: all probes
        // hit the only bit there is).
        step: reduce(base.1, m).max(1),
        m,
        i: 0,
        k,
    }
}

/// Produces the probe indexes for `key` with `k` hashes over `m` bits.
pub(crate) fn indexes(key: &[u8], k: u32, m: u64) -> IndexIter {
    indexes_from_base(base_hashes(key), k, m)
}

fn fnv1a(data: &[u8], offset_basis: u64) -> u64 {
    let mut hash = offset_basis;
    for &b in data {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexes_are_deterministic() {
        let a: Vec<u64> = indexes(b"mac-1", 5, 1024).collect();
        let b: Vec<u64> = indexes(b"mac-1", 5, 1024).collect();
        assert_eq!(a, b);
        assert_eq!(a.len(), 5);
    }

    #[test]
    fn different_keys_probe_differently() {
        let a: Vec<u64> = indexes(b"mac-1", 8, 1 << 20).collect();
        let b: Vec<u64> = indexes(b"mac-2", 8, 1 << 20).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn indexes_stay_in_range() {
        for m in [1u64, 2, 63, 64, 65, 100, 1 << 16] {
            for idx in indexes(b"key", 16, m) {
                assert!(idx < m, "index {idx} out of range for m={m}");
            }
        }
    }

    #[test]
    fn probe_positions_spread_for_small_m() {
        // With h2 forced odd, k=2 probes of a key should usually differ even
        // at tiny m; check the distribution is not degenerate.
        let mut distinct = 0;
        for key in 0u32..100 {
            let v: Vec<u64> = indexes(&key.to_be_bytes(), 2, 8).collect();
            if v[0] != v[1] {
                distinct += 1;
            }
        }
        assert!(
            distinct > 70,
            "only {distinct}/100 keys had distinct probes"
        );
    }

    #[test]
    fn exact_size_iterator() {
        let mut it = indexes(b"x", 4, 100);
        assert_eq!(it.len(), 4);
        it.next();
        assert_eq!(it.len(), 3);
    }

    #[test]
    fn avalanche_of_similar_keys() {
        // One-bit-different keys should produce uncorrelated first probes.
        let mut same = 0;
        for i in 0u64..256 {
            let a: Vec<u64> = indexes(&i.to_be_bytes(), 1, 1 << 30).collect();
            let b: Vec<u64> = indexes(&(i ^ 1).to_be_bytes(), 1, 1 << 30).collect();
            if a == b {
                same += 1;
            }
        }
        assert_eq!(same, 0);
    }
}
