//! Bloom filters for the LazyCtrl G-FIB.
//!
//! Each edge switch summarizes every peer's L-FIB as a Bloom filter: "the
//! G-FIB of each edge switch is comprised of multiple BFs generated from the
//! L-FIBs of all switches in this group" (§III-D.2). The storage cost is
//! independent of the number of addresses, and the false-positive rate is
//! "predictable and controllable by space-time trade-offs" — this crate
//! exposes exactly those controls.
//!
//! Two variants are provided:
//!
//! * [`BloomFilter`] — the classic bit-array filter that goes on the wire in
//!   `GfibUpdate` messages;
//! * [`CountingBloomFilter`] — a counter-based variant the *owning* switch
//!   maintains so that host removals (VM migration/teardown) can be
//!   reflected without rebuilding, exported as a plain filter on demand.
//!
//! Hashing is deterministic (FNV-1a seeds + splitmix64 finalizer, combined
//! with Kirsch–Mitzenmacher double hashing) so that a filter built on one
//! simulated switch and queried on another behaves identically — and so the
//! whole simulation stays reproducible.
//!
//! # Example
//!
//! ```
//! use lazyctrl_bloom::BloomFilter;
//!
//! let mut bf = BloomFilter::with_capacity(1000, 0.001);
//! bf.insert(b"02:00:00:00:00:2a");
//! assert!(bf.contains(b"02:00:00:00:00:2a"));
//! assert!(bf.estimated_fp_rate() < 0.001 + 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod counting;
mod hashing;

pub use counting::CountingBloomFilter;
pub use hashing::{base_hashes, IndexIter};

use serde::{Deserialize, Serialize};

/// A classic Bloom filter over byte-slice keys.
///
/// No false negatives, tunable false positives. See the crate docs for the
/// role it plays in the G-FIB.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BloomFilter {
    bits: Vec<u64>,
    /// Number of addressable bits (≤ `bits.len() * 64`).
    m: u64,
    /// Number of hash functions.
    k: u32,
    /// Number of inserted items (for fp estimation).
    items: u64,
}

impl BloomFilter {
    /// Creates a filter with exactly `m_bits` bits and `k` hash functions.
    ///
    /// # Panics
    ///
    /// Panics if `m_bits` or `k` is zero.
    pub fn new(m_bits: u64, k: u32) -> Self {
        assert!(m_bits > 0, "bloom filter must have at least one bit");
        assert!(k > 0, "bloom filter must use at least one hash");
        let words = m_bits.div_ceil(64) as usize;
        BloomFilter {
            bits: vec![0; words],
            m: m_bits,
            k,
            items: 0,
        }
    }

    /// Creates a filter sized for `expected_items` at `target_fp` false
    /// positive rate, using the standard optimal sizing
    /// `m = -n·ln(p)/ln(2)²`, `k = (m/n)·ln(2)`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < target_fp < 1` and `expected_items > 0`.
    pub fn with_capacity(expected_items: u64, target_fp: f64) -> Self {
        assert!(expected_items > 0, "expected_items must be positive");
        assert!(
            target_fp > 0.0 && target_fp < 1.0,
            "target_fp must be in (0, 1)"
        );
        let n = expected_items as f64;
        let ln2 = std::f64::consts::LN_2;
        let m = (-(n * target_fp.ln()) / (ln2 * ln2)).ceil().max(64.0);
        let k = ((m / n) * ln2).round().max(1.0);
        BloomFilter::new(m as u64, k as u32)
    }

    /// Number of bits.
    pub fn num_bits(&self) -> u64 {
        self.m
    }

    /// Number of hash functions.
    pub fn num_hashes(&self) -> u32 {
        self.k
    }

    /// Number of items inserted so far.
    pub fn len(&self) -> u64 {
        self.items
    }

    /// True if nothing has been inserted.
    pub fn is_empty(&self) -> bool {
        self.items == 0
    }

    /// Storage footprint of the bit array in bytes — the quantity the
    /// paper's §V-D storage-overhead analysis counts.
    pub fn storage_bytes(&self) -> usize {
        self.bits.len() * 8
    }

    /// Inserts a key.
    pub fn insert<K: AsRef<[u8]>>(&mut self, key: K) {
        for idx in hashing::indexes(key.as_ref(), self.k, self.m) {
            self.set_bit(idx);
        }
        self.items += 1;
    }

    /// Tests membership: false means *definitely absent*; true means
    /// *probably present*.
    pub fn contains<K: AsRef<[u8]>>(&self, key: K) -> bool {
        self.contains_prehashed(hashing::base_hashes(key.as_ref()))
    }

    /// Membership test from precomputed [`base_hashes`] — callers probing
    /// a bank of filters for one key (the G-FIB hot path) hash the key
    /// once and probe each filter with its own `(k, m)`.
    ///
    /// [`base_hashes`]: hashing::base_hashes
    pub fn contains_prehashed(&self, base: (u64, u64)) -> bool {
        hashing::indexes_from_base(base, self.k, self.m).all(|idx| self.get_bit(idx))
    }

    /// Removes all items.
    pub fn clear(&mut self) {
        self.bits.fill(0);
        self.items = 0;
    }

    /// Fraction of bits set, in `[0, 1]`.
    pub fn fill_ratio(&self) -> f64 {
        let set: u64 = self.bits.iter().map(|w| w.count_ones() as u64).sum();
        set as f64 / self.m as f64
    }

    /// Expected false-positive rate for the current load:
    /// `(1 − e^(−k·n/m))^k`.
    pub fn estimated_fp_rate(&self) -> f64 {
        let exponent = -((self.k as f64) * (self.items as f64)) / self.m as f64;
        (1.0 - exponent.exp()).powi(self.k as i32)
    }

    /// Merges another filter into this one (bitwise or).
    ///
    /// Both filters must have identical geometry; the item count becomes an
    /// upper bound after merging.
    ///
    /// # Panics
    ///
    /// Panics if the two filters differ in `num_bits` or `num_hashes`.
    pub fn union_with(&mut self, other: &BloomFilter) {
        assert_eq!(self.m, other.m, "bloom geometry mismatch (bits)");
        assert_eq!(self.k, other.k, "bloom geometry mismatch (hashes)");
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            *a |= *b;
        }
        self.items += other.items;
    }

    /// Serializes the bit array for transport in a `GfibUpdate` message.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.bits.len() * 8);
        for w in &self.bits {
            out.extend_from_slice(&w.to_be_bytes());
        }
        out
    }

    /// Reconstructs a filter from transported bits.
    ///
    /// `items` is the sender's item count (for fp estimation only).
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is empty or not a multiple of 8 long, is too short
    /// for `m_bits`, or if `k` is zero.
    pub fn from_bytes(bytes: &[u8], m_bits: u64, k: u32, items: u64) -> Self {
        assert!(
            !bytes.is_empty() && bytes.len().is_multiple_of(8),
            "bit array must be whole words"
        );
        assert!(k > 0, "bloom filter must use at least one hash");
        assert!(
            bytes.len() as u64 * 8 >= m_bits,
            "byte array too short for declared bit count"
        );
        let bits: Vec<u64> = bytes
            .chunks_exact(8)
            .map(|c| u64::from_be_bytes(c.try_into().expect("chunk of 8")))
            .collect();
        BloomFilter {
            bits,
            m: m_bits,
            k,
            items,
        }
    }

    fn set_bit(&mut self, idx: u64) {
        self.bits[(idx / 64) as usize] |= 1u64 << (idx % 64);
    }

    fn get_bit(&self, idx: u64) -> bool {
        self.bits[(idx / 64) as usize] & (1u64 << (idx % 64)) != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives_basic() {
        let mut bf = BloomFilter::with_capacity(100, 0.01);
        for i in 0u32..100 {
            bf.insert(i.to_be_bytes());
        }
        for i in 0u32..100 {
            assert!(bf.contains(i.to_be_bytes()), "lost key {i}");
        }
        assert_eq!(bf.len(), 100);
    }

    #[test]
    fn empty_filter_contains_nothing() {
        let bf = BloomFilter::new(1024, 4);
        assert!(bf.is_empty());
        for i in 0u32..1000 {
            assert!(!bf.contains(i.to_be_bytes()));
        }
        assert_eq!(bf.fill_ratio(), 0.0);
        assert_eq!(bf.estimated_fp_rate(), 0.0);
    }

    #[test]
    fn measured_fp_rate_tracks_estimate() {
        let mut bf = BloomFilter::with_capacity(1000, 0.01);
        for i in 0u32..1000 {
            bf.insert(i.to_be_bytes());
        }
        let mut fps = 0u32;
        let probes = 20_000u32;
        for i in 1000..1000 + probes {
            if bf.contains(i.to_be_bytes()) {
                fps += 1;
            }
        }
        let measured = fps as f64 / probes as f64;
        // Within 3x of the 1% design point (generous; statistical test).
        assert!(measured < 0.03, "fp rate {measured} way above design point");
        let est = bf.estimated_fp_rate();
        assert!(est > 0.0 && est < 0.02, "estimate {est} out of range");
    }

    #[test]
    fn sizing_matches_theory() {
        // n=1000, p=0.001 ⇒ m ≈ 14378 bits, k ≈ 10.
        let bf = BloomFilter::with_capacity(1000, 0.001);
        assert!((14_000..15_000).contains(&bf.num_bits()));
        assert_eq!(bf.num_hashes(), 10);
    }

    #[test]
    fn clear_resets() {
        let mut bf = BloomFilter::new(256, 3);
        bf.insert(b"x");
        assert!(bf.contains(b"x"));
        bf.clear();
        assert!(!bf.contains(b"x"));
        assert!(bf.is_empty());
    }

    #[test]
    fn union_covers_both_sets() {
        let mut a = BloomFilter::new(2048, 4);
        let mut b = BloomFilter::new(2048, 4);
        a.insert(b"alpha");
        b.insert(b"beta");
        a.union_with(&b);
        assert!(a.contains(b"alpha"));
        assert!(a.contains(b"beta"));
        assert_eq!(a.len(), 2);
    }

    #[test]
    #[should_panic(expected = "geometry mismatch")]
    fn union_rejects_mismatched_geometry() {
        let mut a = BloomFilter::new(2048, 4);
        let b = BloomFilter::new(1024, 4);
        a.union_with(&b);
    }

    #[test]
    fn byte_round_trip_preserves_membership() {
        let mut bf = BloomFilter::with_capacity(500, 0.01);
        for i in 0u32..500 {
            bf.insert(i.to_be_bytes());
        }
        let bytes = bf.to_bytes();
        let back = BloomFilter::from_bytes(&bytes, bf.num_bits(), bf.num_hashes(), bf.len());
        assert_eq!(back, bf);
        for i in 0u32..500 {
            assert!(back.contains(i.to_be_bytes()));
        }
    }

    #[test]
    #[should_panic(expected = "whole words")]
    fn from_bytes_rejects_ragged_input() {
        let _ = BloomFilter::from_bytes(&[1, 2, 3], 24, 2, 0);
    }

    #[test]
    fn paper_storage_example() {
        // §V-D sizes one per-peer BF at 16 × 128-byte entries = 2048 bytes
        // and claims fp < 0.1%; with ~150 hosts behind a switch that holds.
        let mut bf = BloomFilter::new(2048 * 8, 7);
        assert_eq!(bf.storage_bytes(), 2048);
        for i in 0u32..150 {
            bf.insert(i.to_be_bytes());
        }
        assert!(
            bf.estimated_fp_rate() < 0.001,
            "fp {} ≥ 0.1%",
            bf.estimated_fp_rate()
        );
    }

    #[test]
    fn non_multiple_of_64_bits_work() {
        let mut bf = BloomFilter::new(100, 3);
        for i in 0u32..30 {
            bf.insert(i.to_be_bytes());
        }
        for i in 0u32..30 {
            assert!(bf.contains(i.to_be_bytes()));
        }
    }
}
