//! Property tests for the Bloom-filter invariants the G-FIB relies on.

use lazyctrl_bloom::{BloomFilter, CountingBloomFilter};
use proptest::prelude::*;

proptest! {
    /// The invariant everything rests on: a Bloom filter never forgets.
    #[test]
    fn no_false_negatives(
        keys in proptest::collection::hash_set(proptest::collection::vec(any::<u8>(), 1..16), 1..200),
        fp in 0.001f64..0.2,
    ) {
        let mut bf = BloomFilter::with_capacity(keys.len() as u64, fp);
        for k in &keys {
            bf.insert(k);
        }
        for k in &keys {
            prop_assert!(bf.contains(k));
        }
    }

    /// Serialization to wire bytes and back is identity.
    #[test]
    fn wire_round_trip(
        keys in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..16), 0..100),
        m in 64u64..4096,
        k in 1u32..8,
    ) {
        let mut bf = BloomFilter::new(m, k);
        for key in &keys {
            bf.insert(key);
        }
        let back = BloomFilter::from_bytes(&bf.to_bytes(), m, k, bf.len());
        prop_assert_eq!(back, bf);
    }

    /// Union behaves like inserting both key sets.
    #[test]
    fn union_is_superset(
        a_keys in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..12), 0..50),
        b_keys in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..12), 0..50),
    ) {
        let mut a = BloomFilter::new(4096, 4);
        let mut b = BloomFilter::new(4096, 4);
        for k in &a_keys {
            a.insert(k);
        }
        for k in &b_keys {
            b.insert(k);
        }
        a.union_with(&b);
        for k in a_keys.iter().chain(&b_keys) {
            prop_assert!(a.contains(k));
        }
    }

    /// Counting filter: removals of distinct inserted keys never disturb the
    /// keys that remain (no false negatives among survivors).
    #[test]
    fn counting_removal_preserves_survivors(
        keys in proptest::collection::hash_set(proptest::collection::vec(any::<u8>(), 1..12), 2..100),
        split in any::<prop::sample::Index>(),
    ) {
        let keys: Vec<_> = keys.into_iter().collect();
        let cut = 1 + split.index(keys.len() - 1);
        let (gone, kept) = keys.split_at(cut);
        let mut cbf = CountingBloomFilter::with_capacity(keys.len() as u64, 0.01);
        for k in &keys {
            cbf.insert(k);
        }
        for k in gone {
            prop_assert!(cbf.remove(k));
        }
        for k in kept {
            prop_assert!(cbf.contains(k), "survivor lost after removals");
        }
    }

    /// The exported snapshot agrees with the counting filter on inserted
    /// membership.
    #[test]
    fn export_preserves_membership(
        keys in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..12), 1..80),
    ) {
        let mut cbf = CountingBloomFilter::with_capacity(keys.len() as u64, 0.01);
        for k in &keys {
            cbf.insert(k);
        }
        let bf = cbf.to_bloom();
        for k in &keys {
            prop_assert!(bf.contains(k));
        }
    }

    /// Estimated fp rate is monotone in load.
    #[test]
    fn fp_estimate_is_monotone(n in 1u64..2000) {
        let mut bf = BloomFilter::new(8192, 4);
        let mut last = 0.0;
        for i in 0..n {
            bf.insert(i.to_be_bytes());
            let est = bf.estimated_fp_rate();
            prop_assert!(est >= last);
            last = est;
        }
    }
}
