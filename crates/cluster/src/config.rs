//! Cluster configuration.

use lazyctrl_controller::LazyConfig;
use serde::{Deserialize, Serialize};

use crate::DisseminationStrategy;

/// Configuration of a controller cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Number of controllers in the cluster.
    pub num_controllers: usize,
    /// How C-LIB deltas reach the other members (flood / ring / tree —
    /// see [`DisseminationStrategy`]).
    pub dissemination: DisseminationStrategy,
    /// Per-member inner controller configuration. `dynamic_updates` is
    /// forced off: in a cluster, load is balanced by moving *group
    /// ownership* between controllers, not by regrouping switches — this
    /// keeps every member's grouping state identical, which is what makes
    /// group ownership a well-defined unit of transfer.
    pub lazy: LazyConfig,
    /// How often each member flushes its C-LIB deltas to its peers (ms).
    pub replica_flush_interval_ms: u32,
    /// Controller-ring heartbeat interval (ms).
    pub heartbeat_interval_ms: u32,
    /// A ring neighbour is reported missing after this many silent
    /// heartbeat intervals.
    pub heartbeat_miss_factor: u32,
    /// How often the leader evaluates load skew (ms).
    pub rebalance_check_interval_ms: u32,
    /// Rebalancing triggers when `max_load / min_load` across members
    /// exceeds this ratio (and the loaded member owns more than one group).
    pub skew_threshold: f64,
    /// The hottest member must have handled at least this many messages in
    /// the rebalance window for a move to trigger — an activity floor that
    /// stops ownership thrash when the whole cluster is near idle and the
    /// load ratio is just noise.
    pub rebalance_min_window_msgs: u64,
    /// Resolve replica misses with synchronous peer lookups before falling
    /// back to the scoped-ARP relay path.
    pub enable_lookup: bool,
    /// How often each member sends an anti-entropy digest to one rotating
    /// peer (ms). The catch-up path for members that missed relayed deltas
    /// (crashed mid-circulation, recovered after takeover, late-joining).
    pub anti_entropy_interval_ms: u32,
    /// Entries per peer-sync chunk (bounds the largest single wire
    /// message; ~64 KiB at the default of 2000 × 14 B).
    pub sync_chunk_entries: usize,
    /// Maximum foreign delta chunks a member buffers for relay between
    /// flush ticks. Overflow drops the oldest (counted; anti-entropy
    /// repairs the hole) — the bound that keeps per-member memory flat
    /// when a slow member lags a chatty overlay.
    pub relay_buffer_chunks: usize,
    /// Flush rounds of its own deltas each member retains for exact
    /// anti-entropy replay. A peer further behind than this receives a
    /// full-shard snapshot instead.
    pub delta_log_flushes: usize,
    /// A member stands for election after this long (ms) without hearing a
    /// live leader's heartbeat. Must comfortably exceed the heartbeat
    /// interval plus peer-link latency, or followers will trigger spurious
    /// elections against a healthy leader.
    pub election_timeout_ms: u32,
    /// Per-member stagger added to the election timer (ms × member id), so
    /// that concurrent timeouts don't produce perpetual split votes.
    pub election_stagger_ms: u32,
    /// Leader lease window (ms): a leader that has not heard heartbeats
    /// from a strict majority of the *static* cluster within this window
    /// steps down to read-only — it keeps serving cached lookups but
    /// stops confirming deaths and minting ownership transfers. This is
    /// the split-brain guard for network partitions: on the minority
    /// side the detector sees exactly the cross-cut silence a real crash
    /// would produce, and without the lease it would "take over" groups
    /// it can no longer speak for. Must exceed the heartbeat interval
    /// and should stay below the failure-confirmation deadline
    /// (`heartbeat_miss_factor × heartbeat_interval_ms`) so the
    /// step-down lands before any cross-partition death is confirmed.
    pub leader_lease_ms: u32,
    /// Deadline (ms) for a synchronous peer lookup round. An expired
    /// lookup retries against the next outstanding replica with
    /// exponential backoff instead of hanging on a dead or partitioned
    /// peer forever.
    pub lookup_timeout_ms: u32,
    /// Retry rounds a pending lookup gets after its first deadline
    /// expires. Once spent, the queued switch messages replay through
    /// the inner controller's scoped-ARP relay fallback.
    pub lookup_max_retries: u32,
    /// Cap, in heartbeat intervals, on the exponential backoff between
    /// retransmissions of an unacked ownership transfer. Keeps a long
    /// partition from flooding the heal with a retransmit per tick
    /// while still bounding the repair latency.
    pub transfer_retransmit_backoff_cap: u32,
    /// Bounded-ingress queue depth per member, in slots. `0` (the
    /// default) disables the bound entirely: every switch message is
    /// admitted and no overload state is tracked, preserving bit-exact
    /// reports for pre-existing scenarios. When positive, each admitted
    /// message charges [`ingress_cost_ns`](Self::ingress_cost_ns) to a
    /// leaky bucket that drains in real (virtual) time; work is shed by
    /// priority class once the bucket crosses its class threshold —
    /// flow setups first (at `slots`), lookups next (at `1.5 × slots`),
    /// ownership/sync after (at `2 × slots`). Heartbeats, elections and
    /// liveness reports are never shed.
    pub ingress_queue_slots: usize,
    /// Virtual service time charged per admitted switch message (ns)
    /// when the ingress queue is bounded. `slots × cost` is the bucket
    /// capacity in nanoseconds — the backlog a member tolerates before
    /// shedding its lowest class.
    pub ingress_cost_ns: u64,
    /// Minimum gap (ms) between ECN-style [`CongestionNotice`] pressure
    /// signals a member sends back to a switch whose flow setup it shed.
    /// Rate-limits the signalling so a storm of shed setups does not
    /// itself become a reverse-path storm.
    ///
    /// [`CongestionNotice`]: lazyctrl_proto::CongestionNoticeMsg
    pub congestion_notice_interval_ms: u32,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            num_controllers: 2,
            dissemination: DisseminationStrategy::default(),
            lazy: LazyConfig::default(),
            replica_flush_interval_ms: 1_000,
            heartbeat_interval_ms: 1_000,
            heartbeat_miss_factor: 3,
            rebalance_check_interval_ms: 10_000,
            skew_threshold: 2.0,
            rebalance_min_window_msgs: 20,
            enable_lookup: true,
            anti_entropy_interval_ms: 5_000,
            sync_chunk_entries: 2_000,
            relay_buffer_chunks: 1_024,
            delta_log_flushes: 64,
            election_timeout_ms: 3_000,
            election_stagger_ms: 150,
            leader_lease_ms: 2_500,
            lookup_timeout_ms: 2_000,
            lookup_max_retries: 2,
            transfer_retransmit_backoff_cap: 8,
            ingress_queue_slots: 0,
            ingress_cost_ns: 20_000,
            congestion_notice_interval_ms: 100,
        }
    }
}

impl ClusterConfig {
    /// A cluster of `n` controllers with otherwise default parameters.
    pub fn with_controllers(n: usize) -> Self {
        ClusterConfig {
            num_controllers: n,
            ..ClusterConfig::default()
        }
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics on nonsensical values.
    pub fn validate(&self) {
        assert!(
            self.num_controllers > 0,
            "cluster needs at least one controller"
        );
        assert!(
            self.replica_flush_interval_ms > 0,
            "flush interval must be positive"
        );
        assert!(
            self.heartbeat_interval_ms > 0,
            "heartbeat interval must be positive"
        );
        assert!(
            self.heartbeat_miss_factor > 0,
            "miss factor must be positive"
        );
        assert!(
            self.rebalance_check_interval_ms > 0,
            "rebalance interval must be positive"
        );
        assert!(
            self.skew_threshold.is_finite() && self.skew_threshold > 1.0,
            "skew threshold must exceed 1"
        );
        assert!(
            self.anti_entropy_interval_ms > 0,
            "anti-entropy interval must be positive"
        );
        assert!(
            self.sync_chunk_entries > 0,
            "sync chunk size must be positive"
        );
        assert!(
            self.relay_buffer_chunks > 0,
            "relay buffer must hold at least one chunk"
        );
        assert!(
            self.delta_log_flushes > 0,
            "delta log must retain at least one flush"
        );
        assert!(
            self.election_timeout_ms > self.heartbeat_interval_ms,
            "election timeout must exceed the heartbeat interval"
        );
        assert!(
            self.leader_lease_ms > self.heartbeat_interval_ms,
            "leader lease must exceed the heartbeat interval"
        );
        assert!(
            self.lookup_timeout_ms > 0,
            "lookup timeout must be positive"
        );
        assert!(
            self.transfer_retransmit_backoff_cap > 0,
            "transfer retransmit backoff cap must be positive"
        );
        if self.ingress_queue_slots > 0 {
            assert!(
                self.ingress_cost_ns > 0,
                "ingress cost must be positive when the ingress queue is bounded"
            );
            assert!(
                self.congestion_notice_interval_ms > 0,
                "congestion notice interval must be positive when the ingress queue is bounded"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_validates() {
        ClusterConfig::default().validate();
        ClusterConfig::with_controllers(4).validate();
        assert_eq!(
            ClusterConfig::default().dissemination,
            DisseminationStrategy::Flood,
            "flood stays the default for drop-in compatibility"
        );
    }

    #[test]
    fn all_strategies_validate() {
        for strategy in [
            DisseminationStrategy::Flood,
            DisseminationStrategy::Ring,
            DisseminationStrategy::tree(),
        ] {
            let c = ClusterConfig {
                dissemination: strategy,
                ..ClusterConfig::default()
            };
            c.validate();
        }
    }

    #[test]
    #[should_panic(expected = "anti-entropy interval")]
    fn zero_anti_entropy_rejected() {
        let c = ClusterConfig {
            anti_entropy_interval_ms: 0,
            ..ClusterConfig::default()
        };
        c.validate();
    }

    #[test]
    #[should_panic(expected = "at least one controller")]
    fn zero_controllers_rejected() {
        ClusterConfig::with_controllers(0).validate();
    }

    #[test]
    #[should_panic(expected = "leader lease")]
    fn short_leader_lease_rejected() {
        let c = ClusterConfig {
            leader_lease_ms: 1_000,
            heartbeat_interval_ms: 1_000,
            ..ClusterConfig::default()
        };
        c.validate();
    }

    #[test]
    #[should_panic(expected = "lookup timeout")]
    fn zero_lookup_timeout_rejected() {
        let c = ClusterConfig {
            lookup_timeout_ms: 0,
            ..ClusterConfig::default()
        };
        c.validate();
    }

    #[test]
    fn unbounded_ingress_skips_ingress_checks() {
        // slots == 0 disables the queue; the dependent knobs may then be
        // zero without tripping validation.
        let c = ClusterConfig {
            ingress_queue_slots: 0,
            ingress_cost_ns: 0,
            congestion_notice_interval_ms: 0,
            ..ClusterConfig::default()
        };
        c.validate();
    }

    #[test]
    #[should_panic(expected = "ingress cost")]
    fn zero_ingress_cost_rejected_when_bounded() {
        let c = ClusterConfig {
            ingress_queue_slots: 64,
            ingress_cost_ns: 0,
            ..ClusterConfig::default()
        };
        c.validate();
    }

    #[test]
    #[should_panic(expected = "congestion notice interval")]
    fn zero_notice_interval_rejected_when_bounded() {
        let c = ClusterConfig {
            ingress_queue_slots: 64,
            congestion_notice_interval_ms: 0,
            ..ClusterConfig::default()
        };
        c.validate();
    }

    #[test]
    #[should_panic(expected = "skew threshold")]
    fn bad_skew_rejected() {
        let c = ClusterConfig {
            skew_threshold: 1.0,
            ..ClusterConfig::default()
        };
        c.validate();
    }
}
