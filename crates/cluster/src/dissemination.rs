//! Pluggable peer-sync dissemination: how a member's C-LIB deltas reach
//! the other cluster members.
//!
//! The original cluster replicated by **full flood**: every member sent
//! every delta chunk to every peer, so one flush round of an `n`-member
//! cluster cost `n·(n-1)` control messages — O(n²), the wall the ROADMAP's
//! "scale the repro" item hits at 16 controllers. The devolved-controller
//! line of work (Tam et al.; Yazıcı et al.) argues the inter-controller
//! fabric must scale sub-quadratically for the devolved design to pay off,
//! which is exactly what the two overlay strategies here buy:
//!
//! * [`DisseminationStrategy::Flood`] — today's behaviour, kept as the
//!   ablation baseline: the origin sends each delta chunk directly to
//!   every believed-alive peer. O(n²) messages per flush round, one-hop
//!   latency.
//! * [`DisseminationStrategy::Ring`] — each member forwards, at its own
//!   flush tick, one [`SyncRelayMsg`](lazyctrl_proto::SyncRelayMsg) bundle
//!   to its ring successor: its own fresh chunks plus every foreign chunk
//!   it received since the last tick. A chunk is dropped from circulation
//!   when the next hop would be its origin, and the `(origin, seq, chunk)`
//!   dedup key stops re-circulation when the ring membership shifts
//!   mid-flight. O(n) messages per round; worst-case propagation is one
//!   full ring circumference of flush ticks.
//! * [`DisseminationStrategy::Tree`] — a leader-rooted k-ary relay tree,
//!   recomputed from the believed-alive membership on every use (so a
//!   confirmed-dead member heals out of the overlay instantly, the same
//!   cut-healing rule as the ring). Non-root members send their flush
//!   bundle straight to the root; the root batches everything it heard and
//!   pushes one bundle down the tree at its own tick, each member relaying
//!   to its `k` children immediately. ~2·(n-1) messages per round with
//!   O(log_k n) relay depth — the paper-scale default.
//!
//! A member that was dark while a delta circulated (crashed, partitioned,
//! or just unlucky on the overlay) reconverges through the plane's
//! anti-entropy digests, not through the strategy — see
//! `ClusterControlPlane` and [`SyncDigestMsg`](lazyctrl_proto::SyncDigestMsg).
//!
//! All three strategies are pure functions of the believed-alive member
//! list, which keeps them deterministic and trivially rebuildable on
//! membership change; the plane owns all the state (outboxes, dedup sets,
//! logs).

use serde::{Deserialize, Serialize};

/// Where a flush-tick bundle goes, as decided by a [`Dissemination`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlushRoute {
    /// Send each own-delta chunk directly to every listed peer
    /// (flood; relayed foreign chunks are never queued in this mode).
    DirectToAll(Vec<u32>),
    /// Send one bundle (own chunks + queued relays) to this peer.
    BundleTo(u32),
    /// Send one bundle to each listed peer (tree root pushing down).
    BundleToEach(Vec<u32>),
    /// Nobody to send to (single-member cluster, or all peers dead).
    Nowhere,
}

/// A dissemination strategy: a pure routing policy over the current
/// believed-alive membership. Implementations must be deterministic —
/// same inputs, same routes — because the whole simulation is.
pub trait Dissemination {
    /// Short label for reports and benches.
    fn label(&self) -> &'static str;

    /// Where member `id` sends at its flush tick. `alive` is the
    /// believed-alive membership (ids ascending, including `id` itself —
    /// members not yet *confirmed* dead still occupy their slot, exactly
    /// like a freshly dead switch on the wheel).
    fn flush_route(&self, id: u32, alive: &[u32]) -> FlushRoute;

    /// Whether `at` should queue a received foreign chunk (from `origin`)
    /// for forwarding at its next flush tick. Flood never relays; ring
    /// relays until the chunk would loop back to its origin; tree queues
    /// only at the root (which redistributes down).
    fn should_queue_relay(&self, at: u32, origin: u32, alive: &[u32]) -> bool;

    /// Peers `at` must forward a parent-received bundle to *immediately*
    /// (tree down-path children; empty for flood and ring).
    fn immediate_relay(&self, at: u32, sender: u32, alive: &[u32]) -> Vec<u32>;
}

/// The configured choice of dissemination strategy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DisseminationStrategy {
    /// Direct flood to every peer (O(n²) per round; ablation baseline).
    /// The default, for drop-in compatibility with pre-overlay configs.
    #[default]
    Flood,
    /// Ring circulation with per-tick bundling (O(n) per round).
    Ring,
    /// Leader-rooted k-ary relay tree (O(n) per round, O(log_k n) depth).
    Tree {
        /// Children per tree node; clamped to at least 2.
        fanout: usize,
    },
}

impl DisseminationStrategy {
    /// A tree with the default fanout of 4.
    pub fn tree() -> Self {
        DisseminationStrategy::Tree { fanout: 4 }
    }

    /// Short label for reports and benches.
    pub fn label(&self) -> &'static str {
        match self {
            DisseminationStrategy::Flood => "flood",
            DisseminationStrategy::Ring => "ring",
            DisseminationStrategy::Tree { .. } => "tree",
        }
    }

    /// Builds the strategy object.
    pub fn build(&self) -> Box<dyn Dissemination + Send + Sync> {
        match *self {
            DisseminationStrategy::Flood => Box::new(Flood),
            DisseminationStrategy::Ring => Box::new(Ring),
            DisseminationStrategy::Tree { fanout } => Box::new(KaryTree {
                fanout: fanout.max(2),
            }),
        }
    }
}

/// Direct flood: the O(n²) baseline.
pub struct Flood;

impl Dissemination for Flood {
    fn label(&self) -> &'static str {
        "flood"
    }

    fn flush_route(&self, id: u32, alive: &[u32]) -> FlushRoute {
        let peers: Vec<u32> = alive.iter().copied().filter(|&p| p != id).collect();
        if peers.is_empty() {
            FlushRoute::Nowhere
        } else {
            FlushRoute::DirectToAll(peers)
        }
    }

    fn should_queue_relay(&self, _at: u32, _origin: u32, _alive: &[u32]) -> bool {
        false
    }

    fn immediate_relay(&self, _at: u32, _sender: u32, _alive: &[u32]) -> Vec<u32> {
        Vec::new()
    }
}

/// Ring circulation with per-tick bundling.
pub struct Ring;

/// The ring successor of `id` among `alive` (ascending, cyclic).
fn ring_successor(id: u32, alive: &[u32]) -> Option<u32> {
    if alive.len() < 2 {
        return None;
    }
    let i = alive.iter().position(|&m| m == id)?;
    Some(alive[(i + 1) % alive.len()])
}

impl Dissemination for Ring {
    fn label(&self) -> &'static str {
        "ring"
    }

    fn flush_route(&self, id: u32, alive: &[u32]) -> FlushRoute {
        match ring_successor(id, alive) {
            Some(next) => FlushRoute::BundleTo(next),
            None => FlushRoute::Nowhere,
        }
    }

    fn should_queue_relay(&self, at: u32, origin: u32, alive: &[u32]) -> bool {
        // Keep circulating until the next hop would be the origin itself.
        ring_successor(at, alive).is_some_and(|next| next != origin)
    }

    fn immediate_relay(&self, _at: u32, _sender: u32, _alive: &[u32]) -> Vec<u32> {
        Vec::new()
    }
}

/// Leader-rooted k-ary relay tree.
pub struct KaryTree {
    /// Children per node (≥ 2).
    pub fanout: usize,
}

impl KaryTree {
    /// The believed-alive members in tree order: root (lowest id) first,
    /// then the rest ascending; node `i`'s children sit at
    /// `k·i + 1 ..= k·i + k`.
    fn position(&self, id: u32, alive: &[u32]) -> Option<usize> {
        alive.iter().position(|&m| m == id)
    }

    fn children(&self, id: u32, alive: &[u32]) -> Vec<u32> {
        let Some(i) = self.position(id, alive) else {
            return Vec::new();
        };
        (self.fanout * i + 1..=self.fanout * i + self.fanout)
            .filter_map(|c| alive.get(c).copied())
            .collect()
    }
}

impl Dissemination for KaryTree {
    fn label(&self) -> &'static str {
        "tree"
    }

    fn flush_route(&self, id: u32, alive: &[u32]) -> FlushRoute {
        if alive.len() < 2 {
            return FlushRoute::Nowhere;
        }
        let root = alive[0];
        if id == root {
            FlushRoute::BundleToEach(self.children(id, alive))
        } else {
            // Non-root members converge-cast straight to the root, which
            // batches and redistributes down the tree at its own tick.
            FlushRoute::BundleTo(root)
        }
    }

    fn should_queue_relay(&self, at: u32, origin: u32, alive: &[u32]) -> bool {
        // Only the root redistributes; everyone else either received the
        // chunk from the root's down-path (already relayed immediately to
        // the children) or is the origin.
        !alive.is_empty() && at == alive[0] && origin != at
    }

    fn immediate_relay(&self, at: u32, sender: u32, alive: &[u32]) -> Vec<u32> {
        // A bundle from my tree parent is on the down-path: push it to my
        // children right away (no flush-tick wait per level). Bundles
        // from anyone else are up-path traffic towards the root.
        let Some(i) = self.position(at, alive) else {
            return Vec::new();
        };
        if i == 0 {
            return Vec::new();
        }
        let parent = alive[(i - 1) / self.fanout];
        if sender == parent {
            self.children(at, alive)
        } else {
            Vec::new()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alive(n: u32) -> Vec<u32> {
        (0..n).collect()
    }

    #[test]
    fn labels_round_trip_through_config() {
        assert_eq!(DisseminationStrategy::Flood.label(), "flood");
        assert_eq!(DisseminationStrategy::Ring.label(), "ring");
        assert_eq!(DisseminationStrategy::tree().label(), "tree");
        for s in [
            DisseminationStrategy::Flood,
            DisseminationStrategy::Ring,
            DisseminationStrategy::tree(),
        ] {
            assert_eq!(s.build().label(), s.label());
        }
    }

    #[test]
    fn flood_targets_every_peer_and_never_relays() {
        let f = Flood;
        assert_eq!(
            f.flush_route(1, &alive(4)),
            FlushRoute::DirectToAll(vec![0, 2, 3])
        );
        assert_eq!(f.flush_route(0, &[0]), FlushRoute::Nowhere);
        assert!(!f.should_queue_relay(2, 0, &alive(4)));
    }

    #[test]
    fn ring_follows_successor_and_stops_at_origin() {
        let r = Ring;
        assert_eq!(r.flush_route(1, &alive(4)), FlushRoute::BundleTo(2));
        assert_eq!(r.flush_route(3, &alive(4)), FlushRoute::BundleTo(0));
        // Member 3's successor is 0: a chunk originated by 0 stops here.
        assert!(!r.should_queue_relay(3, 0, &alive(4)));
        assert!(r.should_queue_relay(1, 0, &alive(4)));
        assert_eq!(r.flush_route(0, &[0]), FlushRoute::Nowhere);
    }

    #[test]
    fn ring_heals_around_a_dead_member() {
        let r = Ring;
        // Member 2 confirmed dead: 1's successor becomes 3.
        assert_eq!(r.flush_route(1, &[0, 1, 3]), FlushRoute::BundleTo(3));
    }

    #[test]
    fn tree_converges_to_root_and_fans_down() {
        let t = KaryTree { fanout: 2 };
        let members = alive(7);
        // Non-root members send up to the root directly.
        for id in 1..7 {
            assert_eq!(t.flush_route(id, &members), FlushRoute::BundleTo(0));
        }
        // Root pushes down to its children.
        assert_eq!(
            t.flush_route(0, &members),
            FlushRoute::BundleToEach(vec![1, 2])
        );
        // Down-path bundles relay immediately along tree edges.
        assert_eq!(t.immediate_relay(1, 0, &members), vec![3, 4]);
        assert_eq!(t.immediate_relay(2, 0, &members), vec![5, 6]);
        // Leaves have nobody below them.
        assert_eq!(t.immediate_relay(3, 1, &members), Vec::<u32>::new());
        // Up-path traffic (sender is not the parent) is not re-fanned.
        assert_eq!(t.immediate_relay(1, 3, &members), Vec::<u32>::new());
        // Only the root queues foreign chunks for redistribution.
        assert!(t.should_queue_relay(0, 4, &members));
        assert!(!t.should_queue_relay(1, 4, &members));
    }

    #[test]
    fn tree_rebuilds_on_membership_change() {
        let t = KaryTree { fanout: 2 };
        // Root 0 confirmed dead: 1 becomes the root.
        let members = vec![1, 2, 3, 4];
        assert_eq!(
            t.flush_route(1, &members),
            FlushRoute::BundleToEach(vec![2, 3])
        );
        assert_eq!(t.flush_route(4, &members), FlushRoute::BundleTo(1));
        assert_eq!(t.immediate_relay(2, 1, &members), vec![4]);
    }

    #[test]
    fn every_member_is_reached_per_round() {
        // Structural coverage check: under ring and tree, starting from
        // any origin, repeatedly applying the routing rules visits every
        // alive member.
        for n in 2u32..10 {
            let members = alive(n);
            for origin in 0..n {
                // Ring: walk successors.
                let mut visited = vec![origin];
                let mut at = origin;
                while let Some(next) = ring_successor(at, &members) {
                    if next == origin {
                        break;
                    }
                    visited.push(next);
                    at = next;
                }
                assert_eq!(visited.len(), n as usize, "ring misses members");
                // Tree: origin → root → down the children edges.
                let t = KaryTree { fanout: 3 };
                let mut reached = std::collections::BTreeSet::from([members[0]]);
                let mut frontier = vec![members[0]];
                while let Some(m) = frontier.pop() {
                    for c in t.children(m, &members) {
                        reached.insert(c);
                        frontier.push(c);
                    }
                }
                assert_eq!(reached.len(), n as usize, "tree misses members");
            }
        }
    }
}
