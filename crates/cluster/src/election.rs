//! Term-based leader election for the controller cluster.
//!
//! Historically the plane derived its leader as "lowest live member id" —
//! a rule that two members can transiently disagree on during the window
//! between a crash and its confirmation, which is exactly the kind of gap
//! a model checker turns into a counterexample. This module replaces it
//! with a small Raft-style election over the plane's existing peer links:
//!
//! * Every state transition is keyed by a monotonically increasing
//!   **term**. A member grants at most one vote per term, and a candidate
//!   becomes leader only with a strict majority of the *static* cluster
//!   size — so two leaders can never coexist in one term.
//! * Leadership is advertised by piggybacking `(term, leader)` on the
//!   existing heartbeats; followers stand for election only after
//!   [`ClusterConfig::election_timeout_ms`](crate::ClusterConfig::election_timeout_ms)
//!   without hearing a *leader* heartbeat, with a per-member stagger so
//!   concurrent timeouts don't split votes forever.
//!
//! The struct here is pure bookkeeping — message emission and timer
//! plumbing live in [`plane`](crate::plane), which keeps this half
//! trivially unit-testable and lets the model checker reuse the exact
//! same transition code.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

/// A member's current role in the election protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ElectionRole {
    /// Passive: applies transfers and claims from the current leader.
    Follower,
    /// Standing for election in the current term.
    Candidate,
    /// Won a majority in the current term.
    Leader,
}

/// Per-member election bookkeeping (term, role, votes).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ElectionState {
    /// Highest term this member has seen.
    pub term: u64,
    /// Current role within [`term`](Self::term).
    pub role: ElectionRole,
    /// Who received this member's vote in the current term, if anyone.
    pub voted_for: Option<u32>,
    /// Members that granted us a vote this term (candidates only).
    pub votes: BTreeSet<u32>,
    /// The leader this member currently believes in, if any.
    pub known_leader: Option<u32>,
    /// When a heartbeat (or claim) from a *leader* was last heard (ns).
    /// Follower heartbeats do not refresh this — only evidence that a
    /// leader is actually alive suppresses candidacy.
    pub last_leader_hb_ns: u64,
}

impl ElectionState {
    /// The agreed bootstrap state: every member starts term 1 believing
    /// member 0 leads (bootstrap is a synchronous, fault-free step, so
    /// assuming consensus there is sound — the checker starts after it).
    pub fn bootstrap_consensus(id: u32, now_ns: u64) -> Self {
        ElectionState {
            term: 1,
            role: if id == 0 {
                ElectionRole::Leader
            } else {
                ElectionRole::Follower
            },
            voted_for: Some(0),
            votes: BTreeSet::new(),
            known_leader: Some(0),
            last_leader_hb_ns: now_ns,
        }
    }

    /// Adopts a newer term, stepping down to follower. Returns true if the
    /// term advanced (the caller's per-term state is then stale).
    pub fn observe_term(&mut self, term: u64) -> bool {
        if term <= self.term {
            return false;
        }
        self.term = term;
        self.role = ElectionRole::Follower;
        self.voted_for = None;
        self.votes.clear();
        self.known_leader = None;
        true
    }

    /// Opens a new term with this member as candidate (votes for itself).
    pub fn start_candidacy(&mut self, id: u32) {
        self.term += 1;
        self.role = ElectionRole::Candidate;
        self.voted_for = Some(id);
        self.votes = BTreeSet::from([id]);
        self.known_leader = None;
    }

    /// Whether to grant `candidate` a vote in `term` (at most one grant
    /// per term; repeat requests from the same candidate re-grant, so a
    /// duplicated or retried request cannot deadlock an election).
    pub fn grant_vote(&mut self, term: u64, candidate: u32) -> bool {
        self.observe_term(term);
        if term < self.term {
            return false;
        }
        match self.voted_for {
            None => {
                self.voted_for = Some(candidate);
                true
            }
            Some(v) => v == candidate,
        }
    }

    /// Records a granted vote from `from` in the current term.
    pub fn record_grant(&mut self, from: u32) {
        if self.role == ElectionRole::Candidate {
            self.votes.insert(from);
        }
    }

    /// Strict majority of the static cluster size.
    pub fn has_majority(&self, cluster_size: usize) -> bool {
        self.votes.len() * 2 > cluster_size
    }

    /// Assumes leadership of the current term.
    pub fn become_leader(&mut self, id: u32) {
        self.role = ElectionRole::Leader;
        self.known_leader = Some(id);
    }

    /// Accepts `leader` as the leader of `term` if the claim is at least
    /// as recent as our term. Returns true if accepted. An equal-term
    /// claim is ignored while we are leader ourselves: with majority
    /// elections that situation is unreachable, and silently deferring
    /// would mask the very violation the model checker watches for.
    pub fn accept_leader(&mut self, term: u64, leader: u32, now_ns: u64) -> bool {
        if term < self.term || (term == self.term && self.role == ElectionRole::Leader) {
            return false;
        }
        self.observe_term(term);
        self.role = ElectionRole::Follower;
        self.known_leader = Some(leader);
        self.last_leader_hb_ns = now_ns;
        true
    }

    /// Lease-loss demotion: a leader that can no longer prove contact
    /// with a voting majority relinquishes the role without touching the
    /// term or the per-term vote (granting twice in one term would break
    /// safety). `last_leader_hb_ns` stays stale, so once majority
    /// contact resumes the ordinary election machinery takes over.
    pub fn relinquish_leadership(&mut self) {
        self.role = ElectionRole::Follower;
        self.votes.clear();
        self.known_leader = None;
    }

    /// Post-restart demotion: a recovered member must re-earn leadership
    /// through an election rather than resume a stale claim. The per-term
    /// vote is kept (granting twice in one term would break safety), and
    /// `last_leader_hb_ns` is kept stale so the election timer fires if no
    /// live leader is heard.
    pub fn step_down_after_restart(&mut self) {
        self.role = ElectionRole::Follower;
        self.votes.clear();
        self.known_leader = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bootstrap_agrees_on_member_zero() {
        let a = ElectionState::bootstrap_consensus(0, 5);
        let b = ElectionState::bootstrap_consensus(3, 5);
        assert_eq!(a.role, ElectionRole::Leader);
        assert_eq!(b.role, ElectionRole::Follower);
        assert_eq!((a.term, b.term), (1, 1));
        assert_eq!(b.known_leader, Some(0));
    }

    #[test]
    fn one_vote_per_term() {
        let mut s = ElectionState::bootstrap_consensus(2, 0);
        assert!(
            s.grant_vote(2, 1),
            "first request in a new term wins the vote"
        );
        assert!(
            !s.grant_vote(2, 3),
            "second candidate in the same term is refused"
        );
        assert!(
            s.grant_vote(2, 1),
            "retry from the granted candidate re-grants"
        );
        assert!(!s.grant_vote(1, 3), "stale-term request is refused");
    }

    #[test]
    fn majority_is_strict() {
        let mut s = ElectionState::bootstrap_consensus(1, 0);
        s.start_candidacy(1);
        assert!(!s.has_majority(3), "own vote alone is not a majority of 3");
        s.record_grant(2);
        assert!(s.has_majority(3));
        assert!(!s.has_majority(4), "2 of 4 is a split, not a majority");
    }

    #[test]
    fn newer_term_steps_a_leader_down() {
        let mut s = ElectionState::bootstrap_consensus(0, 0);
        assert_eq!(s.role, ElectionRole::Leader);
        assert!(s.observe_term(2));
        assert_eq!(s.role, ElectionRole::Follower);
        assert_eq!(s.known_leader, None);
        assert!(!s.observe_term(2), "same term is not an advance");
    }

    #[test]
    fn equal_term_claim_does_not_demote_a_leader() {
        let mut s = ElectionState::bootstrap_consensus(1, 0);
        s.start_candidacy(1); // term 2
        s.record_grant(0);
        s.become_leader(1);
        assert!(!s.accept_leader(2, 0, 9));
        assert_eq!(s.role, ElectionRole::Leader);
        assert!(s.accept_leader(3, 0, 9), "a newer-term claim always wins");
        assert_eq!(s.known_leader, Some(0));
    }

    #[test]
    fn lease_loss_demotes_within_the_same_term() {
        let mut s = ElectionState::bootstrap_consensus(0, 0);
        assert_eq!(s.role, ElectionRole::Leader);
        s.relinquish_leadership();
        assert_eq!(s.role, ElectionRole::Follower);
        assert_eq!(s.term, 1, "relinquishing must not open a new term");
        assert_eq!(s.voted_for, Some(0), "per-term vote survives");
        assert!(!s.grant_vote(1, 2), "so a same-term rival is still refused");
    }

    #[test]
    fn restart_demotes_but_keeps_the_term_vote() {
        let mut s = ElectionState::bootstrap_consensus(0, 0);
        s.step_down_after_restart();
        assert_eq!(s.role, ElectionRole::Follower);
        assert_eq!(s.voted_for, Some(0), "per-term vote survives the restart");
        assert!(!s.grant_vote(1, 2), "so a same-term rival is still refused");
    }
}
