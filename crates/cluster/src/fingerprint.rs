//! Canonical state fingerprinting for the cluster plane.
//!
//! The model checker dedups explored states by a 64-bit hash, and the
//! determinism tests compare fingerprints across runs — both need a hash
//! that is (a) stable across processes (no `std::hash::RandomState`),
//! (b) computed over a *canonical* traversal of the state (every
//! collection in the plane is a `BTreeMap`/`BTreeSet`, so iteration
//! order is the canonical order for free), and (c) blind to
//! identity-only counters (`xid`, heartbeat sequence numbers) that
//! differ between observably identical states.
//!
//! FNV-1a is used deliberately: it is tiny, allocation-free, and has no
//! seed to go wrong. It is *not* collision-resistant against adversarial
//! input — fine here, because a fingerprint collision merely prunes one
//! interleaving from an exploration that is bounded anyway, and the
//! deterministic regression tests compare full reports as the backstop.

/// Streaming 64-bit FNV-1a hasher.
///
/// # Example
///
/// ```
/// use lazyctrl_cluster::Fnv64;
///
/// let mut a = Fnv64::new();
/// a.u32(7).u64(9);
/// let mut b = Fnv64::new();
/// b.u32(7).u64(9);
/// assert_eq!(a.finish(), b.finish());
/// ```
#[derive(Debug, Clone)]
pub struct Fnv64(u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv64 {
    /// A hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fnv64(FNV_OFFSET)
    }

    /// Absorbs raw bytes.
    pub fn bytes(&mut self, b: &[u8]) -> &mut Self {
        for &x in b {
            self.0 ^= x as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Absorbs one byte.
    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.bytes(&[v])
    }

    /// Absorbs a `u16` (little-endian).
    pub fn u16(&mut self, v: u16) -> &mut Self {
        self.bytes(&v.to_le_bytes())
    }

    /// Absorbs a `u32` (little-endian).
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.bytes(&v.to_le_bytes())
    }

    /// Absorbs a `u64` (little-endian).
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.bytes(&v.to_le_bytes())
    }

    /// Absorbs a `usize` widened to 64 bits, so fingerprints agree across
    /// pointer widths.
    pub fn usize(&mut self, v: usize) -> &mut Self {
        self.u64(v as u64)
    }

    /// Absorbs an optional `u32` with a presence tag (so `None` and
    /// `Some(0)` hash differently).
    pub fn opt_u32(&mut self, v: Option<u32>) -> &mut Self {
        match v {
            None => self.u8(0),
            Some(x) => self.u8(1).u32(x),
        }
    }

    /// The accumulated hash.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// Hashes an encoded wire message with its `xid` header bytes zeroed.
///
/// Transaction ids are identity, not state: two interleavings that leave
/// every node and every in-flight message observably identical can still
/// disagree on which xid each message carries (xids are drawn from a
/// per-node counter whose consumption order depends on the schedule).
/// The checker's pending-message hash therefore blanks bytes 4..8 of the
/// OpenFlow-style header — exactly the xid field — before absorbing.
pub fn hash_wire_ignoring_xid(h: &mut Fnv64, wire: &[u8]) {
    if wire.len() >= 8 {
        h.bytes(&wire[..4]);
        h.bytes(&[0, 0, 0, 0]);
        h.bytes(&wire[8..]);
    } else {
        h.bytes(wire);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazyctrl_net::MacAddr;
    use lazyctrl_proto::{ClusterMsg, LookupRequestMsg, Message};

    #[test]
    fn fnv_matches_reference_vector() {
        // FNV-1a("hello") — standard published vector.
        let mut h = Fnv64::new();
        h.bytes(b"hello");
        assert_eq!(h.finish(), 0xa430_d846_80aa_bd0b);
    }

    #[test]
    fn option_tagging_disambiguates() {
        let mut none = Fnv64::new();
        none.opt_u32(None).u32(0);
        let mut some = Fnv64::new();
        some.opt_u32(Some(0));
        assert_ne!(none.finish(), some.finish());
    }

    #[test]
    fn xid_is_invisible_to_the_wire_hash() {
        let msg = |xid| {
            Message::cluster(
                xid,
                ClusterMsg::LookupRequest(LookupRequestMsg {
                    from: 1,
                    mac: MacAddr::for_host(7),
                }),
            )
            .encode()
        };
        let mut a = Fnv64::new();
        hash_wire_ignoring_xid(&mut a, &msg(1));
        let mut b = Fnv64::new();
        hash_wire_ignoring_xid(&mut b, &msg(0xdead_beef));
        assert_eq!(a.finish(), b.finish());

        let mut c = Fnv64::new();
        hash_wire_ignoring_xid(
            &mut c,
            &Message::cluster(
                1,
                ClusterMsg::LookupRequest(LookupRequestMsg {
                    from: 2,
                    mac: MacAddr::for_host(7),
                }),
            )
            .encode(),
        );
        assert_ne!(a.finish(), c.finish(), "payload differences still show");
    }
}
