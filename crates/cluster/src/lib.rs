//! `lazyctrl-cluster`: a sharded multi-controller control plane for
//! LazyCtrl.
//!
//! The paper's scalability argument (§III, §V) devolves *frequent* control
//! into the switch groups and leaves only rare inter-group events to the
//! central controller — but that controller is still one process. This
//! crate applies the same devolution one layer up, following the designs
//! the paper builds on (*Use of Devolved Controllers in Data Center
//! Networks*, Tam et al.; *Controlling a Software-Defined Network via
//! Distributed Controllers*, Yazıcı et al.): run N cooperating
//! [`LazyController`](lazyctrl_controller::LazyController)s, each owning a
//! disjoint set of switch groups, so the control plane's capacity scales
//! with the data center.
//!
//! The three pillars (see [`ClusterControlPlane`] for the full
//! architecture notes):
//!
//! * [`OwnershipMap`] — which member owns each group, with epochal
//!   transfers for load rebalancing;
//! * [`ReplicaStore`] + pluggable peer-sync dissemination
//!   ([`DisseminationStrategy`]: direct flood, ring circulation, or a
//!   leader-rooted relay tree, with anti-entropy digest catch-up) —
//!   asynchronous C-LIB replication, so inter-shard flow setups resolve
//!   locally (with a synchronous peer lookup as miss fallback);
//! * controller failover — ring heartbeats feeding the *same* Table-I
//!   inference machinery the switch wheel uses
//!   ([`lazyctrl_controller::FailureDetector`]), with leader-driven
//!   ownership takeover seeded from the replicas.
//!
//! Everything is deterministic: same seed ⇒ bit-identical results, which
//! `lazyctrl-core`'s cluster scenarios assert.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod dissemination;
mod election;
mod fingerprint;
mod model;
mod ownership;
mod plane;
mod replica;

pub use config::ClusterConfig;
pub use dissemination::{Dissemination, DisseminationStrategy, Flood, FlushRoute, KaryTree, Ring};
pub use election::{ElectionRole, ElectionState};
pub use fingerprint::{hash_wire_ignoring_xid, Fnv64};
pub use model::StepModel;
pub use ownership::OwnershipMap;
pub use plane::{
    ctrl_pseudo_switch, ClusterControlPlane, ClusterOutput, ClusterTimer, ClusterTimerKind,
    SyncTraffic,
};
pub use replica::ReplicaStore;
