//! The step-model seam between the cluster plane and its drivers.
//!
//! Both the discrete-event simulator (`lazyctrl-core`) and the bounded
//! model checker (`lazyctrl-mc`) drive [`ClusterControlPlane`] through
//! this one trait, so the transitions the checker exhausts are — by
//! construction, not by convention — the very same code paths the
//! simulator executes. The plane is a *pure* state machine behind this
//! surface: no clocks, no randomness, no global state (a scripted lint
//! plus a debug-build monotonic-clock assertion enforce it), which is
//! what makes cloning a state and exploring both branches of a race
//! meaningful.

use lazyctrl_net::SwitchId;
use lazyctrl_proto::{Message, OutputSink};

use crate::plane::{ClusterControlPlane, ClusterOutput, ClusterTimer};

/// A deterministic, clonable protocol state machine: the surface the
/// simulator schedules against and the model checker branches over.
///
/// Every method takes the driver's virtual clock `now_ns`; implementors
/// must be pure functions of `(state, input, now_ns)`. Drivers must feed
/// a non-decreasing clock.
pub trait StepModel: Clone {
    /// Delivers a switch-originated message.
    fn step_switch(
        &mut self,
        now_ns: u64,
        from: SwitchId,
        msg: &Message,
        out: &mut OutputSink<ClusterOutput>,
    );

    /// Delivers a controller-peer message (`from` is the link-level
    /// sender).
    fn step_ctrl(
        &mut self,
        now_ns: u64,
        from: u32,
        to: u32,
        msg: &Message,
        out: &mut OutputSink<ClusterOutput>,
    );

    /// Fires a timer.
    fn step_timer(&mut self, now_ns: u64, timer: ClusterTimer, out: &mut OutputSink<ClusterOutput>);

    /// Crashes a member (fault injection).
    fn step_crash(&mut self, id: u32);

    /// Restarts a crashed member (fault injection).
    fn step_recover(&mut self, id: u32, out: &mut OutputSink<ClusterOutput>);

    /// Canonical 64-bit hash of the protocol-visible state (see
    /// [`ClusterControlPlane::state_fingerprint`]).
    fn fingerprint(&self) -> u64;
}

impl StepModel for ClusterControlPlane {
    fn step_switch(
        &mut self,
        now_ns: u64,
        from: SwitchId,
        msg: &Message,
        out: &mut OutputSink<ClusterOutput>,
    ) {
        self.handle_switch_message(now_ns, from, msg, out);
    }

    fn step_ctrl(
        &mut self,
        now_ns: u64,
        from: u32,
        to: u32,
        msg: &Message,
        out: &mut OutputSink<ClusterOutput>,
    ) {
        self.handle_ctrl_message(now_ns, from, to, msg, out);
    }

    fn step_timer(
        &mut self,
        now_ns: u64,
        timer: ClusterTimer,
        out: &mut OutputSink<ClusterOutput>,
    ) {
        self.handle_timer(now_ns, timer, out);
    }

    fn step_crash(&mut self, id: u32) {
        self.crash(id);
    }

    fn step_recover(&mut self, id: u32, out: &mut OutputSink<ClusterOutput>) {
        self.recover(id, out);
    }

    fn fingerprint(&self) -> u64 {
        self.state_fingerprint()
    }
}
