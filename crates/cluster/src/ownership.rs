//! The group-ownership map: which controller runs each local control
//! group.
//!
//! The cluster's unit of sharding is the switch *group* (LCG), not the
//! individual switch: groups already minimize inter-partition traffic
//! (§III-C), so group boundaries are also the natural control-plane shard
//! boundaries — the same insight behind the devolved-controller designs of
//! Tam et al. The map is versioned by an epoch; every
//! [`OwnershipTransferMsg`](lazyctrl_proto::OwnershipTransferMsg) carries
//! the epoch after which it applies, so stale transfers are recognizable.

use std::collections::BTreeMap;

use lazyctrl_net::GroupId;
use lazyctrl_proto::{OwnershipTransferMsg, TransferReason};
use serde::{Deserialize, Serialize};

/// Versioned group → controller assignment.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OwnershipMap {
    epoch: u32,
    owner: BTreeMap<usize, u32>,
}

impl OwnershipMap {
    /// Creates an empty map (epoch 0).
    pub fn new() -> Self {
        OwnershipMap::default()
    }

    /// Assigns `num_groups` groups round-robin across `controllers`
    /// (in the given order), bumping the epoch once.
    pub fn assign_round_robin(&mut self, num_groups: usize, controllers: &[u32]) {
        assert!(!controllers.is_empty(), "no controllers to assign to");
        self.owner = (0..num_groups)
            .map(|g| (g, controllers[g % controllers.len()]))
            .collect();
        self.epoch += 1;
    }

    /// The current epoch.
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// The controller owning `group`.
    pub fn owner_of(&self, group: usize) -> Option<u32> {
        self.owner.get(&group).copied()
    }

    /// All groups owned by `controller`, ascending.
    pub fn groups_of(&self, controller: u32) -> Vec<usize> {
        self.owner
            .iter()
            .filter(|(_, &c)| c == controller)
            .map(|(&g, _)| g)
            .collect()
    }

    /// Number of mapped groups.
    pub fn len(&self) -> usize {
        self.owner.len()
    }

    /// True when no groups are mapped.
    pub fn is_empty(&self) -> bool {
        self.owner.is_empty()
    }

    /// Moves `group` to `to`, bumping the epoch. Returns the wire message
    /// describing the transfer, stamped with the announcing leader's
    /// election `term` so receivers can discard announcements from a
    /// deposed leader.
    ///
    /// # Panics
    ///
    /// Panics if the group is unmapped.
    pub fn transfer(
        &mut self,
        group: usize,
        to: u32,
        reason: TransferReason,
        term: u64,
    ) -> OwnershipTransferMsg {
        let from = *self.owner.get(&group).expect("transfer of unmapped group");
        self.owner.insert(group, to);
        self.epoch += 1;
        OwnershipTransferMsg {
            epoch: self.epoch,
            group: GroupId::new(group as u32),
            from,
            to,
            reason,
            term,
        }
    }

    /// Applies a transfer received from a peer, if it is newer than the
    /// local view. Returns true when applied.
    pub fn apply(&mut self, msg: &OwnershipTransferMsg) -> bool {
        if msg.epoch <= self.epoch {
            return false;
        }
        self.owner.insert(msg.group.index(), msg.to);
        self.epoch = msg.epoch;
        true
    }

    /// Iterates `(group, owner)` pairs, ascending by group.
    pub fn iter(&self) -> impl Iterator<Item = (usize, u32)> + '_ {
        self.owner.iter().map(|(&g, &c)| (g, c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_covers_all_groups() {
        let mut m = OwnershipMap::new();
        m.assign_round_robin(5, &[0, 1]);
        assert_eq!(m.len(), 5);
        assert_eq!(m.groups_of(0), vec![0, 2, 4]);
        assert_eq!(m.groups_of(1), vec![1, 3]);
        assert_eq!(m.owner_of(4), Some(0));
        assert_eq!(m.owner_of(9), None);
        assert_eq!(m.epoch(), 1);
    }

    #[test]
    fn transfer_moves_and_bumps_epoch() {
        let mut m = OwnershipMap::new();
        m.assign_round_robin(4, &[0, 1]);
        let msg = m.transfer(2, 1, TransferReason::Rebalance, 1);
        assert_eq!(msg.from, 0);
        assert_eq!(msg.to, 1);
        assert_eq!(msg.epoch, 2);
        assert_eq!(m.owner_of(2), Some(1));
        assert_eq!(m.groups_of(1), vec![1, 2, 3]);
    }

    #[test]
    fn stale_transfers_rejected() {
        let mut a = OwnershipMap::new();
        a.assign_round_robin(2, &[0, 1]);
        let mut b = a.clone();
        let t1 = a.transfer(0, 1, TransferReason::Failover, 1);
        assert!(b.apply(&t1));
        assert!(!b.apply(&t1), "replay must not apply twice");
        assert_eq!(b, a);
    }
}
