//! The cluster control plane: N cooperating `LazyController`s behind one
//! message-passing surface.
//!
//! # Architecture
//!
//! Every cluster member runs a full [`LazyController`] configured
//! identically (same switch id space, same seed, dynamic regrouping off),
//! so all members deterministically compute the *same* switch grouping at
//! bootstrap. The [`OwnershipMap`] then shards those groups across
//! members: a member only receives (and answers) control traffic from
//! switches in groups it owns, so its workload, C-LIB shard and failure
//! detector all naturally cover just its shard.
//!
//! Three cluster mechanisms tie the shards together:
//!
//! * **C-LIB replication** — each member batches the host locations it
//!   learns and publishes them on a timer ([`PeerSyncMsg`]); *how* the
//!   deltas reach the other members is the pluggable
//!   [`Dissemination`](crate::Dissemination) strategy (direct flood, ring
//!   circulation, or a leader-rooted relay tree — see
//!   [`DisseminationStrategy`](crate::DisseminationStrategy)), backed by a
//!   periodic anti-entropy digest exchange so members that missed relayed
//!   deltas reconverge. Inter-shard flow setups then resolve against the
//!   local replica, with a synchronous [`LookupRequestMsg`] as the miss
//!   fallback.
//! * **Load rebalancing** — members piggyback their measured request rate
//!   on heartbeats; when the leader (lowest live id) sees the max/min load
//!   ratio exceed the configured skew, it moves a group from the hottest
//!   to the coolest member ([`OwnershipTransferMsg`]).
//! * **Failover** — members heartbeat on a logical ring and report silent
//!   neighbours using the *same Table-I inference machinery* switches use
//!   on their wheel ([`FailureDetector`] over [`WheelReportMsg`], with
//!   controllers mapped to pseudo switch ids): a member is declared dead
//!   only when both ring directions go silent within the window, at which
//!   point the leader transfers its groups to survivors, each seeding its
//!   C-LIB from the replica.
//!
//! # Simulation shortcuts (documented, deliberate)
//!
//! * Control-link re-homing is instantaneous: the driver routes a switch's
//!   messages via the plane's authoritative ownership map, which updates
//!   when a transfer is initiated. Real switches would reconnect after a
//!   short gap; the *replication* convergence is what is modelled
//!   asynchronously.
//! * The leader reads peers' workload meters directly when rebalancing.
//!   The same numbers travel in heartbeats ([`CtrlHeartbeatMsg::load_rps`]);
//!   reading the meter avoids acting on a stale copy in the simulation.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use lazyctrl_controller::{
    ControllerOutput, ControllerTimer, FailureDetector, FailureKind, LazyController,
};
use lazyctrl_net::{EthernetFrame, MacAddr, SwitchId, TenantId};
use lazyctrl_partition::WeightedGraph;
use lazyctrl_proto::{
    ClusterMsg, CongestionNoticeMsg, CtrlHeartbeatMsg, HostEntry, LazyMsg, LeaderClaimMsg,
    LfibEntry, LfibSyncMsg, LookupReplyMsg, LookupRequestMsg, Message, MessageBody, MsgPriority,
    OfMessage, OutputSink, OwnershipTransferMsg, PacketInMsg, PeerSyncMsg, SyncDigestMsg,
    SyncRelayMsg, TransferAckMsg, TransferReason, VoteReplyMsg, VoteRequestMsg, WheelLoss,
    WheelReportMsg,
};

use crate::dissemination::{Dissemination, FlushRoute};
use crate::election::{ElectionRole, ElectionState};
use crate::fingerprint::{hash_wire_ignoring_xid, Fnv64};
use crate::{ClusterConfig, OwnershipMap, ReplicaStore};

/// Controllers are mapped into the switch-id space for the reused Table-I
/// failure detector; this tag keeps them clear of any real switch.
const CTRL_PSEUDO_BASE: u32 = 0xC000_0000;

/// The pseudo switch id representing controller `id` on the controller
/// ring (for [`FailureDetector`] reuse).
pub fn ctrl_pseudo_switch(id: u32) -> SwitchId {
    SwitchId::new(CTRL_PSEUDO_BASE | id)
}

/// Timers the cluster asks its driver to arm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterTimer {
    /// The member the timer belongs to.
    pub node: u32,
    /// What fires.
    pub kind: ClusterTimerKind,
    /// The member's timer generation when armed. A crash bumps the
    /// generation, so timer chains armed before the crash are recognized
    /// as stale when they fire — without this, a crash+recover within one
    /// timer interval would leave the member running duplicate chains.
    pub gen: u32,
}

/// The kinds of cluster timer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterTimerKind {
    /// A timer of the member's inner `LazyController`.
    Inner(ControllerTimer),
    /// Flush pending C-LIB deltas onto the dissemination overlay.
    ReplicaFlush,
    /// Send ring heartbeats and check for silent neighbours.
    Heartbeat,
    /// Leader-side load-skew evaluation.
    RebalanceCheck,
    /// Send an anti-entropy digest to one rotating peer.
    AntiEntropy,
    /// Stand for election if no live leader has been heard within the
    /// election timeout (interval is staggered per member).
    Election,
}

/// Effects the cluster wants performed by its driver.
#[derive(Debug, Clone, PartialEq)]
pub enum ClusterOutput {
    /// Send to a switch on its control link.
    ToSwitch {
        /// Sending member.
        from: u32,
        /// Receiving switch.
        to: SwitchId,
        /// The message.
        msg: Message,
    },
    /// Send to a peer controller on the controller-peer link.
    ToCtrl {
        /// Sending member.
        from: u32,
        /// Receiving member.
        to: u32,
        /// The message.
        msg: Message,
    },
    /// Arm a timer after the given delay (ns).
    SetTimer(ClusterTimer, u64),
}

/// The two message families a controller-peer link can carry, borrowed
/// out of an incoming [`Message`] (see
/// [`ClusterControlPlane::handle_ctrl_message`]).
enum CtrlBody<'a> {
    /// An ordinary cluster message.
    Cluster(&'a ClusterMsg),
    /// A Table-I wheel report gossiped on the controller ring.
    Wheel(WheelReportMsg),
}

/// A host lookup awaiting peer replies.
#[derive(Debug, Default, Clone)]
struct PendingLookup {
    /// Peers whose replies are still outstanding. Tracked by id (not a
    /// bare count) so a peer dying mid-lookup can be swept out at
    /// takeover instead of wedging the lookup forever.
    waiting_on: BTreeSet<u32>,
    /// Switch messages queued until the lookup resolves: `(from, msg)`.
    queued: Vec<(SwitchId, Message)>,
    /// Virtual time after which the current round counts as timed out. A
    /// partitioned peer never replies, so without this deadline a lookup
    /// (and every flow setup queued on it) would wedge until takeover.
    deadline_ns: u64,
    /// Expired rounds so far; bounded by
    /// [`ClusterConfig::lookup_max_retries`](crate::ClusterConfig).
    retries: u32,
}

/// A leader-announced ownership transfer awaiting its target's ack, with
/// capped-exponential retransmit pacing — a long partition must not
/// flood the heal with one retransmit per heartbeat tick.
#[derive(Debug, Clone, Copy)]
struct UnackedTransfer {
    msg: OwnershipTransferMsg,
    /// Retransmissions so far (0 = only the original announcement).
    attempts: u32,
    /// Virtual time at which the next retransmit is due.
    next_retry_ns: u64,
}

/// Per-member peer-sync traffic accounting (what `ClusterReport` exposes
/// so the O(n²) → O(n) dissemination win is measurable).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SyncTraffic {
    /// Peer-sync wire messages this member sent on the dissemination
    /// overlay (direct flood syncs + relay bundles). Anti-entropy digests
    /// and catch-up syncs are repair traffic, counted separately below.
    pub messages_sent: u64,
    /// Estimated wire bytes of those messages.
    pub bytes_sent: u64,
    /// Delta chunks this member originated.
    pub chunks_created: u64,
    /// Foreign chunks applied off the relay overlay.
    pub relay_applies: u64,
    /// Foreign chunks applied from direct syncs (flood or catch-up).
    pub direct_applies: u64,
    /// Already-seen chunks dropped by the relay dedup.
    pub duplicate_drops: u64,
    /// Relay-buffer overflows (oldest chunk dropped; anti-entropy heals).
    pub relay_overflows: u64,
    /// Anti-entropy digests sent.
    pub digests_sent: u64,
    /// Catch-up syncs served to digesting peers.
    pub catchup_syncs_sent: u64,
}

/// One cluster member.
#[derive(Clone)]
struct ClusterNode {
    id: u32,
    /// Ground truth: a crashed member drops everything (scenario hook).
    crashed: bool,
    ctrl: LazyController,
    replica: ReplicaStore,
    /// C-LIB deltas accumulated since the last flush.
    outbox_entries: BTreeMap<MacAddr, HostEntry>,
    /// Withdrawals pending flush, with the withdrawing switch (receivers
    /// need it for the stale-withdrawal guard).
    outbox_removed: BTreeMap<MacAddr, SwitchId>,
    /// Withdrawals this member has ever flushed (bounded, oldest
    /// evicted; values carry `(switch, insertion stamp)`). The snapshot
    /// fallback of anti-entropy includes them, so a peer too far behind
    /// for log replay still hears about removals — an additive-only
    /// snapshot would let its stale entries survive (and re-export)
    /// forever, since the summary advances its head past the
    /// withdrawal's sequence.
    own_tombstones: BTreeMap<MacAddr, (SwitchId, u64)>,
    /// Monotonic stamp for `own_tombstones` eviction order.
    tomb_stamp: u64,
    sync_seq: u64,
    /// Foreign chunks queued for forwarding at the next flush tick
    /// (ring successor hop / tree-root redistribution). Bounded by
    /// `relay_buffer_chunks`; overflow drops the oldest and counts it.
    relay_outbox: VecDeque<PeerSyncMsg>,
    /// Relay dedup: per-origin `(seq, chunk)` pairs already absorbed, with
    /// a pruned window (see [`DEDUP_WINDOW_SEQS`]).
    seen_chunks: BTreeMap<u32, BTreeSet<(u64, u32)>>,
    /// This member's own recent flushes, retained for exact anti-entropy
    /// replay. Bounded by `delta_log_flushes` distinct sequence numbers.
    delta_log: VecDeque<PeerSyncMsg>,
    /// Rotation counter for anti-entropy digest targets.
    ae_round: u64,
    /// Peer-sync traffic accounting.
    traffic: SyncTraffic,
    hb_seq: u64,
    /// Last virtual time a heartbeat arrived from each peer.
    last_hb_from: BTreeMap<u32, u64>,
    /// Latest load each peer reported in a heartbeat.
    peer_loads: BTreeMap<u32, f64>,
    /// Table-I inference over the controller ring.
    detector: FailureDetector,
    /// Term-based election bookkeeping (see [`crate::election`]).
    election: ElectionState,
    /// Leader-side: transfers announced but not yet acknowledged by their
    /// target, keyed by epoch. Retransmitted to the target on heartbeat
    /// ticks with capped exponential backoff while this member leads —
    /// the in-flight-loss window's repair path. Entries whose target is
    /// later confirmed dead are dropped at takeover (its groups move
    /// again anyway).
    unacked_transfers: BTreeMap<u32, UnackedTransfer>,
    /// Receiver-side: transfer epochs already delivered to this member as
    /// target. Duplicate announcements (retransmits) re-ack without
    /// re-seeding.
    delivered_transfers: BTreeSet<u32>,
    pending_lookups: BTreeMap<MacAddr, PendingLookup>,
    /// Partition degradation: set when this member, as leader, lost its
    /// majority lease. A read-only member keeps serving cached lookups
    /// from its C-LIB and replica but mints no transfers, confirms no
    /// deaths, starts no candidacies, and fans out no new peer lookups —
    /// until majority contact (or an accepted leader claim) clears it.
    read_only: bool,
    xid: u32,
    /// Bumped on crash; stale timer chains are dropped (see
    /// [`ClusterTimer::gen`]).
    timer_gen: u32,
    /// Switch-originated messages this member handled (the sharded
    /// workload quantity `repro_cluster` reports).
    requests_handled: u64,
    /// Ownership-transfer retransmissions sent (observer counter).
    transfer_retransmits: u64,
    /// Peer-lookup rounds that expired at their deadline (observer
    /// counter).
    lookup_timeouts: u64,
    /// Times this member stepped down to read-only on lease loss
    /// (observer counter).
    lease_step_downs: u64,
    /// Bounded-ingress leaky bucket: virtual backlog (ns) still queued
    /// at this member. Behavior state — whether the *next* message is
    /// shed depends on it — so it is fingerprinted. Stays zero when the
    /// queue is unbounded (`ingress_queue_slots == 0`).
    ingress_queued_ns: u64,
    /// Virtual time the bucket last drained (behavior state).
    ingress_last_ns: u64,
    /// Virtual time of the last `CongestionNotice` sent (behavior
    /// state: it gates whether the next shed emits a signal).
    last_congestion_notice_ns: u64,
    /// Messages shed by priority class (observer counters, indexed by
    /// [`MsgPriority::index`]). The `Critical` slot is structurally
    /// zero — critical traffic is never shed — and scenario verdicts
    /// pin that.
    ingress_shed: [u64; MsgPriority::COUNT],
    /// Peak ingress queue depth observed, in slots (observer counter).
    queue_highwater: u64,
    /// ECN-style pressure notices emitted to switches (observer
    /// counter).
    congestion_signals: u64,
}

/// How many recent flush sequences the relay dedup remembers per origin.
/// Older `(seq, chunk)` keys are pruned; a chunk that somehow resurfaces
/// from further back re-applies harmlessly (replica application is
/// idempotent) — the window only has to cover chunks still in flight.
const DEDUP_WINDOW_SEQS: u64 = 64;

impl ClusterNode {
    fn next_xid(&mut self) -> u32 {
        self.xid = self.xid.wrapping_add(1);
        self.xid
    }

    /// Records a chunk key in the dedup window. Returns false when it was
    /// already present (a duplicate).
    fn note_seen(&mut self, sync: &PeerSyncMsg) -> bool {
        let set = self.seen_chunks.entry(sync.origin).or_default();
        let fresh = set.insert((sync.seq, sync.chunk));
        if fresh {
            let floor = sync.seq.saturating_sub(DEDUP_WINDOW_SEQS);
            set.retain(|&(s, _)| s >= floor);
        }
        fresh
    }

    /// Queues a foreign chunk for forwarding at the next flush tick,
    /// enforcing the relay-buffer bound.
    fn queue_relay(&mut self, sync: PeerSyncMsg, cap: usize) {
        self.relay_outbox.push_back(sync);
        while self.relay_outbox.len() > cap {
            self.relay_outbox.pop_front();
            self.traffic.relay_overflows += 1;
        }
    }

    /// Appends own flush chunks to the bounded replay log.
    fn log_own_chunks(&mut self, chunks: &[PeerSyncMsg], keep_flushes: usize) {
        self.delta_log.extend(chunks.iter().cloned());
        let min_seq = self.sync_seq.saturating_sub(keep_flushes as u64);
        while let Some(front) = self.delta_log.front() {
            if front.seq <= min_seq {
                self.delta_log.pop_front();
            } else {
                break;
            }
        }
    }
}

/// The sharded multi-controller control plane.
pub struct ClusterControlPlane {
    cfg: ClusterConfig,
    /// The configured dissemination strategy (built once from
    /// `cfg.dissemination`).
    strategy: Box<dyn Dissemination + Send + Sync>,
    nodes: Vec<ClusterNode>,
    ownership: OwnershipMap,
    /// Dense switch → group mapping, frozen at bootstrap (all members
    /// share it; dynamic regrouping is off in cluster mode).
    group_of_switch: Vec<Option<usize>>,
    /// Members every functioning node currently believes dead.
    confirmed_dead: BTreeSet<u32>,
    /// Per-group message counts since the last rebalance check.
    group_window: BTreeMap<usize, u64>,
    /// Every ownership transfer initiated, in order.
    transfers: Vec<OwnershipTransferMsg>,
    /// Election-safety monitor: first leader observed per term. The plane
    /// holds every member, so this is cross-member ground truth; a second,
    /// different leader in an already-claimed term bumps
    /// [`double_leader_events`](Self::double_leader_events). Observer
    /// only — excluded from the state fingerprint like the counters.
    term_leaders: BTreeMap<u64, u32>,
    /// Times two distinct members led the same term (must stay zero; the
    /// partition scenarios assert it).
    double_leader_events: u64,
    /// Takeovers executed: `(dead member, groups moved)`.
    takeovers: Vec<(u32, usize)>,
    bootstrapped: bool,
    /// Reusable scratch for inner-controller outputs awaiting conversion
    /// to [`ClusterOutput`]s — one allocation for the plane's lifetime
    /// instead of one per handled message.
    ctrl_scratch: OutputSink<ControllerOutput>,
    /// Debug-build purity guard: the last `now_ns` any step function was
    /// driven with. The plane is a pure state machine — it never consults
    /// a clock itself — so its drivers (simulator, model checker) must
    /// feed it a non-decreasing clock; `note_step` asserts it.
    #[cfg(debug_assertions)]
    last_step_ns: u64,
}

/// Cloning snapshots the full protocol state — what the model checker
/// branches on. The dissemination strategy is rebuilt from the config
/// (it is stateless by construction) and the output scratch starts
/// empty (it is drained within every step, so a snapshot taken between
/// steps has nothing in flight there).
impl Clone for ClusterControlPlane {
    fn clone(&self) -> Self {
        ClusterControlPlane {
            cfg: self.cfg.clone(),
            strategy: self.cfg.dissemination.build(),
            nodes: self.nodes.clone(),
            ownership: self.ownership.clone(),
            group_of_switch: self.group_of_switch.clone(),
            confirmed_dead: self.confirmed_dead.clone(),
            group_window: self.group_window.clone(),
            transfers: self.transfers.clone(),
            term_leaders: self.term_leaders.clone(),
            double_leader_events: self.double_leader_events,
            takeovers: self.takeovers.clone(),
            bootstrapped: self.bootstrapped,
            ctrl_scratch: OutputSink::new(),
            #[cfg(debug_assertions)]
            last_step_ns: self.last_step_ns,
        }
    }
}

impl ClusterControlPlane {
    /// Creates a cluster over switches `0..num_switches`.
    ///
    /// # Panics
    ///
    /// Panics on an invalid configuration.
    pub fn new(num_switches: usize, cfg: ClusterConfig) -> Self {
        cfg.validate();
        let ids: Vec<SwitchId> = (0..num_switches as u32).map(SwitchId::new).collect();
        let nodes = (0..cfg.num_controllers as u32)
            .map(|id| {
                let mut lazy_cfg = cfg.lazy.clone();
                // Ownership moves balance load in a cluster; regrouping
                // would make members' groupings diverge (see ClusterConfig).
                lazy_cfg.dynamic_updates = false;
                ClusterNode {
                    id,
                    crashed: false,
                    ctrl: LazyController::new(ids.clone(), lazy_cfg),
                    replica: ReplicaStore::new(),
                    outbox_entries: BTreeMap::new(),
                    outbox_removed: BTreeMap::new(),
                    own_tombstones: BTreeMap::new(),
                    tomb_stamp: 0,
                    sync_seq: 0,
                    relay_outbox: VecDeque::new(),
                    seen_chunks: BTreeMap::new(),
                    delta_log: VecDeque::new(),
                    ae_round: 0,
                    traffic: SyncTraffic::default(),
                    hb_seq: 0,
                    last_hb_from: BTreeMap::new(),
                    peer_loads: BTreeMap::new(),
                    detector: FailureDetector::new(),
                    election: ElectionState::bootstrap_consensus(id, 0),
                    unacked_transfers: BTreeMap::new(),
                    delivered_transfers: BTreeSet::new(),
                    pending_lookups: BTreeMap::new(),
                    read_only: false,
                    xid: 0,
                    timer_gen: 0,
                    requests_handled: 0,
                    transfer_retransmits: 0,
                    lookup_timeouts: 0,
                    lease_step_downs: 0,
                    ingress_queued_ns: 0,
                    ingress_last_ns: 0,
                    last_congestion_notice_ns: 0,
                    ingress_shed: [0; MsgPriority::COUNT],
                    queue_highwater: 0,
                    congestion_signals: 0,
                }
            })
            .collect();
        ClusterControlPlane {
            strategy: cfg.dissemination.build(),
            cfg,
            nodes,
            ownership: OwnershipMap::new(),
            group_of_switch: vec![None; num_switches],
            confirmed_dead: BTreeSet::new(),
            group_window: BTreeMap::new(),
            transfers: Vec::new(),
            // Bootstrap is a synchronous consensus on (term 1, member 0).
            term_leaders: BTreeMap::from([(1, 0)]),
            double_leader_events: 0,
            takeovers: Vec::new(),
            bootstrapped: false,
            ctrl_scratch: OutputSink::new(),
            #[cfg(debug_assertions)]
            last_step_ns: 0,
        }
    }

    /// Debug-build purity guard (see the `last_step_ns` field): asserts
    /// the driver's clock never runs backwards across step calls.
    #[inline]
    fn note_step(&mut self, now_ns: u64) {
        #[cfg(debug_assertions)]
        {
            debug_assert!(
                now_ns >= self.last_step_ns,
                "cluster plane driven backwards in time: {now_ns} < {}",
                self.last_step_ns
            );
            self.last_step_ns = now_ns;
        }
        #[cfg(not(debug_assertions))]
        let _ = now_ns;
    }

    // ---- Introspection -------------------------------------------------

    /// The configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// Number of members (dead or alive).
    pub fn num_controllers(&self) -> usize {
        self.nodes.len()
    }

    /// The ownership map (authoritative routing view).
    pub fn ownership(&self) -> &OwnershipMap {
        &self.ownership
    }

    /// The group a switch belongs to.
    pub fn group_of_switch(&self, s: SwitchId) -> Option<usize> {
        self.group_of_switch.get(s.index()).copied().flatten()
    }

    /// The member a switch's control link currently terminates on.
    pub fn owner_of_switch(&self, s: SwitchId) -> Option<u32> {
        self.group_of_switch(s)
            .and_then(|g| self.ownership.owner_of(g))
    }

    /// True when the member has crashed (ground truth).
    pub fn is_crashed(&self, id: u32) -> bool {
        self.nodes[id as usize].crashed
    }

    /// Members currently believed dead by the cluster.
    pub fn confirmed_dead(&self) -> Vec<u32> {
        self.confirmed_dead.iter().copied().collect()
    }

    /// Switch-originated messages handled by a member.
    pub fn requests_of(&self, id: u32) -> u64 {
        self.nodes[id as usize].requests_handled
    }

    /// A member's measured request rate (its meter window).
    pub fn load_of(&self, id: u32, now_ns: u64) -> f64 {
        self.nodes[id as usize].ctrl.meter().rate_rps(now_ns)
    }

    /// A member's current service time (M/M/1 model, its own load).
    pub fn service_time_ns(&self, id: u32, now_ns: u64) -> u64 {
        self.nodes[id as usize].ctrl.meter().service_time_ns(now_ns)
    }

    /// Size of a member's authoritative C-LIB shard.
    pub fn clib_len(&self, id: u32) -> usize {
        self.nodes[id as usize].ctrl.clib().len()
    }

    /// Size of a member's replica store.
    pub fn replica_len(&self, id: u32) -> usize {
        self.nodes[id as usize].replica.len()
    }

    /// A member's peer-sync traffic counters.
    pub fn sync_traffic(&self, id: u32) -> SyncTraffic {
        self.nodes[id as usize].traffic
    }

    /// A member's replication flush sequence (how many delta flushes it
    /// has originated).
    pub fn sync_seq(&self, id: u32) -> u64 {
        self.nodes[id as usize].sync_seq
    }

    /// The label of the dissemination strategy in force.
    pub fn dissemination_label(&self) -> &'static str {
        self.strategy.label()
    }

    /// A canonical 64-bit fingerprint of the plane's protocol-visible
    /// state — the model checker's dedup key and the determinism tests'
    /// cross-run checkpoint.
    ///
    /// Covered: per-member crash and read-only flags, timer generation,
    /// election state,
    /// C-LIB shard, replica store (hosts, tombstones, progress), flush
    /// outboxes and tombstone memory, relay outbox and dedup window,
    /// delta log, anti-entropy rotation, heartbeat observation times and
    /// peer loads, failure-detector evidence, pending lookups, transfer
    /// ack ledgers — plus the shared ownership map, confirmed-dead set
    /// and rebalance window.
    ///
    /// Deliberately excluded: transaction-id counters and heartbeat
    /// sequence numbers (identity, not state — receivers never branch on
    /// them), traffic/report counters (observers, not behavior), and the
    /// inner controller's switch-facing machinery beyond the C-LIB (the
    /// checker drives no switch traffic, and for simulation reports the
    /// full-report comparison is the backstop).
    pub fn state_fingerprint(&self) -> u64 {
        let mut h = Fnv64::new();
        h.u32(self.ownership.epoch());
        for (g, owner) in self.ownership.iter() {
            h.usize(g).u32(owner);
        }
        h.usize(self.confirmed_dead.len());
        for d in &self.confirmed_dead {
            h.u32(*d);
        }
        for (g, c) in &self.group_window {
            h.usize(*g).u64(*c);
        }
        for node in &self.nodes {
            h.u32(node.id)
                .u8(node.crashed as u8)
                .u8(node.read_only as u8)
                .u32(node.timer_gen);
            let e = &node.election;
            h.u64(e.term).u8(match e.role {
                ElectionRole::Follower => 0,
                ElectionRole::Candidate => 1,
                ElectionRole::Leader => 2,
            });
            h.opt_u32(e.voted_for).opt_u32(e.known_leader);
            h.usize(e.votes.len());
            for v in &e.votes {
                h.u32(*v);
            }
            h.u64(e.last_leader_hb_ns);
            h.usize(node.ctrl.clib().len());
            for (mac, loc) in node.ctrl.clib().iter() {
                h.bytes(&mac.octets());
                h.u32(loc.switch.0).u16(loc.port.as_u16());
                h.u16(loc.tenant.as_u16());
            }
            node.replica.fingerprint_into(&mut h);
            h.usize(node.outbox_entries.len());
            for (mac, entry) in &node.outbox_entries {
                h.bytes(&mac.octets());
                h.u32(entry.switch.0).u16(entry.port.as_u16());
                h.u16(entry.tenant.as_u16());
            }
            for (mac, sw) in &node.outbox_removed {
                h.bytes(&mac.octets()).u32(sw.0);
            }
            for (mac, (sw, stamp)) in &node.own_tombstones {
                h.bytes(&mac.octets()).u32(sw.0).u64(*stamp);
            }
            h.u64(node.tomb_stamp).u64(node.sync_seq).u64(node.ae_round);
            h.usize(node.relay_outbox.len());
            for sync in &node.relay_outbox {
                hash_peer_sync(&mut h, sync);
            }
            for (origin, keys) in &node.seen_chunks {
                h.u32(*origin).usize(keys.len());
                for (seq, chunk) in keys {
                    h.u64(*seq).u32(*chunk);
                }
            }
            h.usize(node.delta_log.len());
            for sync in &node.delta_log {
                hash_peer_sync(&mut h, sync);
            }
            for (peer, t) in &node.last_hb_from {
                h.u32(*peer).u64(*t);
            }
            for (peer, load) in &node.peer_loads {
                h.u32(*peer).u64(load.to_bits());
            }
            for (sw, loss, t) in node.detector.observation_state() {
                h.u32(sw.0)
                    .u8(match loss {
                        WheelLoss::Upstream => 0,
                        WheelLoss::Downstream => 1,
                        WheelLoss::Controller => 2,
                    })
                    .u64(t);
            }
            for (sw, t) in node.detector.down_state() {
                h.u32(sw.0).u64(t);
            }
            h.usize(node.pending_lookups.len());
            for (mac, pending) in &node.pending_lookups {
                h.bytes(&mac.octets()).usize(pending.waiting_on.len());
                h.u64(pending.deadline_ns).u32(pending.retries);
                for w in &pending.waiting_on {
                    h.u32(*w);
                }
                for (from, msg) in &pending.queued {
                    h.u32(from.0);
                    hash_wire_ignoring_xid(&mut h, &msg.encode());
                }
            }
            h.usize(node.unacked_transfers.len());
            for (epoch, u) in &node.unacked_transfers {
                h.u32(*epoch).u64(u.msg.term).usize(u.msg.group.index());
                h.u32(u.msg.from).u32(u.msg.to);
                h.u32(u.attempts).u64(u.next_retry_ns);
            }
            for epoch in &node.delivered_transfers {
                h.u32(*epoch);
            }
            // Ingress-bucket behavior state: whether the next message is
            // shed (and whether a shed signals) depends on these three.
            // The shed/highwater/signal *counters* are observers and stay
            // excluded, like the traffic counters above.
            h.u64(node.ingress_queued_ns)
                .u64(node.ingress_last_ns)
                .u64(node.last_congestion_notice_ns);
        }
        h.finish()
    }

    /// Test/bench harness seam: queues a replication delta into a
    /// member's outbox exactly as organic C-LIB learning would, without
    /// driving a full switch conversation. The member's own C-LIB is
    /// taught too (through its ordinary message interface, like
    /// `seed_clib`), so the anti-entropy snapshot
    /// fallback — which rebuilds from the C-LIB — stays faithful for
    /// seam-injected state. The delta leaves at the member's next
    /// `ReplicaFlush` tick via the configured dissemination strategy.
    pub fn enqueue_delta(
        &mut self,
        id: u32,
        entries: Vec<HostEntry>,
        removed: Vec<(MacAddr, SwitchId)>,
    ) {
        let mut by_switch: BTreeMap<SwitchId, LfibSyncMsg> = BTreeMap::new();
        let node = &mut self.nodes[id as usize];
        for e in entries {
            node.outbox_entries.insert(e.mac, e);
            node.outbox_removed.remove(&e.mac);
            by_switch
                .entry(e.switch)
                .or_insert_with(|| empty_sync(e.switch))
                .entries
                .push(LfibEntry {
                    mac: e.mac,
                    tenant: e.tenant,
                    port: e.port,
                });
        }
        for (mac, sw) in removed {
            node.outbox_entries.remove(&mac);
            node.outbox_removed.insert(mac, sw);
            by_switch
                .entry(sw)
                .or_insert_with(|| empty_sync(sw))
                .removed
                .push(mac);
        }
        let mut discard = OutputSink::new();
        for (switch, sync) in by_switch {
            // Outputs (if any) are deliberately dropped: the seam models
            // state arrival, not a live switch conversation.
            node.ctrl.handle_message(
                0,
                switch,
                &Message::lazy(0, LazyMsg::lfib_sync(sync)),
                &mut discard,
            );
            discard.clear();
        }
    }

    /// A member's merged view of a host location: its authoritative C-LIB
    /// shard first, then the replica (what convergence tests compare).
    pub fn view_of(&self, id: u32, mac: MacAddr) -> Option<HostEntry> {
        let node = &self.nodes[id as usize];
        node.ctrl
            .clib()
            .locate(mac)
            .map(|loc| HostEntry {
                mac,
                switch: loc.switch,
                port: loc.port,
                tenant: loc.tenant,
            })
            .or_else(|| node.replica.lookup(mac))
    }

    /// All ownership transfers initiated so far, in order.
    pub fn transfers(&self) -> &[OwnershipTransferMsg] {
        &self.transfers
    }

    /// Takeovers executed: `(dead member, groups moved)`.
    pub fn takeovers(&self) -> &[(u32, usize)] {
        &self.takeovers
    }

    /// Members that are functioning and not believed dead, ascending.
    fn live_members(&self) -> Vec<u32> {
        self.nodes
            .iter()
            .filter(|n| !n.crashed && !self.confirmed_dead.contains(&n.id))
            .map(|n| n.id)
            .collect()
    }

    /// Members not *confirmed* dead, ascending — the dissemination
    /// overlay's membership basis. Crashed-but-undetected members still
    /// occupy their overlay slot (their traffic simply vanishes until the
    /// heartbeat protocol confirms them dead and the overlay heals), the
    /// same rule the heartbeat ring uses.
    fn believed_alive(&self) -> Vec<u32> {
        self.nodes
            .iter()
            .filter(|n| !self.confirmed_dead.contains(&n.id))
            .map(|n| n.id)
            .collect()
    }

    /// The current leader: the functioning member holding the
    /// highest-term `Leader` election role, if any. (Ground-truth
    /// introspection for reports and tests — the protocol itself acts on
    /// each member's *own* role, never on this global view.)
    pub fn leader(&self) -> Option<u32> {
        self.nodes
            .iter()
            .filter(|n| {
                !n.crashed
                    && !self.confirmed_dead.contains(&n.id)
                    && n.election.role == ElectionRole::Leader
            })
            .max_by_key(|n| n.election.term)
            .map(|n| n.id)
    }

    /// A member's current election term.
    pub fn election_term(&self, id: u32) -> u64 {
        self.nodes[id as usize].election.term
    }

    /// A member's current election role.
    pub fn election_role(&self, id: u32) -> ElectionRole {
        self.nodes[id as usize].election.role
    }

    /// A member's replica per-origin contiguous heads (ascending by
    /// origin) — what the convergence invariant compares.
    pub fn replica_heads(&self, id: u32) -> Vec<(u32, u64)> {
        self.nodes[id as usize].replica.heads()
    }

    /// Epochs of transfers a member (as leader) has announced but not yet
    /// seen acknowledged by their target.
    pub fn unacked_transfer_epochs(&self, id: u32) -> Vec<u32> {
        self.nodes[id as usize]
            .unacked_transfers
            .keys()
            .copied()
            .collect()
    }

    /// Epochs of transfers a member has received as target.
    pub fn delivered_transfer_epochs(&self, id: u32) -> Vec<u32> {
        self.nodes[id as usize]
            .delivered_transfers
            .iter()
            .copied()
            .collect()
    }

    /// True while a member is in read-only partition degradation (lost
    /// its majority lease as leader and has not regained quorum contact).
    pub fn is_read_only(&self, id: u32) -> bool {
        self.nodes[id as usize].read_only
    }

    /// Ownership-transfer retransmissions a member has sent.
    pub fn transfer_retransmits(&self, id: u32) -> u64 {
        self.nodes[id as usize].transfer_retransmits
    }

    /// Peer-lookup rounds that expired at their deadline on a member.
    pub fn lookup_timeouts(&self, id: u32) -> u64 {
        self.nodes[id as usize].lookup_timeouts
    }

    /// Times a member stepped down to read-only on lease loss.
    pub fn lease_step_downs(&self, id: u32) -> u64 {
        self.nodes[id as usize].lease_step_downs
    }

    /// Flow setups (PacketIns) a member's bounded ingress queue shed.
    /// Always zero when the queue is unbounded (the default).
    pub fn setups_shed(&self, id: u32) -> u64 {
        self.nodes[id as usize].ingress_shed[MsgPriority::FlowSetup.index()]
    }

    /// Lookup-class messages a member's bounded ingress queue shed.
    pub fn lookups_shed(&self, id: u32) -> u64 {
        self.nodes[id as usize].ingress_shed[MsgPriority::Lookup.index()]
    }

    /// Critical-class (heartbeat / election / liveness) messages shed.
    /// Structurally always zero — critical traffic is never shed — and
    /// exposed so scenario verdicts can pin exactly that.
    pub fn critical_sheds(&self, id: u32) -> u64 {
        self.nodes[id as usize].ingress_shed[MsgPriority::Critical.index()]
    }

    /// Peak ingress-queue depth (slots) observed at a member.
    pub fn queue_highwater(&self, id: u32) -> u64 {
        self.nodes[id as usize].queue_highwater
    }

    /// ECN-style congestion notices a member emitted toward switches.
    pub fn congestion_signals(&self, id: u32) -> u64 {
        self.nodes[id as usize].congestion_signals
    }

    /// Election-safety monitor: times two distinct members led the same
    /// term. Cross-member ground truth (the plane holds every member);
    /// any nonzero value is a split-brain.
    pub fn double_leader_events(&self) -> u64 {
        self.double_leader_events
    }

    /// Whether `id` has heard heartbeats from a strict majority of the
    /// *static* cluster (itself included) within the leader-lease
    /// window — the evidence a leader needs to keep minting transfers
    /// and confirming deaths. Static size, not live membership: letting
    /// confirmed-dead members shrink the denominator is exactly how a
    /// minority island talks itself into a quorum.
    fn holds_lease(&self, id: u32, now_ns: u64) -> bool {
        // A two-member cluster has no minority/majority distinction: a
        // strict majority is both members, so demanding peer heartbeats
        // would turn any single peer crash into a permanent failover
        // deadlock. Election safety is unaffected — winning a vote still
        // needs both members — so the lease degenerates to always-held.
        if self.nodes.len() <= 2 {
            return true;
        }
        let lease_ns = self.cfg.leader_lease_ms as u64 * 1_000_000;
        let recent = self.nodes[id as usize]
            .last_hb_from
            .iter()
            .filter(|&(&p, &t)| p != id && now_ns.saturating_sub(t) <= lease_ns)
            .count();
        (recent + 1) * 2 > self.nodes.len()
    }

    /// Minority-side degradation: relinquish leadership (same term) and
    /// enter read-only mode. Cached lookups keep being served; transfers,
    /// death confirmations, candidacies and new lookup fan-outs stop
    /// until majority contact resumes.
    fn step_down_read_only(&mut self, id: u32) {
        let node = &mut self.nodes[id as usize];
        if node.election.role == ElectionRole::Leader {
            node.election.relinquish_leadership();
        }
        if !node.read_only {
            node.read_only = true;
            node.lease_step_downs += 1;
        }
    }

    /// Ring neighbours `(prev, next)` of `id` among believed-alive members
    /// (crashed-but-undetected members still occupy their slot, exactly
    /// like a freshly dead switch on the wheel).
    fn ring_neighbours(&self, id: u32) -> Option<(u32, u32)> {
        let ring: Vec<u32> = self
            .nodes
            .iter()
            .filter(|n| !self.confirmed_dead.contains(&n.id))
            .map(|n| n.id)
            .collect();
        if ring.len() < 2 {
            return None;
        }
        let i = ring.iter().position(|&x| x == id)?;
        let n = ring.len();
        Some((ring[(i + n - 1) % n], ring[(i + 1) % n]))
    }

    // ---- Scenario hooks ------------------------------------------------

    /// Crashes a member: it silently drops every message and timer from
    /// now on, like a killed process. Detection and takeover follow from
    /// the heartbeat protocol. Experiments drive this through a
    /// `CrashController` event on their `EventPlan` (`lazyctrl-core`)
    /// rather than calling it directly. Bumping the timer generation
    /// invalidates every timer chain armed before the crash, so a later
    /// [`recover`] can re-arm without creating duplicates.
    ///
    /// [`recover`]: ClusterControlPlane::recover
    pub fn crash(&mut self, id: u32) {
        let node = &mut self.nodes[id as usize];
        node.crashed = true;
        node.timer_gen = node.timer_gen.wrapping_add(1);
    }

    /// Restarts a crashed member (its state — C-LIB shard, replica —
    /// survives as-is, like a process restart from a checkpoint). Driven
    /// by a `RecoverController` plan event in experiments. Peers un-mark
    /// it as it heartbeats again; pushes fresh timer arms (the pre-crash
    /// chains were invalidated by the generation bump).
    pub fn recover(&mut self, id: u32, out: &mut OutputSink<ClusterOutput>) {
        let node = &mut self.nodes[id as usize];
        if !node.crashed {
            return;
        }
        node.crashed = false;
        // A restarted member must not resume a stale leadership claim: it
        // demotes to follower and re-earns the role through an election if
        // no live leader is heard within the timeout. Any pre-crash
        // read-only degradation is moot for a follower.
        node.election.step_down_after_restart();
        node.read_only = false;
        let gen = node.timer_gen;
        for (kind, interval_ms) in [
            (
                ClusterTimerKind::Inner(ControllerTimer::KeepAlive),
                self.cfg.lazy.keepalive_interval_ms,
            ),
            (
                ClusterTimerKind::Inner(ControllerTimer::RegroupCheck),
                10_000,
            ),
        ] {
            out.push(ClusterOutput::SetTimer(
                ClusterTimer {
                    node: id,
                    kind,
                    gen,
                },
                interval_ms as u64 * 1_000_000,
            ));
        }
        self.cluster_timer_arms(id, gen, out);
    }

    /// The standard cluster-level timer set every functioning member
    /// runs: the one list `bootstrap` and `recover` both arm, so adding
    /// a timer kind cannot silently miss one of the two paths.
    fn cluster_timer_arms(&self, id: u32, gen: u32, out: &mut OutputSink<ClusterOutput>) {
        out.extend(
            [
                (
                    ClusterTimerKind::ReplicaFlush,
                    self.cfg.replica_flush_interval_ms,
                ),
                (ClusterTimerKind::Heartbeat, self.cfg.heartbeat_interval_ms),
                (
                    ClusterTimerKind::RebalanceCheck,
                    self.cfg.rebalance_check_interval_ms,
                ),
                (
                    ClusterTimerKind::AntiEntropy,
                    self.cfg.anti_entropy_interval_ms,
                ),
                (ClusterTimerKind::Election, self.election_interval_ms(id)),
            ]
            .into_iter()
            .map(|(kind, interval_ms)| {
                ClusterOutput::SetTimer(
                    ClusterTimer {
                        node: id,
                        kind,
                        gen,
                    },
                    interval_ms as u64 * 1_000_000,
                )
            }),
        );
    }

    /// A member's election-timer interval: the timeout plus the
    /// id-proportional stagger that keeps concurrent timeouts from
    /// splitting votes forever.
    fn election_interval_ms(&self, id: u32) -> u32 {
        self.cfg.election_timeout_ms + id * self.cfg.election_stagger_ms
    }

    // ---- Bootstrap -----------------------------------------------------

    /// Bootstraps the cluster: member 0 computes the grouping (one SGI
    /// run), freezes it into a shared immutable snapshot, and every other
    /// member adopts the `Arc` — identical assignments, one copy of the
    /// grouping state cluster-wide. Shards the groups round-robin and
    /// emits the initial `GroupAssign`s (each switch hears exactly one:
    /// its owner's) plus all timers.
    pub fn bootstrap(
        &mut self,
        now_ns: u64,
        graph: WeightedGraph,
        out: &mut OutputSink<ClusterOutput>,
    ) {
        assert!(!self.bootstrapped, "cluster already bootstrapped");
        self.bootstrapped = true;
        // Raw outputs are buffered per member: conversion must wait for
        // the ownership assignment below (one-time cost, not a hot path).
        let mut raw: Vec<(u32, Vec<ControllerOutput>)> = Vec::new();
        let mut scratch = OutputSink::new();
        self.nodes[0].ctrl.bootstrap(now_ns, graph, &mut scratch);
        raw.push((0, scratch.take_buf()));
        let snapshot = self.nodes[0]
            .ctrl
            .freeze_grouping()
            .expect("member 0 just bootstrapped");
        for node in self.nodes.iter_mut().skip(1) {
            let mut sink = OutputSink::new();
            node.ctrl
                .bootstrap_shared(now_ns, snapshot.clone(), &mut sink);
            raw.push((node.id, sink.take_buf()));
        }
        // Freeze the plane's dense switch → group view from the snapshot.
        let grouping = self.nodes[0].ctrl.grouping();
        let num_groups = grouping.num_groups().unwrap_or(0);
        for s in 0..self.group_of_switch.len() {
            self.group_of_switch[s] = grouping.group_of(SwitchId::new(s as u32));
        }
        let members: Vec<u32> = self.nodes.iter().map(|n| n.id).collect();
        self.ownership.assign_round_robin(num_groups, &members);
        // Peers start "heard from" at bootstrap so silence is measured
        // from t=0, not from negative infinity. The election likewise
        // starts from agreed consensus (term 1, member 0 leads) — sound
        // because bootstrap is a synchronous, fault-free step.
        for i in 0..self.nodes.len() {
            let others: Vec<u32> = members.iter().copied().filter(|&m| m != i as u32).collect();
            for o in others {
                self.nodes[i].last_hb_from.insert(o, now_ns);
            }
            self.nodes[i].election = ElectionState::bootstrap_consensus(i as u32, now_ns);
        }

        for (id, mut outs) in raw {
            self.convert_outputs(id, &mut outs, true, out);
        }
        let arms: Vec<(u32, u32)> = self.nodes.iter().map(|n| (n.id, n.timer_gen)).collect();
        for (id, gen) in arms {
            self.cluster_timer_arms(id, gen, out);
        }
    }

    // ---- Switch-facing path --------------------------------------------

    /// Handles a message arriving from a switch. The driver routes it here
    /// after consulting [`Self::owner_of_switch`]; messages to a crashed
    /// member vanish (that is the outage the failover scenario measures).
    pub fn handle_switch_message(
        &mut self,
        now_ns: u64,
        from: SwitchId,
        msg: &Message,
        out: &mut OutputSink<ClusterOutput>,
    ) {
        let Some(owner) = self.owner_of_switch(from) else {
            self.note_step(now_ns);
            return;
        };
        self.handle_switch_message_at(now_ns, owner, from, msg, out);
    }

    /// Bounded-ingress admission: drains the member's leaky bucket to
    /// `now_ns`, then either admits the message (charging its virtual
    /// service cost) or sheds it by priority class. Critical traffic —
    /// keepalives, liveness reports, anything election-bearing — is
    /// always admitted; flow setups shed first (at `slots`), lookups
    /// next (`1.5 × slots`), ownership/sync last (`2 × slots`).
    /// Shedding a flow setup emits a rate-limited ECN-style
    /// [`CongestionNoticeMsg`] back to the offending switch so it paces
    /// its PacketIn-driven setups. The whole path is closed-form in
    /// virtual time — no RNG draws — so replicated-RNG lockstep and
    /// bit-exact worker-count determinism hold by construction.
    ///
    /// Returns true when the message was admitted. A no-op returning
    /// true when the queue is unbounded (`ingress_queue_slots == 0`,
    /// the default), which keeps pre-existing reports bit-identical.
    fn admit_ingress(
        &mut self,
        now_ns: u64,
        owner: u32,
        from: SwitchId,
        msg: &Message,
        out: &mut OutputSink<ClusterOutput>,
    ) -> bool {
        let slots = self.cfg.ingress_queue_slots as u64;
        if slots == 0 {
            return true;
        }
        let cost = self.cfg.ingress_cost_ns;
        let node = &mut self.nodes[owner as usize];
        let elapsed = now_ns.saturating_sub(node.ingress_last_ns);
        node.ingress_queued_ns = node.ingress_queued_ns.saturating_sub(elapsed);
        node.ingress_last_ns = now_ns;
        let prio = msg.priority();
        // Per-class high-water marks: the lower the class, the earlier it
        // sheds as backlog builds — the degradation ladder.
        let cap_ns = match prio {
            MsgPriority::Critical => u64::MAX,
            MsgPriority::OwnershipSync => slots.saturating_mul(2).saturating_mul(cost),
            MsgPriority::Lookup => slots.saturating_mul(3).saturating_mul(cost) / 2,
            MsgPriority::FlowSetup => slots.saturating_mul(cost),
        };
        if prio != MsgPriority::Critical && node.ingress_queued_ns.saturating_add(cost) > cap_ns {
            node.ingress_shed[prio.index()] += 1;
            if prio == MsgPriority::FlowSetup {
                let gap_ns = self.cfg.congestion_notice_interval_ms as u64 * 1_000_000;
                if node.last_congestion_notice_ns == 0
                    || now_ns.saturating_sub(node.last_congestion_notice_ns) >= gap_ns
                {
                    node.last_congestion_notice_ns = now_ns;
                    node.congestion_signals += 1;
                    // Pressure level: how many times over the flow-setup
                    // mark the backlog sits — the switch applies that many
                    // extra backoff doublings (capped on its side).
                    let level = (node.ingress_queued_ns / cap_ns.max(1)).clamp(1, 6) as u8;
                    let xid = node.next_xid();
                    out.push(ClusterOutput::ToSwitch {
                        from: owner,
                        to: from,
                        msg: Message::lazy(
                            xid,
                            LazyMsg::CongestionNotice(CongestionNoticeMsg { from: owner, level }),
                        ),
                    });
                }
            }
            return false;
        }
        node.ingress_queued_ns = node.ingress_queued_ns.saturating_add(cost);
        node.queue_highwater = node.queue_highwater.max(node.ingress_queued_ns / cost);
        true
    }

    /// Handles a switch message at an explicit member, bypassing the
    /// ownership route. This is the re-homing entry point: a driver whose
    /// network model says the owner is unreachable from the switch can,
    /// after its detection deadline, steer the traffic to a stand-in
    /// member. The stand-in serves from its replica and caches exactly as
    /// an owner would — ownership itself does not move, so when the
    /// partition heals the switch simply routes home again.
    pub fn handle_switch_message_at(
        &mut self,
        now_ns: u64,
        owner: u32,
        from: SwitchId,
        msg: &Message,
        out: &mut OutputSink<ClusterOutput>,
    ) {
        self.note_step(now_ns);
        if self.nodes[owner as usize].crashed {
            return;
        }
        if !self.admit_ingress(now_ns, owner, from, msg, out) {
            return;
        }
        if let Some(g) = self.group_of_switch(from) {
            *self.group_window.entry(g).or_insert(0) += 1;
        }
        self.nodes[owner as usize].requests_handled += 1;

        // Inter-shard pre-resolution: a PacketIn towards a host this shard
        // does not know is first tried against the replica, then against a
        // synchronous peer lookup.
        if let Some(dst) = unresolved_unicast_dst(&self.nodes[owner as usize].ctrl, msg) {
            let replicated = self.nodes[owner as usize].replica.lookup(dst);
            if let Some(entry) = replicated {
                self.seed_clib(owner, now_ns, &[entry], out);
                self.process_at(owner, now_ns, from, msg, out);
                return;
            }
            let peers: Vec<u32> = self
                .live_members()
                .into_iter()
                .filter(|&p| p != owner)
                .collect();
            // A read-only (minority-partitioned) member serves from its
            // caches only: a lookup fan-out would just wedge on peers it
            // cannot reach, so the queued message goes straight to the
            // inner controller's scoped-ARP relay fallback instead.
            if self.cfg.enable_lookup && !peers.is_empty() && !self.nodes[owner as usize].read_only
            {
                let lookup_timeout_ns = self.cfg.lookup_timeout_ms as u64 * 1_000_000;
                let node = &mut self.nodes[owner as usize];
                let pending = node.pending_lookups.entry(dst).or_default();
                pending.queued.push((from, msg.clone()));
                if !pending.waiting_on.is_empty() {
                    // A lookup is already in flight; ride it.
                    return;
                }
                pending.waiting_on = peers.iter().copied().collect();
                pending.deadline_ns = now_ns + lookup_timeout_ns;
                pending.retries = 0;
                for p in peers {
                    let xid = self.nodes[owner as usize].next_xid();
                    out.push(ClusterOutput::ToCtrl {
                        from: owner,
                        to: p,
                        msg: Message::cluster(
                            xid,
                            ClusterMsg::LookupRequest(LookupRequestMsg {
                                from: owner,
                                mac: dst,
                            }),
                        ),
                    });
                }
                return;
            }
        }
        self.process_at(owner, now_ns, from, msg, out);
    }

    /// Runs a switch message through a member's inner controller, captures
    /// replication deltas, and converts the outputs.
    fn process_at(
        &mut self,
        id: u32,
        now_ns: u64,
        from: SwitchId,
        msg: &Message,
        out: &mut OutputSink<ClusterOutput>,
    ) {
        let node = &mut self.nodes[id as usize];
        // Mirror the controller's C-LIB learning into the replication
        // outbox (same sources: PacketIn source learning, L-FIB syncs).
        match &msg.body {
            MessageBody::Of(OfMessage::PacketIn(pi)) => {
                if let Ok(frame) = EthernetFrame::decode(&pi.data) {
                    if frame.src.is_unicast() {
                        let tenant = frame.vlan.map(|t| t.vid()).unwrap_or(TenantId::NONE);
                        let entry = HostEntry {
                            mac: frame.src,
                            switch: from,
                            port: pi.in_port,
                            tenant,
                        };
                        node.outbox_entries.insert(frame.src, entry);
                        node.outbox_removed.remove(&frame.src);
                    }
                }
            }
            MessageBody::Lazy(LazyMsg::LfibSync(sync)) => {
                for e in &sync.entries {
                    let entry = HostEntry {
                        mac: e.mac,
                        switch: sync.origin,
                        port: e.port,
                        tenant: e.tenant,
                    };
                    node.outbox_entries.insert(e.mac, entry);
                    node.outbox_removed.remove(&e.mac);
                }
                for mac in &sync.removed {
                    node.outbox_entries.remove(mac);
                    node.outbox_removed.insert(*mac, sync.origin);
                }
            }
            _ => {}
        }
        node.ctrl
            .handle_message(now_ns, from, msg, &mut self.ctrl_scratch);
        self.convert_scratch(id, false, out);
    }

    // ---- Controller-to-controller path ---------------------------------

    /// Handles a message arriving on the controller-peer link. (`from` is
    /// the link-level sender; the protocol carries origins in the message
    /// bodies, which is what the handlers trust — except transfer acks,
    /// which go back to whoever delivered the announcement.)
    pub fn handle_ctrl_message(
        &mut self,
        now_ns: u64,
        from: u32,
        to: u32,
        msg: &Message,
        out: &mut OutputSink<ClusterOutput>,
    ) {
        self.note_step(now_ns);
        if self.nodes[to as usize].crashed {
            return;
        }
        let body = match (msg.as_cluster(), msg.as_lazy()) {
            (Some(cluster), _) => CtrlBody::Cluster(cluster),
            // Table-I reuse: controller-ring loss observations travel as
            // the same WheelReport message switches use.
            (_, Some(LazyMsg::WheelReport(report))) => CtrlBody::Wheel(*report),
            _ => return,
        };
        match body {
            CtrlBody::Wheel(report) => self.observe_ctrl_loss(to, now_ns, report, out),
            CtrlBody::Cluster(ClusterMsg::PeerSync(sync)) => {
                // Direct sync: flood delivery or anti-entropy catch-up.
                // Applied unconditionally (replica application is
                // idempotent) — the dedup window only guards the relay
                // overlay against re-circulation.
                let node = &mut self.nodes[to as usize];
                if sync.origin != to {
                    // Always apply (idempotent, and a catch-up sync's
                    // payload is a superset of the original chunk under
                    // the same key) — the dedup window only decides how
                    // the application is *counted*.
                    let fresh = node.note_seen(sync);
                    node.replica.apply(sync);
                    if fresh {
                        node.traffic.direct_applies += 1;
                    } else {
                        node.traffic.duplicate_drops += 1;
                    }
                }
            }
            CtrlBody::Cluster(ClusterMsg::SyncRelay(bundle)) => self.absorb_relay(to, bundle, out),
            CtrlBody::Cluster(ClusterMsg::SyncDigest(digest)) => self.serve_digest(to, digest, out),
            CtrlBody::Cluster(ClusterMsg::Heartbeat(hb)) => {
                let came_back = self.confirmed_dead.remove(&hb.from);
                let node = &mut self.nodes[to as usize];
                node.last_hb_from.insert(hb.from, now_ns);
                node.peer_loads.insert(hb.from, hb.load_rps);
                node.detector.mark_recovered(ctrl_pseudo_switch(hb.from));
                node.election.observe_term(hb.term);
                if hb.leader {
                    // Only a *leader's* heartbeat suppresses candidacy —
                    // follower chatter proves nothing about leadership.
                    if node.election.accept_leader(hb.term, hb.from, now_ns) {
                        // Following a live leader ends read-only
                        // degradation: the cluster is functioning again.
                        node.read_only = false;
                    }
                }
                if self.nodes[to as usize].read_only && self.holds_lease(to, now_ns) {
                    // The partition healed from this side's perspective:
                    // a majority is heartbeating again.
                    self.nodes[to as usize].read_only = false;
                }
                if came_back {
                    // The member rebooted; future rebalance checks may hand
                    // groups back. Nothing to emit now.
                }
            }
            CtrlBody::Cluster(ClusterMsg::OwnershipTransfer(t)) => {
                // The plane's authoritative map was updated at initiation;
                // the new owner seeds its C-LIB shard when it *hears* about
                // the transfer, which is the asynchronous part.
                if t.to == to {
                    let node = &mut self.nodes[to as usize];
                    let first = node.delivered_transfers.insert(t.epoch);
                    // Always ack — even a duplicate announcement, since
                    // the *previous ack* may be what was lost. The ack
                    // goes to the link-level sender (the announcing
                    // leader, original or retransmitting).
                    let xid = node.next_xid();
                    out.push(ClusterOutput::ToCtrl {
                        from: to,
                        to: from,
                        msg: Message::cluster(
                            xid,
                            ClusterMsg::TransferAck(TransferAckMsg {
                                from: to,
                                epoch: t.epoch,
                                group: t.group,
                            }),
                        ),
                    });
                    if first {
                        self.seed_group(to, now_ns, t.group.index(), out);
                    }
                }
            }
            CtrlBody::Cluster(ClusterMsg::TransferAck(ack)) => {
                let node = &mut self.nodes[to as usize];
                if node
                    .unacked_transfers
                    .get(&ack.epoch)
                    .is_some_and(|u| u.msg.to == ack.from)
                {
                    node.unacked_transfers.remove(&ack.epoch);
                }
            }
            CtrlBody::Cluster(ClusterMsg::VoteRequest(req)) => {
                let node = &mut self.nodes[to as usize];
                let granted = node.election.grant_vote(req.term, req.candidate);
                let term = node.election.term;
                let xid = node.next_xid();
                out.push(ClusterOutput::ToCtrl {
                    from: to,
                    to: req.candidate,
                    msg: Message::cluster(
                        xid,
                        ClusterMsg::VoteReply(VoteReplyMsg {
                            term,
                            from: to,
                            granted,
                        }),
                    ),
                });
            }
            CtrlBody::Cluster(ClusterMsg::VoteReply(reply)) => {
                let cluster_size = self.nodes.len();
                let node = &mut self.nodes[to as usize];
                if node.election.observe_term(reply.term) {
                    // A peer is already in a newer term; this candidacy is
                    // over (observe_term stepped us down).
                    return;
                }
                if reply.granted
                    && reply.term == node.election.term
                    && node.election.role == ElectionRole::Candidate
                {
                    node.election.record_grant(reply.from);
                    if node.election.has_majority(cluster_size) {
                        self.win_election(to, now_ns, out);
                    }
                }
            }
            CtrlBody::Cluster(ClusterMsg::LeaderClaim(claim)) => {
                let node = &mut self.nodes[to as usize];
                if node
                    .election
                    .accept_leader(claim.term, claim.leader, now_ns)
                {
                    node.read_only = false;
                }
            }
            CtrlBody::Cluster(ClusterMsg::LookupRequest(req)) => {
                let node = &mut self.nodes[to as usize];
                let location = node
                    .ctrl
                    .clib()
                    .locate(req.mac)
                    .map(|loc| HostEntry {
                        mac: req.mac,
                        switch: loc.switch,
                        port: loc.port,
                        tenant: loc.tenant,
                    })
                    .or_else(|| node.replica.lookup(req.mac));
                let xid = node.next_xid();
                out.push(ClusterOutput::ToCtrl {
                    from: to,
                    to: req.from,
                    msg: Message::cluster(
                        xid,
                        ClusterMsg::LookupReply(LookupReplyMsg {
                            from: to,
                            mac: req.mac,
                            location,
                        }),
                    ),
                });
            }
            CtrlBody::Cluster(ClusterMsg::LookupReply(reply)) => {
                self.resolve_lookup(to, now_ns, reply, out);
            }
        }
    }

    /// Applies a lookup reply: on a hit, seed the shard's C-LIB and replay
    /// the queued switch messages; when every peer came back empty, replay
    /// anyway so the inner controller runs its scoped-ARP relay fallback.
    fn resolve_lookup(
        &mut self,
        id: u32,
        now_ns: u64,
        reply: &LookupReplyMsg,
        out: &mut OutputSink<ClusterOutput>,
    ) {
        let node = &mut self.nodes[id as usize];
        let Some(pending) = node.pending_lookups.get_mut(&reply.mac) else {
            return;
        };
        pending.waiting_on.remove(&reply.from);
        let resolved = reply.location.is_some();
        if !resolved && !pending.waiting_on.is_empty() {
            return;
        }
        let queued = std::mem::take(&mut pending.queued);
        node.pending_lookups.remove(&reply.mac);
        if let Some(entry) = reply.location {
            self.seed_clib(id, now_ns, &[entry], out);
        }
        for (from, msg) in queued {
            self.process_at(id, now_ns, from, &msg, out);
        }
    }

    /// Deadline sweep for pending peer lookups (runs on the heartbeat
    /// tick): an expired round counts as a timeout and retries against
    /// the next-best outstanding replica with exponential backoff; once
    /// the retry budget is spent the lookup is abandoned and its queued
    /// switch messages replay through the inner controller's scoped-ARP
    /// relay fallback — a dead or partitioned peer must not strand a
    /// flow setup forever.
    fn expire_lookups(&mut self, id: u32, now_ns: u64, out: &mut OutputSink<ClusterOutput>) {
        if self.nodes[id as usize].pending_lookups.is_empty() {
            return;
        }
        let timeout_ns = self.cfg.lookup_timeout_ms as u64 * 1_000_000;
        let max_retries = self.cfg.lookup_max_retries;
        let expired: Vec<MacAddr> = self.nodes[id as usize]
            .pending_lookups
            .iter()
            .filter(|(_, p)| !p.waiting_on.is_empty() && now_ns >= p.deadline_ns)
            .map(|(&mac, _)| mac)
            .collect();
        for mac in expired {
            let node = &mut self.nodes[id as usize];
            node.lookup_timeouts += 1;
            let pending = node.pending_lookups.get_mut(&mac).expect("just listed");
            if pending.retries >= max_retries {
                let queued = std::mem::take(&mut pending.queued);
                node.pending_lookups.remove(&mac);
                for (from, msg) in queued {
                    self.process_at(id, now_ns, from, &msg, out);
                }
                continue;
            }
            pending.retries += 1;
            let retries = pending.retries;
            // Next-best replica: the lowest-id peer still outstanding
            // (the ones that answered are gone from the set already).
            let target = *pending.waiting_on.iter().next().expect("set is non-empty");
            pending.deadline_ns = now_ns + timeout_ns * (1u64 << retries.min(16));
            let xid = node.next_xid();
            out.push(ClusterOutput::ToCtrl {
                from: id,
                to: target,
                msg: Message::cluster(
                    xid,
                    ClusterMsg::LookupRequest(LookupRequestMsg { from: id, mac }),
                ),
            });
        }
    }

    /// Feeds one controller-ring loss observation into a member's Table-I
    /// detector; a both-directions inference triggers takeover if this
    /// member is the leader.
    fn observe_ctrl_loss(
        &mut self,
        at: u32,
        now_ns: u64,
        report: WheelReportMsg,
        out: &mut OutputSink<ClusterOutput>,
    ) {
        let inferred = self.nodes[at as usize].detector.observe(now_ns, &report);
        let Some(FailureKind::Switch(pseudo)) = inferred else {
            // Single-direction losses on the controller ring are link
            // noise; only a both-directions silence is a dead controller.
            return;
        };
        let dead = pseudo.0 & !CTRL_PSEUDO_BASE;
        if self.confirmed_dead.contains(&dead) {
            return;
        }
        // Only a member that *believes itself* leader acts — a distributed
        // decision, unlike the old lowest-live-id rule which two members
        // could transiently disagree on. A node elected *after* its
        // detector latched the death handles it via the takeover sweep in
        // `win_election` (the detector infers each death exactly once).
        if self.nodes[at as usize].election.role != ElectionRole::Leader {
            return;
        }
        // Partition guard: a leader without a live majority lease must
        // not confirm deaths — on the minority side of a partition its
        // detector sees exactly the cross-cut silence a real crash would
        // produce, and a takeover here is how split-brain ownership is
        // minted. Degrade to read-only instead; the majority side (which
        // still holds quorum) runs the takeover. The death stays latched
        // in this member's detector, so if it is ever legitimately
        // re-elected, the `win_election` sweep revisits it.
        if !self.holds_lease(at, now_ns) {
            self.step_down_read_only(at);
            return;
        }
        self.take_over(at, now_ns, dead, out);
    }

    /// Leader-side takeover: move every group of `dead` to the surviving
    /// members (least-loaded first), announce the transfers, and seed the
    /// leader's own shard where it is the new owner.
    fn take_over(
        &mut self,
        leader: u32,
        now_ns: u64,
        dead: u32,
        out: &mut OutputSink<ClusterOutput>,
    ) {
        self.confirmed_dead.insert(dead);
        // Transfers still awaiting the dead member's ack are moot: its
        // groups are about to move again, to live targets.
        self.nodes[leader as usize]
            .unacked_transfers
            .retain(|_, u| u.msg.to != dead);
        let groups = self.ownership.groups_of(dead);
        // live_members() excludes `dead` now that it is confirmed dead.
        let mut survivors: Vec<u32> = self.live_members();
        if survivors.is_empty() {
            return;
        }
        // Lookups waiting on the dead member would wedge forever: sweep it
        // from every pending set, and replay lookups that just lost their
        // final outstanding reply (the inner controller's relay fallback
        // takes over).
        let mut replays: Vec<(u32, SwitchId, Message)> = Vec::new();
        for node in &mut self.nodes {
            if node.crashed {
                continue;
            }
            let nid = node.id;
            node.pending_lookups.retain(|_, pending| {
                pending.waiting_on.remove(&dead);
                if pending.waiting_on.is_empty() {
                    for (from, msg) in pending.queued.drain(..) {
                        replays.push((nid, from, msg));
                    }
                    false
                } else {
                    true
                }
            });
        }
        for (nid, from, msg) in replays {
            self.process_at(nid, now_ns, from, &msg, out);
        }
        // Least-loaded first so the takeover itself rebalances.
        survivors.sort_by(|&a, &b| {
            self.load_of(a, now_ns)
                .partial_cmp(&self.load_of(b, now_ns))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        let term = self.nodes[leader as usize].election.term;
        for (i, &g) in groups.iter().enumerate() {
            let target = survivors[i % survivors.len()];
            let t = self
                .ownership
                .transfer(g, target, TransferReason::Failover, term);
            self.transfers.push(t);
            if target != leader {
                // Track until the target acks; heartbeat ticks retransmit
                // with capped exponential backoff.
                let hb_ns = self.cfg.heartbeat_interval_ms as u64 * 1_000_000;
                self.nodes[leader as usize].unacked_transfers.insert(
                    t.epoch,
                    UnackedTransfer {
                        msg: t,
                        attempts: 0,
                        next_retry_ns: now_ns + hb_ns,
                    },
                );
            }
            for &peer in &survivors {
                if peer == leader {
                    continue;
                }
                let xid = self.nodes[leader as usize].next_xid();
                out.push(ClusterOutput::ToCtrl {
                    from: leader,
                    to: peer,
                    msg: Message::cluster(xid, ClusterMsg::OwnershipTransfer(t)),
                });
            }
            if target == leader {
                self.seed_group(leader, now_ns, g, out);
            }
        }
        self.takeovers.push((dead, groups.len()));
    }

    // ---- Timers --------------------------------------------------------

    /// Handles a cluster timer.
    pub fn handle_timer(
        &mut self,
        now_ns: u64,
        timer: ClusterTimer,
        out: &mut OutputSink<ClusterOutput>,
    ) {
        self.note_step(now_ns);
        let id = timer.node;
        if self.nodes[id as usize].crashed {
            // A crashed member's timers die with it; `recover` re-arms.
            return;
        }
        if timer.gen != self.nodes[id as usize].timer_gen {
            // A chain armed before a crash; `recover` started fresh ones.
            return;
        }
        match timer.kind {
            ClusterTimerKind::Inner(t) => {
                self.nodes[id as usize]
                    .ctrl
                    .on_timer(now_ns, t, &mut self.ctrl_scratch);
                self.convert_scratch(id, true, out);
            }
            ClusterTimerKind::ReplicaFlush => self.flush_replicas(id, timer, out),
            ClusterTimerKind::Heartbeat => self.heartbeat(id, now_ns, timer, out),
            ClusterTimerKind::RebalanceCheck => self.rebalance_check(id, now_ns, timer, out),
            ClusterTimerKind::AntiEntropy => self.anti_entropy(id, timer, out),
            ClusterTimerKind::Election => self.election_timer(id, now_ns, timer, out),
        }
    }

    /// Election timeout: if no live leader has been heard within the
    /// timeout, open a new term and solicit votes. The timer runs
    /// perpetually on every member (like the other cluster timers) and
    /// no-ops while leadership is healthy.
    fn election_timer(
        &mut self,
        id: u32,
        now_ns: u64,
        timer: ClusterTimer,
        out: &mut OutputSink<ClusterOutput>,
    ) {
        out.push(self.rearm(timer, self.election_interval_ms(id)));
        let timeout_ns = self.cfg.election_timeout_ms as u64 * 1_000_000;
        let cluster_size = self.nodes.len();
        let node = &mut self.nodes[id as usize];
        if node.election.role == ElectionRole::Leader {
            return;
        }
        if node.read_only {
            // A read-only ex-leader knows it cannot reach a majority;
            // spinning terms from the minority island would only disrupt
            // the healed cluster later. Quorum contact clears the flag.
            return;
        }
        if now_ns.saturating_sub(node.election.last_leader_hb_ns) < timeout_ns {
            return;
        }
        node.election.start_candidacy(id);
        let term = node.election.term;
        if node.election.has_majority(cluster_size) {
            // Single-member cluster: own vote is a majority.
            self.win_election(id, now_ns, out);
            return;
        }
        let peers: Vec<u32> = self
            .nodes
            .iter()
            .filter(|n| n.id != id && !self.confirmed_dead.contains(&n.id))
            .map(|n| n.id)
            .collect();
        for peer in peers {
            let xid = self.nodes[id as usize].next_xid();
            out.push(ClusterOutput::ToCtrl {
                from: id,
                to: peer,
                msg: Message::cluster(
                    xid,
                    ClusterMsg::VoteRequest(VoteRequestMsg {
                        term,
                        candidate: id,
                    }),
                ),
            });
        }
    }

    /// A candidate reached majority: assume leadership, announce the
    /// claim, then sweep the detector for deaths this member latched
    /// *before* becoming leader. The detector infers each death exactly
    /// once ([`FailureDetector::observe`] latches), so without the sweep
    /// a death inferred while this member was a follower would never be
    /// taken over by anyone.
    fn win_election(&mut self, id: u32, now_ns: u64, out: &mut OutputSink<ClusterOutput>) {
        let term = {
            let node = &mut self.nodes[id as usize];
            node.election.become_leader(id);
            node.election.last_leader_hb_ns = now_ns;
            // A fresh majority of votes is quorum evidence in itself.
            node.read_only = false;
            node.election.term
        };
        // Election-safety monitor: a term may crown at most one leader.
        match self.term_leaders.get(&term) {
            Some(&prev) if prev != id => self.double_leader_events += 1,
            Some(_) => {}
            None => {
                self.term_leaders.insert(term, id);
            }
        }
        let peers: Vec<u32> = self
            .nodes
            .iter()
            .filter(|n| n.id != id && !self.confirmed_dead.contains(&n.id))
            .map(|n| n.id)
            .collect();
        for peer in peers {
            let xid = self.nodes[id as usize].next_xid();
            out.push(ClusterOutput::ToCtrl {
                from: id,
                to: peer,
                msg: Message::cluster(
                    xid,
                    ClusterMsg::LeaderClaim(LeaderClaimMsg { term, leader: id }),
                ),
            });
        }
        let latched: Vec<u32> = self.nodes[id as usize]
            .detector
            .down_switches()
            .into_iter()
            .filter(|p| p.0 & CTRL_PSEUDO_BASE == CTRL_PSEUDO_BASE)
            .map(|p| p.0 & !CTRL_PSEUDO_BASE)
            .filter(|d| *d != id && !self.confirmed_dead.contains(d))
            .collect();
        for dead in latched {
            self.take_over(id, now_ns, dead, out);
        }
    }

    fn rearm(&self, timer: ClusterTimer, interval_ms: u32) -> ClusterOutput {
        ClusterOutput::SetTimer(timer, interval_ms as u64 * 1_000_000)
    }

    /// Drains the member's C-LIB delta outbox (plus any foreign chunks
    /// queued for relay) onto the dissemination overlay: per-peer
    /// `PeerSync`s under flood, one `SyncRelay` bundle per overlay edge
    /// under ring/tree — the bundling that turns a flush round from
    /// O(n²) messages into O(n).
    fn flush_replicas(
        &mut self,
        id: u32,
        timer: ClusterTimer,
        out: &mut OutputSink<ClusterOutput>,
    ) {
        let mut alive = self.believed_alive();
        // A recovered member may flush before its comeback heartbeat
        // un-confirms it cluster-wide. It must still occupy its own
        // overlay slot, or the ring route degenerates to Nowhere and the
        // flush (outbox already drained, sequence already bumped) is
        // silently lost until anti-entropy happens to repair it.
        if let Err(i) = alive.binary_search(&id) {
            alive.insert(i, id);
        }
        let chunk_size = self.cfg.sync_chunk_entries;
        let node = &mut self.nodes[id as usize];
        let mut own_chunks: Vec<PeerSyncMsg> = Vec::new();
        if alive.len() > 1 && (!node.outbox_entries.is_empty() || !node.outbox_removed.is_empty()) {
            node.sync_seq += 1;
            let entries: Vec<HostEntry> = std::mem::take(&mut node.outbox_entries)
                .into_values()
                .collect();
            let removed: Vec<(MacAddr, SwitchId)> = std::mem::take(&mut node.outbox_removed)
                .into_iter()
                .collect();
            // Remember flushed withdrawals (bounded, oldest evicted) for
            // the snapshot fallback; a fresh learn supersedes the
            // tombstone.
            for e in &entries {
                node.own_tombstones.remove(&e.mac);
            }
            for (mac, sw) in &removed {
                node.tomb_stamp += 1;
                node.own_tombstones.insert(*mac, (*sw, node.tomb_stamp));
            }
            crate::replica::evict_oldest(
                &mut node.own_tombstones,
                crate::replica::TOMBSTONE_CAP,
                |&(_, stamp)| stamp,
            );
            // Bounded chunks (~64 KiB at the default 2000 × 14 B) keep the
            // largest wire message flat no matter how much churn a flush
            // interval accumulated.
            own_chunks = PeerSyncMsg::chunked(id, node.sync_seq, entries, removed, chunk_size);
            node.traffic.chunks_created += own_chunks.len() as u64;
            node.log_own_chunks(&own_chunks, self.cfg.delta_log_flushes);
        }

        match self.strategy.flush_route(id, &alive) {
            FlushRoute::DirectToAll(peers) => {
                // Flood never queues relays, so only own chunks go out.
                for peer in peers {
                    for chunk in &own_chunks {
                        let o = self.send_sync(id, peer, chunk.clone());
                        out.push(o);
                    }
                }
            }
            FlushRoute::BundleTo(peer) => {
                let node = &mut self.nodes[id as usize];
                let mut syncs: Vec<PeerSyncMsg> = node.relay_outbox.drain(..).collect();
                syncs.extend(own_chunks);
                if !syncs.is_empty() {
                    let o = self.send_bundle(id, peer, syncs);
                    out.push(o);
                }
            }
            FlushRoute::BundleToEach(peers) => {
                let node = &mut self.nodes[id as usize];
                let mut syncs: Vec<PeerSyncMsg> = node.relay_outbox.drain(..).collect();
                syncs.extend(own_chunks);
                if !syncs.is_empty() {
                    for peer in peers {
                        let o = self.send_bundle(id, peer, syncs.clone());
                        out.push(o);
                    }
                }
            }
            FlushRoute::Nowhere => {}
        }
        out.push(self.rearm(timer, self.cfg.replica_flush_interval_ms));
    }

    /// Builds (and counts) one direct peer-sync message.
    fn send_sync(&mut self, from: u32, to: u32, sync: PeerSyncMsg) -> ClusterOutput {
        let node = &mut self.nodes[from as usize];
        node.traffic.messages_sent += 1;
        node.traffic.bytes_sent += sync.wire_len() as u64;
        let xid = node.next_xid();
        ClusterOutput::ToCtrl {
            from,
            to,
            msg: Message::cluster(xid, ClusterMsg::peer_sync(sync)),
        }
    }

    /// Builds (and counts) one relay bundle.
    fn send_bundle(&mut self, from: u32, to: u32, syncs: Vec<PeerSyncMsg>) -> ClusterOutput {
        let bundle = SyncRelayMsg { from, syncs };
        let node = &mut self.nodes[from as usize];
        node.traffic.messages_sent += 1;
        node.traffic.bytes_sent += bundle.wire_len() as u64;
        let xid = node.next_xid();
        ClusterOutput::ToCtrl {
            from,
            to,
            msg: Message::cluster(xid, ClusterMsg::sync_relay(bundle)),
        }
    }

    /// Absorbs a relay bundle at `at`: applies every chunk not seen
    /// before, queues survivors for the next overlay hop per the strategy,
    /// and — on a tree down-path edge — re-fans the *fresh* chunks to the
    /// children immediately. Chunks already in the dedup window (including
    /// this member's own chunks completing a lap) are not re-fanned: a
    /// duplicated bundle would otherwise multiply down the subtree, and
    /// every extra copy costs a wire message even though receivers dedup —
    /// the at-most-once forwarding property the model checker verifies.
    fn absorb_relay(
        &mut self,
        at: u32,
        bundle: &SyncRelayMsg,
        out: &mut OutputSink<ClusterOutput>,
    ) {
        let alive = self.believed_alive();
        let cap = self.cfg.relay_buffer_chunks;
        let mut fresh_chunks: Vec<PeerSyncMsg> = Vec::new();
        {
            let node = &mut self.nodes[at as usize];
            for sync in &bundle.syncs {
                #[cfg(not(feature = "mc-mutations"))]
                let fresh = node.note_seen(sync);
                // Deliberate protocol mutation for checker self-tests:
                // treat every chunk as fresh, reintroducing the
                // duplicate-refan bug the dedup window exists to prevent.
                #[cfg(feature = "mc-mutations")]
                let fresh = {
                    let _ = node.note_seen(sync);
                    true
                };
                if !fresh {
                    node.traffic.duplicate_drops += 1;
                    continue;
                }
                if sync.origin != at {
                    // Foreign chunk: absorb it. (An own chunk completing a
                    // lap is already applied locally — only its forwarding
                    // freshness matters.)
                    node.replica.apply(sync);
                    node.traffic.relay_applies += 1;
                    if self.strategy.should_queue_relay(at, sync.origin, &alive) {
                        node.queue_relay(sync.clone(), cap);
                    }
                }
                fresh_chunks.push(sync.clone());
            }
        }
        // Tree down-path: push the fresh chunks to the children right away.
        if !fresh_chunks.is_empty() {
            let children = self.strategy.immediate_relay(at, bundle.from, &alive);
            for child in children {
                let o = self.send_bundle(at, child, fresh_chunks.clone());
                out.push(o);
            }
        }
    }

    /// Sends this member's anti-entropy digest to one rotating
    /// believed-alive peer.
    fn anti_entropy(&mut self, id: u32, timer: ClusterTimer, out: &mut OutputSink<ClusterOutput>) {
        let peers: Vec<u32> = self
            .believed_alive()
            .into_iter()
            .filter(|&p| p != id)
            .collect();
        if !peers.is_empty() {
            let node = &mut self.nodes[id as usize];
            let target = peers[(node.ae_round % peers.len() as u64) as usize];
            node.ae_round += 1;
            let mut heads: BTreeMap<u32, u64> = node.replica.heads().into_iter().collect();
            heads.insert(id, node.sync_seq);
            node.traffic.digests_sent += 1;
            let xid = node.next_xid();
            out.push(ClusterOutput::ToCtrl {
                from: id,
                to: target,
                msg: Message::cluster(
                    xid,
                    ClusterMsg::sync_digest(SyncDigestMsg {
                        from: id,
                        heads: heads.into_iter().collect(),
                    }),
                ),
            });
        }
        out.push(self.rearm(timer, self.cfg.anti_entropy_interval_ms));
    }

    /// Serves a peer's digest at `at`: for every origin where the sender
    /// trails this member's contiguous knowledge, push the gap back
    /// directly — an exact replay from the delta log for `at`'s own
    /// origin (falling back to a full-shard *summary* snapshot when the
    /// log was truncated), and for foreign origins a summary of the
    /// attributed replica knowledge up to this member's contiguous head
    /// (entries plus tombstoned withdrawals), followed by any
    /// beyond-the-gap deltas it holds pending. This is what reconverges a
    /// member that slept through relayed deltas — and, because digests
    /// carry *contiguous* heads, it also repairs holes punched into the
    /// middle of a member's sequence by mid-circulation crashes.
    fn serve_digest(
        &mut self,
        at: u32,
        digest: &SyncDigestMsg,
        out: &mut OutputSink<ClusterOutput>,
    ) {
        let their: BTreeMap<u32, u64> = digest.heads.iter().copied().collect();
        let chunk_size = self.cfg.sync_chunk_entries;
        let mut to_send: Vec<PeerSyncMsg> = Vec::new();
        {
            let node = &mut self.nodes[at as usize];
            // Own origin: exact replay from the bounded delta log.
            let sender_head = their.get(&at).copied().unwrap_or(0);
            if sender_head < node.sync_seq {
                let oldest_logged = node.delta_log.front().map(|s| s.seq);
                let log_covers = oldest_logged.is_some_and(|o| o <= sender_head + 1);
                if log_covers {
                    to_send.extend(
                        node.delta_log
                            .iter()
                            .filter(|s| s.seq > sender_head)
                            .cloned(),
                    );
                } else {
                    // The log no longer reaches back far enough: send the
                    // authoritative shard — entries from the C-LIB (the
                    // origin's ground truth) plus remembered withdrawals
                    // (`own_tombstones`), so a far-behind peer's stale
                    // entries get removed instead of surviving behind an
                    // advanced head — as a summary snapshot under the
                    // *current* sequence. No bump, no log entry, no
                    // chunks_created: the snapshot is repair traffic
                    // rebuilt from the C-LIB on demand, and advancing the
                    // sequence here would make every *other* peer trail
                    // by one head and digest the same full shard in turn.
                    let entries: Vec<HostEntry> = node
                        .ctrl
                        .clib()
                        .iter()
                        .map(|(mac, loc)| HostEntry {
                            mac,
                            switch: loc.switch,
                            port: loc.port,
                            tenant: loc.tenant,
                        })
                        .collect();
                    let removed: Vec<(MacAddr, SwitchId)> = node
                        .own_tombstones
                        .iter()
                        .map(|(mac, (sw, _))| (*mac, *sw))
                        .collect();
                    let mut chunks =
                        PeerSyncMsg::chunked(at, node.sync_seq, entries, removed, chunk_size);
                    mark_last_as_summary(&mut chunks);
                    to_send.extend(chunks);
                }
            }
            // Foreign origins: the *gap* the sender is missing —
            // attributed knowledge in `(their_head, my_head]`, never
            // beyond this member's own contiguous head (that would claim
            // completeness over a gap it has itself) — then the pending
            // beyond-the-gap deltas as ordinary deltas.
            for (origin, my_head) in node.replica.heads() {
                if origin == digest.from || origin == at {
                    continue;
                }
                let their_head = their.get(&origin).copied().unwrap_or(0);
                if their_head < my_head {
                    let (entries, removed) = node.replica.knowledge_since(origin, their_head);
                    let mut chunks =
                        PeerSyncMsg::chunked(origin, my_head, entries, removed, chunk_size);
                    mark_last_as_summary(&mut chunks);
                    to_send.extend(chunks);
                }
                for seq in node.replica.pending_seqs(origin) {
                    if their_head >= seq {
                        continue;
                    }
                    let (entries, removed) = node.replica.pending_delta(origin, seq);
                    to_send.extend(PeerSyncMsg::chunked(
                        origin, seq, entries, removed, chunk_size,
                    ));
                }
            }
            node.traffic.catchup_syncs_sent += to_send.len() as u64;
        }
        // Catch-up rides direct syncs but is *repair* traffic, counted by
        // `catchup_syncs_sent` — not in `messages_sent`, which measures
        // the dissemination overlay's steady-state cost.
        for sync in to_send {
            let xid = self.nodes[at as usize].next_xid();
            out.push(ClusterOutput::ToCtrl {
                from: at,
                to: digest.from,
                msg: Message::cluster(xid, ClusterMsg::peer_sync(sync)),
            });
        }
    }

    /// Sends ring heartbeats (to every live peer, loads piggybacked) and
    /// reports silent ring neighbours via Table-I wheel reports. The
    /// heartbeat tick is also the plane's periodic sweep: leader-lease
    /// maintenance (step down to read-only on majority silence, readmit
    /// on quorum contact) and pending-lookup deadlines ride it.
    fn heartbeat(
        &mut self,
        id: u32,
        now_ns: u64,
        timer: ClusterTimer,
        out: &mut OutputSink<ClusterOutput>,
    ) {
        self.expire_lookups(id, now_ns, out);
        if self.nodes[id as usize].read_only {
            if self.holds_lease(id, now_ns) {
                self.nodes[id as usize].read_only = false;
            }
        } else if self.nodes[id as usize].election.role == ElectionRole::Leader
            && !self.holds_lease(id, now_ns)
        {
            self.step_down_read_only(id);
        }
        let peers: Vec<u32> = self
            .nodes
            .iter()
            .filter(|n| n.id != id && !self.confirmed_dead.contains(&n.id))
            .map(|n| n.id)
            .collect();
        let load = self.load_of(id, now_ns);
        let owned = self.ownership.groups_of(id).len() as u32;
        {
            let node = &mut self.nodes[id as usize];
            node.hb_seq += 1;
            let term = node.election.term;
            let is_leader = node.election.role == ElectionRole::Leader;
            for &peer in &peers {
                let xid = node.next_xid();
                out.push(ClusterOutput::ToCtrl {
                    from: id,
                    to: peer,
                    msg: Message::cluster(
                        xid,
                        ClusterMsg::Heartbeat(CtrlHeartbeatMsg {
                            from: id,
                            seq: node.hb_seq,
                            load_rps: load,
                            owned_groups: owned,
                            term,
                            leader: is_leader,
                        }),
                    ),
                });
            }
            if is_leader {
                // Repair the transfer in-flight-loss window: re-announce
                // unacked transfers that are due, with capped exponential
                // backoff (1, 2, 4, … heartbeat intervals up to the cap) —
                // a long partition must not flood the heal with one
                // retransmit per tick. (Targets already confirmed dead
                // were pruned at takeover; an undetected crash just means
                // the retransmit vanishes and a later tick retries.)
                let hb_ns = self.cfg.heartbeat_interval_ms as u64 * 1_000_000;
                let cap = self.cfg.transfer_retransmit_backoff_cap as u64;
                let mut resend: Vec<OwnershipTransferMsg> = Vec::new();
                for u in node.unacked_transfers.values_mut() {
                    if now_ns < u.next_retry_ns {
                        continue;
                    }
                    u.attempts += 1;
                    let backoff = 1u64.checked_shl(u.attempts).unwrap_or(u64::MAX).min(cap);
                    u.next_retry_ns = now_ns + backoff * hb_ns;
                    resend.push(u.msg);
                }
                node.transfer_retransmits += resend.len() as u64;
                for t in resend {
                    let xid = self.nodes[id as usize].next_xid();
                    out.push(ClusterOutput::ToCtrl {
                        from: id,
                        to: t.to,
                        msg: Message::cluster(xid, ClusterMsg::OwnershipTransfer(t)),
                    });
                }
            }
        }
        // Silence detection on the ring: the reporter's position relative
        // to the missing member fixes the Table-I loss direction.
        if let Some((prev, next)) = self.ring_neighbours(id) {
            let deadline = self.cfg.heartbeat_miss_factor as u64
                * self.cfg.heartbeat_interval_ms as u64
                * 1_000_000;
            for (nb, loss) in [(prev, WheelLoss::Upstream), (next, WheelLoss::Downstream)] {
                if nb == id {
                    continue;
                }
                let last = self.nodes[id as usize]
                    .last_hb_from
                    .get(&nb)
                    .copied()
                    .unwrap_or(0);
                if now_ns.saturating_sub(last) < deadline {
                    continue;
                }
                let report = WheelReportMsg {
                    reporter: ctrl_pseudo_switch(id),
                    missing: ctrl_pseudo_switch(nb),
                    loss,
                };
                // Feed the local detector and gossip the observation so
                // every member (the leader in particular) can correlate
                // both ring directions.
                self.observe_ctrl_loss(id, now_ns, report, out);
                for &peer in &peers {
                    if peer == nb {
                        continue;
                    }
                    let xid = self.nodes[id as usize].next_xid();
                    out.push(ClusterOutput::ToCtrl {
                        from: id,
                        to: peer,
                        msg: Message::lazy(xid, LazyMsg::WheelReport(report)),
                    });
                }
            }
        }
        out.push(self.rearm(timer, self.cfg.heartbeat_interval_ms));
    }

    /// Leader-side skew check over the per-group message window: move one
    /// group from the hottest to the coolest member when the window-count
    /// ratio exceeds the configured skew (and the hot member saw real
    /// activity — an idle cluster's ratio is just noise).
    fn rebalance_check(
        &mut self,
        id: u32,
        now_ns: u64,
        timer: ClusterTimer,
        out: &mut OutputSink<ClusterOutput>,
    ) {
        out.push(self.rearm(timer, self.cfg.rebalance_check_interval_ms));
        if self.nodes[id as usize].election.role != ElectionRole::Leader {
            // The window is plane-global shared state; only the leader may
            // drain it, or phase-shifted non-leader timers (e.g. after a
            // leader restart) would wipe samples before the leader reads
            // them.
            return;
        }
        if !self.holds_lease(id, now_ns) {
            // Rebalance decisions are minted state; a leader without a
            // majority lease degrades instead.
            self.step_down_read_only(id);
            return;
        }
        let live = self.live_members();
        let window = std::mem::take(&mut self.group_window);
        if live.len() < 2 {
            return;
        }
        let count_of = |member: u32| -> u64 {
            self.ownership
                .groups_of(member)
                .iter()
                .map(|g| window.get(g).copied().unwrap_or(0))
                .sum()
        };
        let counts: Vec<(u32, u64)> = live.iter().map(|&m| (m, count_of(m))).collect();
        let (&(hot, hot_count), &(cool, cool_count)) = match (
            counts
                .iter()
                .max_by_key(|&&(m, c)| (c, std::cmp::Reverse(m))),
            counts.iter().min_by_key(|&&(m, c)| (c, m)),
        ) {
            (Some(h), Some(c)) => (h, c),
            _ => return,
        };
        if hot == cool
            || hot_count < self.cfg.rebalance_min_window_msgs
            || (hot_count as f64) < (cool_count.max(1) as f64) * self.cfg.skew_threshold
        {
            return;
        }
        let owned = self.ownership.groups_of(hot);
        if owned.len() < 2 {
            return;
        }
        // Move the busiest group that does not overshoot: the moved count
        // must stay within half the hot-cool gap (plus one so a single
        // dominant group can still move).
        let gap = hot_count - cool_count;
        let mut candidates: Vec<(u64, usize)> = owned
            .iter()
            .map(|&g| (window.get(&g).copied().unwrap_or(0), g))
            .collect();
        candidates.sort_unstable();
        let pick = candidates
            .iter()
            .rev()
            .find(|&&(w, _)| w <= gap / 2 + 1)
            .or_else(|| candidates.first())
            .copied();
        let Some((_, group)) = pick else {
            return;
        };
        let term = self.nodes[id as usize].election.term;
        let t = self
            .ownership
            .transfer(group, cool, TransferReason::Rebalance, term);
        self.transfers.push(t);
        if cool != id {
            let hb_ns = self.cfg.heartbeat_interval_ms as u64 * 1_000_000;
            self.nodes[id as usize].unacked_transfers.insert(
                t.epoch,
                UnackedTransfer {
                    msg: t,
                    attempts: 0,
                    next_retry_ns: now_ns + hb_ns,
                },
            );
        }
        for &peer in &live {
            if peer == id {
                continue;
            }
            let xid = self.nodes[id as usize].next_xid();
            out.push(ClusterOutput::ToCtrl {
                from: id,
                to: peer,
                msg: Message::cluster(xid, ClusterMsg::OwnershipTransfer(t)),
            });
        }
        if cool == id {
            self.seed_group(id, now_ns, group, out);
        }
    }

    // ---- Internals -----------------------------------------------------

    /// Seeds `id`'s C-LIB shard with its replica's knowledge of one
    /// group's switches — the new owner's half of an ownership transfer.
    fn seed_group(
        &mut self,
        id: u32,
        now_ns: u64,
        group: usize,
        out: &mut OutputSink<ClusterOutput>,
    ) {
        let members = self.nodes[id as usize].ctrl.grouping().members(group);
        let entries: Vec<HostEntry> = self.nodes[id as usize]
            .replica
            .hosts_behind(&members)
            .into_iter()
            .flat_map(|(_, hosts)| hosts)
            .collect();
        self.seed_clib(id, now_ns, &entries, out);
    }

    /// Seeds a member's C-LIB shard through its public message interface
    /// (synthetic per-switch L-FIB syncs), so the inner controller's
    /// learning rules — including the stale-withdrawal guard — apply
    /// unchanged. The cost is metered like any other message, which is
    /// exactly what a real takeover resync would cost.
    fn seed_clib(
        &mut self,
        id: u32,
        now_ns: u64,
        entries: &[HostEntry],
        out: &mut OutputSink<ClusterOutput>,
    ) {
        let mut by_switch: BTreeMap<SwitchId, Vec<LfibEntry>> = BTreeMap::new();
        for e in entries {
            by_switch.entry(e.switch).or_default().push(LfibEntry {
                mac: e.mac,
                tenant: e.tenant,
                port: e.port,
            });
        }
        // Inner outputs accumulate in the scratch across the per-switch
        // syncs (same order as the old concatenation), then convert once.
        for (switch, lfib_entries) in by_switch {
            let sync = LfibSyncMsg {
                origin: switch,
                epoch: 0,
                entries: lfib_entries,
                removed: vec![],
            };
            self.nodes[id as usize].ctrl.handle_message(
                now_ns,
                switch,
                &Message::lazy(0, LazyMsg::lfib_sync(sync)),
                &mut self.ctrl_scratch,
            );
        }
        self.convert_scratch(id, false, out);
    }

    /// Converts inner-controller outputs into cluster outputs.
    ///
    /// `filter_owned` drops `ToSwitch` messages for switches the member
    /// does not own — required on the *proactive* paths (bootstrap,
    /// timers) that run identically on every member and would otherwise
    /// duplicate traffic. Reactive paths (message handling) are unique to
    /// the member that received the trigger and pass through unfiltered,
    /// which keeps cross-shard effects like scoped-ARP relays working.
    fn convert_outputs(
        &self,
        id: u32,
        outs: &mut Vec<ControllerOutput>,
        filter_owned: bool,
        out: &mut OutputSink<ClusterOutput>,
    ) {
        for o in outs.drain(..) {
            match o {
                ControllerOutput::ToSwitch(to, msg) => {
                    if filter_owned && self.owner_of_switch(to) != Some(id) {
                        continue;
                    }
                    out.push(ClusterOutput::ToSwitch { from: id, to, msg });
                }
                ControllerOutput::SetTimer(t, delay_ns) => {
                    out.push(ClusterOutput::SetTimer(
                        ClusterTimer {
                            node: id,
                            kind: ClusterTimerKind::Inner(t),
                            gen: self.nodes[id as usize].timer_gen,
                        },
                        delay_ns,
                    ));
                }
            }
        }
    }

    /// Drains the inner-controller scratch through [`Self::convert_outputs`]
    /// and returns its allocation to the scratch (the steady-state path:
    /// zero allocation per handled message).
    fn convert_scratch(
        &mut self,
        id: u32,
        filter_owned: bool,
        out: &mut OutputSink<ClusterOutput>,
    ) {
        let mut buf = self.ctrl_scratch.take_buf();
        self.convert_outputs(id, &mut buf, filter_owned, out);
        self.ctrl_scratch.put_back(buf);
    }
}

/// Folds one peer-sync chunk into a state fingerprint.
fn hash_peer_sync(h: &mut Fnv64, s: &PeerSyncMsg) {
    h.u32(s.origin).u64(s.seq).u32(s.chunk).u8(s.summary as u8);
    h.usize(s.entries.len());
    for e in &s.entries {
        h.bytes(&e.mac.octets());
        h.u32(e.switch.0)
            .u16(e.port.as_u16())
            .u16(e.tenant.as_u16());
    }
    h.usize(s.removed.len());
    for (mac, sw) in &s.removed {
        h.bytes(&mac.octets()).u32(sw.0);
    }
}

/// An empty per-switch L-FIB sync, filled in by the harness seam.
fn empty_sync(origin: SwitchId) -> LfibSyncMsg {
    LfibSyncMsg {
        origin,
        epoch: 0,
        entries: Vec::new(),
        removed: Vec::new(),
    }
}

/// Marks only the *last* chunk of a catch-up as the head-advancing
/// summary. Earlier chunks travel as ordinary deltas of the same
/// sequence, so a receiver that loses or reorders an intermediate chunk
/// does not advance its head past content it never saw (entry application
/// itself is unaffected — every chunk's entries apply on arrival).
fn mark_last_as_summary(chunks: &mut [PeerSyncMsg]) {
    if let Some(last) = chunks.last_mut() {
        last.summary = true;
    }
}

/// If `msg` is a PacketIn towards a unicast destination the member's
/// C-LIB cannot resolve, returns that destination.
fn unresolved_unicast_dst(ctrl: &LazyController, msg: &Message) -> Option<MacAddr> {
    let MessageBody::Of(OfMessage::PacketIn(PacketInMsg { data, reason, .. })) = &msg.body else {
        return None;
    };
    if *reason == lazyctrl_proto::PacketInReason::FalsePositive {
        return None;
    }
    let frame = EthernetFrame::decode(data).ok()?;
    if frame.is_flood() || !frame.dst.is_unicast() {
        return None;
    }
    if ctrl.clib().locate(frame.dst).is_some() {
        return None;
    }
    Some(frame.dst)
}
