//! Per-controller replica of the other shards' C-LIBs.
//!
//! Each cluster member keeps, besides its authoritative C-LIB shard (the
//! hosts behind switches it owns, inside its `LazyController`), a *replica
//! store* fed by peers' asynchronous
//! [`PeerSyncMsg`](lazyctrl_proto::PeerSyncMsg) floods. Inter-shard flow
//! setups consult the replica first; only a replica miss costs a
//! synchronous peer lookup. The replica is also what makes failover cheap:
//! a controller taking over a dead peer's groups seeds its C-LIB from the
//! replica instead of waiting for every switch to re-sync.

use std::collections::BTreeMap;

use lazyctrl_net::{MacAddr, SwitchId};
use lazyctrl_proto::{HostEntry, PeerSyncMsg};
use serde::{Deserialize, Serialize};

/// Replicated host locations from peer controllers.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ReplicaStore {
    hosts: BTreeMap<MacAddr, HostEntry>,
    /// Highest sequence number seen per origin controller (observability;
    /// chunks of one flush share a sequence number, so this is a
    /// high-water mark, not a dedup filter).
    high_water: BTreeMap<u32, u64>,
    syncs_applied: u64,
}

impl ReplicaStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        ReplicaStore::default()
    }

    /// Number of replicated host locations.
    pub fn len(&self) -> usize {
        self.hosts.len()
    }

    /// True when nothing is replicated yet.
    pub fn is_empty(&self) -> bool {
        self.hosts.is_empty()
    }

    /// Total peer syncs absorbed.
    pub fn syncs_applied(&self) -> u64 {
        self.syncs_applied
    }

    /// Highest sequence number seen from `origin`.
    pub fn high_water(&self, origin: u32) -> Option<u64> {
        self.high_water.get(&origin).copied()
    }

    /// Absorbs one peer sync: entries overwrite, withdrawals remove only
    /// while the stored location still matches the withdrawing switch —
    /// the same stale-removal rule as the C-LIB: a migration's fresh learn
    /// elsewhere must not be clobbered by the old location's late
    /// withdrawal.
    pub fn apply(&mut self, sync: &PeerSyncMsg) {
        for e in &sync.entries {
            self.hosts.insert(e.mac, *e);
        }
        for (mac, from_switch) in &sync.removed {
            if let Some(existing) = self.hosts.get(mac) {
                if existing.switch == *from_switch {
                    self.hosts.remove(mac);
                }
            }
        }
        let hw = self.high_water.entry(sync.origin).or_insert(0);
        *hw = (*hw).max(sync.seq);
        self.syncs_applied += 1;
    }

    /// Looks up a replicated host location.
    pub fn lookup(&self, mac: MacAddr) -> Option<HostEntry> {
        self.hosts.get(&mac).copied()
    }

    /// All replicated hosts attached to one of the given switches, grouped
    /// by switch (ascending). Used to seed a C-LIB on ownership takeover.
    pub fn hosts_behind(&self, switches: &[SwitchId]) -> Vec<(SwitchId, Vec<HostEntry>)> {
        let mut by_switch: BTreeMap<SwitchId, Vec<HostEntry>> = BTreeMap::new();
        for e in self.hosts.values() {
            if switches.contains(&e.switch) {
                by_switch.entry(e.switch).or_default().push(*e);
            }
        }
        by_switch.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazyctrl_net::{PortNo, TenantId};

    fn entry(h: u64, s: u32) -> HostEntry {
        HostEntry {
            mac: MacAddr::for_host(h),
            switch: SwitchId::new(s),
            port: PortNo::new(1),
            tenant: TenantId::new(3),
        }
    }

    fn sync(
        origin: u32,
        seq: u64,
        entries: Vec<HostEntry>,
        removed: Vec<(u64, u32)>,
    ) -> PeerSyncMsg {
        PeerSyncMsg {
            origin,
            seq,
            entries,
            removed: removed
                .into_iter()
                .map(|(h, s)| (MacAddr::for_host(h), SwitchId::new(s)))
                .collect(),
        }
    }

    #[test]
    fn syncs_build_the_replica() {
        let mut r = ReplicaStore::new();
        r.apply(&sync(1, 1, vec![entry(10, 3), entry(11, 4)], vec![]));
        assert_eq!(r.len(), 2);
        assert_eq!(
            r.lookup(MacAddr::for_host(10)).unwrap().switch,
            SwitchId::new(3)
        );
        assert!(r.lookup(MacAddr::for_host(99)).is_none());
        assert_eq!(r.high_water(1), Some(1));
        assert_eq!(r.syncs_applied(), 1);
    }

    #[test]
    fn withdrawals_remove() {
        let mut r = ReplicaStore::new();
        r.apply(&sync(1, 1, vec![entry(10, 3)], vec![]));
        r.apply(&sync(1, 2, vec![], vec![(10, 3)]));
        assert!(r.is_empty());
    }

    #[test]
    fn stale_withdrawal_does_not_clobber_fresh_learn() {
        let mut r = ReplicaStore::new();
        // Host 10 migrates: shard B's fresh learn on switch 7 lands first,
        // then shard A's late withdrawal from switch 3 arrives.
        r.apply(&sync(1, 1, vec![entry(10, 3)], vec![]));
        r.apply(&sync(2, 1, vec![entry(10, 7)], vec![]));
        r.apply(&sync(1, 2, vec![], vec![(10, 3)]));
        let loc = r
            .lookup(MacAddr::for_host(10))
            .expect("fresh learn survives");
        assert_eq!(loc.switch, SwitchId::new(7));
    }

    #[test]
    fn hosts_behind_filters_and_groups() {
        let mut r = ReplicaStore::new();
        r.apply(&sync(
            1,
            1,
            vec![entry(10, 3), entry(11, 3), entry(12, 4), entry(13, 9)],
            vec![],
        ));
        let groups = r.hosts_behind(&[SwitchId::new(3), SwitchId::new(4)]);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].0, SwitchId::new(3));
        assert_eq!(groups[0].1.len(), 2);
        assert_eq!(groups[1].0, SwitchId::new(4));
        assert_eq!(groups[1].1.len(), 1);
    }
}
