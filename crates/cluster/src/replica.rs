//! Per-controller replica of the other shards' C-LIBs.
//!
//! Each cluster member keeps, besides its authoritative C-LIB shard (the
//! hosts behind switches it owns, inside its `LazyController`), a *replica
//! store* fed by peers' asynchronous
//! [`PeerSyncMsg`](lazyctrl_proto::PeerSyncMsg)s — flooded directly or
//! relayed along the dissemination overlay. Inter-shard flow setups
//! consult the replica first; only a replica miss costs a synchronous peer
//! lookup. The replica is also what makes failover cheap: a controller
//! taking over a dead peer's groups seeds its C-LIB from the replica
//! instead of waiting for every switch to re-sync.
//!
//! # Anti-entropy bookkeeping
//!
//! Relay overlays can drop deltas (a chunk in flight towards a member
//! that dies mid-circulation is simply gone), so the store tracks, per
//! origin, the highest **contiguous** flush sequence it has fully seen
//! ([`ReplicaStore::seen_through`]) — later deltas that arrive over a gap
//! wait in a pending set without advancing it. Digest exchanges compare
//! exactly these values, which is what makes holes *visible*: a member
//! that missed seq 3 but received 4 and 5 still advertises 2 and gets
//! served the gap. Entries are attributed to `(origin, seq)` and
//! withdrawals leave bounded tombstones, so any up-to-date peer can serve
//! exact catch-up — entries *and* removals — for any origin it knows.

use std::collections::{BTreeMap, BTreeSet};

use lazyctrl_net::{MacAddr, SwitchId};
use lazyctrl_proto::{HostEntry, PeerSyncMsg};
use serde::{Deserialize, Serialize};

/// A withdrawal remembered for anti-entropy catch-up.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct Tombstone {
    /// The switch that withdrew the host (needed by the receiving side's
    /// stale-withdrawal guard).
    switch: SwitchId,
    /// The origin controller whose sync carried the withdrawal.
    origin: u32,
    /// That origin's flush sequence at the withdrawal.
    seq: u64,
    /// Store-local insertion stamp; cap eviction drops the smallest, so
    /// the *oldest* withdrawal goes first (a key-ordered eviction would
    /// permanently starve low-sorting MACs of tombstone memory).
    stamp: u64,
}

/// Evicts oldest-stamped values from a capped map. `stamp_of` projects
/// each value's insertion stamp.
pub(crate) fn evict_oldest<K: Ord + Clone, V>(
    map: &mut BTreeMap<K, V>,
    cap: usize,
    stamp_of: impl Fn(&V) -> u64,
) {
    while map.len() > cap {
        let oldest = map
            .iter()
            .min_by_key(|(_, v)| stamp_of(v))
            .map(|(k, _)| k.clone())
            .expect("map is over cap, hence non-empty");
        map.remove(&oldest);
    }
}

/// Per-origin sequence tracking.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct OriginProgress {
    /// Highest contiguous flush sequence fully absorbed.
    seen_through: u64,
    /// Sequences received *beyond* a gap, waiting for it to fill.
    pending: BTreeSet<u64>,
}

impl OriginProgress {
    fn note_delta(&mut self, seq: u64) {
        if seq <= self.seen_through {
            return;
        }
        self.pending.insert(seq);
        while self.pending.remove(&(self.seen_through + 1)) {
            self.seen_through += 1;
        }
        // A gap that anti-entropy will fill anyway must not hoard memory.
        while self.pending.len() > PENDING_CAP {
            self.pending.pop_last();
        }
    }

    fn note_summary(&mut self, seq: u64) {
        if seq > self.seen_through {
            self.seen_through = seq;
        }
        let st = self.seen_through;
        self.pending.retain(|&s| s > st);
        while self.pending.remove(&(self.seen_through + 1)) {
            self.seen_through += 1;
        }
    }
}

/// Replicated host locations from peer controllers.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ReplicaStore {
    /// Host → (location, asserting origin, that origin's flush seq). The
    /// attribution lets this store answer per-origin catch-up requests.
    hosts: BTreeMap<MacAddr, (HostEntry, u32, u64)>,
    /// Bounded withdrawal memory, newest kept (see [`TOMBSTONE_CAP`]).
    tombstones: BTreeMap<MacAddr, Tombstone>,
    /// Per-origin contiguous-sequence progress.
    progress: BTreeMap<u32, OriginProgress>,
    /// Monotonic tombstone insertion stamp (for oldest-first eviction).
    tomb_stamp: u64,
    syncs_applied: u64,
}

/// Withdrawals retained for catch-up (shared by the replica store and
/// each member's own-shard tombstones in the plane, so the two halves of
/// the withdrawal-replay mechanism stay in step). Beyond this, the
/// oldest tombstones are dropped — a member that slept through *that*
/// many removals falls back to additive convergence (stale entries
/// linger until organically withdrawn or overwritten; correctness is
/// preserved by the synchronous lookup / scoped-ARP fallback, only
/// replica hit-rate suffers).
pub(crate) const TOMBSTONE_CAP: usize = 4096;

/// Out-of-order sequences buffered per origin while a gap waits for
/// anti-entropy. Overflow drops the newest (they will be re-served).
const PENDING_CAP: usize = 1024;

impl ReplicaStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        ReplicaStore::default()
    }

    /// Number of replicated host locations.
    pub fn len(&self) -> usize {
        self.hosts.len()
    }

    /// True when nothing is replicated yet.
    pub fn is_empty(&self) -> bool {
        self.hosts.is_empty()
    }

    /// Total peer syncs absorbed.
    pub fn syncs_applied(&self) -> u64 {
        self.syncs_applied
    }

    /// Highest contiguous flush sequence fully seen from `origin` — the
    /// digest-exchange basis. Deltas received beyond a gap do not advance
    /// it, which is what keeps holes visible to anti-entropy.
    pub fn seen_through(&self, origin: u32) -> u64 {
        self.progress
            .get(&origin)
            .map(|p| p.seen_through)
            .unwrap_or(0)
    }

    /// All per-origin contiguous heads, ascending by origin — the digest
    /// body.
    pub fn heads(&self) -> Vec<(u32, u64)> {
        self.progress
            .iter()
            .map(|(&o, p)| (o, p.seen_through))
            .collect()
    }

    /// Sequences received from `origin` beyond its contiguous head.
    pub fn pending_seqs(&self, origin: u32) -> Vec<u64> {
        self.progress
            .get(&origin)
            .map(|p| p.pending.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Folds the full replica contents into a state fingerprint: hosts
    /// with their attribution, tombstones, and per-origin progress. All
    /// backing collections are `BTreeMap`/`BTreeSet`, so iteration order
    /// is canonical. The eviction stamp counters are included — they feed
    /// eviction order, which is observable state.
    pub(crate) fn fingerprint_into(&self, h: &mut crate::fingerprint::Fnv64) {
        h.usize(self.hosts.len());
        for (mac, (entry, origin, seq)) in &self.hosts {
            h.bytes(&mac.octets());
            h.u32(entry.switch.0).u16(entry.port.as_u16());
            h.u16(entry.tenant.as_u16());
            h.u32(*origin).u64(*seq);
        }
        h.usize(self.tombstones.len());
        for (mac, t) in &self.tombstones {
            h.bytes(&mac.octets());
            h.u32(t.switch.0).u32(t.origin).u64(t.seq).u64(t.stamp);
        }
        h.u64(self.tomb_stamp);
        for (origin, p) in &self.progress {
            h.u32(*origin).u64(p.seen_through);
            h.usize(p.pending.len());
            for s in &p.pending {
                h.u64(*s);
            }
        }
    }

    /// Absorbs one peer sync: entries overwrite, withdrawals remove only
    /// while the stored location still matches the withdrawing switch —
    /// the same stale-removal rule as the C-LIB: a migration's fresh learn
    /// elsewhere must not be clobbered by the old location's late
    /// withdrawal. A **summary** sync (anti-entropy catch-up carrying all
    /// of an origin's knowledge up to `seq`) advances the contiguous head
    /// directly; a **delta** only advances it when it closes the gap.
    pub fn apply(&mut self, sync: &PeerSyncMsg) {
        for e in &sync.entries {
            self.hosts.insert(e.mac, (*e, sync.origin, sync.seq));
            self.tombstones.remove(&e.mac);
        }
        for (mac, from_switch) in &sync.removed {
            if let Some((existing, _, _)) = self.hosts.get(mac) {
                if existing.switch == *from_switch {
                    self.hosts.remove(mac);
                    self.tomb_stamp += 1;
                    self.tombstones.insert(
                        *mac,
                        Tombstone {
                            switch: *from_switch,
                            origin: sync.origin,
                            seq: sync.seq,
                            stamp: self.tomb_stamp,
                        },
                    );
                }
            }
        }
        evict_oldest(&mut self.tombstones, TOMBSTONE_CAP, |t| t.stamp);
        let progress = self.progress.entry(sync.origin).or_default();
        if sync.summary {
            progress.note_summary(sync.seq);
        } else {
            progress.note_delta(sync.seq);
        }
        self.syncs_applied += 1;
    }

    /// Looks up a replicated host location.
    pub fn lookup(&self, mac: MacAddr) -> Option<HostEntry> {
        self.hosts.get(&mac).map(|(e, _, _)| *e)
    }

    /// Everything this store knows of `origin` up to its contiguous head:
    /// `(live entries, remembered withdrawals)` — the payload of a
    /// *summary* catch-up sync for that origin. Entries beyond the head
    /// (received over a gap) are excluded: summarizing them would claim
    /// completeness the store does not have.
    pub fn knowledge_of(&self, origin: u32) -> (Vec<HostEntry>, Vec<(MacAddr, SwitchId)>) {
        self.knowledge_since(origin, 0)
    }

    /// Like [`knowledge_of`], but only the part a peer that already holds
    /// everything through `since` is missing: entries and withdrawals
    /// attributed to sequences in `(since, head]`. Serving just the gap
    /// keeps steady-state anti-entropy traffic proportional to the lag,
    /// not to the shard size.
    ///
    /// [`knowledge_of`]: ReplicaStore::knowledge_of
    pub fn knowledge_since(
        &self,
        origin: u32,
        since: u64,
    ) -> (Vec<HostEntry>, Vec<(MacAddr, SwitchId)>) {
        let head = self.seen_through(origin);
        let entries = self
            .hosts
            .values()
            .filter(|(_, o, s)| *o == origin && *s <= head && *s > since)
            .map(|(e, _, _)| *e)
            .collect();
        let removed = self
            .tombstones
            .iter()
            .filter(|(_, t)| t.origin == origin && t.seq <= head && t.seq > since)
            .map(|(mac, t)| (*mac, t.switch))
            .collect();
        (entries, removed)
    }

    /// Reconstructs the delta of one pending (beyond-the-gap) sequence of
    /// `origin`, for forwarding to a peer that lacks it.
    pub fn pending_delta(
        &self,
        origin: u32,
        seq: u64,
    ) -> (Vec<HostEntry>, Vec<(MacAddr, SwitchId)>) {
        let entries = self
            .hosts
            .values()
            .filter(|(_, o, s)| *o == origin && *s == seq)
            .map(|(e, _, _)| *e)
            .collect();
        let removed = self
            .tombstones
            .iter()
            .filter(|(_, t)| t.origin == origin && t.seq == seq)
            .map(|(mac, t)| (*mac, t.switch))
            .collect();
        (entries, removed)
    }

    /// All replicated hosts attached to one of the given switches, grouped
    /// by switch (ascending). Used to seed a C-LIB on ownership takeover.
    pub fn hosts_behind(&self, switches: &[SwitchId]) -> Vec<(SwitchId, Vec<HostEntry>)> {
        let mut by_switch: BTreeMap<SwitchId, Vec<HostEntry>> = BTreeMap::new();
        for (e, _, _) in self.hosts.values() {
            if switches.contains(&e.switch) {
                by_switch.entry(e.switch).or_default().push(*e);
            }
        }
        by_switch.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazyctrl_net::{PortNo, TenantId};

    fn entry(h: u64, s: u32) -> HostEntry {
        HostEntry {
            mac: MacAddr::for_host(h),
            switch: SwitchId::new(s),
            port: PortNo::new(1),
            tenant: TenantId::new(3),
        }
    }

    fn sync(
        origin: u32,
        seq: u64,
        entries: Vec<HostEntry>,
        removed: Vec<(u64, u32)>,
    ) -> PeerSyncMsg {
        PeerSyncMsg {
            origin,
            seq,
            chunk: 0,
            summary: false,
            entries,
            removed: removed
                .into_iter()
                .map(|(h, s)| (MacAddr::for_host(h), SwitchId::new(s)))
                .collect(),
        }
    }

    #[test]
    fn syncs_build_the_replica() {
        let mut r = ReplicaStore::new();
        r.apply(&sync(1, 1, vec![entry(10, 3), entry(11, 4)], vec![]));
        assert_eq!(r.len(), 2);
        assert_eq!(
            r.lookup(MacAddr::for_host(10)).unwrap().switch,
            SwitchId::new(3)
        );
        assert!(r.lookup(MacAddr::for_host(99)).is_none());
        assert_eq!(r.seen_through(1), 1);
        assert_eq!(r.heads(), vec![(1, 1)]);
        assert_eq!(r.syncs_applied(), 1);
    }

    #[test]
    fn withdrawals_remove_and_leave_tombstones() {
        let mut r = ReplicaStore::new();
        r.apply(&sync(1, 1, vec![entry(10, 3)], vec![]));
        r.apply(&sync(1, 2, vec![], vec![(10, 3)]));
        assert!(r.is_empty());
        let (entries, removed) = r.knowledge_of(1);
        assert!(entries.is_empty());
        assert_eq!(removed, vec![(MacAddr::for_host(10), SwitchId::new(3))]);
    }

    #[test]
    fn stale_withdrawal_does_not_clobber_fresh_learn() {
        let mut r = ReplicaStore::new();
        // Host 10 migrates: shard B's fresh learn on switch 7 lands first,
        // then shard A's late withdrawal from switch 3 arrives.
        r.apply(&sync(1, 1, vec![entry(10, 3)], vec![]));
        r.apply(&sync(2, 1, vec![entry(10, 7)], vec![]));
        r.apply(&sync(1, 2, vec![], vec![(10, 3)]));
        let loc = r
            .lookup(MacAddr::for_host(10))
            .expect("fresh learn survives");
        assert_eq!(loc.switch, SwitchId::new(7));
    }

    #[test]
    fn a_gap_keeps_the_head_back_until_filled() {
        let mut r = ReplicaStore::new();
        r.apply(&sync(1, 1, vec![entry(10, 3)], vec![]));
        r.apply(&sync(1, 2, vec![entry(11, 3)], vec![]));
        // Seq 3 lost in the overlay; 4 and 5 arrive anyway.
        r.apply(&sync(1, 4, vec![entry(13, 3)], vec![]));
        r.apply(&sync(1, 5, vec![entry(14, 3)], vec![]));
        assert_eq!(r.seen_through(1), 2, "gap at 3 must keep the head at 2");
        assert_eq!(r.pending_seqs(1), vec![4, 5]);
        // Knowledge stops at the head; the pending tail is reconstructable
        // per sequence.
        let (entries, _) = r.knowledge_of(1);
        assert_eq!(entries.len(), 2);
        let (tail, _) = r.pending_delta(1, 4);
        assert_eq!(tail, vec![entry(13, 3)]);
        // The gap fills: head catches up through the pending set.
        r.apply(&sync(1, 3, vec![entry(12, 3)], vec![]));
        assert_eq!(r.seen_through(1), 5);
        assert!(r.pending_seqs(1).is_empty());
    }

    #[test]
    fn a_summary_advances_the_head_directly() {
        let mut r = ReplicaStore::new();
        let mut summary = sync(1, 7, vec![entry(10, 3), entry(11, 4)], vec![]);
        summary.summary = true;
        r.apply(&summary);
        assert_eq!(r.seen_through(1), 7);
        // A later delta over a fresh gap pends again.
        r.apply(&sync(1, 9, vec![entry(12, 4)], vec![]));
        assert_eq!(r.seen_through(1), 7);
        r.apply(&sync(1, 8, vec![entry(13, 4)], vec![]));
        assert_eq!(r.seen_through(1), 9);
    }

    #[test]
    fn knowledge_since_serves_only_the_gap() {
        let mut r = ReplicaStore::new();
        r.apply(&sync(1, 1, vec![entry(10, 3)], vec![]));
        r.apply(&sync(1, 2, vec![entry(11, 3)], vec![]));
        r.apply(&sync(1, 3, vec![entry(12, 3)], vec![(10, 3)]));
        let (entries, removed) = r.knowledge_since(1, 2);
        assert_eq!(entries, vec![entry(12, 3)]);
        assert_eq!(removed, vec![(MacAddr::for_host(10), SwitchId::new(3))]);
        let (all, _) = r.knowledge_since(1, 0);
        assert_eq!(all.len(), 2);
    }

    #[test]
    fn knowledge_is_attributed_to_the_last_asserting_origin() {
        let mut r = ReplicaStore::new();
        r.apply(&sync(1, 1, vec![entry(10, 3), entry(11, 3)], vec![]));
        r.apply(&sync(2, 1, vec![entry(10, 7)], vec![]));
        let (of_1, _) = r.knowledge_of(1);
        let (of_2, _) = r.knowledge_of(2);
        assert_eq!(of_1, vec![entry(11, 3)]);
        assert_eq!(of_2, vec![entry(10, 7)]);
    }

    #[test]
    fn reapplying_a_tombstoned_entry_clears_the_tombstone() {
        let mut r = ReplicaStore::new();
        r.apply(&sync(1, 1, vec![entry(10, 3)], vec![]));
        r.apply(&sync(1, 2, vec![], vec![(10, 3)]));
        r.apply(&sync(1, 3, vec![entry(10, 5)], vec![]));
        let (entries, removed) = r.knowledge_of(1);
        assert_eq!(entries, vec![entry(10, 5)]);
        assert!(removed.is_empty(), "re-learn must clear the tombstone");
    }

    #[test]
    fn tombstone_eviction_drops_the_oldest_not_the_lowest_key() {
        let mut m: BTreeMap<u32, u64> = BTreeMap::new();
        // Key order is the *reverse* of insertion order: key 3 is oldest.
        m.insert(3, 1);
        m.insert(2, 2);
        m.insert(1, 3);
        evict_oldest(&mut m, 2, |&s| s);
        assert_eq!(m.keys().copied().collect::<Vec<_>>(), vec![1, 2]);
        evict_oldest(&mut m, 1, |&s| s);
        assert_eq!(m.keys().copied().collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn hosts_behind_filters_and_groups() {
        let mut r = ReplicaStore::new();
        r.apply(&sync(
            1,
            1,
            vec![entry(10, 3), entry(11, 3), entry(12, 4), entry(13, 9)],
            vec![],
        ));
        let groups = r.hosts_behind(&[SwitchId::new(3), SwitchId::new(4)]);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].0, SwitchId::new(3));
        assert_eq!(groups[0].1.len(), 2);
        assert_eq!(groups[1].0, SwitchId::new(4));
        assert_eq!(groups[1].1.len(), 1);
    }
}
