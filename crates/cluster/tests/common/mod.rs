//! A minimal deterministic driver for [`ClusterControlPlane`] integration
//! tests: a (time, sequence)-ordered event queue with fixed 1 ms
//! controller-peer latency, timers honoured exactly, and switch-bound
//! traffic dropped (these tests exercise the controller-to-controller
//! fabric, not the data plane).

// Each test binary compiles this module separately and uses a different
// subset of the harness.
#![allow(dead_code)]

use std::collections::BTreeMap;

use lazyctrl_cluster::{ClusterConfig, ClusterControlPlane, ClusterOutput, ClusterTimer};
use lazyctrl_net::SwitchId;
use lazyctrl_partition::WeightedGraph;
use lazyctrl_proto::{ClusterMsg, Message, MessageBody, OutputSink};

/// Fixed controller-peer delivery latency (ns).
const CTRL_LATENCY_NS: u64 = 1_000_000;

enum Ev {
    Ctrl { from: u32, to: u32, msg: Message },
    Timer(ClusterTimer),
}

/// The mini network around one cluster plane.
pub struct MiniNet {
    pub plane: ClusterControlPlane,
    queue: BTreeMap<(u64, u64), Ev>,
    seq: u64,
    now: u64,
    /// Messages delivered on the ctrl-peer fabric, by kind.
    pub delivered: BTreeMap<&'static str, u64>,
    /// Active partition: listed islands are mutually severed, members
    /// not listed anywhere keep full reachability (the simulator's
    /// `LinkState` rule). Empty means the fabric is whole.
    partition: Vec<Vec<u32>>,
    /// Ctrl-peer messages destroyed by the partition gate.
    pub partition_drops: u64,
}

/// A weighted graph of `groups` disjoint cliques of `size` switches —
/// SGI reliably groups each clique into one LCG.
pub fn clustered_graph(groups: usize, size: usize) -> WeightedGraph {
    let mut g = WeightedGraph::new(groups * size);
    for c in 0..groups {
        let base = c * size;
        for i in 0..size {
            for j in (i + 1)..size {
                g.add_edge(base + i, base + j, 10.0);
            }
        }
    }
    g
}

/// A cluster config sized for these tests: `n` members over 3-switch
/// groups, 1 s flush/heartbeat ticks, large delta log (exact anti-entropy
/// replay throughout).
pub fn test_config(n: usize) -> ClusterConfig {
    let mut cfg = ClusterConfig::with_controllers(n);
    cfg.lazy.group_size_limit = 3;
    cfg.replica_flush_interval_ms = 1_000;
    cfg.heartbeat_interval_ms = 1_000;
    cfg.heartbeat_miss_factor = 3;
    cfg.anti_entropy_interval_ms = 3_000;
    cfg.delta_log_flushes = 10_000;
    cfg
}

impl MiniNet {
    /// Builds and bootstraps a plane over `groups` cliques of 3 switches.
    pub fn new(groups: usize, cfg: ClusterConfig) -> Self {
        let num_switches = groups * 3;
        let mut plane = ClusterControlPlane::new(num_switches, cfg);
        let mut sink = OutputSink::new();
        plane.bootstrap(0, clustered_graph(groups, 3), &mut sink);
        let mut net = MiniNet {
            plane,
            queue: BTreeMap::new(),
            seq: 0,
            now: 0,
            delivered: BTreeMap::new(),
            partition: Vec::new(),
            partition_drops: 0,
        };
        net.dispatch(sink.take_buf());
        net
    }

    /// Current virtual time (ns).
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Severs the fabric into `groups` islands: ctrl-peer messages
    /// between members of *different* listed islands are destroyed at
    /// delivery time (in-flight traffic included). Replaces any
    /// previous partition.
    pub fn set_partition(&mut self, groups: &[Vec<u32>]) {
        self.partition = groups.to_vec();
    }

    /// Restores full reachability.
    pub fn heal_partition(&mut self) {
        self.partition.clear();
    }

    /// True if an active partition severs the `a`↔`b` member pair.
    fn severed(&self, a: u32, b: u32) -> bool {
        let island = |m: u32| self.partition.iter().position(|g| g.contains(&m));
        match (island(a), island(b)) {
            (Some(x), Some(y)) => x != y,
            _ => false,
        }
    }

    fn push(&mut self, at: u64, ev: Ev) {
        self.seq += 1;
        self.queue.insert((at, self.seq), ev);
    }

    /// Queues the plane's outputs (ctrl-peer sends with fixed latency,
    /// timers at their delay; switch-bound messages dropped).
    pub fn dispatch(&mut self, outs: Vec<ClusterOutput>) {
        for out in outs {
            match out {
                ClusterOutput::ToCtrl { from, to, msg } => {
                    self.push(self.now + CTRL_LATENCY_NS, Ev::Ctrl { from, to, msg });
                }
                ClusterOutput::SetTimer(timer, delay_ns) => {
                    self.push(self.now + delay_ns, Ev::Timer(timer));
                }
                ClusterOutput::ToSwitch { .. } => {}
            }
        }
    }

    /// Runs the network until virtual time `t_ns`.
    pub fn run_until(&mut self, t_ns: u64) {
        while let Some((&(at, key), _)) = self.queue.iter().next() {
            if at > t_ns {
                break;
            }
            let ev = self.queue.remove(&(at, key)).expect("just peeked");
            self.now = at;
            let mut sink = OutputSink::new();
            match ev {
                Ev::Ctrl { from, to, msg } => {
                    if self.severed(from, to) {
                        self.partition_drops += 1;
                        continue;
                    }
                    *self.delivered.entry(kind_of(&msg)).or_insert(0) += 1;
                    self.plane
                        .handle_ctrl_message(self.now, from, to, &msg, &mut sink);
                }
                Ev::Timer(timer) => self.plane.handle_timer(self.now, timer, &mut sink),
            }
            self.dispatch(sink.take_buf());
        }
        self.now = t_ns;
    }

    /// Runs `dur_ns` more virtual time.
    pub fn run_for(&mut self, dur_ns: u64) {
        self.run_until(self.now + dur_ns);
    }

    /// Delivers one switch-originated message to the plane at `now`.
    pub fn send_switch(&mut self, from: SwitchId, msg: &Message) {
        let mut sink = OutputSink::new();
        self.plane
            .handle_switch_message(self.now, from, msg, &mut sink);
        self.dispatch(sink.take_buf());
    }

    /// Recovers a crashed member and dispatches its fresh timer arms.
    pub fn recover(&mut self, id: u32) {
        let mut sink = OutputSink::new();
        self.plane.recover(id, &mut sink);
        self.dispatch(sink.take_buf());
    }

    /// Count of delivered ctrl-peer messages of one kind.
    pub fn count(&self, kind: &str) -> u64 {
        self.delivered.get(kind).copied().unwrap_or(0)
    }

    // ---- Adversarial schedule controls ---------------------------------
    //
    // The mc_regressions tests replay counterexample-shaped schedules by
    // hand: pull a specific in-flight message out of the queue, then drop
    // it, reorder it, or deliver it twice.

    /// Removes and returns the earliest in-flight ctrl-peer message of
    /// `kind` (an adversarial drop; re-inject it with [`MiniNet::deliver`]
    /// to model reordering or duplication instead).
    pub fn steal(&mut self, kind: &str) -> Option<(u32, u32, Message)> {
        let key = self.queue.iter().find_map(|(&k, ev)| match ev {
            Ev::Ctrl { msg, .. } if kind_of(msg) == kind => Some(k),
            _ => None,
        })?;
        match self.queue.remove(&key) {
            Some(Ev::Ctrl { from, to, msg }) => Some((from, to, msg)),
            _ => unreachable!("key was just found"),
        }
    }

    /// Count of ctrl-peer messages of `kind` currently in flight.
    pub fn queued(&self, kind: &str) -> usize {
        self.queue
            .values()
            .filter(|ev| matches!(ev, Ev::Ctrl { msg, .. } if kind_of(msg) == kind))
            .count()
    }

    /// Delivers a ctrl-peer message to the plane immediately (bypassing
    /// the queue — used to replay stolen messages, duplicates included).
    pub fn deliver(&mut self, from: u32, to: u32, msg: &Message) {
        *self.delivered.entry(kind_of(msg)).or_insert(0) += 1;
        let mut sink = OutputSink::new();
        self.plane
            .handle_ctrl_message(self.now, from, to, msg, &mut sink);
        self.dispatch(sink.take_buf());
    }
}

fn kind_of(msg: &Message) -> &'static str {
    match &msg.body {
        MessageBody::Cluster(c) => match c {
            ClusterMsg::PeerSync(_) => "peer_sync",
            ClusterMsg::SyncRelay(_) => "sync_relay",
            ClusterMsg::SyncDigest(_) => "sync_digest",
            ClusterMsg::Heartbeat(_) => "heartbeat",
            ClusterMsg::OwnershipTransfer(_) => "ownership_transfer",
            ClusterMsg::TransferAck(_) => "transfer_ack",
            ClusterMsg::LookupRequest(_) => "lookup_request",
            ClusterMsg::LookupReply(_) => "lookup_reply",
            ClusterMsg::VoteRequest(_) => "vote_request",
            ClusterMsg::VoteReply(_) => "vote_reply",
            ClusterMsg::LeaderClaim(_) => "leader_claim",
        },
        MessageBody::Lazy(_) => "lazy",
        MessageBody::Of(_) => "of",
    }
}
