//! Adversarial-schedule regression tests for the cluster protocols.
//!
//! Each test hand-replays a schedule shape the bounded model checker
//! (`lazyctrl-mc`) explores mechanically — a duplicated relay bundle, a
//! dropped ownership handoff, a duplicated handoff announcement, a leader
//! crash mid-term — and pins the invariant the protocol must uphold under
//! it. When the checker finds a new counterexample, it gets distilled
//! into a test here so the fix stays fixed.

mod common;

use common::{test_config, MiniNet};
use lazyctrl_cluster::{ClusterConfig, DisseminationStrategy, ElectionRole};
use lazyctrl_net::{MacAddr, PortNo, SwitchId, TenantId};
use lazyctrl_proto::{
    ClusterMsg, LazyMsg, LfibEntry, LfibSyncMsg, Message, MessageBody, OwnershipTransferMsg,
};
use std::collections::BTreeMap;

const SEC: u64 = 1_000_000_000;

fn ring_config(n: usize) -> ClusterConfig {
    let mut cfg = test_config(n);
    cfg.dissemination = DisseminationStrategy::Ring;
    cfg
}

fn transfer_of(msg: &Message) -> OwnershipTransferMsg {
    match &msg.body {
        MessageBody::Cluster(ClusterMsg::OwnershipTransfer(t)) => *t,
        other => panic!("expected an ownership transfer, got {other:?}"),
    }
}

/// Raises member `id`'s measured load by driving L-FIB syncs through one
/// of its switches (so takeover targeting prefers the other survivors).
fn load_member(net: &mut MiniNet, id: u32, rounds: u64) {
    let s = (0..64u32)
        .map(SwitchId::new)
        .find(|&s| net.plane.owner_of_switch(s) == Some(id))
        .expect("member owns at least one switch");
    for round in 0..rounds {
        let sync = LfibSyncMsg {
            origin: s,
            epoch: 0,
            entries: vec![LfibEntry {
                mac: MacAddr::for_host(9_000 + round),
                tenant: TenantId::new(1),
                port: PortNo::new(2),
            }],
            removed: vec![],
        };
        net.send_switch(s, &Message::lazy(round as u32, LazyMsg::lfib_sync(sync)));
        net.run_for(SEC / 10);
    }
}

/// Counterexample shape: the network duplicates a relay bundle in flight.
/// The receiver must apply and re-fan the bundled chunks exactly once —
/// the second copy must change nothing (checker invariants 1 and 3).
#[test]
#[cfg_attr(feature = "mc-mutations", ignore = "mutation inverts this invariant")]
fn duplicated_relay_bundle_is_idempotent() {
    let n = 4;
    let mut cfg = ring_config(n);
    cfg.anti_entropy_interval_ms = 600_000; // overlay only: no repair noise
    let mut net = MiniNet::new(n, cfg);
    net.plane.enqueue_delta(
        0,
        vec![lazyctrl_proto::HostEntry {
            mac: MacAddr::for_host(4242),
            switch: SwitchId::new(0),
            port: PortNo::new(1),
            tenant: TenantId::new(1),
        }],
        vec![],
    );
    // Past the first flush tick: member 0's relay bundle to its ring
    // successor is now in flight.
    net.run_until(SEC);
    let (from, to, msg) = net
        .steal("sync_relay")
        .expect("flush put a bundle in flight");
    assert_eq!((from, to), (0, 1), "ring successor of 0");

    net.deliver(from, to, &msg);
    let applies_once = net.plane.sync_traffic(to).relay_applies;
    let fp_once = net.plane.state_fingerprint();
    assert!(applies_once > 0, "first copy must apply");

    // The duplicate: bit-identical bundle on the same link.
    net.deliver(from, to, &msg);
    assert_eq!(
        net.plane.sync_traffic(to).relay_applies,
        applies_once,
        "duplicate bundle was applied twice"
    );
    assert_eq!(
        net.plane.state_fingerprint(),
        fp_once,
        "duplicate delivery mutated protocol state"
    );

    // Let the ring finish the lap: every member must hold the host, and
    // no member may have applied the chunk more than once (the duplicate
    // must not have entered anyone's relay queue for a second lap).
    net.run_for(8 * SEC);
    for member in 1..n as u32 {
        assert_eq!(
            net.plane.view_of(member, MacAddr::for_host(4242)),
            Some(lazyctrl_proto::HostEntry {
                mac: MacAddr::for_host(4242),
                switch: SwitchId::new(0),
                port: PortNo::new(1),
                tenant: TenantId::new(1),
            }),
            "member {member} must converge on the single chunk"
        );
        assert!(
            net.plane.sync_traffic(member).relay_applies <= 1,
            "member {member} applied the one chunk more than once"
        );
    }
}

/// Ground truth for the checker's self-test: with the `mc-mutations`
/// dedup-bypass compiled in, the same duplicated bundle IS applied and
/// re-fanned twice — the bug the model checker must catch.
#[test]
#[cfg(feature = "mc-mutations")]
fn mutated_relay_double_applies() {
    let n = 4;
    let mut cfg = ring_config(n);
    cfg.anti_entropy_interval_ms = 600_000;
    let mut net = MiniNet::new(n, cfg);
    net.plane.enqueue_delta(
        0,
        vec![lazyctrl_proto::HostEntry {
            mac: MacAddr::for_host(4242),
            switch: SwitchId::new(0),
            port: PortNo::new(1),
            tenant: TenantId::new(1),
        }],
        vec![],
    );
    net.run_until(SEC);
    let (from, to, msg) = net
        .steal("sync_relay")
        .expect("flush put a bundle in flight");
    net.deliver(from, to, &msg);
    let applies_once = net.plane.sync_traffic(to).relay_applies;
    net.deliver(from, to, &msg);
    assert!(
        net.plane.sync_traffic(to).relay_applies > applies_once,
        "mutation should bypass relay dedup — did the gate move?"
    );
}

/// Counterexample shape: the leader's takeover handoff announcement is
/// lost in flight. The leader must retransmit on its heartbeat cadence
/// until the new owner acks, so the group is never silently unowned
/// (checker invariant 4).
#[test]
fn dropped_handoff_announcement_is_retransmitted() {
    let n = 3;
    let mut net = MiniNet::new(4, ring_config(n));
    net.run_for(2 * SEC);
    // Load member 0 (the leader) so the takeover targets member 1.
    load_member(&mut net, 0, 10);

    net.plane.crash(2);
    // Step until the takeover's handoff announcement is in flight.
    // Step at half the link latency so the announcement is observable
    // while in flight (it spends exactly one 1 ms hop in the queue).
    let deadline = net.now() + 20 * SEC;
    while net.queued("ownership_transfer") == 0 {
        assert!(net.now() < deadline, "takeover never initiated");
        net.run_for(500_000);
    }
    let (_, to, msg) = net.steal("ownership_transfer").expect("just observed one");
    let t = transfer_of(&msg);
    assert_eq!(
        t.to, to,
        "the stolen copy is the one bound for the new owner"
    );
    assert_ne!(t.to, 0, "takeover must hand off to the unloaded survivor");
    assert!(
        net.plane.unacked_transfer_epochs(0).contains(&t.epoch),
        "leader must track the handoff until acked"
    );
    let delivered_before = net.count("ownership_transfer");

    // The announcement is gone; heartbeat ticks must re-announce.
    net.run_for(5 * SEC);
    assert!(
        net.count("ownership_transfer") > delivered_before,
        "no retransmission after the drop"
    );
    assert!(
        net.plane.delivered_transfer_epochs(t.to).contains(&t.epoch),
        "new owner never heard about its group"
    );
    assert!(
        net.plane.unacked_transfer_epochs(0).is_empty(),
        "ack must stop the retransmissions"
    );
    assert!(
        net.plane
            .ownership()
            .groups_of(t.to)
            .contains(&t.group.index()),
        "group must end owned by the handoff target"
    );
}

/// Counterexample shape: the handoff announcement is duplicated (e.g. a
/// retransmission races the original's ack). The new owner re-acks — the
/// previous ack may be the lost copy — but must not re-seed, and its
/// protocol state must not change (checker invariant 4).
#[test]
fn duplicated_handoff_announcement_applies_once() {
    let n = 3;
    let mut net = MiniNet::new(4, ring_config(n));
    net.run_for(2 * SEC);
    load_member(&mut net, 0, 10);

    net.plane.crash(2);
    // Step at half the link latency so the announcement is observable
    // while in flight (it spends exactly one 1 ms hop in the queue).
    let deadline = net.now() + 20 * SEC;
    while net.queued("ownership_transfer") == 0 {
        assert!(net.now() < deadline, "takeover never initiated");
        net.run_for(500_000);
    }
    let (from, to, msg) = net.steal("ownership_transfer").expect("just observed one");
    let t = transfer_of(&msg);

    net.deliver(from, to, &msg);
    let fp_once = net.plane.state_fingerprint();
    let acks_once = net.queued("transfer_ack");
    assert_eq!(net.plane.delivered_transfer_epochs(to), vec![t.epoch]);
    assert!(acks_once > 0, "first announcement must be acked");

    net.deliver(from, to, &msg);
    assert_eq!(
        net.queued("transfer_ack"),
        acks_once + 1,
        "duplicate must be re-acked (the first ack may be the lost copy)"
    );
    assert_eq!(
        net.plane.delivered_transfer_epochs(to),
        vec![t.epoch],
        "duplicate announcement recorded twice"
    );
    assert_eq!(
        net.plane.state_fingerprint(),
        fp_once,
        "duplicate announcement mutated protocol state"
    );
}

/// Counterexample shape: the bootstrap leader crashes mid-term. At every
/// observation point there is at most one functioning leader per term
/// (checker invariant 5), a higher-term leader emerges, and the old
/// leader rejoins as a follower without splitting the cluster.
#[test]
fn leader_crash_elects_exactly_one_successor() {
    let n = 3;
    let mut net = MiniNet::new(4, ring_config(n));
    net.run_for(2 * SEC);
    assert_eq!(
        net.plane.leader(),
        Some(0),
        "bootstrap consensus: member 0 leads"
    );
    assert_eq!(net.plane.election_term(0), 1);

    net.plane.crash(0);
    // Sample the whole election window densely, maintaining the ghost
    // ledger the checker keeps: term -> the one leader seen in it.
    let mut leaders_by_term: BTreeMap<u64, u32> = BTreeMap::new();
    for _ in 0..100 {
        net.run_for(SEC / 5);
        for id in 0..n as u32 {
            if net.plane.is_crashed(id) || net.plane.election_role(id) != ElectionRole::Leader {
                continue;
            }
            let term = net.plane.election_term(id);
            let prev = *leaders_by_term.entry(term).or_insert(id);
            assert_eq!(prev, id, "two leaders in term {term}: {prev} and {id}");
        }
    }
    let new_leader = net.plane.leader().expect("a successor must be elected");
    assert_ne!(new_leader, 0);
    assert!(
        net.plane.election_term(new_leader) >= 2,
        "successor must lead a later term"
    );
    assert_eq!(net.plane.confirmed_dead(), vec![0]);
    assert!(
        net.plane.ownership().groups_of(0).is_empty(),
        "the dead leader's groups must be taken over"
    );

    // The deposed leader comes back: it must rejoin as a follower of the
    // new term, not resurrect its old one.
    net.recover(0);
    net.run_for(5 * SEC);
    assert_eq!(
        net.plane.leader(),
        Some(new_leader),
        "comeback must not depose"
    );
    assert_eq!(net.plane.election_role(0), ElectionRole::Follower);
    assert!(
        net.plane.election_term(0) >= net.plane.election_term(new_leader),
        "rejoined member must adopt the current term"
    );
    assert!(net.plane.confirmed_dead().is_empty());
}
