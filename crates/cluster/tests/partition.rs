//! Partition-tolerance integration tests: the degradation ladder under
//! a severed controller fabric, driven through the MiniNet harness's
//! delivery-time partition gate.
//!
//! * the isolated leader demotes itself (lease step-down) before the
//!   majority's failure detector could ever see a second leader in the
//!   same term,
//! * the majority island keeps exactly one leader per term throughout,
//! * and a healed cluster converges — replica heads agree, every group
//!   is owned by a functioning member, and nobody stays "dead".

mod common;

use std::collections::BTreeMap;

use common::{test_config, MiniNet};
use lazyctrl_cluster::ElectionRole;
use lazyctrl_net::{MacAddr, PortNo, SwitchId, TenantId};
use lazyctrl_proto::HostEntry;
use proptest::prelude::*;

const SEC: u64 = 1_000_000_000;
const MS: u64 = 1_000_000;

fn entry_for(origin: u32, tick: u64) -> HostEntry {
    HostEntry {
        mac: MacAddr::for_host(10_000 * u64::from(origin) + tick),
        switch: SwitchId::new(origin * 3),
        port: PortNo::new(1),
        tenant: TenantId::new(1),
    }
}

/// Isolates member `m` from every peer of an `n`-member cluster.
fn isolate(net: &mut MiniNet, m: u32, n: u32) {
    let rest: Vec<u32> = (0..n).filter(|&x| x != m).collect();
    net.set_partition(&[vec![m], rest]);
}

/// Runs `net` to `until_ns` in `slice_ns` steps, recording every
/// `(term, leader)` sighting into `ghost` and failing on the first term
/// led by two different members — the cross-time half of the
/// single-leader-per-term invariant the end-state alone cannot see.
fn run_watching_leadership(
    net: &mut MiniNet,
    until_ns: u64,
    slice_ns: u64,
    ghost: &mut BTreeMap<u64, u32>,
) {
    while net.now() < until_ns {
        let next = (net.now() + slice_ns).min(until_ns);
        net.run_until(next);
        for id in 0..net.plane.num_controllers() as u32 {
            if net.plane.is_crashed(id) || net.plane.election_role(id) != ElectionRole::Leader {
                continue;
            }
            let term = net.plane.election_term(id);
            let prev = *ghost.entry(term).or_insert(id);
            assert_eq!(
                prev, id,
                "split brain: term {term} led by both member {prev} and member {id}"
            );
        }
    }
}

/// The isolated leader must step down inside the lease window — well
/// before the majority's detection deadline lets it confirm deaths or
/// move ownership — and the majority must elect a successor in a
/// strictly newer term.
#[test]
fn minority_leader_steps_down_within_lease_window() {
    let cfg = test_config(3);
    let lease_ns = u64::from(cfg.leader_lease_ms) * MS;
    let mut net = MiniNet::new(3, cfg);
    net.run_until(SEC);
    assert_eq!(net.plane.leader(), Some(0), "member 0 leads from bootstrap");
    let term_before = net.plane.election_term(0);

    isolate(&mut net, 0, 3);
    let cut_at = net.now();

    // One lease window plus a heartbeat of slack: the lease check runs
    // on the leader's own heartbeat tick.
    net.run_until(cut_at + lease_ns + 1_500 * MS);
    assert_ne!(
        net.plane.election_role(0),
        ElectionRole::Leader,
        "isolated leader still leading past its lease"
    );
    assert_eq!(net.plane.lease_step_downs(0), 1, "exactly one step-down");

    // Give the majority its detection deadline plus an election round.
    net.run_until(cut_at + 10 * SEC);
    let leader = net.plane.leader().expect("majority must elect a leader");
    assert!(
        leader == 1 || leader == 2,
        "leader {leader} not in majority"
    );
    assert!(
        net.plane.election_term(leader) > term_before,
        "successor must lead a newer term"
    );
    assert!(net.partition_drops > 0, "the cut never severed anything");

    // The majority legitimately confirmed the isolated member dead (that
    // is what authorizes takeover); the heal must un-latch it within a
    // heartbeat round.
    net.heal_partition();
    net.run_for(5 * SEC);
    assert!(
        net.plane.confirmed_dead().is_empty(),
        "heal must clear the latched death: {:?}",
        net.plane.confirmed_dead()
    );
}

/// Leadership ghost across the whole cut-and-heal cycle: no term is
/// ever led by two members, and the healed cluster ends with one
/// functioning leader and nobody believed dead.
#[test]
fn majority_keeps_one_leader_per_term_across_cut_and_heal() {
    let mut net = MiniNet::new(3, test_config(3));
    let mut ghost = BTreeMap::new();
    net.run_until(SEC);

    isolate(&mut net, 0, 3);
    run_watching_leadership(&mut net, 15 * SEC, 200 * MS, &mut ghost);

    net.heal_partition();
    run_watching_leadership(&mut net, 30 * SEC, 200 * MS, &mut ghost);

    let leader = net
        .plane
        .leader()
        .expect("healed cluster must have a leader");
    assert!(!net.plane.is_crashed(leader));
    assert!(
        net.plane.confirmed_dead().is_empty(),
        "heal must clear latched deaths: {:?}",
        net.plane.confirmed_dead()
    );
}

/// Replication across a cut: deltas seeded on both sides of the
/// partition while it stands must reach every member after the heal
/// (anti-entropy closing the holes), and ownership must end with
/// functioning owners only.
#[test]
fn healed_cluster_converges_replicas_and_ownership() {
    let mut net = MiniNet::new(3, test_config(3));
    net.run_until(SEC);

    isolate(&mut net, 0, 3);
    // Both islands keep learning hosts during the cut.
    for tick in 0..6u64 {
        for origin in 0..3u32 {
            net.plane
                .enqueue_delta(origin, vec![entry_for(origin, tick)], vec![]);
        }
        net.run_for(SEC);
    }

    net.heal_partition();
    // A couple of anti-entropy rounds (3 s cadence) close the gap.
    net.run_for(20 * SEC);

    let heads: Vec<Vec<(u32, u64)>> = (0..3).map(|m| net.plane.replica_heads(m)).collect();
    for origin in 0..3u32 {
        let head_of = |m: usize| -> u64 {
            heads[m]
                .iter()
                .find(|&&(o, _)| o == origin)
                .map(|&(_, s)| s)
                .unwrap_or(0)
        };
        let observers: Vec<usize> = (0..3).filter(|&m| m != origin as usize).collect();
        let best = observers.iter().map(|&m| head_of(m)).max().unwrap();
        assert!(best > 0, "origin {origin} replicated nothing");
        for &m in &observers {
            assert_eq!(
                head_of(m),
                best,
                "member {m} behind on origin {origin} after heal"
            );
        }
    }

    for g in 0..net.plane.ownership().len() {
        let owner = net.plane.ownership().owner_of(g).expect("group has owner");
        assert!(
            !net.plane.is_crashed(owner),
            "group {g} owned by a crashed member"
        );
    }
    assert!(net.plane.confirmed_dead().is_empty());
}

/// One randomized cut in a schedule: which member gets isolated, for
/// how long, and how long the fabric stays whole afterwards.
#[derive(Debug, Clone, Copy)]
struct Cut {
    member: u32,
    cut_ms: u64,
    whole_ms: u64,
}

fn arb_cut(n: u32) -> impl Strategy<Value = Cut> {
    (0..n, 500u64..6_000, 500u64..4_000).prop_map(|(member, cut_ms, whole_ms)| Cut {
        member,
        cut_ms,
        whole_ms,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random isolate-one partition schedules — cuts of random victim,
    /// duration, and spacing, with replication load seeded throughout —
    /// must never produce two leaders in one term, and must always end
    /// (after a final heal and settling run) with a functioning leader,
    /// live ownership, and no latched deaths.
    #[test]
    fn random_partition_schedules_never_split_brain(
        n in 3u32..=5,
        cuts in prop::collection::vec(arb_cut(5), 1..4),
    ) {
        let mut net = MiniNet::new(n as usize, test_config(n as usize));
        let mut ghost = BTreeMap::new();
        net.run_until(SEC);

        for (i, cut) in cuts.iter().enumerate() {
            let victim = cut.member % n;
            net.plane.enqueue_delta(victim, vec![entry_for(victim, i as u64)], vec![]);
            isolate(&mut net, victim, n);
            let until = net.now() + cut.cut_ms * MS;
            run_watching_leadership(&mut net, until, 250 * MS, &mut ghost);
            net.heal_partition();
            let until = net.now() + cut.whole_ms * MS;
            run_watching_leadership(&mut net, until, 250 * MS, &mut ghost);
        }

        // Final settle: long enough for detection, an election round,
        // and anti-entropy to all complete from any mid-cycle state.
        let until = net.now() + 20 * SEC;
        run_watching_leadership(&mut net, until, 250 * MS, &mut ghost);

        let leader = net.plane.leader();
        prop_assert!(leader.is_some(), "no leader after settling");
        prop_assert!(!net.plane.is_crashed(leader.unwrap()));
        prop_assert!(
            net.plane.confirmed_dead().is_empty(),
            "latched deaths after settling: {:?}",
            net.plane.confirmed_dead()
        );
        for g in 0..net.plane.ownership().len() {
            let owner = net.plane.ownership().owner_of(g);
            prop_assert!(owner.is_some(), "group {} lost its owner", g);
        }
    }
}
