//! Integration tests for the cluster control plane driven directly
//! through `plane.rs`: ownership transfer, replica convergence under each
//! dissemination strategy, heartbeat failover, and anti-entropy catch-up.

mod common;

use common::{test_config, MiniNet};
use lazyctrl_cluster::{ClusterConfig, DisseminationStrategy};
use lazyctrl_net::{MacAddr, PortNo, SwitchId, TenantId};
use lazyctrl_proto::{HostEntry, LazyMsg, LfibEntry, LfibSyncMsg, Message, TransferReason};

fn entry(host: u64, switch: u32) -> HostEntry {
    HostEntry {
        mac: MacAddr::for_host(host),
        switch: SwitchId::new(switch),
        port: PortNo::new(1),
        tenant: TenantId::new(1),
    }
}

const SEC: u64 = 1_000_000_000;

fn config_with(strategy: DisseminationStrategy, n: usize) -> ClusterConfig {
    let mut cfg = test_config(n);
    cfg.dissemination = strategy;
    cfg
}

/// Every strategy must replicate every member's deltas to every other
/// member; under sustained load the overlays must do it with strictly
/// fewer wire messages per chunk than flood's n−1.
#[test]
fn replicas_converge_under_every_strategy() {
    let n = 4u32;
    let mut costs = std::collections::BTreeMap::new();
    for strategy in [
        DisseminationStrategy::Flood,
        DisseminationStrategy::Ring,
        DisseminationStrategy::Tree { fanout: 2 },
    ] {
        let mut cfg = config_with(strategy, n as usize);
        // No anti-entropy: convergence must come from the overlay itself.
        cfg.anti_entropy_interval_ms = 600_000;
        let mut net = MiniNet::new(n as usize, cfg);
        // Sustained churn: every member learns a fresh host every flush
        // tick for 10 ticks.
        for tick in 0..10u64 {
            for origin in 0..n {
                net.plane.enqueue_delta(
                    origin,
                    vec![entry(1_000 * origin as u64 + tick, origin * 3)],
                    vec![],
                );
            }
            net.run_for(SEC);
        }
        // Drain the overlay (ring needs a circumference of ticks).
        net.run_for(8 * SEC);

        for member in 0..n {
            for origin in 0..n {
                if member == origin {
                    continue;
                }
                for tick in 0..10u64 {
                    let mac = MacAddr::for_host(1_000 * origin as u64 + tick);
                    assert_eq!(
                        net.plane.view_of(member, mac),
                        Some(entry(1_000 * origin as u64 + tick, origin * 3)),
                        "{}: member {member} missing host {tick} of origin {origin}",
                        strategy.label(),
                    );
                }
            }
        }
        let chunks: u64 = (0..n)
            .map(|i| net.plane.sync_traffic(i).chunks_created)
            .sum();
        let msgs: u64 = (0..n)
            .map(|i| net.plane.sync_traffic(i).messages_sent)
            .sum();
        assert!(chunks >= 10 * n as u64, "every member must have flushed");
        costs.insert(strategy.label(), msgs as f64 / chunks as f64);
    }
    let flood = costs["flood"];
    assert!(
        (flood - (n as f64 - 1.0)).abs() < 0.01,
        "flood must pay n-1 messages per chunk, got {flood:.2}"
    );
    for overlay in ["ring", "tree"] {
        assert!(
            costs[overlay] < flood / 1.5,
            "{overlay} cost {:.2} must amortize well below flood's {flood:.2}",
            costs[overlay]
        );
    }
}

/// A relayed chunk is never applied twice: the dedup window drops the
/// tree's re-fanned duplicates, and per-member applies never exceed the
/// chunks the other members created.
#[test]
#[cfg_attr(
    feature = "mc-mutations",
    ignore = "the mutation deliberately breaks relay dedup"
)]
fn no_chunk_is_applied_twice() {
    for strategy in [
        DisseminationStrategy::Ring,
        DisseminationStrategy::Tree { fanout: 2 },
    ] {
        let n = 5u32;
        let mut net = MiniNet::new(n as usize, config_with(strategy, n as usize));
        for tick in 0..6u64 {
            for origin in 0..n {
                net.plane
                    .enqueue_delta(origin, vec![entry(100 * origin as u64 + tick, 0)], vec![]);
            }
            net.run_for(SEC);
        }
        net.run_for(10 * SEC);
        let chunks: Vec<u64> = (0..n)
            .map(|i| net.plane.sync_traffic(i).chunks_created)
            .collect();
        let total: u64 = chunks.iter().sum();
        for member in 0..n {
            let t = net.plane.sync_traffic(member);
            let foreign = total - chunks[member as usize];
            assert!(
                t.relay_applies + t.direct_applies <= foreign,
                "{}: member {member} applied {} chunks but only {foreign} foreign exist",
                strategy.label(),
                t.relay_applies + t.direct_applies,
            );
        }
    }
}

/// Heartbeat failover end-to-end on the plane: a crashed member is
/// confirmed dead by the Table-I ring inference, its groups move to
/// survivors, and a recovery un-confirms it.
#[test]
fn heartbeat_failover_and_comeback() {
    let mut net = MiniNet::new(4, config_with(DisseminationStrategy::Ring, 3));
    net.run_for(2 * SEC);
    let victim = 1u32;
    let owned_before = net.plane.ownership().groups_of(victim).len();
    assert!(owned_before > 0, "victim must own groups to lose");

    net.plane.crash(victim);
    // Detection: miss_factor (3) × heartbeat (1 s), plus report gossip
    // and takeover propagation.
    net.run_for(8 * SEC);
    assert_eq!(net.plane.confirmed_dead(), vec![victim]);
    assert!(
        net.plane.ownership().groups_of(victim).is_empty(),
        "takeover must strip the dead member's groups"
    );
    assert_eq!(net.plane.takeovers().len(), 1);
    assert_eq!(net.plane.takeovers()[0], (victim, owned_before));
    assert!(net
        .plane
        .transfers()
        .iter()
        .any(|t| t.reason == TransferReason::Failover));

    // Comeback: fresh heartbeats un-confirm the member.
    net.recover(victim);
    net.run_for(4 * SEC);
    assert!(
        net.plane.confirmed_dead().is_empty(),
        "recovered member still believed dead"
    );
}

/// Ownership transfer under skewed load, driven through the switch-facing
/// path: all switch traffic lands on one member's shard until the
/// leader's skew check moves a group across, after which the receiving
/// member's C-LIB is seeded from its replica.
#[test]
fn skewed_load_moves_group_ownership() {
    let mut net = MiniNet::new(4, config_with(DisseminationStrategy::Flood, 2));
    net.run_for(SEC);
    // Find the switches whose groups member 1 owns.
    let hot_switches: Vec<SwitchId> = (0..12u32)
        .map(SwitchId::new)
        .filter(|&s| net.plane.owner_of_switch(s) == Some(1))
        .collect();
    assert!(
        net.plane.ownership().groups_of(1).len() >= 2,
        "round-robin must give member 1 at least two groups"
    );

    // Hammer member 1's shard with L-FIB syncs (each also teaches the
    // C-LIB a host location, which replication then spreads).
    let mut host = 0u64;
    for round in 0..30u64 {
        for &s in &hot_switches {
            host += 1;
            let sync = LfibSyncMsg {
                origin: s,
                epoch: 0,
                entries: vec![LfibEntry {
                    mac: MacAddr::for_host(host),
                    tenant: TenantId::new(1),
                    port: PortNo::new(2),
                }],
                removed: vec![],
            };
            net.send_switch(s, &Message::lazy(round as u32, LazyMsg::lfib_sync(sync)));
        }
        net.run_for(SEC / 2);
    }
    // Past the 10 s rebalance check with plenty of window samples.
    net.run_for(15 * SEC);

    let rebalances: Vec<_> = net
        .plane
        .transfers()
        .iter()
        .filter(|t| t.reason == TransferReason::Rebalance)
        .collect();
    assert!(
        !rebalances.is_empty(),
        "skewed switch load must trigger an ownership transfer"
    );
    assert_eq!(rebalances[0].from, 1, "the hot member sheds a group");
    assert_eq!(rebalances[0].to, 0, "the cool member receives it");
    assert!(
        net.plane.ownership().groups_of(0).len() > 2,
        "ownership map must reflect the move"
    );
}

/// A member that sleeps through relayed deltas reconverges through the
/// anti-entropy digest exchange — under ring, deltas flushed while it was
/// dark never reach it on the overlay at all.
#[test]
fn anti_entropy_catches_up_a_recovered_member() {
    let n = 4u32;
    let mut cfg = config_with(DisseminationStrategy::Ring, n as usize);
    cfg.anti_entropy_interval_ms = 3_000;
    let mut net = MiniNet::new(n as usize, cfg);
    net.run_for(SEC);

    let sleeper = 2u32;
    net.plane.crash(sleeper);
    // While the sleeper is dark, the others learn and replicate hosts —
    // including a withdrawal, which only an exact catch-up can replay.
    for tick in 0..8u64 {
        for origin in [0u32, 1, 3] {
            net.plane.enqueue_delta(
                origin,
                vec![entry(500 + 10 * origin as u64 + tick, 0)],
                vec![],
            );
        }
        net.run_for(SEC);
    }
    net.plane
        .enqueue_delta(0, vec![], vec![(MacAddr::for_host(500), SwitchId::new(0))]);
    net.run_for(10 * SEC);

    net.recover(sleeper);
    // A few anti-entropy rounds: the sleeper digests rotating peers and
    // gets pushed everything it missed, withdrawals included.
    net.run_for(30 * SEC);

    for origin in [0u32, 1, 3] {
        for tick in 0..8u64 {
            let host = 500 + 10 * origin as u64 + tick;
            if host == 500 {
                continue; // withdrawn below
            }
            assert!(
                net.plane
                    .view_of(sleeper, MacAddr::for_host(host))
                    .is_some(),
                "sleeper missing host {host} learned during its outage"
            );
        }
    }
    assert_eq!(
        net.plane.view_of(sleeper, MacAddr::for_host(500)),
        None,
        "the withdrawal must reach the sleeper too (tombstone replay)"
    );
    let served: u64 = (0..n)
        .map(|i| net.plane.sync_traffic(i).catchup_syncs_sent)
        .sum();
    assert!(served > 0, "catch-up must actually have been served");
}

/// The anti-entropy snapshot fallback: when a member falls further
/// behind than the origin's delta log reaches, the origin serves its
/// full shard — including remembered withdrawals, which an additive
/// snapshot would silently drop, leaving the recovered member with a
/// stale entry it would then re-export forever.
#[test]
fn snapshot_fallback_serves_entries_and_withdrawals() {
    let n = 3u32;
    let mut cfg = config_with(DisseminationStrategy::Ring, n as usize);
    cfg.anti_entropy_interval_ms = 3_000;
    cfg.delta_log_flushes = 1; // force the snapshot path for any real lag
    let mut net = MiniNet::new(n as usize, cfg);
    net.run_for(SEC);

    // Origin 0 learns hosts through its own switches (so its C-LIB — the
    // snapshot source — holds them), one per flush tick.
    let origin_switch = (0..9u32)
        .map(SwitchId::new)
        .find(|&s| net.plane.owner_of_switch(s) == Some(0))
        .expect("member 0 owns switches");
    let sleeper = 2u32;
    // Host 700 is learned and fully replicated (sleeper included) first…
    let learn = |mac: u64, xid: u32| {
        Message::lazy(
            xid,
            LazyMsg::lfib_sync(LfibSyncMsg {
                origin: origin_switch,
                epoch: 0,
                entries: vec![LfibEntry {
                    mac: MacAddr::for_host(mac),
                    tenant: TenantId::new(1),
                    port: PortNo::new(2),
                }],
                removed: vec![],
            }),
        )
    };
    net.send_switch(origin_switch, &learn(700, 0));
    net.run_for(6 * SEC);
    assert!(
        net.plane.view_of(sleeper, MacAddr::for_host(700)).is_some(),
        "host 700 must be replicated to the sleeper before the outage"
    );
    // …then the sleeper goes dark and misses both the later learns and
    // the withdrawal of 700.
    net.plane.crash(sleeper);
    for tick in 1..6u64 {
        net.send_switch(origin_switch, &learn(700 + tick, tick as u32));
        net.run_for(SEC);
    }
    // Withdraw host 700 — the snapshot must carry this removal.
    let withdrawal = LfibSyncMsg {
        origin: origin_switch,
        epoch: 0,
        entries: vec![],
        removed: vec![MacAddr::for_host(700)],
    };
    net.send_switch(
        origin_switch,
        &Message::lazy(99, LazyMsg::lfib_sync(withdrawal)),
    );
    net.run_for(10 * SEC);

    net.recover(sleeper);
    net.run_for(30 * SEC);

    for tick in 1..6u64 {
        assert!(
            net.plane
                .view_of(sleeper, MacAddr::for_host(700 + tick))
                .is_some(),
            "sleeper missing host {tick} from the snapshot"
        );
    }
    assert_eq!(
        net.plane.view_of(sleeper, MacAddr::for_host(700)),
        None,
        "the snapshot must replay the withdrawal (own tombstones)"
    );
}

/// A recovered member's very first flush — fired while the cluster still
/// believes it dead (its comeback heartbeat has not landed yet) — must
/// still enter the ring, not vanish into a degenerate route.
#[test]
fn recovered_member_first_flush_enters_the_ring() {
    let n = 4u32;
    let mut cfg = config_with(DisseminationStrategy::Ring, n as usize);
    cfg.anti_entropy_interval_ms = 600_000; // no repair: the ring must carry it
    let mut net = MiniNet::new(n as usize, cfg);
    net.run_for(SEC);

    let victim = 2u32;
    net.plane.crash(victim);
    net.run_for(10 * SEC);
    assert_eq!(net.plane.confirmed_dead(), vec![victim]);

    // Recover and immediately learn a host: the first ReplicaFlush fires
    // at the same deadline as the first comeback heartbeat, while the
    // member is still in confirmed_dead.
    net.recover(victim);
    net.plane
        .enqueue_delta(victim, vec![entry(4242, 6)], vec![]);
    // A few flush ticks: enough for one ring circulation, nowhere near
    // the (disabled) anti-entropy cadence.
    net.run_for(8 * SEC);

    for member in 0..n {
        if member == victim {
            continue;
        }
        assert_eq!(
            net.plane.view_of(member, MacAddr::for_host(4242)),
            Some(entry(4242, 6)),
            "member {member} never received the recovered member's flush"
        );
    }
}

/// Confirming a member dead heals the overlay around it: circulation
/// keeps reaching every survivor.
#[test]
fn overlay_heals_around_a_confirmed_dead_member() {
    for strategy in [
        DisseminationStrategy::Ring,
        DisseminationStrategy::Tree { fanout: 2 },
    ] {
        let n = 4u32;
        let mut cfg = config_with(strategy, n as usize);
        cfg.anti_entropy_interval_ms = 600_000; // overlay only
        let mut net = MiniNet::new(n as usize, cfg);
        net.run_for(SEC);
        // Crash member 0 — under tree that is the root itself — and wait
        // for confirmation so the overlay recomputes without it.
        net.plane.crash(0);
        net.run_for(10 * SEC);
        assert_eq!(net.plane.confirmed_dead(), vec![0]);

        for tick in 0..6u64 {
            for origin in 1..n {
                net.plane.enqueue_delta(
                    origin,
                    vec![entry(900 + 10 * origin as u64 + tick, 3)],
                    vec![],
                );
            }
            net.run_for(SEC);
        }
        net.run_for(8 * SEC);
        for member in 1..n {
            for origin in 1..n {
                if member == origin {
                    continue;
                }
                for tick in 0..6u64 {
                    let mac = MacAddr::for_host(900 + 10 * origin as u64 + tick);
                    assert!(
                        net.plane.view_of(member, mac).is_some(),
                        "{}: survivor {member} missing origin {origin}'s host {tick} after heal",
                        strategy.label(),
                    );
                }
            }
        }
    }
}
