//! Property tests for the dissemination invariants: for random cluster
//! sizes, strategies, crash/recover schedules and delta loads —
//!
//! * every live member converges to the same replicated C-LIB view,
//! * no delta chunk is applied twice off the relay overlay,
//! * ring/tree message cost stays O(n) per flush round.

mod common;

use common::{test_config, MiniNet};
use lazyctrl_cluster::DisseminationStrategy;
use lazyctrl_net::{MacAddr, PortNo, SwitchId, TenantId};
use lazyctrl_proto::HostEntry;
use proptest::prelude::*;

const SEC: u64 = 1_000_000_000;
/// Load ticks driven per case.
const TICKS: u64 = 6;
/// Drain ticks after the load stops (a full ring circumference at the
/// largest cluster size, plus slack).
const DRAIN: u64 = 8;

fn entry_for(origin: u32, tick: u64) -> HostEntry {
    HostEntry {
        mac: MacAddr::for_host(10_000 * origin as u64 + tick),
        switch: SwitchId::new(origin * 3),
        port: PortNo::new(1),
        tenant: TenantId::new(1),
    }
}

fn arb_strategy() -> impl Strategy<Value = DisseminationStrategy> {
    prop_oneof![
        Just(DisseminationStrategy::Flood),
        Just(DisseminationStrategy::Ring),
        (2usize..=4).prop_map(|fanout| DisseminationStrategy::Tree { fanout }),
    ]
}

/// A randomized cluster run: `n` members under `strategy`, every member
/// learning one host per tick, with `crashed` members dark between ticks
/// 1 and 4 (recovered afterwards, anti-entropy healing the holes).
fn run_case(n: u32, strategy: DisseminationStrategy, crashed: Vec<u32>, withdraw: bool) -> MiniNet {
    let mut cfg = test_config(n as usize);
    cfg.dissemination = strategy;
    // Crash-free cases must converge from the overlay alone; crashy ones
    // get anti-entropy at a 3 s cadence.
    cfg.anti_entropy_interval_ms = if crashed.is_empty() { 600_000 } else { 3_000 };
    let mut net = MiniNet::new(n as usize, cfg);
    net.run_for(SEC);
    for tick in 0..TICKS {
        if tick == 1 {
            for &c in &crashed {
                net.plane.crash(c);
            }
        }
        if tick == 4 {
            for &c in &crashed {
                net.recover(c);
            }
        }
        for origin in 0..n {
            if crashed.contains(&origin) && (1..4).contains(&tick) {
                continue; // a dark member learns nothing
            }
            net.plane
                .enqueue_delta(origin, vec![entry_for(origin, tick)], vec![]);
        }
        net.run_for(SEC);
    }
    if withdraw {
        // Withdraw the very first host — convergence must cover removals.
        net.plane
            .enqueue_delta(0, vec![], vec![(MacAddr::for_host(0), SwitchId::new(0))]);
    }
    net.run_for(DRAIN * SEC);
    if !crashed.is_empty() {
        // Let the anti-entropy rotation visit enough peers to heal every
        // hole the outage punched.
        net.run_for(12 * (n as u64) * SEC);
    }
    net
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every live member ends with the same view of every foreign host,
    /// under every strategy, crash schedules included.
    #[test]
    fn live_members_converge(
        n in 2u32..=6,
        strategy in arb_strategy(),
        crash_mask in proptest::collection::btree_set(0u32..6, 0..=2),
        withdraw in any::<bool>(),
    ) {
        let crashed: Vec<u32> = crash_mask.into_iter().filter(|&c| c < n).collect();
        // Keep a quorum alive so a leader always exists during the outage.
        prop_assume!((crashed.len() as u32) < n);
        let net = run_case(n, strategy, crashed.clone(), withdraw);
        for member in 0..n {
            for origin in 0..n {
                if member == origin {
                    continue;
                }
                for tick in 0..TICKS {
                    if crashed.contains(&origin) && (1..4).contains(&tick) {
                        continue; // the origin was dark: nothing to learn
                    }
                    let host = 10_000 * origin as u64 + tick;
                    let view = net.plane.view_of(member, MacAddr::for_host(host));
                    if withdraw && host == 0 {
                        prop_assert!(
                            view.is_none(),
                            "{}: member {member} kept withdrawn host of origin {origin}",
                            strategy.label(),
                        );
                    } else {
                        prop_assert_eq!(
                            view,
                            Some(entry_for(origin, tick)),
                            "{}: member {} lost origin {}'s tick-{} host",
                            strategy.label(), member, origin, tick,
                        );
                    }
                }
            }
        }
    }

    /// The relay overlay never applies the same chunk twice: per member,
    /// relay applies are bounded by the foreign chunks in existence.
    #[test]
    fn no_relay_chunk_applies_twice(
        n in 2u32..=6,
        strategy in arb_strategy(),
        crash_mask in proptest::collection::btree_set(0u32..6, 0..=2),
    ) {
        let crashed: Vec<u32> = crash_mask.into_iter().filter(|&c| c < n).collect();
        prop_assume!((crashed.len() as u32) < n);
        let net = run_case(n, strategy, crashed, false);
        let chunks: Vec<u64> = (0..n)
            .map(|i| net.plane.sync_traffic(i).chunks_created)
            .collect();
        let total: u64 = chunks.iter().sum();
        for member in 0..n {
            let t = net.plane.sync_traffic(member);
            let foreign = total - chunks[member as usize];
            prop_assert!(
                t.relay_applies <= foreign,
                "{}: member {} applied {} relayed chunks, only {} foreign exist",
                strategy.label(), member, t.relay_applies, foreign,
            );
        }
    }

    /// Ring and tree cost O(n) messages per flush round (flood pays
    /// O(n²)): across the whole crash-free run, total sync messages stay
    /// within 2n per round, regardless of how many deltas each round
    /// carried.
    #[test]
    fn overlay_message_cost_is_linear(
        n in 2u32..=6,
        strategy in prop_oneof![
            Just(DisseminationStrategy::Ring),
            (2usize..=4).prop_map(|fanout| DisseminationStrategy::Tree { fanout }),
        ],
    ) {
        let net = run_case(n, strategy, vec![], false);
        let msgs: u64 = (0..n).map(|i| net.plane.sync_traffic(i).messages_sent).sum();
        let rounds = TICKS + DRAIN + 1;
        prop_assert!(
            msgs <= 2 * rounds * n as u64,
            "{}: {} sync messages over {} rounds exceeds the 2n/round O(n) bound",
            strategy.label(), msgs, rounds,
        );
    }
}
