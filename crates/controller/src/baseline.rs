//! The comparison controller: standard OpenFlow reactive control, modelled
//! on Floodlight's `learning-switch` module (§V-A "normal mode", §V-D
//! "standard OpenFlow control (with the original Floodlight
//! implementation)").
//!
//! Every first packet of every flow reaches this controller; it learns
//! source locations from `PacketIn`s, floods unknown destinations, and once
//! both endpoints are known installs an `Encap` rule on the ingress switch
//! so the flow's remaining packets ride the underlay directly.

use lazyctrl_net::{EthernetFrame, MacAddr, PortNo, SwitchId, TenantId};
use lazyctrl_proto::{
    Action, FlowMatch, FlowModCommand, FlowModMsg, Message, OfMessage, OutputSink, PacketInMsg,
    PacketOutMsg,
};
use serde::{Deserialize, Serialize};

use crate::lazy::ControllerOutput;
use crate::WorkloadMeter;

/// Floodlight-style reactive learning controller.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BaselineController {
    switches: Vec<SwitchId>,
    hosts: std::collections::BTreeMap<MacAddr, (SwitchId, PortNo)>,
    meter: WorkloadMeter,
    flow_idle_timeout_s: u16,
    xid: u32,
}

impl BaselineController {
    /// Creates the controller managing the given switches.
    pub fn new(switches: Vec<SwitchId>) -> Self {
        BaselineController {
            switches,
            hosts: std::collections::BTreeMap::new(),
            meter: WorkloadMeter::new(),
            flow_idle_timeout_s: 30,
            xid: 0,
        }
    }

    /// The workload meter (for experiment harnesses).
    pub fn meter(&self) -> &WorkloadMeter {
        &self.meter
    }

    /// Number of learned host locations.
    pub fn known_hosts(&self) -> usize {
        self.hosts.len()
    }

    fn next_xid(&mut self) -> u32 {
        self.xid = self.xid.wrapping_add(1);
        self.xid
    }

    /// Handles a message from a switch on the control link, pushing the
    /// effects into the caller's sink.
    pub fn handle_message(
        &mut self,
        now_ns: u64,
        from: SwitchId,
        msg: &Message,
        out: &mut OutputSink<ControllerOutput>,
    ) {
        self.meter.record(now_ns);
        match &msg.body {
            lazyctrl_proto::MessageBody::Of(OfMessage::PacketIn(pi)) => {
                self.handle_packet_in(now_ns, from, pi, out);
            }
            lazyctrl_proto::MessageBody::Of(OfMessage::Hello) => {
                let xid = self.next_xid();
                out.push(ControllerOutput::ToSwitch(
                    from,
                    Message::of(xid, OfMessage::Hello),
                ));
            }
            lazyctrl_proto::MessageBody::Of(OfMessage::EchoRequest(data)) => {
                let xid = self.next_xid();
                out.push(ControllerOutput::ToSwitch(
                    from,
                    Message::of(xid, OfMessage::EchoReply(data.clone())),
                ));
            }
            _ => {}
        }
    }

    fn handle_packet_in(
        &mut self,
        _now_ns: u64,
        from: SwitchId,
        pi: &PacketInMsg,
        out: &mut OutputSink<ControllerOutput>,
    ) {
        let Ok(frame) = EthernetFrame::decode(&pi.data) else {
            return;
        };
        // Learn the source.
        self.hosts.insert(frame.src, (from, pi.in_port));

        match self.hosts.get(&frame.dst).copied() {
            Some((dst_switch, dst_port)) => {
                // Known destination: install the forwarding rule on the
                // ingress switch, then release the packet.
                let tenant = frame.vlan.map(|t| t.vid()).unwrap_or(TenantId::NONE);
                let actions = if dst_switch == from {
                    vec![Action::Output(dst_port)]
                } else {
                    vec![Action::Encap {
                        remote: dst_switch.underlay_ip(),
                        key: 0,
                    }]
                };
                let _ = tenant;
                let xid = self.next_xid();
                out.push(ControllerOutput::ToSwitch(
                    from,
                    Message::of(
                        xid,
                        OfMessage::flow_mod(FlowModMsg {
                            command: FlowModCommand::Add,
                            flow_match: FlowMatch::to_dst(frame.dst),
                            priority: 10,
                            idle_timeout: self.flow_idle_timeout_s,
                            hard_timeout: 0,
                            cookie: 0,
                            actions: actions.clone(),
                        }),
                    ),
                ));
                let xid = self.next_xid();
                out.push(ControllerOutput::ToSwitch(
                    from,
                    Message::of(
                        xid,
                        OfMessage::PacketOut(PacketOutMsg {
                            buffer_id: pi.buffer_id,
                            in_port: pi.in_port,
                            actions,
                            data: pi.data.clone(),
                        }),
                    ),
                ));
            }
            None => {
                // Unknown destination: flood. The learning switch relays
                // the packet to every other switch for local flooding.
                let switches = self.switches.clone();
                for s in switches {
                    if s == from {
                        continue;
                    }
                    let xid = self.next_xid();
                    out.push(ControllerOutput::ToSwitch(
                        s,
                        Message::of(
                            xid,
                            OfMessage::PacketOut(PacketOutMsg {
                                buffer_id: u32::MAX,
                                in_port: PortNo::NONE,
                                actions: vec![Action::Output(PortNo::FLOOD)],
                                data: pi.data.clone(),
                            }),
                        ),
                    ));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazyctrl_net::{EtherType, HostId};
    use lazyctrl_proto::PacketInReason;

    fn handle(
        c: &mut BaselineController,
        now_ns: u64,
        from: SwitchId,
        msg: &Message,
    ) -> Vec<ControllerOutput> {
        let mut sink = OutputSink::new();
        c.handle_message(now_ns, from, msg, &mut sink);
        sink.take_buf()
    }

    fn packet_in(src: u32, dst: u32) -> PacketInMsg {
        let frame = EthernetFrame::new(
            HostId::new(src).mac(),
            HostId::new(dst).mac(),
            EtherType::IPV4,
            vec![0; 20],
        );
        PacketInMsg {
            buffer_id: u32::MAX,
            in_port: PortNo::new(1),
            reason: PacketInReason::NoMatch,
            data: frame.encode().into(),
        }
    }

    fn switches(n: u32) -> Vec<SwitchId> {
        (0..n).map(SwitchId::new).collect()
    }

    #[test]
    fn unknown_destination_floods_everywhere_else() {
        let mut c = BaselineController::new(switches(4));
        let msg = Message::of(1, OfMessage::PacketIn(packet_in(10, 20)));
        let out = handle(&mut c, 0, SwitchId::new(0), &msg);
        // Flood relayed to the 3 other switches.
        assert_eq!(out.len(), 3);
        for o in &out {
            let ControllerOutput::ToSwitch(s, m) = o else {
                panic!("unexpected output {o:?}")
            };
            assert_ne!(*s, SwitchId::new(0));
            assert!(matches!(
                &m.body,
                lazyctrl_proto::MessageBody::Of(OfMessage::PacketOut(_))
            ));
        }
        assert_eq!(c.known_hosts(), 1, "source learned");
    }

    #[test]
    fn known_destination_installs_encap_rule() {
        let mut c = BaselineController::new(switches(4));
        // Teach the controller where host 20 lives (its own traffic from S2).
        let _ = handle(
            &mut c,
            0,
            SwitchId::new(2),
            &Message::of(1, OfMessage::PacketIn(packet_in(20, 10))),
        );
        // Now host 10 on S0 talks to 20.
        let out = handle(
            &mut c,
            1,
            SwitchId::new(0),
            &Message::of(2, OfMessage::PacketIn(packet_in(10, 20))),
        );
        assert_eq!(out.len(), 2, "FlowMod + PacketOut: {out:?}");
        let ControllerOutput::ToSwitch(s, m) = &out[0] else {
            panic!()
        };
        assert_eq!(*s, SwitchId::new(0));
        match &m.body {
            lazyctrl_proto::MessageBody::Of(OfMessage::FlowMod(fm)) => {
                assert_eq!(fm.command, FlowModCommand::Add);
                assert_eq!(
                    fm.actions,
                    vec![Action::Encap {
                        remote: SwitchId::new(2).underlay_ip(),
                        key: 0
                    }]
                );
                assert_eq!(fm.idle_timeout, 30);
            }
            other => panic!("expected FlowMod, got {other:?}"),
        }
    }

    #[test]
    fn same_switch_destination_outputs_port() {
        let mut c = BaselineController::new(switches(2));
        let mut pi = packet_in(20, 10);
        pi.in_port = PortNo::new(7);
        let _ = handle(
            &mut c,
            0,
            SwitchId::new(0),
            &Message::of(1, OfMessage::PacketIn(pi)),
        );
        let out = handle(
            &mut c,
            1,
            SwitchId::new(0),
            &Message::of(2, OfMessage::PacketIn(packet_in(10, 20))),
        );
        let ControllerOutput::ToSwitch(_, m) = &out[0] else {
            panic!()
        };
        match &m.body {
            lazyctrl_proto::MessageBody::Of(OfMessage::FlowMod(fm)) => {
                assert_eq!(fm.actions, vec![Action::Output(PortNo::new(7))]);
            }
            other => panic!("expected FlowMod, got {other:?}"),
        }
    }

    #[test]
    fn every_message_counts_as_workload() {
        let mut c = BaselineController::new(switches(2));
        for i in 0..5u64 {
            let _ = handle(
                &mut c,
                i * 1_000_000,
                SwitchId::new(0),
                &Message::of(1, OfMessage::PacketIn(packet_in(10, 20))),
            );
        }
        assert_eq!(c.meter().total(), 5);
    }

    #[test]
    fn echo_is_answered() {
        let mut c = BaselineController::new(switches(1));
        let out = handle(
            &mut c,
            0,
            SwitchId::new(0),
            &Message::of(9, OfMessage::EchoRequest(vec![7])),
        );
        assert!(matches!(
            &out[0],
            ControllerOutput::ToSwitch(_, m)
                if matches!(&m.body, lazyctrl_proto::MessageBody::Of(OfMessage::EchoReply(d)) if d == &vec![7])
        ));
    }
}
