//! The Central Location Information Base (C-LIB): global host-to-switch
//! mapping (§III-D.2, Fig. 4).

use std::collections::BTreeMap;

use lazyctrl_net::{MacAddr, PortNo, SwitchId, TenantId};
use lazyctrl_proto::LfibSyncMsg;
use serde::{Deserialize, Serialize};

/// Where a host lives, according to the C-LIB.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HostLocation {
    /// The edge switch the host is attached to.
    pub switch: SwitchId,
    /// The port on that switch.
    pub port: PortNo,
    /// The owning tenant.
    pub tenant: TenantId,
}

/// The controller's replica of every switch's L-FIB.
///
/// Alongside the host map it maintains a `(tenant, switch) → host count`
/// index, so the ARP-relay hot path's "which switches host this tenant"
/// query is a range scan over the (few) hosting switches instead of a
/// walk over every known host.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Clib {
    hosts: BTreeMap<MacAddr, HostLocation>,
    tenant_switches: BTreeMap<(TenantId, SwitchId), u32>,
}

impl Clib {
    /// Creates an empty C-LIB.
    pub fn new() -> Self {
        Clib::default()
    }

    /// Number of known hosts.
    pub fn len(&self) -> usize {
        self.hosts.len()
    }

    /// True when no hosts are known.
    pub fn is_empty(&self) -> bool {
        self.hosts.is_empty()
    }

    fn index_add(&mut self, tenant: TenantId, switch: SwitchId) {
        *self.tenant_switches.entry((tenant, switch)).or_insert(0) += 1;
    }

    fn index_sub(&mut self, tenant: TenantId, switch: SwitchId) {
        if let Some(n) = self.tenant_switches.get_mut(&(tenant, switch)) {
            *n -= 1;
            if *n == 0 {
                self.tenant_switches.remove(&(tenant, switch));
            }
        }
    }

    fn insert_host(&mut self, mac: MacAddr, location: HostLocation) {
        if let Some(old) = self.hosts.insert(mac, location) {
            self.index_sub(old.tenant, old.switch);
        }
        self.index_add(location.tenant, location.switch);
    }

    /// Absorbs an L-FIB sync relayed up a state link.
    pub fn apply_sync(&mut self, sync: &LfibSyncMsg) {
        for e in &sync.entries {
            self.insert_host(
                e.mac,
                HostLocation {
                    switch: sync.origin,
                    port: e.port,
                    tenant: e.tenant,
                },
            );
        }
        for mac in &sync.removed {
            // Only the owning switch may withdraw (a stale removal from a
            // previous location must not clobber a fresh learn elsewhere).
            if let Some(loc) = self.hosts.get(mac).copied() {
                if loc.switch == sync.origin {
                    self.hosts.remove(mac);
                    self.index_sub(loc.tenant, loc.switch);
                }
            }
        }
    }

    /// Records a single host directly (bootstrap / PacketIn learning).
    pub fn learn(&mut self, mac: MacAddr, location: HostLocation) {
        self.insert_host(mac, location);
    }

    /// Looks up a host.
    pub fn locate(&self, mac: MacAddr) -> Option<HostLocation> {
        self.hosts.get(&mac).copied()
    }

    /// All hosts attached to one switch.
    pub fn hosts_on(&self, switch: SwitchId) -> Vec<(MacAddr, HostLocation)> {
        self.hosts
            .iter()
            .filter(|(_, l)| l.switch == switch)
            .map(|(&m, &l)| (m, l))
            .collect()
    }

    /// All switches hosting at least one VM of `tenant` (sorted).
    pub fn switches_of_tenant(&self, tenant: TenantId) -> Vec<SwitchId> {
        self.tenant_switches
            .range((tenant, SwitchId::new(0))..=(tenant, SwitchId::new(u32::MAX)))
            .map(|(&(_, s), _)| s)
            .collect()
    }

    /// Iterates over all known hosts.
    pub fn iter(&self) -> impl Iterator<Item = (MacAddr, HostLocation)> + '_ {
        self.hosts.iter().map(|(&m, &l)| (m, l))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazyctrl_proto::LfibEntry;

    fn sync(origin: u32, entries: Vec<(u64, u16)>, removed: Vec<u64>) -> LfibSyncMsg {
        LfibSyncMsg {
            origin: SwitchId::new(origin),
            epoch: 1,
            entries: entries
                .into_iter()
                .map(|(h, t)| LfibEntry {
                    mac: MacAddr::for_host(h),
                    tenant: TenantId::new(t),
                    port: PortNo::new(1),
                })
                .collect(),
            removed: removed.into_iter().map(MacAddr::for_host).collect(),
        }
    }

    #[test]
    fn sync_builds_the_map() {
        let mut clib = Clib::new();
        clib.apply_sync(&sync(3, vec![(10, 1), (11, 2)], vec![]));
        assert_eq!(clib.len(), 2);
        let loc = clib.locate(MacAddr::for_host(10)).unwrap();
        assert_eq!(loc.switch, SwitchId::new(3));
        assert_eq!(loc.tenant, TenantId::new(1));
        assert!(clib.locate(MacAddr::for_host(99)).is_none());
    }

    #[test]
    fn migration_moves_ownership() {
        let mut clib = Clib::new();
        clib.apply_sync(&sync(3, vec![(10, 1)], vec![]));
        // Host migrates to switch 5 (new learn arrives first)...
        clib.apply_sync(&sync(5, vec![(10, 1)], vec![]));
        // ...then the old switch's stale withdrawal must NOT remove it.
        clib.apply_sync(&sync(3, vec![], vec![10]));
        let loc = clib.locate(MacAddr::for_host(10)).unwrap();
        assert_eq!(loc.switch, SwitchId::new(5));
    }

    #[test]
    fn owner_withdrawal_removes() {
        let mut clib = Clib::new();
        clib.apply_sync(&sync(3, vec![(10, 1)], vec![]));
        clib.apply_sync(&sync(3, vec![], vec![10]));
        assert!(clib.locate(MacAddr::for_host(10)).is_none());
        assert!(clib.is_empty());
    }

    #[test]
    fn tenant_and_switch_queries() {
        let mut clib = Clib::new();
        clib.apply_sync(&sync(1, vec![(10, 7), (11, 7)], vec![]));
        clib.apply_sync(&sync(2, vec![(12, 7), (13, 8)], vec![]));
        assert_eq!(
            clib.switches_of_tenant(TenantId::new(7)),
            vec![SwitchId::new(1), SwitchId::new(2)]
        );
        assert_eq!(
            clib.switches_of_tenant(TenantId::new(8)),
            vec![SwitchId::new(2)]
        );
        assert!(clib.switches_of_tenant(TenantId::new(9)).is_empty());
        assert_eq!(clib.hosts_on(SwitchId::new(1)).len(), 2);
    }
}
