//! Controller-side failure inference and recovery (§III-E, Table I).
//!
//! Switches report keep-alive losses ([`WheelReportMsg`]); within an
//! observation window the controller matches the loss pattern against
//! Table I:
//!
//! | observed losses for Sn                  | inference        |
//! |-----------------------------------------|------------------|
//! | controller→Sn only                      | control link     |
//! | Sn→Sn−1 only (downstream reporter)      | peer link (up)   |
//! | Sn→Sn+1 only (upstream reporter)        | peer link (down) |
//! | both ring directions (+ controller)     | switch Sn dead   |
//!
//! and emits the §III-E.2/E.3 recovery actions.

use std::collections::BTreeMap;

use lazyctrl_net::SwitchId;
use lazyctrl_proto::{WheelLoss, WheelReportMsg};
use serde::{Deserialize, Serialize};

/// What the controller concluded failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FailureKind {
    /// The control link between the controller and the switch.
    ControlLink(SwitchId),
    /// The peer link towards the switch's upstream ring neighbour.
    PeerLinkUp(SwitchId),
    /// The peer link towards the switch's downstream ring neighbour.
    PeerLinkDown(SwitchId),
    /// The switch itself.
    Switch(SwitchId),
}

/// Recovery steps per §III-E.2 and §III-E.3.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RecoveryAction {
    /// Ask the upstream neighbour to relay control traffic for a switch
    /// whose control link is down.
    RelayControlVia {
        /// The cut-off switch.
        switch: SwitchId,
        /// Its upstream neighbour, now acting as relay.
        via: SwitchId,
    },
    /// Re-select the designated switch (peer-link failure touching it, or
    /// designated switch death).
    ReselectDesignated {
        /// Group whose designated switch must change.
        group: usize,
        /// The switch stepping down.
        old: SwitchId,
    },
    /// Route data traffic around a failed path.
    DetourRoute {
        /// Affected switch.
        switch: SwitchId,
    },
    /// Announce a temporary outage group-wide, reboot, and poll for
    /// comeback.
    RebootSwitch {
        /// The dead switch.
        switch: SwitchId,
    },
    /// Proactively trigger a state re-synchronization in the group when a
    /// rebooted switch returns.
    Resync {
        /// The recovered switch.
        switch: SwitchId,
    },
}

/// Aggregates wheel reports within a time window and infers failures.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FailureDetector {
    /// (missing switch) → loss kinds observed, with observation time.
    observations: BTreeMap<SwitchId, BTreeMap<WheelLoss, u64>>,
    /// Window for correlating observations (ns).
    window_ns: u64,
    /// Switches currently believed dead (awaiting comeback).
    down: BTreeMap<SwitchId, u64>,
}

impl FailureDetector {
    /// Creates a detector with a 5-second correlation window.
    pub fn new() -> Self {
        Self::with_window(5_000_000_000)
    }

    /// Creates a detector with an explicit correlation window.
    ///
    /// Losses are only observable at the wheel's detection-deadline
    /// granularity (keep-alive interval × miss threshold), and a
    /// still-silent source is re-reported once per deadline — so a window
    /// of at least two deadlines guarantees that a genuinely dead switch's
    /// two ring directions eventually land in one window, whatever the
    /// reporters' phase offsets (e.g. one of them rebooted mid-outage).
    pub fn with_window(window_ns: u64) -> Self {
        FailureDetector {
            observations: BTreeMap::new(),
            window_ns,
            down: BTreeMap::new(),
        }
    }

    /// Absorbs one wheel report; returns an inference if the accumulated
    /// pattern is now unambiguous.
    ///
    /// Single-direction losses are reported immediately (rows 1–3 of
    /// Table I); the switch-dead row fires as soon as both ring directions
    /// have been observed within the window.
    pub fn observe(&mut self, now_ns: u64, report: &WheelReportMsg) -> Option<FailureKind> {
        // Already confirmed dead: the wheel re-raises losses once per
        // deadline while the source stays silent, and re-inferring from
        // those (a lone direction would even hit the wrong Table-I row)
        // would re-fire recovery for the whole outage. Comeback clears
        // the entry via `mark_recovered`, re-arming detection.
        if self.down.contains_key(&report.missing) {
            return None;
        }
        let entry = self.observations.entry(report.missing).or_default();
        entry.insert(report.loss, now_ns);
        entry.retain(|_, &mut t| now_ns.saturating_sub(t) <= self.window_ns);

        let has = |l: WheelLoss| entry.contains_key(&l);
        let both_ring = has(WheelLoss::Upstream) && has(WheelLoss::Downstream);
        if both_ring {
            self.observations.remove(&report.missing);
            self.down.insert(report.missing, now_ns);
            return Some(FailureKind::Switch(report.missing));
        }
        // Single observations map to link failures; give the companion
        // observation one report's grace only for the ring directions
        // (they arrive from different reporters). Controller-loss alone is
        // decisive.
        match report.loss {
            WheelLoss::Controller => Some(FailureKind::ControlLink(report.missing)),
            WheelLoss::Upstream => Some(FailureKind::PeerLinkUp(report.missing)),
            WheelLoss::Downstream => Some(FailureKind::PeerLinkDown(report.missing)),
        }
    }

    /// Marks a switch as recovered; returns true if it was down.
    pub fn mark_recovered(&mut self, switch: SwitchId) -> bool {
        self.observations.remove(&switch);
        self.down.remove(&switch).is_some()
    }

    /// Switches currently believed dead.
    pub fn down_switches(&self) -> Vec<SwitchId> {
        self.down.keys().copied().collect()
    }

    /// Deterministic snapshot of the correlation window: every
    /// (missing switch, loss kind, observation time) triple currently
    /// retained. Exposed so state-hashing layers can fold the detector's
    /// pending evidence into a fingerprint.
    pub fn observation_state(&self) -> Vec<(SwitchId, WheelLoss, u64)> {
        self.observations
            .iter()
            .flat_map(|(sw, losses)| losses.iter().map(|(l, t)| (*sw, *l, *t)))
            .collect()
    }

    /// Deterministic snapshot of the believed-down set with the time each
    /// entry latched. Companion to [`observation_state`](Self::observation_state)
    /// for state hashing.
    pub fn down_state(&self) -> Vec<(SwitchId, u64)> {
        self.down.iter().map(|(sw, t)| (*sw, *t)).collect()
    }

    /// The §III-E recovery plan for an inferred failure.
    ///
    /// `ring_prev` is the failed switch's upstream neighbour;
    /// `is_designated` and `group` describe its role.
    pub fn plan_recovery(
        kind: FailureKind,
        ring_prev: SwitchId,
        is_designated: bool,
        group: usize,
    ) -> Vec<RecoveryAction> {
        match kind {
            FailureKind::ControlLink(s) => vec![RecoveryAction::RelayControlVia {
                switch: s,
                via: ring_prev,
            }],
            FailureKind::PeerLinkUp(s) | FailureKind::PeerLinkDown(s) => {
                let mut plan = vec![RecoveryAction::DetourRoute { switch: s }];
                if is_designated {
                    plan.push(RecoveryAction::ReselectDesignated { group, old: s });
                }
                plan
            }
            FailureKind::Switch(s) => {
                let mut plan = vec![RecoveryAction::RebootSwitch { switch: s }];
                if is_designated {
                    plan.push(RecoveryAction::ReselectDesignated { group, old: s });
                }
                plan
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(missing: u32, loss: WheelLoss, reporter: u32) -> WheelReportMsg {
        WheelReportMsg {
            reporter: SwitchId::new(reporter),
            missing: SwitchId::new(missing),
            loss,
        }
    }

    #[test]
    fn control_link_row() {
        let mut d = FailureDetector::new();
        let k = d.observe(0, &report(5, WheelLoss::Controller, 5));
        assert_eq!(k, Some(FailureKind::ControlLink(SwitchId::new(5))));
    }

    #[test]
    fn peer_link_rows() {
        let mut d = FailureDetector::new();
        assert_eq!(
            d.observe(0, &report(5, WheelLoss::Upstream, 6)),
            Some(FailureKind::PeerLinkUp(SwitchId::new(5)))
        );
        let mut d = FailureDetector::new();
        assert_eq!(
            d.observe(0, &report(5, WheelLoss::Downstream, 4)),
            Some(FailureKind::PeerLinkDown(SwitchId::new(5)))
        );
    }

    #[test]
    fn dead_switch_row_needs_both_ring_directions() {
        let mut d = FailureDetector::new();
        let first = d.observe(0, &report(5, WheelLoss::Upstream, 6));
        assert_eq!(first, Some(FailureKind::PeerLinkUp(SwitchId::new(5))));
        let second = d.observe(1_000_000_000, &report(5, WheelLoss::Downstream, 4));
        assert_eq!(second, Some(FailureKind::Switch(SwitchId::new(5))));
        assert_eq!(d.down_switches(), vec![SwitchId::new(5)]);
    }

    #[test]
    fn stale_observations_age_out() {
        let mut d = FailureDetector::new();
        let _ = d.observe(0, &report(5, WheelLoss::Upstream, 6));
        // 10 s later (beyond the 5 s window) the companion arrives: the old
        // observation no longer corroborates a switch death.
        let k = d.observe(10_000_000_000, &report(5, WheelLoss::Downstream, 4));
        assert_eq!(k, Some(FailureKind::PeerLinkDown(SwitchId::new(5))));
        assert!(d.down_switches().is_empty());
    }

    #[test]
    fn recovery_clears_down_state() {
        let mut d = FailureDetector::new();
        let _ = d.observe(0, &report(5, WheelLoss::Upstream, 6));
        let _ = d.observe(1, &report(5, WheelLoss::Downstream, 4));
        assert!(d.mark_recovered(SwitchId::new(5)));
        assert!(!d.mark_recovered(SwitchId::new(5)));
        assert!(d.down_switches().is_empty());
    }

    #[test]
    fn recovery_plans_match_the_paper() {
        let plan = FailureDetector::plan_recovery(
            FailureKind::ControlLink(SwitchId::new(5)),
            SwitchId::new(4),
            false,
            0,
        );
        assert_eq!(
            plan,
            vec![RecoveryAction::RelayControlVia {
                switch: SwitchId::new(5),
                via: SwitchId::new(4)
            }]
        );

        let plan = FailureDetector::plan_recovery(
            FailureKind::PeerLinkUp(SwitchId::new(5)),
            SwitchId::new(4),
            true,
            3,
        );
        assert!(plan.contains(&RecoveryAction::DetourRoute {
            switch: SwitchId::new(5)
        }));
        assert!(plan.contains(&RecoveryAction::ReselectDesignated {
            group: 3,
            old: SwitchId::new(5)
        }));

        let plan = FailureDetector::plan_recovery(
            FailureKind::Switch(SwitchId::new(5)),
            SwitchId::new(4),
            false,
            0,
        );
        assert_eq!(
            plan,
            vec![RecoveryAction::RebootSwitch {
                switch: SwitchId::new(5)
            }]
        );
    }
}
