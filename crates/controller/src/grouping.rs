//! Switch grouping management (§IV-B): wraps the SGI algorithm, watches
//! the traffic pattern through state reports, and regenerates group
//! assignments under the paper's regrouping triggers.
//!
//! Triggers (§IV-B): "Regrouping will be triggered when i) the workload of
//! the controller suffers from an accumulated growth of up to 30% from last
//! update or ii) it has been two minutes since last update. Setting up a
//! minimum update interval (2 minutes here) is to prevent the oscillation
//! caused by short-term traffic fluctuation."

use std::collections::BTreeMap;
use std::sync::Arc;

use lazyctrl_net::{GroupId, SwitchId};
use lazyctrl_partition::{Sgi, SgiConfig, WeightedGraph, CONTROLLER_GROUP};
use lazyctrl_proto::{GroupAssignMsg, StateReportMsg};
use serde::{Deserialize, Serialize};

/// The regrouping trigger parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RegroupTriggers {
    /// Minimum time between updates (the 2-minute oscillation floor).
    pub min_interval_ns: u64,
    /// Workload growth since the last update that forces an update (0.30).
    pub growth_threshold: f64,
    /// Periodic refresh even without growth (keeps the grouping tracking
    /// slow drift; the paper's trigger ii).
    pub refresh_interval_ns: u64,
}

impl Default for RegroupTriggers {
    fn default() -> Self {
        RegroupTriggers {
            min_interval_ns: 120_000_000_000,     // 2 min
            growth_threshold: 0.30,               // +30%
            refresh_interval_ns: 360_000_000_000, // 6 min
        }
    }
}

/// What the trigger check decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RegroupDecision {
    /// Nothing to do.
    None,
    /// Run `IncUpdate` (greedy merge/split refinement).
    Incremental,
    /// Run a full `IniGroup` from scratch (used when incremental updates
    /// cannot keep up — the grouping drifted too far).
    Full,
}

/// An immutable snapshot of a computed grouping, shareable across
/// controllers via [`Arc`].
///
/// A cluster freezes the grouping at bootstrap (ownership moves between
/// members instead of switches moving between groups), so every member
/// asking the same read-only questions of its own full `Sgi` — graph,
/// partition, history — is pure memory waste, multiplied by the cluster
/// size. One member computes the grouping, freezes it into this snapshot,
/// and every other member adopts the shared `Arc`: per-member grouping
/// state collapses to one pointer, and bootstrap runs SGI once instead of
/// N times.
#[derive(Debug)]
pub struct FrozenGrouping {
    /// Dense switch → group mapping.
    group_of: Vec<Option<usize>>,
    /// Members per group, ascending switch id.
    members: Vec<Vec<SwitchId>>,
    /// The grouping epoch in force when frozen.
    epoch: u32,
    /// Per-group composition epochs.
    group_epochs: BTreeMap<usize, u32>,
    /// Normalized inter-group intensity at freeze time.
    winter: Option<f64>,
}

impl FrozenGrouping {
    /// Number of switches covered.
    pub fn num_switches(&self) -> usize {
        self.group_of.len()
    }

    /// Number of groups.
    pub fn num_groups(&self) -> usize {
        self.members.len()
    }
}

/// The controller's grouping state machine.
#[derive(Debug, Clone)]
pub struct GroupingManager {
    sgi: Option<Sgi>,
    /// When set, the grouping is frozen to this shared immutable snapshot:
    /// all read accessors answer from it, mutation paths no-op, and the
    /// heavyweight SGI state (`sgi`, samples, history, punt counts) is
    /// dropped/never accumulated. See [`FrozenGrouping`].
    frozen: Option<Arc<FrozenGrouping>>,
    num_switches: usize,
    group_size_limit: usize,
    seed: u64,
    triggers: RegroupTriggers,
    /// Directed intensity samples from state reports, accumulated since
    /// the last update (drained at each update so the grouping always sees
    /// a fresh, consistent window — stale rates must not linger).
    samples: BTreeMap<(SwitchId, SwitchId), f64>,
    /// Exponentially-weighted history of undirected pair intensities — the
    /// paper's "estimated based on history traffic statistics" (§III-C.2).
    /// Smooths window noise while still tracking persistent shifts.
    history: BTreeMap<(SwitchId, SwitchId), f64>,
    /// Punt counts per (ingress, destination) switch pair since the last
    /// update. State reports only cover intra-group traffic (switches
    /// cannot see where punted flows land); the controller derives the
    /// inter-group intensities — exactly what regrouping must shrink —
    /// from its own PacketIn stream.
    punt_counts: BTreeMap<(SwitchId, SwitchId), u64>,
    last_update_ns: u64,
    workload_at_last_update: f64,
    updates_applied: u64,
    epoch: u32,
    /// Epoch at which each group last changed composition. Tunnel keys and
    /// `GroupAssign`s carry the *group's* epoch, so untouched groups keep
    /// accepting their traffic across global updates.
    group_epochs: BTreeMap<usize, u32>,
    /// Switches moved by the most recent update: `(switch, old group,
    /// new group)`. Consumed by the controller's preload step.
    last_moves: Vec<(SwitchId, usize, usize)>,
    /// Worker threads for the parallel merge/split step of incremental
    /// updates (`1` = sequential; results are bit-identical either way —
    /// see `lazyctrl_partition::SgiConfig::parallelism`).
    parallelism: usize,
}

impl GroupingManager {
    /// Creates a manager for `num_switches` switches.
    ///
    /// # Panics
    ///
    /// Panics if `group_size_limit` is zero.
    pub fn new(
        num_switches: usize,
        group_size_limit: usize,
        triggers: RegroupTriggers,
        seed: u64,
    ) -> Self {
        assert!(group_size_limit > 0, "group size limit must be positive");
        GroupingManager {
            sgi: None,
            frozen: None,
            num_switches,
            group_size_limit,
            seed,
            triggers,
            samples: BTreeMap::new(),
            history: BTreeMap::new(),
            punt_counts: BTreeMap::new(),
            last_update_ns: 0,
            workload_at_last_update: 0.0,
            updates_applied: 0,
            epoch: 0,
            group_epochs: BTreeMap::new(),
            last_moves: Vec::new(),
            parallelism: 1,
        }
    }

    /// Sets the worker-thread count for the parallel merge/split step.
    /// Call before [`bootstrap`]; the value is baked into the SGI
    /// configuration.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    ///
    /// [`bootstrap`]: GroupingManager::bootstrap
    pub fn set_parallelism(&mut self, n: usize) {
        assert!(n > 0, "parallelism must be at least 1");
        self.parallelism = n;
    }

    /// The (global) grouping epoch currently in force.
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// The epoch at which `group` last changed composition.
    pub fn epoch_of_group(&self, group: usize) -> u32 {
        if let Some(f) = &self.frozen {
            return f.group_epochs.get(&group).copied().unwrap_or(f.epoch);
        }
        self.group_epochs.get(&group).copied().unwrap_or(self.epoch)
    }

    /// The epoch governing traffic towards `switch` (its group's epoch).
    pub fn epoch_of_switch(&self, switch: SwitchId) -> u32 {
        self.group_of(switch)
            .map(|g| self.epoch_of_group(g))
            .unwrap_or(self.epoch)
    }

    /// Updates applied so far (Fig. 8's quantity).
    pub fn updates_applied(&self) -> u64 {
        self.updates_applied
    }

    /// Current normalized inter-group intensity, if grouped.
    pub fn winter(&self) -> Option<f64> {
        if let Some(f) = &self.frozen {
            return f.winter;
        }
        self.sgi.as_ref().map(|s| s.winter())
    }

    /// The group a switch belongs to (dense index), if grouped.
    pub fn group_of(&self, switch: SwitchId) -> Option<usize> {
        if let Some(f) = &self.frozen {
            return f.group_of.get(switch.index()).copied().flatten();
        }
        let sgi = self.sgi.as_ref()?;
        let g = sgi.partition().group_of(switch.index());
        (g != CONTROLLER_GROUP).then_some(g)
    }

    /// Members of a group, as switch ids.
    pub fn members(&self, group: usize) -> Vec<SwitchId> {
        if let Some(f) = &self.frozen {
            return f.members.get(group).cloned().unwrap_or_default();
        }
        self.sgi
            .as_ref()
            .map(|s| {
                s.partition()
                    .members(group)
                    .into_iter()
                    .map(|v| SwitchId::new(v as u32))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Number of groups, if grouped.
    pub fn num_groups(&self) -> Option<usize> {
        if let Some(f) = &self.frozen {
            return Some(f.num_groups());
        }
        self.sgi.as_ref().map(|s| s.partition().num_groups())
    }

    /// True when this manager answers from a shared frozen snapshot.
    pub fn is_frozen(&self) -> bool {
        self.frozen.is_some()
    }

    /// The designated switch of a group under the controller's selection
    /// principle (lowest switch id — "some given principle", §III-D.1).
    pub fn designated_of(&self, group: usize) -> Option<SwitchId> {
        self.members(group).into_iter().min()
    }

    /// Absorbs a designated switch's aggregated state report. A frozen
    /// grouping can never regroup, so the samples would only accumulate
    /// unbounded memory — they are dropped.
    pub fn absorb_report(&mut self, report: &StateReportMsg) {
        if self.frozen.is_some() {
            return;
        }
        for &(a, b, w) in &report.intensity {
            self.samples.insert((a, b), w);
        }
    }

    /// Records one punted flow from `ingress` towards `dst` (resolved via
    /// the C-LIB). Folded into the intensity picture at the next update;
    /// dropped when frozen (no update will ever consume it).
    pub fn note_punt(&mut self, ingress: SwitchId, dst: SwitchId) {
        if self.frozen.is_some() {
            return;
        }
        if ingress != dst {
            *self.punt_counts.entry((ingress, dst)).or_insert(0) += 1;
        }
    }

    /// Freezes the computed grouping into an immutable shared snapshot and
    /// drops the SGI state behind it (graph, partition, intensity history,
    /// pending samples). Further reads answer from the snapshot; mutation
    /// paths ([`absorb_report`], [`note_punt`], [`update`]) become no-ops.
    /// Returns `None` when nothing was bootstrapped yet.
    ///
    /// [`absorb_report`]: GroupingManager::absorb_report
    /// [`note_punt`]: GroupingManager::note_punt
    /// [`update`]: GroupingManager::update
    pub fn freeze_shared(&mut self) -> Option<Arc<FrozenGrouping>> {
        if let Some(f) = &self.frozen {
            return Some(f.clone());
        }
        self.sgi.as_ref()?;
        let num_groups = self.num_groups().unwrap_or(0);
        let snapshot = Arc::new(FrozenGrouping {
            group_of: (0..self.num_switches)
                .map(|s| self.group_of(SwitchId::new(s as u32)))
                .collect(),
            members: (0..num_groups).map(|g| self.members(g)).collect(),
            epoch: self.epoch,
            group_epochs: self.group_epochs.clone(),
            winter: self.winter(),
        });
        self.sgi = None;
        self.samples.clear();
        self.history.clear();
        self.punt_counts.clear();
        self.last_moves.clear();
        self.frozen = Some(snapshot.clone());
        Some(snapshot)
    }

    /// Adopts a peer's frozen grouping snapshot instead of computing one,
    /// returning the same per-switch assignments [`bootstrap`] would have
    /// produced from the equivalent graph — without running SGI and
    /// without holding any per-member grouping state beyond the shared
    /// pointer.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot covers a different switch population, or if
    /// this manager already bootstrapped on its own.
    ///
    /// [`bootstrap`]: GroupingManager::bootstrap
    pub fn adopt_shared(
        &mut self,
        now_ns: u64,
        snapshot: Arc<FrozenGrouping>,
        sync_interval_ms: u32,
        keepalive_interval_ms: u32,
    ) -> Vec<(SwitchId, GroupAssignMsg)> {
        assert_eq!(
            snapshot.num_switches(),
            self.num_switches,
            "frozen grouping covers a different switch population"
        );
        assert!(
            self.sgi.is_none() && self.frozen.is_none(),
            "manager already has a grouping"
        );
        self.epoch = snapshot.epoch;
        self.frozen = Some(snapshot);
        self.last_update_ns = now_ns;
        self.updates_applied += 1;
        self.assignments_for_all(sync_interval_ms, keepalive_interval_ms)
    }

    /// `IniGroup`: computes the initial grouping from a bootstrap intensity
    /// graph (the paper uses the first hour of traffic) and returns the
    /// per-switch assignments to push.
    ///
    /// # Panics
    ///
    /// Panics if the graph's vertex count differs from `num_switches`.
    pub fn bootstrap(
        &mut self,
        now_ns: u64,
        graph: WeightedGraph,
        sync_interval_ms: u32,
        keepalive_interval_ms: u32,
    ) -> Vec<(SwitchId, GroupAssignMsg)> {
        assert_eq!(
            graph.num_vertices(),
            self.num_switches,
            "intensity graph size mismatch"
        );
        assert!(
            self.frozen.is_none(),
            "cannot bootstrap over an adopted frozen grouping"
        );
        // The regrouping *triggers* live in this manager (`check`), so the
        // inner SGI loop gets fully permissive thresholds: when we decide
        // to update, it always runs.
        let sgi = Sgi::ini_group(
            graph,
            SgiConfig::new(self.group_size_limit)
                .with_thresholds(0.0, 0.0)
                .with_min_improvement(0.10)
                .with_seed(self.seed)
                .with_parallelism(self.parallelism),
        );
        self.epoch = sgi.epoch();
        let num_groups = sgi.partition().num_groups();
        self.group_epochs = (0..num_groups).map(|g| (g, self.epoch)).collect();
        // Seed the intensity history from the bootstrap graph.
        self.history.clear();
        let g = sgi.graph();
        for u in 0..g.num_vertices() {
            for &(v, w) in g.neighbors(u) {
                if u < v {
                    self.history
                        .insert((SwitchId::new(u as u32), SwitchId::new(v as u32)), w);
                }
            }
        }
        self.sgi = Some(sgi);
        self.last_update_ns = now_ns;
        self.updates_applied += 1;
        self.assignments_for_all(sync_interval_ms, keepalive_interval_ms)
    }

    /// The trigger check (call periodically with the measured workload).
    pub fn check(&mut self, now_ns: u64, workload_rps: f64) -> RegroupDecision {
        if self.sgi.is_none() {
            return RegroupDecision::None;
        }
        let elapsed = now_ns.saturating_sub(self.last_update_ns);
        if elapsed < self.triggers.min_interval_ns {
            return RegroupDecision::None;
        }
        let base = self.workload_at_last_update.max(1e-9);
        let growth = (workload_rps - self.workload_at_last_update) / base;
        if growth >= self.triggers.growth_threshold {
            // Large accumulated drift: incremental updates may not retain
            // quality; the paper falls back to a fresh IniGroup for "very
            // significant" changes (§V-C).
            if growth >= 2.0 * self.triggers.growth_threshold {
                return RegroupDecision::Full;
            }
            return RegroupDecision::Incremental;
        }
        if elapsed >= self.triggers.refresh_interval_ns {
            return RegroupDecision::Incremental;
        }
        RegroupDecision::None
    }

    /// Executes a regrouping decision. Returns assignments for the switches
    /// whose group composition changed (empty when nothing moved).
    pub fn update(
        &mut self,
        now_ns: u64,
        decision: RegroupDecision,
        workload_rps: f64,
        sync_interval_ms: u32,
        keepalive_interval_ms: u32,
    ) -> Vec<(SwitchId, GroupAssignMsg)> {
        if self.sgi.is_none() || decision == RegroupDecision::None {
            return Vec::new();
        }
        // Build this window's measurements: state-report samples (intra-
        // group) plus punt-derived rates (inter-group), as undirected pair
        // rates.
        let elapsed_secs = ((now_ns.saturating_sub(self.last_update_ns)) as f64 / 1e9).max(1.0);
        let mut window: BTreeMap<(SwitchId, SwitchId), f64> = BTreeMap::new();
        for ((a, b), w) in std::mem::take(&mut self.samples) {
            if a != b {
                let key = if a < b { (a, b) } else { (b, a) };
                *window.entry(key).or_insert(0.0) += w;
            }
        }
        for ((a, b), count) in std::mem::take(&mut self.punt_counts) {
            let key = if a < b { (a, b) } else { (b, a) };
            *window.entry(key).or_insert(0.0) += count as f64 / elapsed_secs;
        }
        if window.is_empty() {
            // No measurements this window: nothing to adapt to.
            self.last_update_ns = now_ns;
            self.workload_at_last_update = workload_rps;
            return Vec::new();
        }
        // Blend into the exponentially-weighted history (the paper's
        // "history traffic statistics"): stable under window noise, still
        // responsive to persistent shifts.
        const ALPHA: f64 = 0.3;
        for h in self.history.values_mut() {
            *h *= 1.0 - ALPHA;
        }
        for (key, w) in window {
            *self.history.entry(key).or_insert(0.0) += ALPHA * w;
        }
        let peak = self.history.values().cloned().fold(0.0f64, f64::max);
        self.history.retain(|_, w| *w > peak * 1e-6);
        let graph = self.history_graph();
        let sgi = self.sgi.as_mut().expect("checked above");
        let before: Vec<usize> = sgi.partition().assignment().to_vec();
        sgi.set_intensity(graph);
        match decision {
            RegroupDecision::Incremental => {
                // Disjoint-pair merge/split (Appendix B): the re-splits
                // are computed on `parallelism` workers and applied in
                // deterministic order, so the result does not depend on
                // the thread count.
                let _ = sgi.par_inc_update(f64::INFINITY, sgi.config().max_merge_rounds);
            }
            RegroupDecision::Full => sgi.regroup(),
            RegroupDecision::None => unreachable!("filtered above"),
        }
        let after = sgi.partition().assignment();
        let changed: Vec<usize> = before
            .iter()
            .zip(after)
            .enumerate()
            .filter(|(_, (b, a))| b != a)
            .map(|(v, _)| v)
            .collect();
        self.last_moves = changed
            .iter()
            .filter(|&&v| before[v] != CONTROLLER_GROUP && after[v] != CONTROLLER_GROUP)
            .map(|&v| (SwitchId::new(v as u32), before[v], after[v]))
            .collect();
        self.epoch = sgi.epoch();
        self.last_update_ns = now_ns;
        self.workload_at_last_update = workload_rps;
        if changed.is_empty() {
            return Vec::new();
        }
        self.updates_applied += 1;
        // Every member of every group touched by a moved switch needs a
        // fresh assignment (ring neighbours and G-FIB membership change).
        let mut touched_groups: Vec<usize> = changed
            .iter()
            .flat_map(|&v| [before[v], after[v]])
            .filter(|&g| g != CONTROLLER_GROUP)
            .collect();
        touched_groups.sort_unstable();
        touched_groups.dedup();
        for &g in &touched_groups {
            self.group_epochs.insert(g, self.epoch);
        }
        let mut out = Vec::new();
        for g in touched_groups {
            out.extend(self.assignments_for_group(g, sync_interval_ms, keepalive_interval_ms));
        }
        out
    }

    /// Drains the switches moved by the most recent update (for preload).
    pub fn take_last_moves(&mut self) -> Vec<(SwitchId, usize, usize)> {
        std::mem::take(&mut self.last_moves)
    }

    /// Records the workload baseline without regrouping (used right after
    /// bootstrap when the meter warms up).
    pub fn set_workload_baseline(&mut self, workload_rps: f64) {
        self.workload_at_last_update = workload_rps;
    }

    fn history_graph(&self) -> WeightedGraph {
        WeightedGraph::from_triplets(
            self.num_switches,
            self.history
                .iter()
                .filter(|((a, b), _)| a != b)
                .map(|((a, b), &w)| (a.index(), b.index(), w)),
        )
    }

    fn assignments_for_all(
        &self,
        sync_interval_ms: u32,
        keepalive_interval_ms: u32,
    ) -> Vec<(SwitchId, GroupAssignMsg)> {
        let n = self.num_groups().unwrap_or(0);
        (0..n)
            .flat_map(|g| self.assignments_for_group(g, sync_interval_ms, keepalive_interval_ms))
            .collect()
    }

    /// Builds the per-member `GroupAssign` messages for one group: members
    /// in ring order (sorted by id, the paper's MAC-address ordering),
    /// designated switch, backups, and each member's ring neighbours.
    fn assignments_for_group(
        &self,
        group: usize,
        sync_interval_ms: u32,
        keepalive_interval_ms: u32,
    ) -> Vec<(SwitchId, GroupAssignMsg)> {
        let mut members = self.members(group);
        members.sort_unstable();
        if members.is_empty() {
            return Vec::new();
        }
        let designated = members[0];
        let backups: Vec<SwitchId> = members.iter().copied().skip(1).take(1).collect();
        let n = members.len();
        members
            .iter()
            .enumerate()
            .map(|(i, &me)| {
                let prev = members[(i + n - 1) % n];
                let next = members[(i + 1) % n];
                (
                    me,
                    GroupAssignMsg {
                        group: GroupId::new(group as u32),
                        epoch: self.epoch_of_group(group),
                        members: members.clone(),
                        designated,
                        backups: backups.clone(),
                        ring_prev: prev,
                        ring_next: next,
                        sync_interval_ms,
                        keepalive_interval_ms,
                        group_size_limit: self.group_size_limit as u32,
                    },
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clustered_graph(k: usize, size: usize) -> WeightedGraph {
        let mut g = WeightedGraph::new(k * size);
        for c in 0..k {
            let b = c * size;
            for i in 0..size {
                for j in (i + 1)..size {
                    g.add_edge(b + i, b + j, 10.0);
                }
            }
        }
        g
    }

    fn manager(n: usize, limit: usize) -> GroupingManager {
        GroupingManager::new(n, limit, RegroupTriggers::default(), 7)
    }

    #[test]
    fn bootstrap_assigns_every_switch() {
        let mut m = manager(12, 4);
        let assignments = m.bootstrap(0, clustered_graph(3, 4), 1000, 500);
        assert_eq!(assignments.len(), 12);
        for (s, ga) in &assignments {
            assert!(ga.members.contains(s));
            assert!(ga.members.contains(&ga.designated));
            assert!(ga.members.len() <= 4);
            assert_eq!(ga.epoch, m.epoch());
            // Ring neighbours are members.
            assert!(ga.members.contains(&ga.ring_prev));
            assert!(ga.members.contains(&ga.ring_next));
        }
        assert_eq!(m.num_groups(), Some(3));
        assert_eq!(m.updates_applied(), 1);
    }

    #[test]
    fn freeze_preserves_every_read() {
        let mut m = manager(12, 4);
        let _ = m.bootstrap(0, clustered_graph(3, 4), 1000, 500);
        let before: Vec<_> = (0..12)
            .map(|s| m.group_of(SwitchId::new(s as u32)))
            .collect();
        let groups = m.num_groups().unwrap();
        let members_before: Vec<_> = (0..groups).map(|g| m.members(g)).collect();
        let winter = m.winter();
        let epoch = m.epoch();
        let snap = m.freeze_shared().expect("bootstrapped");
        assert!(m.is_frozen());
        assert_eq!(snap.num_switches(), 12);
        assert_eq!(snap.num_groups(), groups);
        for (s, expected) in before.iter().enumerate() {
            assert_eq!(m.group_of(SwitchId::new(s as u32)), *expected);
        }
        for (g, expected) in members_before.iter().enumerate() {
            assert_eq!(&m.members(g), expected);
            assert_eq!(m.epoch_of_group(g), epoch);
        }
        assert_eq!(m.winter(), winter);
        assert_eq!(m.epoch(), epoch);
        // Mutation paths are inert: no sample memory accumulates.
        m.note_punt(SwitchId::new(0), SwitchId::new(5));
        assert_eq!(
            m.update(1, RegroupDecision::Incremental, 10.0, 1000, 500),
            Vec::new()
        );
    }

    #[test]
    fn adopt_emits_the_same_assignments() {
        let mut a = manager(12, 4);
        let mut assignments_a = a.bootstrap(0, clustered_graph(3, 4), 1000, 500);
        let snap = a.freeze_shared().expect("bootstrapped");
        let mut b = manager(12, 4);
        let mut assignments_b = b.adopt_shared(0, snap, 1000, 500);
        assignments_a.sort_by_key(|(s, _)| *s);
        assignments_b.sort_by_key(|(s, _)| *s);
        assert_eq!(assignments_a, assignments_b);
        assert_eq!(b.num_groups(), a.num_groups());
        assert_eq!(b.epoch(), a.epoch());
        assert_eq!(b.updates_applied(), 1);
    }

    #[test]
    #[should_panic(expected = "different switch population")]
    fn adopt_rejects_mismatched_population() {
        let mut a = manager(12, 4);
        let _ = a.bootstrap(0, clustered_graph(3, 4), 1000, 500);
        let snap = a.freeze_shared().unwrap();
        let mut b = manager(8, 4);
        let _ = b.adopt_shared(0, snap, 1000, 500);
    }

    #[test]
    fn designated_is_lowest_member() {
        let mut m = manager(8, 4);
        let _ = m.bootstrap(0, clustered_graph(2, 4), 1000, 500);
        for g in 0..m.num_groups().unwrap() {
            let members = m.members(g);
            let designated = m.designated_of(g).unwrap();
            assert_eq!(designated, members.into_iter().min().unwrap());
        }
    }

    #[test]
    fn triggers_respect_min_interval() {
        let mut m = manager(8, 4);
        let _ = m.bootstrap(0, clustered_graph(2, 4), 1000, 500);
        m.set_workload_baseline(100.0);
        // 1 minute in, even huge growth must wait.
        assert_eq!(m.check(60_000_000_000, 1000.0), RegroupDecision::None);
        // Past 2 minutes, 30% growth triggers an incremental update.
        assert_eq!(
            m.check(150_000_000_000, 135.0),
            RegroupDecision::Incremental
        );
        // Runaway growth escalates to a full regroup.
        assert_eq!(m.check(150_000_000_000, 300.0), RegroupDecision::Full);
        // No growth: wait for the refresh interval.
        assert_eq!(m.check(150_000_000_000, 100.0), RegroupDecision::None);
        assert_eq!(
            m.check(400_000_000_000, 100.0),
            RegroupDecision::Incremental
        );
    }

    #[test]
    fn update_reassigns_moved_switches() {
        let mut m = manager(8, 4);
        let _ = m.bootstrap(0, clustered_graph(2, 4), 1000, 500);
        let e0 = m.epoch();
        // Traffic shifts: switches 0..2 now talk to 4..6 heavily.
        for (a, b) in [(0u32, 4u32), (1, 5), (2, 6)] {
            m.absorb_report(&StateReportMsg {
                group: GroupId::new(0),
                epoch: e0,
                intensity: vec![(SwitchId::new(a), SwitchId::new(b), 100.0)],
                stats: vec![],
            });
        }
        let assignments = m.update(
            200_000_000_000,
            RegroupDecision::Incremental,
            500.0,
            1000,
            500,
        );
        assert!(!assignments.is_empty(), "shift must reassign someone");
        assert!(m.epoch() > e0);
        assert_eq!(m.updates_applied(), 2);
        // All assignments carry the new epoch and respect the size cap.
        for (_, ga) in &assignments {
            assert_eq!(ga.epoch, m.epoch());
            assert!(ga.members.len() <= 4);
        }
    }

    #[test]
    fn none_decision_is_a_noop() {
        let mut m = manager(8, 4);
        let _ = m.bootstrap(0, clustered_graph(2, 4), 1000, 500);
        let out = m.update(1, RegroupDecision::None, 0.0, 1000, 500);
        assert!(out.is_empty());
        assert_eq!(m.updates_applied(), 1);
    }

    #[test]
    fn group_of_maps_switches() {
        let mut m = manager(8, 4);
        let _ = m.bootstrap(0, clustered_graph(2, 4), 1000, 500);
        // Same cluster ⇒ same group.
        assert_eq!(m.group_of(SwitchId::new(0)), m.group_of(SwitchId::new(3)));
        assert_ne!(m.group_of(SwitchId::new(0)), m.group_of(SwitchId::new(4)));
    }
}
