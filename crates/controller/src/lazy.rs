//! The LazyCtrl central controller (§III-B.2, §IV-B).
//!
//! Handles only what the local control groups cannot: inter-group flow
//! setup (from the C-LIB), ARP relay scoped by tenant information,
//! grouping adaptation (SGI under the paper's triggers), failover, and
//! group-size bargaining. The goal is to *stay lazy*: every message
//! processed here is counted by the workload meter — the quantity Fig. 7
//! shows dropping 61–82% below the baseline controller.

use lazyctrl_net::{EthernetFrame, Packet, PortNo, SwitchId, TenantId};
use lazyctrl_partition::bargain::{negotiate, BargainConfig, BargainOutcome};
use lazyctrl_partition::WeightedGraph;
use lazyctrl_proto::{
    Action, BargainMsg, FlowMatch, FlowModCommand, FlowModMsg, LazyMsg, Message, MessageBody,
    OfMessage, OutputSink, PacketInMsg, PacketInReason, PacketOutMsg,
};
use serde::{Deserialize, Serialize};

use crate::failover::{FailureDetector, FailureKind, RecoveryAction};
use crate::grouping::{FrozenGrouping, GroupingManager, RegroupDecision, RegroupTriggers};
use crate::tenant::TenantDirectory;
use crate::{Clib, HostLocation, WorkloadMeter};

/// Timers the controller asks its driver to arm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ControllerTimer {
    /// Periodic keep-alive to every switch (hub of the wheel).
    KeepAlive,
    /// Periodic regrouping trigger check.
    RegroupCheck,
}

/// Effects the controller wants performed.
#[derive(Debug, Clone, PartialEq)]
pub enum ControllerOutput {
    /// Send to a switch on its control link.
    ToSwitch(SwitchId, Message),
    /// Arm a timer after the given delay (ns).
    SetTimer(ControllerTimer, u64),
}

/// Configuration of the lazy controller.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LazyConfig {
    /// Peer-sync interval pushed to switches (ms).
    pub sync_interval_ms: u32,
    /// Keep-alive interval (ms).
    pub keepalive_interval_ms: u32,
    /// Group size limit (switches per LCG).
    pub group_size_limit: usize,
    /// Regrouping triggers.
    pub triggers: RegroupTriggers,
    /// Enable incremental regrouping ("dynamic" in Fig. 7); when false the
    /// bootstrap grouping stays frozen ("static").
    pub dynamic_updates: bool,
    /// Enable tenant ARP blocking (§III-D.3).
    pub enable_arp_blocking: bool,
    /// Preload temporary tunnel rules around regroupings (Appendix B,
    /// "preload for seamless grouping update"): flows between a moved
    /// switch and its former peers keep flowing from rules instead of
    /// punting while the G-FIBs converge.
    pub enable_preload: bool,
    /// Idle timeout for installed inter-group rules (s).
    pub flow_idle_timeout_s: u16,
    /// Worker threads for the SGI merge/split step of incremental
    /// regrouping (`1` = sequential; any value produces bit-identical
    /// groupings — the knob only buys wall-clock time on big topologies).
    pub sgi_parallelism: usize,
    /// Deterministic seed.
    pub seed: u64,
}

impl Default for LazyConfig {
    fn default() -> Self {
        LazyConfig {
            sync_interval_ms: 1_000,
            keepalive_interval_ms: 1_000,
            group_size_limit: 46,
            triggers: RegroupTriggers::default(),
            dynamic_updates: true,
            enable_arp_blocking: true,
            enable_preload: true,
            flow_idle_timeout_s: 30,
            sgi_parallelism: 1,
            seed: 0x1a2b,
        }
    }
}

/// The hybrid controller.
#[derive(Debug, Clone)]
pub struct LazyController {
    cfg: LazyConfig,
    switches: Vec<SwitchId>,
    clib: Clib,
    grouping: GroupingManager,
    tenants: TenantDirectory,
    failover: FailureDetector,
    meter: WorkloadMeter,
    xid: u32,
    armed: std::collections::BTreeSet<ControllerTimer>,
}

impl LazyController {
    /// Creates a controller for the given switches.
    pub fn new(switches: Vec<SwitchId>, cfg: LazyConfig) -> Self {
        let mut grouping =
            GroupingManager::new(switches.len(), cfg.group_size_limit, cfg.triggers, cfg.seed);
        grouping.set_parallelism(cfg.sgi_parallelism.max(1));
        // Correlation window ≥ 2 wheel deadlines (interval × the shared
        // miss threshold), so persistent losses from both ring directions
        // are guaranteed to overlap — see `FailureDetector::with_window`.
        let deadline_ns = cfg.keepalive_interval_ms as u64
            * 1_000_000
            * lazyctrl_proto::WHEEL_MISS_THRESHOLD as u64;
        let detector_window_ns = (2 * deadline_ns).max(5_000_000_000);
        LazyController {
            cfg,
            switches,
            clib: Clib::new(),
            grouping,
            tenants: TenantDirectory::new(),
            failover: FailureDetector::with_window(detector_window_ns),
            meter: WorkloadMeter::new(),
            xid: 0,
            armed: std::collections::BTreeSet::new(),
        }
    }

    /// The workload meter.
    pub fn meter(&self) -> &WorkloadMeter {
        &self.meter
    }

    /// The grouping manager (for experiment harnesses).
    pub fn grouping(&self) -> &GroupingManager {
        &self.grouping
    }

    /// The C-LIB.
    pub fn clib(&self) -> &Clib {
        &self.clib
    }

    /// The failure detector.
    pub fn failover(&self) -> &FailureDetector {
        &self.failover
    }

    fn next_xid(&mut self) -> u32 {
        self.xid = self.xid.wrapping_add(1);
        self.xid
    }

    /// Negotiates the group size limit with the switches before grouping
    /// (Appendix C). Returns the transcript; the agreed limit replaces
    /// `cfg.group_size_limit`.
    pub fn negotiate_group_size(&mut self, min_limit: u32, max_limit: u32) -> BargainOutcome {
        let outcome = negotiate(&BargainConfig::new(min_limit, max_limit));
        self.cfg.group_size_limit = outcome.agreed_limit as usize;
        self.grouping = GroupingManager::new(
            self.switches.len(),
            self.cfg.group_size_limit,
            self.cfg.triggers,
            self.cfg.seed,
        );
        self.grouping
            .set_parallelism(self.cfg.sgi_parallelism.max(1));
        outcome
    }

    /// `IniGroup` + setup phase: computes the initial grouping from a
    /// bootstrap intensity graph (the paper uses the first hour of
    /// traffic), pushes `GroupAssign` to every switch, and arms timers.
    pub fn bootstrap(
        &mut self,
        now_ns: u64,
        graph: WeightedGraph,
        out: &mut OutputSink<ControllerOutput>,
    ) {
        let assignments = self.grouping.bootstrap(
            now_ns,
            graph,
            self.cfg.sync_interval_ms,
            self.cfg.keepalive_interval_ms,
        );
        self.emit_bootstrap(assignments, out);
    }

    /// Like [`bootstrap`], but adopts a peer's shared immutable grouping
    /// snapshot instead of running SGI. Cluster members all compute the
    /// *same* grouping from the same graph, so one member computes it,
    /// [`freeze_grouping`] hands out the snapshot, and the rest bootstrap
    /// from the shared `Arc` — identical `GroupAssign` output, one copy of
    /// the grouping state cluster-wide, one SGI run instead of N.
    ///
    /// [`bootstrap`]: LazyController::bootstrap
    /// [`freeze_grouping`]: LazyController::freeze_grouping
    pub fn bootstrap_shared(
        &mut self,
        now_ns: u64,
        snapshot: std::sync::Arc<FrozenGrouping>,
        out: &mut OutputSink<ControllerOutput>,
    ) {
        let assignments = self.grouping.adopt_shared(
            now_ns,
            snapshot,
            self.cfg.sync_interval_ms,
            self.cfg.keepalive_interval_ms,
        );
        self.emit_bootstrap(assignments, out);
    }

    /// Freezes this controller's grouping into a shared immutable
    /// snapshot (see [`GroupingManager::freeze_shared`]); `None` before
    /// bootstrap.
    pub fn freeze_grouping(&mut self) -> Option<std::sync::Arc<FrozenGrouping>> {
        self.grouping.freeze_shared()
    }

    /// Converts bootstrap assignments into outputs and arms the timers.
    fn emit_bootstrap(
        &mut self,
        assignments: Vec<(SwitchId, lazyctrl_proto::GroupAssignMsg)>,
        out: &mut OutputSink<ControllerOutput>,
    ) {
        for (s, ga) in assignments {
            let xid = self.next_xid();
            out.push(ControllerOutput::ToSwitch(
                s,
                Message::lazy(xid, LazyMsg::group_assign(ga)),
            ));
        }
        for (timer, delay_ms) in [
            (ControllerTimer::KeepAlive, self.cfg.keepalive_interval_ms),
            (ControllerTimer::RegroupCheck, 10_000),
        ] {
            if self.armed.insert(timer) {
                out.push(ControllerOutput::SetTimer(
                    timer,
                    delay_ms as u64 * 1_000_000,
                ));
            }
        }
    }

    /// Handles a message arriving on a control or state link, pushing the
    /// effects into the caller's sink (no per-message allocation).
    pub fn handle_message(
        &mut self,
        now_ns: u64,
        from: SwitchId,
        msg: &Message,
        out: &mut OutputSink<ControllerOutput>,
    ) {
        self.meter.record(now_ns);
        // Any sign of life from a switch we believed dead means it rebooted:
        // trigger the §III-E.3 comeback resync.
        if self.failover.mark_recovered(from) {
            self.resync_group_of(from, out);
        }
        match &msg.body {
            MessageBody::Of(OfMessage::PacketIn(pi)) => {
                self.handle_packet_in(now_ns, from, pi, out);
            }
            MessageBody::Of(OfMessage::Hello) => {
                let xid = self.next_xid();
                out.push(ControllerOutput::ToSwitch(
                    from,
                    Message::of(xid, OfMessage::Hello),
                ));
            }
            MessageBody::Of(OfMessage::EchoRequest(data)) => {
                let xid = self.next_xid();
                out.push(ControllerOutput::ToSwitch(
                    from,
                    Message::of(xid, OfMessage::EchoReply(data.clone())),
                ));
            }
            MessageBody::Lazy(lazy) => match lazy {
                LazyMsg::LfibSync(sync) => {
                    self.clib.apply_sync(sync);
                }
                LazyMsg::StateReport(report) => {
                    self.grouping.absorb_report(report);
                }
                LazyMsg::WheelReport(report) => {
                    if let Some(kind) = self.failover.observe(now_ns, report) {
                        self.apply_recovery(kind, out);
                    }
                }
                LazyMsg::Bargain(offer) => {
                    self.handle_bargain(from, offer, out);
                }
                _ => {}
            },
            _ => {}
        }
    }

    /// Handles a controller timer.
    pub fn on_timer(
        &mut self,
        now_ns: u64,
        timer: ControllerTimer,
        out: &mut OutputSink<ControllerOutput>,
    ) {
        match timer {
            ControllerTimer::KeepAlive => {
                for i in 0..self.switches.len() {
                    let s = self.switches[i];
                    let xid = self.next_xid();
                    out.push(ControllerOutput::ToSwitch(
                        s,
                        Message::lazy(
                            xid,
                            LazyMsg::KeepAlive(lazyctrl_proto::KeepAliveMsg {
                                from: SwitchId::CONTROLLER,
                                seq: xid as u64,
                            }),
                        ),
                    ));
                }
                out.push(ControllerOutput::SetTimer(
                    ControllerTimer::KeepAlive,
                    self.cfg.keepalive_interval_ms as u64 * 1_000_000,
                ));
            }
            ControllerTimer::RegroupCheck => {
                if self.cfg.dynamic_updates {
                    let rate = self.meter.rate_rps(now_ns);
                    let decision = self.grouping.check(now_ns, rate);
                    if decision != RegroupDecision::None {
                        let assignments = self.grouping.update(
                            now_ns,
                            decision,
                            rate,
                            self.cfg.sync_interval_ms,
                            self.cfg.keepalive_interval_ms,
                        );
                        for (s, ga) in assignments {
                            let xid = self.next_xid();
                            out.push(ControllerOutput::ToSwitch(
                                s,
                                Message::lazy(xid, LazyMsg::group_assign(ga)),
                            ));
                        }
                        if self.cfg.enable_preload {
                            self.preload_for_moves(out);
                        }
                        self.refresh_arp_blocking(out);
                    }
                }
                out.push(ControllerOutput::SetTimer(
                    ControllerTimer::RegroupCheck,
                    10_000_000_000,
                ));
            }
        }
    }

    /// Re-evaluates tenant confinement and pushes `BlockArp` deltas
    /// (§III-D.3).
    pub fn refresh_arp_blocking(&mut self, out: &mut OutputSink<ControllerOutput>) {
        if !self.cfg.enable_arp_blocking {
            return;
        }
        let grouping = &self.grouping;
        self.tenants.rebuild(&self.clib, |s| grouping.group_of(s));
        let (to_block, to_unblock) = self.tenants.block_delta();
        for (tenant, block) in to_block
            .into_iter()
            .map(|t| (t, true))
            .chain(to_unblock.into_iter().map(|t| (t, false)))
        {
            // Blocking applies on the switches of the single hosting group.
            for group in self.tenants.groups_of(tenant) {
                for s in self.grouping.members(group) {
                    let xid = self.next_xid();
                    out.push(ControllerOutput::ToSwitch(
                        s,
                        Message::lazy(xid, LazyMsg::BlockArp { tenant, block }),
                    ));
                }
            }
        }
    }

    fn handle_packet_in(
        &mut self,
        _now_ns: u64,
        from: SwitchId,
        pi: &PacketInMsg,
        out: &mut OutputSink<ControllerOutput>,
    ) {
        // A false-positive report carries a full encapsulated packet; the
        // corrective rule goes on the *sender* switch (Fig. 5 line 28+).
        if pi.reason == PacketInReason::FalsePositive {
            return self.handle_false_positive(pi, out);
        }
        let Ok(frame) = EthernetFrame::decode(&pi.data) else {
            return;
        };
        let tenant = frame.vlan.map(|t| t.vid()).unwrap_or(TenantId::NONE);
        // Learn the source into the C-LIB (PacketIns carry fresh truth).
        self.clib.learn(
            frame.src,
            HostLocation {
                switch: from,
                port: pi.in_port,
                tenant,
            },
        );

        if frame.is_flood() {
            // An escalated ARP request: relay to the designated switches of
            // all *other* groups hosting this tenant (§III-D.3 level iii).
            return self.relay_arp(from, tenant, &pi.data, out);
        }

        match self.clib.locate(frame.dst) {
            Some(loc) if loc.switch != from => {
                // Inter-group flow setup: Encap rule + packet release.
                self.grouping.note_punt(from, loc.switch);
                self.install_intergroup_rule(from, frame.dst, loc, pi, out);
            }
            Some(loc) => {
                // Same-switch destination the switch failed to resolve
                // (e.g. right after migration): point it back locally.
                let xid = self.next_xid();
                out.push(ControllerOutput::ToSwitch(
                    from,
                    Message::of(
                        xid,
                        OfMessage::PacketOut(PacketOutMsg {
                            buffer_id: pi.buffer_id,
                            in_port: pi.in_port,
                            actions: vec![Action::Output(loc.port)],
                            data: pi.data.clone(),
                        }),
                    ),
                ));
            }
            None => {
                // Unknown destination: scoped relay, like the ARP path.
                self.relay_arp(from, tenant, &pi.data, out);
            }
        }
    }

    fn install_intergroup_rule(
        &mut self,
        from: SwitchId,
        dst: lazyctrl_net::MacAddr,
        loc: HostLocation,
        pi: &PacketInMsg,
        out: &mut OutputSink<ControllerOutput>,
    ) {
        // Tunnel keys carry the *receiver's* group epoch so untouched
        // groups keep accepting the traffic across global regroupings.
        let epoch = self.grouping.epoch_of_switch(loc.switch);
        let actions = vec![Action::Encap {
            remote: loc.switch.underlay_ip(),
            key: epoch,
        }];
        let xid = self.next_xid();
        out.push(ControllerOutput::ToSwitch(
            from,
            Message::of(
                xid,
                OfMessage::flow_mod(FlowModMsg {
                    command: FlowModCommand::Add,
                    flow_match: FlowMatch::to_dst(dst),
                    priority: 10,
                    idle_timeout: self.cfg.flow_idle_timeout_s,
                    hard_timeout: 0,
                    cookie: epoch as u64,
                    actions: actions.clone(),
                }),
            ),
        ));
        let xid = self.next_xid();
        out.push(ControllerOutput::ToSwitch(
            from,
            Message::of(
                xid,
                OfMessage::PacketOut(PacketOutMsg {
                    buffer_id: pi.buffer_id,
                    in_port: pi.in_port,
                    actions,
                    data: pi.data.clone(),
                }),
            ),
        ));
    }

    fn handle_false_positive(&mut self, pi: &PacketInMsg, out: &mut OutputSink<ControllerOutput>) {
        let Ok(Packet::Encapsulated(encap)) = Packet::decode(&pi.data) else {
            return;
        };
        let Some(sender) = SwitchId::from_underlay_ip(encap.header.src) else {
            return;
        };
        let Some(loc) = self.clib.locate(encap.inner.dst) else {
            return;
        };
        let epoch = self.grouping.epoch_of_switch(loc.switch);
        let xid = self.next_xid();
        out.push(ControllerOutput::ToSwitch(
            sender,
            Message::of(
                xid,
                OfMessage::flow_mod(FlowModMsg {
                    command: FlowModCommand::Add,
                    flow_match: FlowMatch::to_dst(encap.inner.dst),
                    priority: 20, // outranks the G-FIB path
                    idle_timeout: self.cfg.flow_idle_timeout_s,
                    hard_timeout: 0,
                    cookie: epoch as u64,
                    actions: vec![Action::Encap {
                        remote: loc.switch.underlay_ip(),
                        key: epoch,
                    }],
                }),
            ),
        ));
    }

    /// Relays an unresolved (typically ARP) frame to the designated
    /// switches of every other group hosting the tenant.
    fn relay_arp(
        &mut self,
        from: SwitchId,
        tenant: TenantId,
        data: &bytes::Bytes,
        out: &mut OutputSink<ControllerOutput>,
    ) {
        let from_group = self.grouping.group_of(from);
        let mut targets: Vec<SwitchId> = Vec::new();
        if tenant.is_none() {
            // No tenant scoping possible: all designated switches.
            if let Some(n) = self.grouping.num_groups() {
                for g in 0..n {
                    if Some(g) != from_group {
                        targets.extend(self.grouping.designated_of(g));
                    }
                }
            }
        } else {
            let mut groups: Vec<usize> = self
                .clib
                .switches_of_tenant(tenant)
                .into_iter()
                .filter_map(|s| self.grouping.group_of(s))
                .collect();
            groups.sort_unstable();
            groups.dedup();
            for g in groups {
                if Some(g) != from_group {
                    targets.extend(self.grouping.designated_of(g));
                }
            }
        }
        for s in targets {
            let xid = self.next_xid();
            out.push(ControllerOutput::ToSwitch(
                s,
                Message::of(
                    xid,
                    OfMessage::PacketOut(PacketOutMsg {
                        buffer_id: u32::MAX,
                        in_port: PortNo::NONE,
                        actions: vec![Action::Output(PortNo::FLOOD)],
                        // Shared handle: one relayed ARP broadcast to
                        // n designated switches is n refcount bumps,
                        // not n payload copies.
                        data: data.clone(),
                    }),
                ),
            ));
        }
    }

    fn apply_recovery(&mut self, kind: FailureKind, out: &mut OutputSink<ControllerOutput>) {
        let failed = match kind {
            FailureKind::ControlLink(s)
            | FailureKind::PeerLinkUp(s)
            | FailureKind::PeerLinkDown(s)
            | FailureKind::Switch(s) => s,
        };
        let group = self.grouping.group_of(failed);
        let is_designated = group
            .and_then(|g| self.grouping.designated_of(g))
            .map(|d| d == failed)
            .unwrap_or(false);
        let ring_prev = group
            .map(|g| {
                let mut members = self.grouping.members(g);
                members.sort_unstable();
                let i = members.iter().position(|&s| s == failed).unwrap_or(0);
                members[(i + members.len() - 1) % members.len().max(1)]
            })
            .unwrap_or(failed);
        let plan =
            FailureDetector::plan_recovery(kind, ring_prev, is_designated, group.unwrap_or(0));
        for action in plan {
            if let RecoveryAction::ReselectDesignated { group, old } = action {
                // Push fresh assignments with the next-lowest member as
                // designated (the backup takes over).
                let mut members = self.grouping.members(group);
                members.sort_unstable();
                members.retain(|&s| s != old);
                if members.is_empty() {
                    continue;
                }
                let designated = members[0];
                let epoch = self.grouping.epoch_of_group(group);
                let n = members.len();
                for (i, &me) in members.iter().enumerate() {
                    let xid = self.next_xid();
                    out.push(ControllerOutput::ToSwitch(
                        me,
                        Message::lazy(
                            xid,
                            LazyMsg::group_assign(lazyctrl_proto::GroupAssignMsg {
                                group: lazyctrl_net::GroupId::new(group as u32),
                                epoch,
                                members: members.clone(),
                                designated,
                                backups: members.iter().copied().skip(1).take(1).collect(),
                                ring_prev: members[(i + n - 1) % n],
                                ring_next: members[(i + 1) % n],
                                sync_interval_ms: self.cfg.sync_interval_ms,
                                keepalive_interval_ms: self.cfg.keepalive_interval_ms,
                                group_size_limit: self.cfg.group_size_limit as u32,
                            }),
                        ),
                    ));
                }
            }
        }
    }

    /// §III-E.3 comeback: when a rebooted switch returns, re-push its
    /// group's assignment to force a state resync.
    fn resync_group_of(&mut self, switch: SwitchId, out: &mut OutputSink<ControllerOutput>) {
        let Some(group) = self.grouping.group_of(switch) else {
            return;
        };
        let mut members = self.grouping.members(group);
        members.sort_unstable();
        let Some(designated) = members.first().copied() else {
            return;
        };
        let epoch = self.grouping.epoch_of_group(group);
        let n = members.len();
        for (i, &me) in members.iter().enumerate() {
            let xid = self.next_xid();
            out.push(ControllerOutput::ToSwitch(
                me,
                Message::lazy(
                    xid,
                    LazyMsg::group_assign(lazyctrl_proto::GroupAssignMsg {
                        group: lazyctrl_net::GroupId::new(group as u32),
                        epoch,
                        members: members.clone(),
                        designated,
                        backups: members.iter().copied().skip(1).take(1).collect(),
                        ring_prev: members[(i + n - 1) % n],
                        ring_next: members[(i + 1) % n],
                        sync_interval_ms: self.cfg.sync_interval_ms,
                        keepalive_interval_ms: self.cfg.keepalive_interval_ms,
                        group_size_limit: self.cfg.group_size_limit as u32,
                    }),
                ),
            ));
        }
    }

    /// Appendix B preload: for every switch moved between groups, install
    /// temporary tunnel rules (normal idle timeout) so traffic between the
    /// moved switch and its former peers keeps flowing from the flow table
    /// instead of punting while G-FIBs converge.
    fn preload_for_moves(&mut self, out: &mut OutputSink<ControllerOutput>) {
        let moves = self.grouping.take_last_moves();
        for (moved, old_group, _new_group) in moves {
            // Former peers = current members of the old group.
            let former_peers = self.grouping.members(old_group);
            let moved_epoch = self.grouping.epoch_of_switch(moved);
            let hosts_behind_moved = self.clib.hosts_on(moved);
            for peer in former_peers {
                if peer == moved {
                    continue;
                }
                let peer_epoch = self.grouping.epoch_of_switch(peer);
                // Rules on the former peer towards the moved switch's hosts.
                for (mac, _) in &hosts_behind_moved {
                    let xid = self.next_xid();
                    out.push(ControllerOutput::ToSwitch(
                        peer,
                        Message::of(
                            xid,
                            OfMessage::flow_mod(FlowModMsg {
                                command: FlowModCommand::Add,
                                flow_match: FlowMatch::to_dst(*mac),
                                priority: 10,
                                idle_timeout: self.cfg.flow_idle_timeout_s,
                                hard_timeout: 0,
                                cookie: moved_epoch as u64,
                                actions: vec![Action::Encap {
                                    remote: moved.underlay_ip(),
                                    key: moved_epoch,
                                }],
                            }),
                        ),
                    ));
                }
                // Rules on the moved switch towards the former peer's hosts.
                for (mac, _) in self.clib.hosts_on(peer) {
                    let xid = self.next_xid();
                    out.push(ControllerOutput::ToSwitch(
                        moved,
                        Message::of(
                            xid,
                            OfMessage::flow_mod(FlowModMsg {
                                command: FlowModCommand::Add,
                                flow_match: FlowMatch::to_dst(mac),
                                priority: 10,
                                idle_timeout: self.cfg.flow_idle_timeout_s,
                                hard_timeout: 0,
                                cookie: peer_epoch as u64,
                                actions: vec![Action::Encap {
                                    remote: peer.underlay_ip(),
                                    key: peer_epoch,
                                }],
                            }),
                        ),
                    ));
                }
            }
        }
    }

    fn handle_bargain(
        &mut self,
        from: SwitchId,
        offer: &BargainMsg,
        out: &mut OutputSink<ControllerOutput>,
    ) {
        // The controller accepts offers at or above its planning floor and
        // counters below it (the full alternating-offers game runs in
        // `negotiate_group_size`; this is the online responder).
        let floor = (self.cfg.group_size_limit / 2).max(1) as u32;
        let xid = self.next_xid();
        let reply = if offer.proposed_limit >= floor {
            BargainMsg {
                round: offer.round + 1,
                from_controller: true,
                proposed_limit: offer.proposed_limit,
                accept: true,
            }
        } else {
            BargainMsg {
                round: offer.round + 1,
                from_controller: true,
                proposed_limit: floor,
                accept: false,
            }
        };
        out.push(ControllerOutput::ToSwitch(
            from,
            Message::lazy(xid, LazyMsg::Bargain(reply)),
        ));
    }
}
