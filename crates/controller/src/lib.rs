//! The LazyCtrl central controller (and the standard-OpenFlow baseline).
//!
//! Mirrors the paper's Floodlight-based implementation (§IV-B) as pure
//! state machines:
//!
//! * [`Clib`] — the Central Location Information Base: the union of every
//!   switch's L-FIB, fed by `LfibSync` messages relayed up the state links;
//! * [`BaselineController`] — the comparison point: a Floodlight-style
//!   reactive learning-switch controller that handles *every* flow setup
//!   ("normal mode" in §V-A);
//! * [`LazyController`] — the hybrid controller: inter-group flow setup
//!   from the C-LIB, switch-grouping management (the SGI algorithm with
//!   the paper's regrouping triggers), tenant information management
//!   (scoped ARP relay, `BlockArp`), failover (Table I inference), and
//!   group-size bargaining;
//! * [`WorkloadMeter`] — request-rate measurement plus the load-dependent
//!   service-time model behind the steady-state latency experiment
//!   (Fig. 9).
//!
//! Controllers consume [`Message`](lazyctrl_proto::Message)s and produce
//! [`ControllerOutput`] effects; the simulation driver in `lazyctrl-core`
//! wires them to links and timers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod baseline;
mod clib;
pub mod failover;
mod grouping;
mod lazy;
mod tenant;
mod workload;

pub use baseline::BaselineController;
pub use clib::{Clib, HostLocation};
pub use failover::{FailureDetector, FailureKind, RecoveryAction};
pub use grouping::{FrozenGrouping, GroupingManager, RegroupDecision, RegroupTriggers};
pub use lazy::{ControllerOutput, ControllerTimer, LazyConfig, LazyController};
pub use tenant::TenantDirectory;
pub use workload::WorkloadMeter;
