//! Tenant information management (§IV-B): which tenants exist, where their
//! hosts sit, and whose ARP traffic can be confined to a single group.

use std::collections::{BTreeMap, BTreeSet};

use lazyctrl_net::{SwitchId, TenantId};
use serde::{Deserialize, Serialize};

use crate::Clib;

/// Tenant directory derived from the C-LIB plus the current grouping.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TenantDirectory {
    /// Tenant → groups currently hosting it.
    groups_of: BTreeMap<TenantId, BTreeSet<usize>>,
    /// Tenants whose ARP is currently blocked from reaching the controller.
    blocked: BTreeSet<TenantId>,
}

impl TenantDirectory {
    /// Creates an empty directory.
    pub fn new() -> Self {
        TenantDirectory::default()
    }

    /// Rebuilds the tenant → group map from the C-LIB and a switch → group
    /// assignment.
    pub fn rebuild(&mut self, clib: &Clib, group_of_switch: impl Fn(SwitchId) -> Option<usize>) {
        self.groups_of.clear();
        for (_, loc) in clib.iter() {
            if let Some(g) = group_of_switch(loc.switch) {
                self.groups_of.entry(loc.tenant).or_default().insert(g);
            }
        }
    }

    /// Groups hosting the tenant.
    pub fn groups_of(&self, tenant: TenantId) -> Vec<usize> {
        self.groups_of
            .get(&tenant)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    /// True when every host of the tenant sits in one group — the §III-D.3
    /// condition for blocking its ARP from the controller.
    pub fn is_single_group(&self, tenant: TenantId) -> bool {
        self.groups_of
            .get(&tenant)
            .map(|s| s.len() == 1)
            .unwrap_or(false)
    }

    /// Tenants whose blocked-state must change: returns `(to_block,
    /// to_unblock)` given the current confinement facts.
    pub fn block_delta(&mut self) -> (Vec<TenantId>, Vec<TenantId>) {
        let mut to_block = Vec::new();
        let mut to_unblock = Vec::new();
        for (&tenant, groups) in &self.groups_of {
            let confined = groups.len() == 1;
            if confined && !self.blocked.contains(&tenant) {
                to_block.push(tenant);
            } else if !confined && self.blocked.contains(&tenant) {
                to_unblock.push(tenant);
            }
        }
        for t in &to_block {
            self.blocked.insert(*t);
        }
        for t in &to_unblock {
            self.blocked.remove(t);
        }
        (to_block, to_unblock)
    }

    /// Currently blocked tenants.
    pub fn blocked(&self) -> impl Iterator<Item = TenantId> + '_ {
        self.blocked.iter().copied()
    }

    /// Known tenants.
    pub fn tenants(&self) -> impl Iterator<Item = TenantId> + '_ {
        self.groups_of.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HostLocation;
    use lazyctrl_net::{MacAddr, PortNo};

    fn clib_with(placements: &[(u64, u16, u32)]) -> Clib {
        let mut clib = Clib::new();
        for &(host, tenant, switch) in placements {
            clib.learn(
                MacAddr::for_host(host),
                HostLocation {
                    switch: SwitchId::new(switch),
                    port: PortNo::new(1),
                    tenant: TenantId::new(tenant),
                },
            );
        }
        clib
    }

    #[test]
    fn rebuild_maps_tenants_to_groups() {
        // Switches 0,1 in group 0; switches 2,3 in group 1.
        let clib = clib_with(&[(1, 7, 0), (2, 7, 1), (3, 8, 2), (4, 9, 1), (5, 9, 3)]);
        let mut dir = TenantDirectory::new();
        dir.rebuild(&clib, |s| Some((s.0 / 2) as usize));
        assert_eq!(dir.groups_of(TenantId::new(7)), vec![0]);
        assert_eq!(dir.groups_of(TenantId::new(8)), vec![1]);
        assert_eq!(dir.groups_of(TenantId::new(9)), vec![0, 1]);
        assert!(dir.is_single_group(TenantId::new(7)));
        assert!(!dir.is_single_group(TenantId::new(9)));
        assert!(!dir.is_single_group(TenantId::new(99)));
    }

    #[test]
    fn block_delta_tracks_confinement_changes() {
        let clib = clib_with(&[(1, 7, 0), (2, 7, 1)]);
        let mut dir = TenantDirectory::new();
        // Both switches in one group: tenant 7 confined.
        dir.rebuild(&clib, |_| Some(0));
        let (block, unblock) = dir.block_delta();
        assert_eq!(block, vec![TenantId::new(7)]);
        assert!(unblock.is_empty());
        // Repeat: no change.
        let (block, unblock) = dir.block_delta();
        assert!(block.is_empty() && unblock.is_empty());
        // Regroup splits the tenant: unblock.
        dir.rebuild(&clib, |s| Some(s.index()));
        let (block, unblock) = dir.block_delta();
        assert!(block.is_empty());
        assert_eq!(unblock, vec![TenantId::new(7)]);
        assert_eq!(dir.blocked().count(), 0);
    }

    #[test]
    fn ungrouped_switches_are_ignored() {
        let clib = clib_with(&[(1, 7, 0)]);
        let mut dir = TenantDirectory::new();
        dir.rebuild(&clib, |_| None);
        assert!(dir.groups_of(TenantId::new(7)).is_empty());
    }
}
