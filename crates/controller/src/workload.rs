//! Controller workload measurement and the load-dependent service-time
//! model.
//!
//! Fig. 7 reports workload as requests/sec; Fig. 9's latency win is "a
//! byproduct of reducing the workload of the controller as less load on the
//! controller leads to higher processing speed" (§V-E). We model the
//! controller as an M/M/1-style server: the mean response time grows as
//! utilization approaches capacity, so the latency gap *emerges* from the
//! measured request rate instead of being hard-coded.

use serde::{Deserialize, Serialize};

/// Sliding-window request-rate meter plus service-time model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkloadMeter {
    /// Window width for rate estimation (ns).
    window_ns: u64,
    /// Request timestamps in the current window (ring pruned on insert).
    recent: std::collections::VecDeque<u64>,
    /// Lifetime request count.
    total: u64,
    /// Base (unloaded) service time in ns.
    base_service_ns: u64,
    /// Requests/sec at which the controller saturates. The paper cites
    /// ~30k flow setups/sec for a commodity OpenFlow controller [14].
    capacity_rps: f64,
}

impl WorkloadMeter {
    /// Creates a meter with the paper-calibrated defaults: 10 s rate
    /// window, 0.5 ms unloaded service time, 30 krps capacity.
    pub fn new() -> Self {
        WorkloadMeter {
            window_ns: 10_000_000_000,
            recent: std::collections::VecDeque::new(),
            total: 0,
            base_service_ns: 500_000,
            capacity_rps: 30_000.0,
        }
    }

    /// Overrides the capacity (requests/sec).
    ///
    /// # Panics
    ///
    /// Panics unless `rps` is positive and finite.
    pub fn with_capacity_rps(mut self, rps: f64) -> Self {
        assert!(rps.is_finite() && rps > 0.0, "invalid capacity {rps}");
        self.capacity_rps = rps;
        self
    }

    /// Overrides the unloaded service time.
    pub fn with_base_service_ns(mut self, ns: u64) -> Self {
        self.base_service_ns = ns;
        self
    }

    /// Records one handled request.
    pub fn record(&mut self, now_ns: u64) {
        self.total += 1;
        self.recent.push_back(now_ns);
        let cutoff = now_ns.saturating_sub(self.window_ns);
        while let Some(&front) = self.recent.front() {
            if front < cutoff {
                self.recent.pop_front();
            } else {
                break;
            }
        }
    }

    /// Lifetime request count.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Request rate over the sliding window (requests/sec).
    pub fn rate_rps(&self, now_ns: u64) -> f64 {
        let cutoff = now_ns.saturating_sub(self.window_ns);
        let in_window = self.recent.iter().filter(|&&t| t >= cutoff).count();
        in_window as f64 / (self.window_ns as f64 / 1e9)
    }

    /// Mean service time at the current load: `base / (1 − ρ)` with
    /// utilization `ρ = rate / capacity`, clamped at 50× base when
    /// saturated (requests queue, they don't vanish).
    pub fn service_time_ns(&self, now_ns: u64) -> u64 {
        let rho = (self.rate_rps(now_ns) / self.capacity_rps).min(0.98);
        let factor = 1.0 / (1.0 - rho);
        ((self.base_service_ns as f64) * factor.min(50.0)) as u64
    }
}

impl Default for WorkloadMeter {
    fn default() -> Self {
        WorkloadMeter::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_reflects_window() {
        let mut m = WorkloadMeter::new();
        for i in 0..100 {
            m.record(i * 100_000_000); // 10 rps for 10 s
        }
        let rate = m.rate_rps(10_000_000_000);
        assert!((rate - 10.0).abs() < 1.5, "rate {rate}");
        assert_eq!(m.total(), 100);
    }

    #[test]
    fn old_requests_age_out() {
        let mut m = WorkloadMeter::new();
        for i in 0..100 {
            m.record(i * 1_000_000);
        }
        // 100 requests in the first 0.1 s; 60 s later the window is empty.
        assert_eq!(m.rate_rps(60_000_000_000), 0.0);
    }

    #[test]
    fn service_time_grows_with_load() {
        let mut idle = WorkloadMeter::new().with_capacity_rps(1000.0);
        idle.record(0);
        let idle_t = idle.service_time_ns(1_000_000_000);

        let mut busy = WorkloadMeter::new().with_capacity_rps(1000.0);
        for i in 0..9000 {
            busy.record(i * 1_000_000); // 900 rps ≈ 90% utilization
        }
        let busy_t = busy.service_time_ns(9_000_000_000);
        assert!(
            busy_t > idle_t * 5,
            "expected clear M/M/1 blowup: idle {idle_t} vs busy {busy_t}"
        );
    }

    #[test]
    fn saturation_is_clamped() {
        let mut m = WorkloadMeter::new().with_capacity_rps(10.0);
        for i in 0..10_000 {
            m.record(i * 100_000);
        }
        let t = m.service_time_ns(1_000_000_000);
        assert!(t <= m.base_service_ns * 51, "runaway service time {t}");
    }
}
