//! Behavioural tests for the LazyCtrl controller: bootstrap, inter-group
//! flow setup, ARP relay scoping, failover reaction, and laziness (what it
//! does *not* have to handle).

use lazyctrl_controller::{ControllerOutput, ControllerTimer, LazyConfig, LazyController};
use lazyctrl_net::{EtherType, EthernetFrame, HostId, PortNo, SwitchId, TenantId, VlanTag};
use lazyctrl_partition::WeightedGraph;
use lazyctrl_proto::{
    Action, LazyMsg, LfibEntry, LfibSyncMsg, Message, MessageBody, OfMessage, OutputSink,
    PacketInMsg, PacketInReason, WheelLoss, WheelReportMsg,
};

/// Sink-collecting wrappers mirroring the pre-sink `Vec` API.
fn handle(
    c: &mut LazyController,
    now_ns: u64,
    from: SwitchId,
    msg: &Message,
) -> Vec<ControllerOutput> {
    let mut sink = OutputSink::new();
    c.handle_message(now_ns, from, msg, &mut sink);
    sink.take_buf()
}

fn fire_timer(
    c: &mut LazyController,
    now_ns: u64,
    timer: ControllerTimer,
) -> Vec<ControllerOutput> {
    let mut sink = OutputSink::new();
    c.on_timer(now_ns, timer, &mut sink);
    sink.take_buf()
}

/// Two natural 4-switch clusters.
fn bootstrap_graph() -> WeightedGraph {
    let mut g = WeightedGraph::new(8);
    for c in 0..2 {
        let b = c * 4;
        for i in 0..4 {
            for j in (i + 1)..4 {
                g.add_edge(b + i, b + j, 10.0);
            }
        }
    }
    g.add_edge(3, 4, 0.2);
    g
}

fn controller() -> (LazyController, Vec<ControllerOutput>) {
    let switches: Vec<SwitchId> = (0..8).map(SwitchId::new).collect();
    let cfg = LazyConfig {
        group_size_limit: 4,
        ..LazyConfig::default()
    };
    let mut c = LazyController::new(switches, cfg);
    let mut sink = OutputSink::new();
    c.bootstrap(0, bootstrap_graph(), &mut sink);
    let out = sink.take_buf();
    (c, out)
}

fn frame(src: u32, dst: u32, tenant: u16) -> EthernetFrame {
    EthernetFrame::tagged(
        HostId::new(src).mac(),
        HostId::new(dst).mac(),
        VlanTag::for_tenant(TenantId::new(tenant)),
        EtherType::IPV4,
        vec![0; 24],
    )
}

fn packet_in(src: u32, dst: u32, tenant: u16) -> PacketInMsg {
    PacketInMsg {
        buffer_id: u32::MAX,
        in_port: PortNo::new(1),
        reason: PacketInReason::NoMatch,
        data: frame(src, dst, tenant).encode().into(),
    }
}

fn lfib_sync(origin: u32, hosts: &[(u32, u16)]) -> Message {
    Message::lazy(
        1,
        LazyMsg::lfib_sync(LfibSyncMsg {
            origin: SwitchId::new(origin),
            epoch: 1,
            entries: hosts
                .iter()
                .map(|&(h, t)| LfibEntry {
                    mac: HostId::new(h).mac(),
                    tenant: TenantId::new(t),
                    port: PortNo::new(1),
                })
                .collect(),
            removed: vec![],
        }),
    )
}

#[test]
fn bootstrap_groups_the_clusters_and_arms_timers() {
    let (c, out) = controller();
    // Eight GroupAssign messages plus two timers.
    let assigns = out
        .iter()
        .filter(|o| {
            matches!(o, ControllerOutput::ToSwitch(_, m)
                if matches!(m.as_lazy(), Some(LazyMsg::GroupAssign(_))))
        })
        .count();
    assert_eq!(assigns, 8);
    assert!(out
        .iter()
        .any(|o| matches!(o, ControllerOutput::SetTimer(ControllerTimer::KeepAlive, _))));
    assert!(out.iter().any(|o| matches!(
        o,
        ControllerOutput::SetTimer(ControllerTimer::RegroupCheck, _)
    )));
    // The clusters map to distinct groups.
    assert_eq!(
        c.grouping().group_of(SwitchId::new(0)),
        c.grouping().group_of(SwitchId::new(3))
    );
    assert_ne!(
        c.grouping().group_of(SwitchId::new(0)),
        c.grouping().group_of(SwitchId::new(4))
    );
}

#[test]
fn intergroup_packet_in_installs_encap_rule() {
    let (mut c, _) = controller();
    // C-LIB learns host 20 on switch 5 (group 1) via a state-link sync.
    let _ = handle(&mut c, 0, SwitchId::new(5), &lfib_sync(5, &[(20, 7)]));
    // Switch 0 (group 0) punts a flow towards host 20.
    let msg = Message::of(1, OfMessage::PacketIn(packet_in(10, 20, 7)));
    let out = handle(&mut c, 1, SwitchId::new(0), &msg);
    assert_eq!(out.len(), 2, "FlowMod + PacketOut: {out:?}");
    let ControllerOutput::ToSwitch(s, m) = &out[0] else {
        panic!()
    };
    assert_eq!(*s, SwitchId::new(0));
    match &m.body {
        MessageBody::Of(OfMessage::FlowMod(fm)) => {
            assert_eq!(
                fm.actions,
                vec![Action::Encap {
                    remote: SwitchId::new(5).underlay_ip(),
                    key: c.grouping().epoch(),
                }]
            );
        }
        other => panic!("expected FlowMod, got {other:?}"),
    }
    // The source host was learned into the C-LIB from the PacketIn.
    assert!(c.clib().locate(HostId::new(10).mac()).is_some());
}

#[test]
fn arp_relay_is_scoped_to_tenant_groups() {
    let (mut c, _) = controller();
    // Tenant 7 has hosts behind switches 1 (group 0) and 5 (group 1);
    // tenant 8 only behind switch 2 (group 0).
    let _ = handle(&mut c, 0, SwitchId::new(1), &lfib_sync(1, &[(11, 7)]));
    let _ = handle(&mut c, 0, SwitchId::new(5), &lfib_sync(5, &[(20, 7)]));
    let _ = handle(&mut c, 0, SwitchId::new(2), &lfib_sync(2, &[(30, 8)]));

    // An escalated ARP broadcast from group 0 for tenant 7: relayed to the
    // designated switch of group 1 only.
    let mut arp = packet_in(11, 0, 7);
    let mut f = frame(11, 0, 7);
    f.dst = lazyctrl_net::MacAddr::BROADCAST;
    arp.data = f.encode().into();
    let out = handle(
        &mut c,
        1,
        SwitchId::new(0),
        &Message::of(2, OfMessage::PacketIn(arp)),
    );
    assert_eq!(out.len(), 1, "one designated relay: {out:?}");
    let ControllerOutput::ToSwitch(s, _) = &out[0] else {
        panic!()
    };
    let designated_g1 = c
        .grouping()
        .designated_of(c.grouping().group_of(SwitchId::new(5)).unwrap())
        .unwrap();
    assert_eq!(*s, designated_g1);

    // Same for tenant 8 (entirely in group 0): nothing to relay.
    let mut arp = packet_in(30, 0, 8);
    let mut f = frame(30, 0, 8);
    f.dst = lazyctrl_net::MacAddr::BROADCAST;
    arp.data = f.encode().into();
    let out = handle(
        &mut c,
        2,
        SwitchId::new(0),
        &Message::of(3, OfMessage::PacketIn(arp)),
    );
    assert!(
        out.is_empty(),
        "tenant confined to the origin group: {out:?}"
    );
}

#[test]
fn false_positive_report_corrects_the_sender() {
    let (mut c, _) = controller();
    let _ = handle(&mut c, 0, SwitchId::new(5), &lfib_sync(5, &[(20, 7)]));
    // Switch 6 received a mis-forwarded tunnel packet from switch 0.
    let encap = lazyctrl_net::EncapsulatedFrame::new(
        lazyctrl_net::EncapHeader::new(
            SwitchId::new(0).underlay_ip(),
            SwitchId::new(6).underlay_ip(),
            TenantId::new(7),
            1,
        ),
        frame(10, 20, 7),
    );
    let pi = PacketInMsg {
        buffer_id: u32::MAX,
        in_port: PortNo::NONE,
        reason: PacketInReason::FalsePositive,
        data: encap.encode().into(),
    };
    let out = handle(
        &mut c,
        1,
        SwitchId::new(6),
        &Message::of(4, OfMessage::PacketIn(pi)),
    );
    assert_eq!(out.len(), 1);
    let ControllerOutput::ToSwitch(s, m) = &out[0] else {
        panic!()
    };
    assert_eq!(*s, SwitchId::new(0), "corrective rule goes to the sender");
    match &m.body {
        MessageBody::Of(OfMessage::FlowMod(fm)) => {
            assert_eq!(fm.priority, 20, "must outrank the G-FIB path");
            assert!(matches!(fm.actions[0], Action::Encap { remote, .. }
                if remote == SwitchId::new(5).underlay_ip()));
        }
        other => panic!("expected FlowMod, got {other:?}"),
    }
}

#[test]
fn keepalive_timer_probes_every_switch() {
    let (mut c, _) = controller();
    let out = fire_timer(&mut c, 1_000_000_000, ControllerTimer::KeepAlive);
    let probes = out
        .iter()
        .filter(|o| {
            matches!(o, ControllerOutput::ToSwitch(_, m)
                if matches!(m.as_lazy(), Some(LazyMsg::KeepAlive(_))))
        })
        .count();
    assert_eq!(probes, 8);
    assert!(out
        .iter()
        .any(|o| matches!(o, ControllerOutput::SetTimer(ControllerTimer::KeepAlive, _))));
}

#[test]
fn dead_switch_triggers_designated_reselection() {
    let (mut c, _) = controller();
    let victim = c.grouping().designated_of(0).unwrap();
    // Both ring neighbours report silence.
    let up = WheelReportMsg {
        reporter: SwitchId::new(99),
        missing: victim,
        loss: WheelLoss::Upstream,
    };
    let down = WheelReportMsg {
        reporter: SwitchId::new(98),
        missing: victim,
        loss: WheelLoss::Downstream,
    };
    let _ = handle(
        &mut c,
        0,
        SwitchId::new(99),
        &Message::lazy(1, LazyMsg::WheelReport(up)),
    );
    let out = handle(
        &mut c,
        1,
        SwitchId::new(98),
        &Message::lazy(2, LazyMsg::WheelReport(down)),
    );
    // The group re-forms without the victim.
    let assigns: Vec<_> = out
        .iter()
        .filter_map(|o| match o {
            ControllerOutput::ToSwitch(s, m) => match m.as_lazy() {
                Some(LazyMsg::GroupAssign(ga)) => Some((s, ga)),
                _ => None,
            },
            _ => None,
        })
        .collect();
    assert!(!assigns.is_empty(), "reselection must reassign: {out:?}");
    for (_, ga) in &assigns {
        assert!(!ga.members.contains(&victim));
        assert_ne!(ga.designated, victim);
    }
    assert_eq!(c.failover().down_switches(), vec![victim]);
    // The victim comes back: any message from it triggers a resync.
    let hello = Message::of(9, OfMessage::Hello);
    let out = handle(&mut c, 10, victim, &hello);
    assert!(
        out.iter()
            .any(|o| matches!(o, ControllerOutput::ToSwitch(_, m)
            if matches!(m.as_lazy(), Some(LazyMsg::GroupAssign(_))))),
        "comeback must resync the group: {out:?}"
    );
    assert!(c.failover().down_switches().is_empty());
}

#[test]
fn workload_counts_every_message() {
    let (mut c, _) = controller();
    for i in 0..10u64 {
        let _ = handle(
            &mut c,
            i,
            SwitchId::new(0),
            &Message::of(1, OfMessage::PacketIn(packet_in(10, 20, 7))),
        );
    }
    assert_eq!(c.meter().total(), 10);
}

#[test]
fn bargaining_sets_the_group_size() {
    let switches: Vec<SwitchId> = (0..8).map(SwitchId::new).collect();
    let mut c = LazyController::new(switches, LazyConfig::default());
    let outcome = c.negotiate_group_size(20, 100);
    assert!((20..=100).contains(&outcome.agreed_limit));
    assert!(!outcome.transcript.is_empty());
}

#[test]
fn static_mode_never_regroups() {
    let switches: Vec<SwitchId> = (0..8).map(SwitchId::new).collect();
    let cfg = LazyConfig {
        group_size_limit: 4,
        dynamic_updates: false,
        ..LazyConfig::default()
    };
    let mut c = LazyController::new(switches, cfg);
    {
        let mut sink = OutputSink::new();
        c.bootstrap(0, bootstrap_graph(), &mut sink);
    }
    let updates_before = c.grouping().updates_applied();
    // Hammer the regroup timer far past every trigger.
    for i in 1..10u64 {
        let out = fire_timer(&mut c, i * 600_000_000_000, ControllerTimer::RegroupCheck);
        let assigns = out
            .iter()
            .filter(|o| {
                matches!(o, ControllerOutput::ToSwitch(_, m)
                    if matches!(m.as_lazy(), Some(LazyMsg::GroupAssign(_))))
            })
            .count();
        assert_eq!(assigns, 0, "static mode must not reassign");
    }
    assert_eq!(c.grouping().updates_applied(), updates_before);
}
