//! Experiment configuration.

use lazyctrl_cluster::DisseminationStrategy;
use lazyctrl_controller::RegroupTriggers;
use lazyctrl_obs::ObsConfig;
use lazyctrl_proto::EventPlan;
use lazyctrl_sim::{BandwidthModel, LatencyModel, SchedulerKind};
use serde::{Deserialize, Serialize};

/// Which control plane runs the data center.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ControlMode {
    /// Standard OpenFlow reactive control (Floodlight learning switch) —
    /// the paper's "normal mode" baseline.
    Baseline,
    /// LazyCtrl with the bootstrap grouping frozen for the whole run
    /// ("static" in Fig. 7).
    LazyStatic,
    /// LazyCtrl with incremental regrouping enabled ("dynamic").
    LazyDynamic,
}

impl ControlMode {
    /// True for the two LazyCtrl variants.
    pub fn is_lazy(self) -> bool {
        !matches!(self, ControlMode::Baseline)
    }

    /// Short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            ControlMode::Baseline => "openflow",
            ControlMode::LazyStatic => "lazyctrl-static",
            ControlMode::LazyDynamic => "lazyctrl-dynamic",
        }
    }
}

/// Full configuration of one experiment run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Control plane under test.
    pub mode: ControlMode,
    /// Switches per local control group.
    pub group_size_limit: usize,
    /// Hours of leading traffic used to build the bootstrap intensity
    /// graph ("the initial grouping is done based on the first-hour
    /// traffic pattern", §V-D).
    pub bootstrap_hours: f64,
    /// Peer-sync interval pushed to switches (ms). Large default keeps the
    /// 24 h runs fast; the sync traffic itself never touches the
    /// controller's PacketIn path.
    pub sync_interval_ms: u32,
    /// Wheel keep-alive interval (ms).
    pub keepalive_interval_ms: u32,
    /// Emit explicit ARP request/reply exchanges for fresh host pairs.
    /// Costs events; the cold-cache scenario turns it on.
    pub emit_arp: bool,
    /// Destination hosts send one response frame per fresh pair (drives
    /// reverse-path learning, as real hosts would).
    pub responses: bool,
    /// Latency model for all four channel classes.
    pub latency: LatencyModel,
    /// Per-class link bandwidth model. Unmodeled (the default) prices no
    /// serialization or queueing delay and adds no per-message work, so
    /// pre-existing reports stay bit-identical. Capping a class makes
    /// every message on it pay a closed-form fair-share delay computed
    /// from its wire size and the link's in-flight backlog — no RNG
    /// draws, so scheduler/worker determinism holds by construction.
    pub bandwidth: BandwidthModel,
    /// Regrouping triggers (dynamic mode only).
    pub triggers: RegroupTriggers,
    /// Report G-FIB false positives to the controller for corrective rules.
    pub report_false_positives: bool,
    /// Preload temporary tunnel rules around regroupings (Appendix B).
    pub preload: bool,
    /// Record every delivered flow's (src, dst, emit-time, latency) tuple.
    /// Memory-heavy; only the micro scenarios enable it.
    pub record_flow_latencies: bool,
    /// Stop the run after this many hours of virtual time (None = whole
    /// trace).
    pub horizon_hours: Option<f64>,
    /// Workload/latency series bucket width in hours (paper plots use 2 h).
    pub bucket_hours: f64,
    /// Deterministic seed.
    pub seed: u64,
    /// Run the control plane as a `lazyctrl-cluster` of this many
    /// controllers instead of a single controller. Requires a lazy mode.
    /// `None` keeps the classic single-controller paths untouched.
    pub cluster_controllers: Option<usize>,
    /// How cluster members disseminate C-LIB deltas to each other
    /// (cluster runs only): direct flood (the O(n²) baseline), ring
    /// circulation, or a leader-rooted relay tree — both O(n) messages
    /// per flush round, the difference that makes paper-scale clusters
    /// feasible. See [`DisseminationStrategy`].
    pub cluster_dissemination: DisseminationStrategy,
    /// Replication flush cadence between cluster members (ms), `None`
    /// for the cluster default (1 s). Longer intervals aggregate more
    /// deltas per flush — what lets ring/tree bundling amortize towards
    /// O(1) messages per delta — at the price of replica staleness (the
    /// synchronous lookup fallback covers the gap).
    pub cluster_flush_interval_ms: Option<u32>,
    /// Bounded prioritized ingress queues on cluster members: `Some(n)`
    /// gives each member an `n`-slot leaky bucket that sheds work by
    /// priority class under overload — flow setups first, lookups next,
    /// ownership/sync last; heartbeats and elections never — and emits
    /// ECN-style pressure notices toward the shedding switch. `None`
    /// (the default) keeps admission unbounded and reports bit-identical
    /// to earlier versions. Requires a cluster.
    pub cluster_ingress_slots: Option<usize>,
    /// Virtual per-message service cost (ns) charged to the ingress
    /// bucket; `None` uses the cluster default (20 µs).
    pub cluster_ingress_cost_ns: Option<u64>,
    /// Fault/workload events injected during the run (controller and
    /// switch crashes, link degradation, host migration, traffic bursts —
    /// see [`EventPlan`]). Empty by default: nothing is injected.
    pub plan: EventPlan,
    /// Event-scheduler backend for the run: the timing wheel (default) or
    /// the binary-heap reference. Both produce bit-identical reports for
    /// a given seed; the knob exists so regression tests can replay a
    /// scenario under each (see `lazyctrl_sim::SchedulerKind`).
    pub scheduler: SchedulerKind,
    /// Worker threads for the SGI merge/split step of incremental
    /// regrouping (`1` = sequential; bit-identical results either way).
    pub sgi_parallelism: usize,
    /// Observability layer (flight recorder + sampling profiler). Off by
    /// default; the layer is strictly read-only, so reports are
    /// bit-identical with it on or off (see `lazyctrl_obs`).
    pub obs: ObsConfig,
    /// Worker threads for the sharded simulation engine. `None` (the
    /// default) runs the original single-threaded engine; `Some(n)` — n
    /// included `Some(1)` — runs the conservative sharded engine with
    /// `n` workers. Sharded reports are bit-identical across worker
    /// counts (for a fixed shard count and window) but are a *different*
    /// deterministic run than the single-threaded engine: the world is
    /// split into partitions with independent RNG streams (see
    /// DESIGN.md §10).
    pub workers: Option<usize>,
    /// Partition count for the sharded engine (`None` = default 16,
    /// capped at the switch count). Results depend on this number, so it
    /// is deliberately decoupled from `workers`: changing the thread
    /// count never changes reports.
    pub shards: Option<usize>,
    /// Synchronization window for the sharded engine, in microseconds.
    /// `None` (the default) uses the model's cross-partition lookahead
    /// floor, which keeps event timing exact; larger values trade
    /// cross-partition timing precision for fewer synchronization rounds
    /// (a throughput knob for perf runs).
    pub shard_window_us: Option<u64>,
}

impl ExperimentConfig {
    /// A paper-shaped default configuration for the given mode.
    pub fn new(mode: ControlMode) -> Self {
        ExperimentConfig {
            mode,
            group_size_limit: 46,
            bootstrap_hours: 1.0,
            sync_interval_ms: 300_000,
            keepalive_interval_ms: 60_000,
            emit_arp: false,
            responses: true,
            latency: LatencyModel::default(),
            bandwidth: BandwidthModel::unmodeled(),
            triggers: RegroupTriggers::default(),
            report_false_positives: true,
            preload: true,
            record_flow_latencies: false,
            horizon_hours: None,
            bucket_hours: 2.0,
            seed: 0xE1,
            cluster_controllers: None,
            cluster_dissemination: DisseminationStrategy::default(),
            cluster_flush_interval_ms: None,
            cluster_ingress_slots: None,
            cluster_ingress_cost_ns: None,
            plan: EventPlan::new(),
            scheduler: SchedulerKind::default(),
            sgi_parallelism: 1,
            obs: ObsConfig::default(),
            workers: None,
            shards: None,
            shard_window_us: None,
        }
    }

    /// Attaches an observability configuration (tracing/profiling).
    pub fn with_obs(mut self, obs: ObsConfig) -> Self {
        self.obs = obs;
        self
    }

    /// Selects the event-scheduler backend.
    pub fn with_scheduler(mut self, kind: SchedulerKind) -> Self {
        self.scheduler = kind;
        self
    }

    /// Sets the SGI merge/split worker-thread count.
    pub fn with_sgi_parallelism(mut self, n: usize) -> Self {
        self.sgi_parallelism = n;
        self
    }

    /// Sets the group size limit.
    pub fn with_group_size_limit(mut self, limit: usize) -> Self {
        self.group_size_limit = limit;
        self
    }

    /// Sets the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Restricts the run to the first `hours` of the trace.
    pub fn with_horizon_hours(mut self, hours: f64) -> Self {
        self.horizon_hours = Some(hours);
        self
    }

    /// Runs the control plane as a cluster of `n` controllers.
    pub fn with_cluster(mut self, n: usize) -> Self {
        self.cluster_controllers = Some(n);
        self
    }

    /// Replaces the fault-injection plan.
    pub fn with_plan(mut self, plan: EventPlan) -> Self {
        self.plan = plan;
        self
    }

    /// Sets the cluster's peer-sync dissemination strategy.
    pub fn with_dissemination(mut self, strategy: DisseminationStrategy) -> Self {
        self.cluster_dissemination = strategy;
        self
    }

    /// Sets the cluster's replication flush cadence (ms).
    pub fn with_cluster_flush_ms(mut self, interval_ms: u32) -> Self {
        self.cluster_flush_interval_ms = Some(interval_ms);
        self
    }

    /// Replaces the link bandwidth model.
    pub fn with_bandwidth(mut self, bandwidth: BandwidthModel) -> Self {
        self.bandwidth = bandwidth;
        self
    }

    /// Bounds every cluster member's ingress queue at `slots` slots.
    pub fn with_ingress_slots(mut self, slots: usize) -> Self {
        self.cluster_ingress_slots = Some(slots);
        self
    }

    /// Sets the virtual per-message ingress service cost (ns).
    pub fn with_ingress_cost_ns(mut self, cost_ns: u64) -> Self {
        self.cluster_ingress_cost_ns = Some(cost_ns);
        self
    }

    /// Runs the sharded engine with `n` worker threads.
    pub fn with_workers(mut self, n: usize) -> Self {
        self.workers = Some(n);
        self
    }

    /// Sets the sharded engine's partition count.
    pub fn with_shards(mut self, n: usize) -> Self {
        self.shards = Some(n);
        self
    }

    /// Sets the sharded engine's synchronization window (µs). Values
    /// above the lookahead floor relax cross-partition event timing.
    pub fn with_shard_window_us(mut self, us: u64) -> Self {
        self.shard_window_us = Some(us);
        self
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics on nonsensical values (zero group size, non-positive bucket).
    pub fn validate(&self) {
        assert!(
            self.group_size_limit > 0,
            "group size limit must be positive"
        );
        assert!(self.bucket_hours > 0.0, "bucket width must be positive");
        assert!(
            self.bootstrap_hours >= 0.0,
            "bootstrap window cannot be negative"
        );
        assert!(self.sync_interval_ms > 0, "sync interval must be positive");
        assert!(
            self.keepalive_interval_ms > 0,
            "keepalive interval must be positive"
        );
        if let Some(n) = self.cluster_controllers {
            assert!(n > 0, "cluster needs at least one controller");
            assert!(
                self.mode.is_lazy(),
                "a controller cluster requires a lazy mode"
            );
        }
        if let Some(ms) = self.cluster_flush_interval_ms {
            assert!(ms > 0, "cluster flush interval must be positive");
        }
        if let Some(slots) = self.cluster_ingress_slots {
            assert!(slots > 0, "ingress queue needs at least one slot");
            assert!(
                self.cluster_controllers.is_some(),
                "bounded ingress queues require a cluster"
            );
        }
        if let Some(cost) = self.cluster_ingress_cost_ns {
            assert!(cost > 0, "ingress cost must be positive");
        }
        assert!(self.sgi_parallelism > 0, "sgi_parallelism must be positive");
        if let Some(w) = self.workers {
            assert!(w > 0, "workers must be positive");
        }
        if let Some(s) = self.shards {
            assert!(
                s > 0 && s < usize::from(u16::MAX),
                "shards must be in 1..65535"
            );
        }
        if self.workers.is_none() {
            assert!(
                self.shards.is_none() && self.shard_window_us.is_none(),
                "shards/shard_window_us require the sharded engine (set workers)"
            );
        }
        self.plan.validate();
        if self.cluster_controllers.is_none() {
            assert!(
                !self.plan.requires_cluster(),
                "controller crash/recovery events require a cluster"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_kind() {
        assert_eq!(ControlMode::Baseline.label(), "openflow");
        assert!(!ControlMode::Baseline.is_lazy());
        assert!(ControlMode::LazyStatic.is_lazy());
        assert!(ControlMode::LazyDynamic.is_lazy());
    }

    #[test]
    fn builder_chain() {
        let cfg = ExperimentConfig::new(ControlMode::LazyDynamic)
            .with_group_size_limit(10)
            .with_seed(42)
            .with_horizon_hours(2.0);
        cfg.validate();
        assert_eq!(cfg.group_size_limit, 10);
        assert_eq!(cfg.seed, 42);
        assert_eq!(cfg.horizon_hours, Some(2.0));
    }

    #[test]
    #[should_panic(expected = "group size limit")]
    fn zero_group_size_rejected() {
        ExperimentConfig::new(ControlMode::Baseline)
            .with_group_size_limit(0)
            .validate();
    }

    #[test]
    #[should_panic(expected = "require a cluster")]
    fn controller_events_need_a_cluster() {
        ExperimentConfig::new(ControlMode::LazyStatic)
            .with_plan(EventPlan::new().crash_controller(1.0, 0))
            .validate();
    }

    #[test]
    fn switch_events_do_not_need_a_cluster() {
        ExperimentConfig::new(ControlMode::LazyStatic)
            .with_plan(EventPlan::new().crash_switch(1.0, lazyctrl_net::SwitchId::new(2)))
            .validate();
    }

    #[test]
    #[should_panic(expected = "require a cluster")]
    fn ingress_slots_need_a_cluster() {
        ExperimentConfig::new(ControlMode::LazyStatic)
            .with_ingress_slots(64)
            .validate();
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_ingress_slots_rejected() {
        ExperimentConfig::new(ControlMode::LazyStatic)
            .with_cluster(2)
            .with_ingress_slots(0)
            .validate();
    }

    #[test]
    fn bandwidth_and_ingress_thread_through() {
        use lazyctrl_sim::ChannelClass;
        let cfg = ExperimentConfig::new(ControlMode::LazyStatic)
            .with_cluster(2)
            .with_bandwidth(
                BandwidthModel::unmodeled().with_capacity(ChannelClass::Control, 10_000_000),
            )
            .with_ingress_slots(64)
            .with_ingress_cost_ns(50_000);
        cfg.validate();
        assert!(cfg.bandwidth.class_enabled(ChannelClass::Control));
        assert_eq!(cfg.cluster_ingress_slots, Some(64));
    }

    #[test]
    fn dissemination_defaults_to_flood_and_threads_through() {
        let cfg = ExperimentConfig::new(ControlMode::LazyStatic).with_cluster(2);
        assert_eq!(cfg.cluster_dissemination, DisseminationStrategy::Flood);
        let cfg = cfg.with_dissemination(DisseminationStrategy::Ring);
        cfg.validate();
        assert_eq!(cfg.cluster_dissemination, DisseminationStrategy::Ring);
    }
}
