//! The experiment driver: trace in, report out.

use lazyctrl_obs::{EngineProfile, FlightRecorder, ObsConfig, PhaseTimings, RecorderStats};
use lazyctrl_sim::{run, EventQueue, SimDuration, SimTime};
use lazyctrl_trace::Trace;
use std::time::Instant;

use crate::report::SeriesPoint;
use crate::world::{DataCenterWorld, Ev};
use crate::{ExperimentConfig, ExperimentReport};

/// One end-to-end run of a control plane over a trace.
#[derive(Debug)]
pub struct Experiment {
    trace: Trace,
    cfg: ExperimentConfig,
}

impl Experiment {
    /// Prepares an experiment.
    ///
    /// # Panics
    ///
    /// Panics on invalid configuration, an inconsistent trace, or a plan
    /// event referencing a switch/controller the run does not have —
    /// catching the mistake here beats an index panic (or a silent
    /// no-op fault) deep inside the run.
    pub fn new(trace: Trace, cfg: ExperimentConfig) -> Self {
        cfg.validate();
        trace.validate();
        let num_switches = trace.topology.num_switches;
        let controllers = cfg.cluster_controllers.unwrap_or(0);
        let horizon = run_horizon(&trace, &cfg);
        for e in cfg.plan.events() {
            assert!(
                e.at <= horizon,
                "plan event `{e}` is scheduled past the run horizon ({horizon}) and would \
                 silently never fire"
            );
            match e.event {
                lazyctrl_proto::InjectedEvent::CrashSwitch(s)
                | lazyctrl_proto::InjectedEvent::RecoverSwitch(s) => assert!(
                    s.index() < num_switches,
                    "plan event `{e}` references switch {s} but the trace has {num_switches}"
                ),
                lazyctrl_proto::InjectedEvent::CrashController(id)
                | lazyctrl_proto::InjectedEvent::RecoverController(id) => assert!(
                    (id as usize) < controllers,
                    "plan event `{e}` references controller {id} but the cluster has {controllers}"
                ),
                lazyctrl_proto::InjectedEvent::PartitionNetwork { ref groups } => {
                    for &node in groups.iter().flatten() {
                        let ok = (node as usize) < num_switches
                            || lazyctrl_cluster::ctrl_pseudo_switch(0).0 <= node
                                && ((node & !lazyctrl_cluster::ctrl_pseudo_switch(0).0) as usize)
                                    < controllers;
                        assert!(
                            ok,
                            "plan event `{e}` partitions node {node}, which is neither a \
                             switch (< {num_switches}) nor a controller pseudo-id \
                             (cluster has {controllers})"
                        );
                    }
                }
                _ => {}
            }
        }
        Experiment { trace, cfg }
    }

    /// Runs the simulation to completion and collects the report.
    pub fn run(self) -> ExperimentReport {
        self.run_detailed().report
    }

    /// Like [`Experiment::run`], but also returns the per-flow latency log
    /// (enable `record_flow_latencies` in the config to populate it).
    pub fn run_detailed(self) -> DetailedRun {
        let Experiment { trace, cfg } = self;
        // Three phase walls = four `Instant::now()` calls per run total;
        // nothing here is per-event, and nothing feeds the report.
        let t_build = Instant::now();
        let trace_name = trace.name.clone();
        let mode = cfg.mode;
        let horizon = run_horizon(&trace, &cfg);

        let mut queue: EventQueue<Ev> = EventQueue::with_kind(cfg.scheduler);
        // Schedule every flow arrival up front (they're already sorted).
        for (i, f) in trace.flows.iter().enumerate() {
            if SimTime::from_nanos(f.time_ns) > horizon {
                break;
            }
            queue.schedule(SimTime::from_nanos(f.time_ns), Ev::FlowArrival(i));
        }
        // The fault-injection plan rides the same queue as the traffic;
        // plans are sorted, so insertion order here equals plan order and
        // same-timestamp events keep their scheduled sequence.
        for e in cfg.plan.events() {
            queue.schedule(e.at, Ev::Injected(e.event.clone()));
        }

        let mut world = DataCenterWorld::new(trace, cfg);
        {
            // Bootstrap needs a scheduler; run a tiny prologue through the
            // kernel by scheduling from a scratch queue.
            let mut sched_queue = std::mem::take(&mut queue);
            let mut sched = scheduler_for(&mut sched_queue);
            world.bootstrap(&mut sched);
            queue = sched_queue;
        }

        let t_run = Instant::now();
        let build_s = (t_run - t_build).as_secs_f64();
        let (mut world, events_processed) = match world.cfg.workers {
            Some(workers) => {
                let r = crate::shard::run_sharded_experiment(world, queue, horizon, workers);
                (r.world, r.events_processed)
            }
            None => {
                run(&mut world, &mut queue, horizon);
                let popped = queue.popped_total();
                (world, popped)
            }
        };
        let t_report = Instant::now();
        let run_s = (t_report - t_run).as_secs_f64();

        // ---- Collect ----
        let bucket_hours = world.cfg.bucket_hours;
        let series = |name: &str| -> Vec<SeriesPoint> {
            world
                .metrics
                .series(name)
                .map(|s| {
                    s.rates()
                        .into_iter()
                        .map(|(t, v)| SeriesPoint {
                            hour: t.as_secs_f64() / 3600.0,
                            value: v,
                        })
                        .collect()
                })
                .unwrap_or_default()
        };
        let workload_rps = series("workload");
        let latency_ms: Vec<SeriesPoint> = world
            .metrics
            .series("latency_ms")
            .map(|s| {
                s.means()
                    .into_iter()
                    .map(|(t, v)| SeriesPoint {
                        hour: t.as_secs_f64() / 3600.0,
                        value: v,
                    })
                    .collect()
            })
            .unwrap_or_default();
        let updates_per_hour: Vec<SeriesPoint> = world
            .metrics
            .series("regroup_updates")
            .map(|s| {
                s.sums()
                    .into_iter()
                    .map(|(t, v)| SeriesPoint {
                        hour: t.as_secs_f64() / 3600.0,
                        value: v,
                    })
                    .collect()
            })
            .unwrap_or_default();
        let lat_hist = world.metrics.log2_histogram("latency_all_ms");
        let mean_latency_ms = lat_hist.and_then(|h| h.mean()).unwrap_or(0.0);
        let p99_latency_ms = lat_hist.and_then(|h| h.quantile(0.99)).unwrap_or(0.0);
        let p999_latency_ms = lat_hist.and_then(|h| h.quantile(0.999)).unwrap_or(0.0);
        let max_gfib_bytes = world
            .switches
            .iter()
            .flatten()
            .map(|s| s.gfib().storage_bytes() as u64)
            .max()
            .unwrap_or(0);
        let lazy = world.controller.lazy();
        let final_winter = lazy.and_then(|c| c.grouping().winter());
        let num_groups = lazy
            .and_then(|c| c.grouping().num_groups())
            .or_else(|| world.controller.cluster().map(|p| p.ownership().len()));
        let down_switches = lazy
            .map(|c| c.failover().down_switches())
            .unwrap_or_default()
            .iter()
            .map(|s| s.0)
            .collect();

        let cluster = world.controller.cluster().map(|plane| {
            let n = plane.num_controllers();
            let horizon_secs = (horizon.as_nanos() as f64 / 1e9).max(1.0);
            let requests: Vec<u64> = (0..n as u32).map(|i| plane.requests_of(i)).collect();
            let per_rps = requests.iter().map(|&r| r as f64 / horizon_secs).collect();
            let transfers = plane.transfers();
            let traffic: Vec<_> = (0..n as u32).map(|i| plane.sync_traffic(i)).collect();
            crate::report::ClusterReport {
                controllers: n,
                dissemination: plane.dissemination_label().to_owned(),
                requests_per_controller: requests,
                per_controller_rps: per_rps,
                clib_sizes: (0..n as u32).map(|i| plane.clib_len(i)).collect(),
                replica_sizes: (0..n as u32).map(|i| plane.replica_len(i)).collect(),
                peer_sync_messages: traffic.iter().map(|t| t.messages_sent).collect(),
                peer_sync_bytes: traffic.iter().map(|t| t.bytes_sent).collect(),
                peer_sync_chunks: traffic.iter().map(|t| t.chunks_created).collect(),
                anti_entropy_digests: traffic.iter().map(|t| t.digests_sent).collect(),
                anti_entropy_catchups: traffic.iter().map(|t| t.catchup_syncs_sent).collect(),
                rebalance_transfers: transfers
                    .iter()
                    .filter(|t| t.reason == lazyctrl_proto::TransferReason::Rebalance)
                    .count() as u64,
                failover_transfers: transfers
                    .iter()
                    .filter(|t| t.reason == lazyctrl_proto::TransferReason::Failover)
                    .count() as u64,
                takeovers: plane.takeovers().to_vec(),
                confirmed_dead: plane.confirmed_dead(),
                ctrl_peer_messages: world.metrics.counter("ctrl_peer_messages"),
                failover_groups: transfers
                    .iter()
                    .filter(|t| t.reason == lazyctrl_proto::TransferReason::Failover)
                    .map(|t| t.group.index())
                    .collect(),
                switch_groups: (0..world.trace.topology.num_switches)
                    .map(|s| plane.group_of_switch(lazyctrl_net::SwitchId::new(s as u32)))
                    .collect(),
                transfer_retransmits: (0..n as u32)
                    .map(|i| plane.transfer_retransmits(i))
                    .collect(),
                lookup_timeouts: (0..n as u32).map(|i| plane.lookup_timeouts(i)).collect(),
                lease_step_downs: (0..n as u32).map(|i| plane.lease_step_downs(i)).collect(),
                setups_shed: (0..n as u32).map(|i| plane.setups_shed(i)).collect(),
                queue_highwater: (0..n as u32).map(|i| plane.queue_highwater(i)).collect(),
                congestion_signals: (0..n as u32).map(|i| plane.congestion_signals(i)).collect(),
                double_leader_events: plane.double_leader_events(),
                state_fingerprint: plane.state_fingerprint(),
                fingerprint_checkpoints: world.cluster_fingerprints.clone(),
            }
        });

        let _ = bucket_hours;
        let report = ExperimentReport {
            mode: mode.label().to_owned(),
            trace: trace_name,
            workload_rps,
            latency_ms,
            updates_per_hour,
            controller_messages: world.metrics.counter("controller_messages"),
            packet_ins: world.metrics.counter("packet_ins"),
            flows_started: world.metrics.counter("flows_started"),
            delivered_flows: world.metrics.counter("delivered_flows"),
            events_processed,
            mean_latency_ms,
            p99_latency_ms,
            p999_latency_ms,
            final_winter,
            max_gfib_bytes,
            num_groups,
            down_switches,
            cluster,
        };
        let obs = world.obs.take().map(|o| {
            let o = *o;
            ObsSnapshot {
                config: world.cfg.obs.clone(),
                stats: o.recorder.stats(),
                recorder: o.recorder,
                profile: o.profile,
            }
        });
        let report_s = t_report.elapsed().as_secs_f64();
        DetailedRun {
            report,
            flow_latencies: std::mem::take(&mut world.flow_latencies),
            counters: world
                .metrics
                .counters()
                .map(|(k, v)| (k.to_owned(), v))
                .collect(),
            phases: PhaseTimings {
                build_s,
                run_s,
                report_s,
            },
            obs,
        }
    }
}

/// The observability state carried out of a finished run (present only
/// when the config's [`ObsConfig`] was enabled).
#[derive(Debug, Clone)]
pub struct ObsSnapshot {
    /// The observability config the run used.
    pub config: ObsConfig,
    /// Flight-recorder occupancy statistics.
    pub stats: RecorderStats,
    /// The flight recorder itself (retained tail of the trace).
    pub recorder: FlightRecorder,
    /// The sampling dispatch profiler.
    pub profile: EngineProfile,
}

/// A report plus the raw per-flow latency log.
#[derive(Debug, Clone)]
pub struct DetailedRun {
    /// The aggregate report.
    pub report: ExperimentReport,
    /// `((src host, dst host, emit ns), latency ms)` per delivered flow.
    pub flow_latencies: Vec<((u32, u32, u64), f64)>,
    /// All metric counters at end of run, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Wall-clock build/run/report phase timings for this run.
    pub phases: PhaseTimings,
    /// Flight recorder + profiler state, when observability was enabled.
    pub obs: Option<ObsSnapshot>,
}

/// The virtual-time end of a run: the configured horizon, or the trace's
/// duration plus an hour of drain time.
fn run_horizon(trace: &Trace, cfg: &ExperimentConfig) -> SimTime {
    cfg.horizon_hours
        .map(SimTime::from_hours)
        .unwrap_or(SimTime::from_nanos(trace.duration_ns) + SimDuration::from_secs(3600))
}

/// Builds a scheduler over a queue (free function to satisfy borrowck in
/// the bootstrap prologue).
fn scheduler_for<E>(queue: &mut EventQueue<E>) -> lazyctrl_sim::Scheduler<'_, E> {
    lazyctrl_sim::Scheduler::over(queue)
}
