//! End-to-end LazyCtrl experiments: the simulated data center that wires
//! edge switches, a controller, latency-modelled links and a traffic trace
//! into one deterministic discrete-event run.
//!
//! This crate is the equivalent of the paper's prototype testbed (§V-A):
//! where the authors replayed their trace across 272 virtual Open vSwitch
//! instances and a Floodlight controller, [`Experiment`] replays a
//! [`Trace`](lazyctrl_trace::Trace) through [`EdgeSwitch`] state machines
//! and a [`BaselineController`]/[`LazyController`], measuring exactly what
//! the paper measures:
//!
//! * controller workload over time (Fig. 7),
//! * grouping update frequency (Fig. 8),
//! * steady-state forwarding latency (Fig. 9),
//! * cold-cache latency (§V-E) via [`scenarios::cold_cache`],
//! * G-FIB storage (§V-D).
//!
//! Fault injection is first-class: an [`EventPlan`] on the
//! [`ExperimentConfig`] schedules controller/switch crashes, link
//! degradation, host migrations and traffic bursts through the ordinary
//! event queue, and the [`Scenario`] trait plus [`ScenarioRegistry`] make
//! canned workloads (crash-under-load, migration storms, brownouts, ...)
//! discoverable by name — see the [`scenarios`] module and the
//! `repro_scenario` binary.
//!
//! # Example
//!
//! ```
//! use lazyctrl_core::{ControlMode, Experiment, ExperimentConfig};
//! use lazyctrl_trace::realistic::{generate, RealTraceConfig};
//!
//! let mut cfg = RealTraceConfig::small();
//! cfg.num_flows = 2_000; // keep the doctest fast
//! let trace = generate(&cfg);
//! let report = Experiment::new(
//!     trace,
//!     ExperimentConfig::new(ControlMode::LazyDynamic).with_group_size_limit(10),
//! )
//! .run();
//! assert!(report.delivered_flows > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod experiment;
mod report;
pub mod scenarios;
mod shard;
pub mod telemetry;
mod world;

pub use config::{ControlMode, ExperimentConfig};
pub use experiment::{DetailedRun, Experiment, ObsSnapshot};
pub use report::{ClusterReport, ExperimentReport, SeriesPoint};
pub use scenarios::{
    run_built, run_built_detailed, run_scenario, Scenario, ScenarioRegistry, ScenarioRun,
    ScenarioScale, ScenarioVerdict,
};
pub use world::{EVENT_KIND_NAMES, EVENT_KIND_SUBSYS};

pub use lazyctrl_cluster::DisseminationStrategy;
pub use lazyctrl_controller::{BaselineController, LazyController};
pub use lazyctrl_obs::ObsConfig;
pub use lazyctrl_proto::{EventPlan, InjectedEvent, ScheduledEvent};
pub use lazyctrl_sim::{BandwidthModel, ChannelClass, SchedulerKind};
pub use lazyctrl_switch::EdgeSwitch;
