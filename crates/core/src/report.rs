//! Experiment results in the shapes the paper plots.

use serde::{Deserialize, Serialize};

/// One point of a time series: (hour-of-trace, value).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SeriesPoint {
    /// Start of the bucket, in hours since trace start.
    pub hour: f64,
    /// The bucket's value (rps, ms, updates, ...).
    pub value: f64,
}

/// Everything one run measured.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentReport {
    /// Label of the control mode ("openflow", "lazyctrl-static", ...).
    pub mode: String,
    /// Trace name.
    pub trace: String,
    /// Controller workload per bucket, requests/sec (Fig. 7's y-axis).
    pub workload_rps: Vec<SeriesPoint>,
    /// Mean first-packet forwarding latency per bucket, ms (Fig. 9).
    pub latency_ms: Vec<SeriesPoint>,
    /// Grouping updates per hour (Fig. 8).
    pub updates_per_hour: Vec<SeriesPoint>,
    /// Total messages the controller processed.
    pub controller_messages: u64,
    /// Total `PacketIn`s among them.
    pub packet_ins: u64,
    /// Flow arrivals driven.
    pub flows_started: u64,
    /// First packets confirmed delivered.
    pub delivered_flows: u64,
    /// Simulation events processed (scheduler pops) over the run — the
    /// numerator of `repro_perf`'s events/sec. Identical across scheduler
    /// backends and SGI parallelism settings for a given seed.
    pub events_processed: u64,
    /// Overall mean first-packet latency (ms).
    pub mean_latency_ms: f64,
    /// 99th-percentile first-packet latency (ms), from the log2 latency
    /// histogram (upper bucket edge — a conservative estimate).
    pub p99_latency_ms: f64,
    /// 99.9th-percentile first-packet latency (ms) — the tail the
    /// congestion scenarios bound.
    pub p999_latency_ms: f64,
    /// Final normalized inter-group intensity (lazy modes).
    pub final_winter: Option<f64>,
    /// Largest per-switch G-FIB footprint at end of run (bytes).
    pub max_gfib_bytes: u64,
    /// Number of local control groups at end of run (lazy modes).
    pub num_groups: Option<usize>,
    /// Switches the (single) lazy controller believes down at end of run
    /// (Table-I inference; empty for baseline and cluster runs).
    pub down_switches: Vec<u32>,
    /// Cluster-layer measurements (cluster runs only).
    pub cluster: Option<ClusterReport>,
}

/// What the `lazyctrl-cluster` layer measured during a run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterReport {
    /// Number of controllers in the cluster.
    pub controllers: usize,
    /// The peer-sync dissemination strategy in force ("flood", "ring",
    /// "tree").
    pub dissemination: String,
    /// Switch-originated requests handled per controller.
    pub requests_per_controller: Vec<u64>,
    /// Per-controller request rate over the measured horizon (req/sec).
    pub per_controller_rps: Vec<f64>,
    /// C-LIB shard size per controller at end of run.
    pub clib_sizes: Vec<usize>,
    /// Replica-store size per controller at end of run.
    pub replica_sizes: Vec<usize>,
    /// Ownership transfers for load rebalancing.
    pub rebalance_transfers: u64,
    /// Ownership transfers for failover takeover.
    pub failover_transfers: u64,
    /// Takeovers executed: `(dead controller, groups moved)`.
    pub takeovers: Vec<(u32, usize)>,
    /// Controllers believed dead at end of run.
    pub confirmed_dead: Vec<u32>,
    /// Controller-to-controller messages exchanged.
    pub ctrl_peer_messages: u64,
    /// Peer-sync wire messages sent per controller (direct syncs + relay
    /// bundles; the dissemination cost the strategy choice controls).
    pub peer_sync_messages: Vec<u64>,
    /// Estimated peer-sync wire bytes sent per controller.
    pub peer_sync_bytes: Vec<u64>,
    /// Delta chunks originated per controller (the dissemination
    /// workload; messages ÷ chunks is the per-delta fan-out cost).
    pub peer_sync_chunks: Vec<u64>,
    /// Anti-entropy digests sent per controller.
    pub anti_entropy_digests: Vec<u64>,
    /// Catch-up syncs served to digesting peers, per controller.
    pub anti_entropy_catchups: Vec<u64>,
    /// Groups moved by failover takeovers, in transfer order (the dead
    /// member's former shard).
    pub failover_groups: Vec<usize>,
    /// Final switch → group mapping (frozen at bootstrap in cluster runs).
    pub switch_groups: Vec<Option<usize>>,
    /// Ownership-transfer retransmissions per controller (unacked
    /// announcements re-sent under the capped backoff; nonzero means the
    /// first announcement was lost to a crash window or partition).
    pub transfer_retransmits: Vec<u64>,
    /// Expired synchronous-lookup deadlines per controller (each expiry
    /// either retried against the next replica or fell back to the
    /// scoped-ARP relay path).
    pub lookup_timeouts: Vec<u64>,
    /// Lease step-downs per controller: times a leader lost heartbeat
    /// contact with a voting majority and demoted itself to read-only
    /// (the split-brain guard firing).
    pub lease_step_downs: Vec<u64>,
    /// Flow-setup requests (`PacketIn`s) shed per controller by the
    /// bounded ingress queue. Zero whenever the queue is unbounded or the
    /// offered load stays under the drain rate.
    pub setups_shed: Vec<u64>,
    /// High-water mark of each controller's ingress queue, in admission
    /// slots (peak `queued_ns / cost_ns`).
    pub queue_highwater: Vec<u64>,
    /// ECN-style `CongestionNotice` messages sent per controller (rate
    /// limited, so this counts notice intervals under pressure, not sheds).
    pub congestion_signals: Vec<u64>,
    /// Times two distinct members led the same election term (cross-member
    /// ground truth from the plane's safety monitor). Must be zero; the
    /// partition scenarios fail on any other value.
    pub double_leader_events: u64,
    /// Canonical fingerprint of the plane's protocol state at end of run
    /// (see `ClusterControlPlane::state_fingerprint`): one number that
    /// must agree bit-for-bit between deterministic replays.
    pub state_fingerprint: u64,
    /// Fingerprints captured at each injected controller crash/recovery,
    /// in schedule order — determinism tests compare these to localize a
    /// divergence to the first differing checkpoint.
    pub fingerprint_checkpoints: Vec<u64>,
}

impl ClusterReport {
    /// Highest per-controller request rate — the quantity that must drop
    /// as controllers are added for the cluster to be *scaling*.
    pub fn max_controller_rps(&self) -> f64 {
        self.per_controller_rps.iter().copied().fold(0.0, f64::max)
    }

    /// Total peer-sync wire messages across the cluster.
    pub fn peer_sync_messages_total(&self) -> u64 {
        self.peer_sync_messages.iter().sum()
    }

    /// Total peer-sync wire bytes across the cluster.
    pub fn peer_sync_bytes_total(&self) -> u64 {
        self.peer_sync_bytes.iter().sum()
    }

    /// Total flow-setup requests shed across the cluster.
    pub fn setups_shed_total(&self) -> u64 {
        self.setups_shed.iter().sum()
    }

    /// Total congestion notices sent across the cluster.
    pub fn congestion_signals_total(&self) -> u64 {
        self.congestion_signals.iter().sum()
    }

    /// Peer-sync wire messages per originated delta chunk — the
    /// dissemination fan-out cost. Flood pays ≈ n−1 here (every chunk
    /// goes to every peer: O(n²) traffic per flush round); ring and tree
    /// bundle relays, amortizing towards O(1) per chunk (O(n) per round).
    pub fn messages_per_chunk(&self) -> f64 {
        let chunks: u64 = self.peer_sync_chunks.iter().sum();
        if chunks == 0 {
            return 0.0;
        }
        self.peer_sync_messages_total() as f64 / chunks as f64
    }
}

impl ExperimentReport {
    /// Mean controller workload over the run (requests/sec).
    pub fn mean_workload_rps(&self) -> f64 {
        if self.workload_rps.is_empty() {
            return 0.0;
        }
        self.workload_rps.iter().map(|p| p.value).sum::<f64>() / self.workload_rps.len() as f64
    }

    /// Workload reduction of `self` relative to `baseline`, in `[0, 1]`
    /// (the paper's headline 61–82%).
    pub fn workload_reduction_vs(&self, baseline: &ExperimentReport) -> f64 {
        let base = baseline.mean_workload_rps();
        if base == 0.0 {
            return 0.0;
        }
        1.0 - self.mean_workload_rps() / base
    }

    /// Renders a compact text table of the workload series (one row per
    /// bucket), for the repro binaries.
    pub fn workload_table(&self) -> String {
        let mut out = String::from("hour_bucket  workload_rps\n");
        for p in &self.workload_rps {
            out.push_str(&format!("{:>6.1}       {:>10.2}\n", p.hour, p.value));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(vals: &[f64]) -> ExperimentReport {
        ExperimentReport {
            mode: "test".into(),
            trace: "t".into(),
            workload_rps: vals
                .iter()
                .enumerate()
                .map(|(i, &v)| SeriesPoint {
                    hour: i as f64 * 2.0,
                    value: v,
                })
                .collect(),
            latency_ms: vec![],
            updates_per_hour: vec![],
            controller_messages: 0,
            packet_ins: 0,
            flows_started: 0,
            delivered_flows: 0,
            events_processed: 0,
            mean_latency_ms: 0.0,
            p99_latency_ms: 0.0,
            p999_latency_ms: 0.0,
            final_winter: None,
            max_gfib_bytes: 0,
            num_groups: None,
            down_switches: vec![],
            cluster: None,
        }
    }

    #[test]
    fn mean_and_reduction() {
        let base = report(&[100.0, 200.0]);
        let lazy = report(&[30.0, 30.0]);
        assert_eq!(base.mean_workload_rps(), 150.0);
        assert!((lazy.workload_reduction_vs(&base) - 0.8).abs() < 1e-12);
        assert_eq!(report(&[]).mean_workload_rps(), 0.0);
    }

    #[test]
    fn table_renders() {
        let t = report(&[5.0]).workload_table();
        assert!(t.contains("workload_rps"));
        assert!(t.contains("5.00"));
    }
}
