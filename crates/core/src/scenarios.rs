//! Canned micro-scenarios from the paper's evaluation.

use lazyctrl_net::{HostId, SwitchId, TenantId};
use lazyctrl_trace::{FlowRecord, NominalParams, Topology, Trace};
use serde::{Deserialize, Serialize};

use crate::{ControlMode, Experiment, ExperimentConfig};

/// Results of the §V-E cold-cache experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColdCacheReport {
    /// Mean first-packet latency for intra-group flows (ms). Paper: 0.83 ms
    /// (LazyCtrl) vs 15.06 ms (OpenFlow).
    pub intra_group_ms: f64,
    /// Mean first-packet latency for inter-group flows (ms). Paper:
    /// 5.38 ms (LazyCtrl).
    pub inter_group_ms: f64,
    /// Flows measured.
    pub flows: u64,
}

/// Builds the §V-E cold-cache micro-topology: two groups of switches with
/// freshly deployed hosts, 45 fresh flows among 5 new hosts plus an
/// inter-group tail.
///
/// `mode` selects the control plane; the same trace runs under both so the
/// comparison is like-for-like.
pub fn cold_cache(mode: ControlMode, seed: u64) -> ColdCacheReport {
    // Topology: 6 switches; hosts 0..5 on switches 0..2 (group A by
    // traffic), hosts 5..10 on switches 3..5 (group B).
    let num_switches = 6;
    let hosts_per_switch = 2;
    let num_hosts = num_switches * hosts_per_switch;
    let host_switch: Vec<SwitchId> = (0..num_hosts)
        .map(|h| SwitchId::new((h / hosts_per_switch) as u32))
        .collect();
    let host_tenant: Vec<TenantId> = (0..num_hosts)
        .map(|h| TenantId::new(if h < num_hosts / 2 { 1 } else { 2 }))
        .collect();
    let topology = Topology {
        num_switches,
        host_switch,
        host_tenant,
    };

    // Bootstrap window traffic (hour 0): establishes the two groups.
    let mut flows = Vec::new();
    let mut t = 60_000_000_000u64; // start at 1 min
    for round in 0..40u32 {
        for (a, b) in [(0u32, 2u32), (1, 3), (2, 4), (7, 9), (6, 8), (9, 11)] {
            flows.push(FlowRecord {
                time_ns: t,
                src: HostId::new(a),
                dst: HostId::new(b),
                bytes: 200,
            });
            t += 7_000_000_000 + (round as u64 % 3) * 1_000_000_000;
        }
    }
    // Cold-cache phase (after bootstrap + grouping): 45 fresh intra-group
    // flows among "newly deployed" host pairs that never communicated...
    let cold_start = 3_700_000_000_000u64; // just past hour 1
    let mut t = cold_start;
    let mut intra_pairs = Vec::new();
    for a in 0..5u32 {
        for b in 0..5u32 {
            if a < b {
                intra_pairs.push((a, b));
            }
        }
    }
    // ...plus fresh inter-group flows for the 5.38 ms number.
    let mut inter_pairs = Vec::new();
    for a in 0..5u32 {
        inter_pairs.push((a, 6 + a));
    }
    for &(a, b) in intra_pairs.iter().chain(&inter_pairs) {
        flows.push(FlowRecord {
            time_ns: t,
            src: HostId::new(a),
            dst: HostId::new(b),
            bytes: 100,
        });
        t += 2_000_000_000;
    }
    flows.sort_by_key(|f| f.time_ns);

    let trace = Trace {
        name: "cold-cache".into(),
        topology,
        flows,
        duration_ns: t + 10_000_000_000,
        nominal: NominalParams::default(),
    };

    let mut cfg = ExperimentConfig::new(mode)
        .with_group_size_limit(3)
        .with_seed(seed);
    cfg.emit_arp = true;
    cfg.record_flow_latencies = true;
    cfg.bucket_hours = 0.25;
    cfg.sync_interval_ms = 5_000;
    cfg.keepalive_interval_ms = 10_000;

    let intra_set: std::collections::HashSet<(u32, u32)> = intra_pairs.into_iter().collect();
    let inter_set: std::collections::HashSet<(u32, u32)> = inter_pairs.into_iter().collect();

    let run = Experiment::new(trace, cfg).run_detailed();
    let mut intra = Vec::new();
    let mut inter = Vec::new();
    for ((src, dst, at_ns), ms) in &run.flow_latencies {
        if *at_ns < cold_start {
            continue;
        }
        let key = (*src, *dst);
        if intra_set.contains(&key) {
            intra.push(*ms);
        } else if inter_set.contains(&key) {
            inter.push(*ms);
        }
    }
    let mean = |v: &[f64]| {
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    };
    ColdCacheReport {
        intra_group_ms: mean(&intra),
        inter_group_ms: mean(&inter),
        flows: (intra.len() + inter.len()) as u64,
    }
}

// ---------------------------------------------------------------------
// Cluster scenarios (the lazyctrl-cluster layer)
// ---------------------------------------------------------------------

/// Builds the cluster testbed: `clusters` switch-clusters of 3 switches ×
/// 2 hosts, an hour-0 bootstrap window with strong intra-cluster affinity
/// (so SGI finds one group per cluster), then steady mixed traffic with a
/// continuous supply of *fresh* pairs (fresh pairs punt to the
/// controller, which is the load the cluster shards).
fn cluster_testbed(clusters: usize, hours: f64) -> Trace {
    let switches_per_cluster = 3;
    let hosts_per_switch = 2;
    let num_switches = clusters * switches_per_cluster;
    let num_hosts = num_switches * hosts_per_switch;
    let host_switch: Vec<SwitchId> = (0..num_hosts)
        .map(|h| SwitchId::new((h / hosts_per_switch) as u32))
        .collect();
    let host_tenant: Vec<TenantId> = (0..num_hosts)
        .map(|h| TenantId::new(1 + (h / (hosts_per_switch * switches_per_cluster)) as u16 % 8))
        .collect();
    let topology = Topology {
        num_switches,
        host_switch,
        host_tenant,
    };
    let hosts_per_cluster = (hosts_per_switch * switches_per_cluster) as u32;

    let mut flows = Vec::new();
    // Hour 0: intra-cluster affinity for the bootstrap grouping.
    let mut t = 30_000_000_000u64;
    for round in 0..40u64 {
        for c in 0..clusters as u32 {
            let base = c * hosts_per_cluster;
            for i in 0..hosts_per_cluster {
                let a = base + i;
                let b = base + (i + 1 + (round as u32 % 3)) % hosts_per_cluster;
                if a == b {
                    continue;
                }
                flows.push(FlowRecord {
                    time_ns: t,
                    src: HostId::new(a),
                    dst: HostId::new(b),
                    bytes: 200,
                });
                t += 200_000_000;
            }
        }
    }
    // Steady phase: a deterministic mix of intra- and inter-cluster flows.
    // Pair indices advance every round, so fresh pairs (and hence
    // controller work) keep arriving for the whole run.
    let steady_start = 3_600_000_000_000u64;
    let end_ns = (hours * 3.6e12) as u64;
    let mut t = steady_start;
    let mut round = 0u64;
    while t < end_ns {
        for c in 0..clusters as u64 {
            let base = (c as u32) * hosts_per_cluster;
            let peer_cluster = ((c + 1 + round / 7) % clusters as u64) as u32;
            let peer_base = peer_cluster * hosts_per_cluster;
            let a = base + ((round * 3 + c) % hosts_per_cluster as u64) as u32;
            let intra_b = base + ((round * 5 + c + 1) % hosts_per_cluster as u64) as u32;
            let inter_b = peer_base + ((round * 7 + c + 2) % hosts_per_cluster as u64) as u32;
            if a != intra_b {
                flows.push(FlowRecord {
                    time_ns: t,
                    src: HostId::new(a),
                    dst: HostId::new(intra_b),
                    bytes: 150,
                });
            }
            t += 100_000_000;
            if peer_cluster != base / hosts_per_cluster {
                flows.push(FlowRecord {
                    time_ns: t,
                    src: HostId::new(a),
                    dst: HostId::new(inter_b),
                    bytes: 150,
                });
            }
            t += 100_000_000;
        }
        round += 1;
    }
    // The last round may overshoot the horizon; keep the invariant
    // `time_ns <= duration_ns`.
    flows.retain(|f| f.time_ns <= end_ns);
    flows.sort_by_key(|f| f.time_ns);
    Trace {
        name: format!("cluster-testbed-{clusters}x{switches_per_cluster}"),
        topology,
        flows,
        duration_ns: end_ns,
        nominal: NominalParams::default(),
    }
}

fn cluster_config(controllers: usize, seed: u64, hours: f64) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::new(ControlMode::LazyStatic)
        .with_group_size_limit(3)
        .with_seed(seed)
        .with_cluster(controllers)
        .with_horizon_hours(hours);
    cfg.record_flow_latencies = true;
    cfg.responses = false;
    cfg.bucket_hours = 0.25;
    cfg.sync_interval_ms = 5_000;
    cfg.keepalive_interval_ms = 10_000;
    cfg
}

/// Results of the controller-crash-under-load scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterCrashReport {
    /// The full run report (cluster section populated).
    pub report: crate::ExperimentReport,
    /// Delivered flows that ingressed at the failed shard, emitted before
    /// the crash.
    pub affected_before: u64,
    /// ... emitted during the outage window (crash → takeover settled).
    pub affected_during_outage: u64,
    /// ... emitted after takeover settled. Must be positive for the
    /// scenario to count as recovered.
    pub affected_after_takeover: u64,
    /// Delivered flows ingressing at *surviving* shards during the outage
    /// window (devolved + sharded control keeps these flowing).
    pub survivor_during_outage: u64,
}

/// Crash-under-load: a cluster of `controllers` runs the testbed, one
/// non-leader member is killed mid-run, the leader's Table-I detector
/// declares it dead, and its groups fail over to the survivors (C-LIBs
/// seeded from the replicas). Reachability of the failed shard's traffic
/// must return after takeover.
pub fn controller_crash(controllers: usize, seed: u64) -> ClusterCrashReport {
    assert!(
        controllers >= 2,
        "crash scenario needs at least two controllers"
    );
    let hours = 2.0;
    let crash_at = 1.4;
    // Detection worst case: miss_factor (3) × heartbeat (1 s) + one more
    // heartbeat tick + takeover propagation. 30 s is a generous settle.
    let settled_at = crash_at + 30.0 / 3600.0;
    let trace = cluster_testbed(4, hours);
    let mut cfg = cluster_config(controllers, seed, hours);
    let victim = (controllers - 1) as u32; // never the initial leader
    cfg.crash_controller_at = Some((victim, crash_at));

    let topology = trace.topology.clone();
    let run = Experiment::new(trace, cfg).run_detailed();
    let cluster = run
        .report
        .cluster
        .clone()
        .expect("cluster run must produce a cluster report");

    // The failed shard = groups moved by failover takeover.
    let failed_groups: std::collections::HashSet<usize> =
        cluster.failover_groups.iter().copied().collect();
    let crash_ns = (crash_at * 3.6e12) as u64;
    let settled_ns = (settled_at * 3.6e12) as u64;
    let (mut before, mut outage, mut after, mut survivor_outage) = (0u64, 0u64, 0u64, 0u64);
    for ((src, _dst, emit_ns), _ms) in &run.flow_latencies {
        let ingress = topology.switch_of(HostId::new(*src));
        let group = cluster
            .switch_groups
            .get(ingress.index())
            .copied()
            .flatten();
        let affected = group.map(|g| failed_groups.contains(&g)).unwrap_or(false);
        if affected {
            if *emit_ns < crash_ns {
                before += 1;
            } else if *emit_ns < settled_ns {
                outage += 1;
            } else {
                after += 1;
            }
        } else if (crash_ns..settled_ns).contains(emit_ns) {
            survivor_outage += 1;
        }
    }
    ClusterCrashReport {
        report: run.report,
        affected_before: before,
        affected_during_outage: outage,
        affected_after_takeover: after,
        survivor_during_outage: survivor_outage,
    }
}

/// Results of the shard-rebalance-under-churn scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterRebalanceReport {
    /// The full run report (cluster section populated).
    pub report: crate::ExperimentReport,
    /// Requests handled per controller.
    pub requests_per_controller: Vec<u64>,
    /// Rebalancing transfers executed.
    pub rebalance_transfers: u64,
}

/// Shard-rebalance-under-churn: all steady-state traffic ingresses at the
/// shard of one controller; the leader's skew check must move group
/// ownership until the load spreads.
pub fn shard_rebalance(seed: u64) -> ClusterRebalanceReport {
    let hours = 1.5;
    let clusters = 4;
    let trace = skewed_testbed(clusters, hours);
    let cfg = cluster_config(2, seed, hours);
    let run = Experiment::new(trace, cfg).run_detailed();
    let cluster = run
        .report
        .cluster
        .clone()
        .expect("cluster run must produce a cluster report");
    ClusterRebalanceReport {
        requests_per_controller: cluster.requests_per_controller.clone(),
        rebalance_transfers: cluster.rebalance_transfers,
        report: run.report,
    }
}

/// Like [`cluster_testbed`], but every steady-phase flow *ingresses* in
/// the first half of the switch-clusters — with round-robin group
/// ownership this concentrates the whole control load on a subset of
/// members, the churn the rebalancer must fix.
fn skewed_testbed(clusters: usize, hours: f64) -> Trace {
    let mut trace = cluster_testbed(clusters, hours);
    let hosts_per_cluster = 6u32;
    let half = (clusters as u32 / 2).max(1) * hosts_per_cluster;
    let steady_start = 3_600_000_000_000u64;
    for f in &mut trace.flows {
        if f.time_ns >= steady_start {
            // Fold every source into the first half of the clusters,
            // keeping the destination (and hence inter-shard pressure).
            f.src = HostId::new(f.src.0 % half);
        }
    }
    trace.flows.retain(|f| f.src != f.dst);
    trace.name = format!("cluster-skewed-{clusters}");
    trace
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lazyctrl_beats_openflow_on_cold_cache() {
        let lazy = cold_cache(ControlMode::LazyStatic, 1);
        let base = cold_cache(ControlMode::Baseline, 1);
        assert!(lazy.flows > 0 && base.flows > 0);
        // The paper's headline gap: intra-group cold-cache latency is an
        // order of magnitude below the baseline (0.83 ms vs 15.06 ms).
        assert!(
            lazy.intra_group_ms < base.intra_group_ms / 3.0,
            "intra-group: lazy {} vs baseline {}",
            lazy.intra_group_ms,
            base.intra_group_ms
        );
        // Intra-group resolution never touches the controller, so it is
        // also far below LazyCtrl's own inter-group path (0.83 vs 5.38).
        assert!(
            lazy.intra_group_ms < lazy.inter_group_ms / 2.0,
            "locality dividend missing: intra {} vs inter {}",
            lazy.intra_group_ms,
            lazy.inter_group_ms
        );
        // Inter-group flows pay one controller round trip in both designs;
        // LazyCtrl must not be meaningfully slower than the baseline there.
        // (The paper's 5.38-vs-15.06 gap additionally reflects Floodlight's
        // slow passive topology learning, which our leaner baseline does
        // not model — see EXPERIMENTS.md.)
        assert!(
            lazy.inter_group_ms <= base.inter_group_ms * 2.0,
            "inter-group: lazy {} vs baseline {}",
            lazy.inter_group_ms,
            base.inter_group_ms
        );
    }
}
