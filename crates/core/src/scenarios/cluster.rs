//! Cluster scenarios: the `lazyctrl-cluster` control plane under crash,
//! recovery, skewed-load churn and replication storms, plus the shared
//! cluster testbeds.

use lazyctrl_cluster::DisseminationStrategy;
use lazyctrl_net::{HostId, SwitchId, TenantId};
use lazyctrl_proto::EventPlan;
use lazyctrl_sim::SimTime;
use lazyctrl_trace::{FlowRecord, NominalParams, Topology, Trace};
use serde::{Deserialize, Serialize};

use super::{Scenario, ScenarioScale, ScenarioVerdict};
use crate::{ControlMode, Experiment, ExperimentConfig, ExperimentReport};

/// When the crash-under-load scenario kills its victim (hours).
const CRASH_AT_HOURS: f64 = 1.4;
/// Crash-under-load run length (hours).
const CRASH_RUN_HOURS: f64 = 2.0;

/// Builds the cluster testbed: `clusters` switch-clusters of 3 switches ×
/// 2 hosts, an hour-0 bootstrap window with strong intra-cluster affinity
/// (so SGI finds one group per cluster), then steady mixed traffic with a
/// continuous supply of *fresh* pairs (fresh pairs punt to the
/// controller, which is the load the cluster shards).
pub(super) fn cluster_testbed(clusters: usize, hours: f64) -> Trace {
    let switches_per_cluster = 3;
    let hosts_per_switch = 2;
    let num_switches = clusters * switches_per_cluster;
    let num_hosts = num_switches * hosts_per_switch;
    let host_switch: Vec<SwitchId> = (0..num_hosts)
        .map(|h| SwitchId::new((h / hosts_per_switch) as u32))
        .collect();
    let host_tenant: Vec<TenantId> = (0..num_hosts)
        .map(|h| TenantId::new(1 + (h / (hosts_per_switch * switches_per_cluster)) as u16 % 8))
        .collect();
    let topology = Topology {
        num_switches,
        host_switch,
        host_tenant,
    };
    let hosts_per_cluster = (hosts_per_switch * switches_per_cluster) as u32;

    let mut flows = Vec::new();
    // Hour 0: intra-cluster affinity for the bootstrap grouping.
    let mut t = 30_000_000_000u64;
    for round in 0..40u64 {
        for c in 0..clusters as u32 {
            let base = c * hosts_per_cluster;
            for i in 0..hosts_per_cluster {
                let a = base + i;
                let b = base + (i + 1 + (round as u32 % 3)) % hosts_per_cluster;
                if a == b {
                    continue;
                }
                flows.push(FlowRecord {
                    time_ns: t,
                    src: HostId::new(a),
                    dst: HostId::new(b),
                    bytes: 200,
                });
                t += 200_000_000;
            }
        }
    }
    // Steady phase: a deterministic mix of intra- and inter-cluster flows.
    // Pair indices advance every round, so fresh pairs (and hence
    // controller work) keep arriving for the whole run.
    let steady_start = SimTime::from_hours(1.0).as_nanos();
    let end_ns = SimTime::from_hours(hours).as_nanos();
    let mut t = steady_start;
    let mut round = 0u64;
    while t < end_ns {
        for c in 0..clusters as u64 {
            let base = (c as u32) * hosts_per_cluster;
            let peer_cluster = ((c + 1 + round / 7) % clusters as u64) as u32;
            let peer_base = peer_cluster * hosts_per_cluster;
            let a = base + ((round * 3 + c) % hosts_per_cluster as u64) as u32;
            let intra_b = base + ((round * 5 + c + 1) % hosts_per_cluster as u64) as u32;
            let inter_b = peer_base + ((round * 7 + c + 2) % hosts_per_cluster as u64) as u32;
            if a != intra_b {
                flows.push(FlowRecord {
                    time_ns: t,
                    src: HostId::new(a),
                    dst: HostId::new(intra_b),
                    bytes: 150,
                });
            }
            t += 100_000_000;
            if peer_cluster != base / hosts_per_cluster {
                flows.push(FlowRecord {
                    time_ns: t,
                    src: HostId::new(a),
                    dst: HostId::new(inter_b),
                    bytes: 150,
                });
            }
            t += 100_000_000;
        }
        round += 1;
    }
    // The last round may overshoot the horizon; keep the invariant
    // `time_ns <= duration_ns`.
    flows.retain(|f| f.time_ns <= end_ns);
    flows.sort_by_key(|f| f.time_ns);
    Trace {
        name: format!("cluster-testbed-{clusters}x{switches_per_cluster}"),
        topology,
        flows,
        duration_ns: end_ns,
        nominal: NominalParams::default(),
    }
}

/// The standard experiment config for cluster-testbed runs.
pub(super) fn cluster_config(controllers: usize, seed: u64, hours: f64) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::new(ControlMode::LazyStatic)
        .with_group_size_limit(3)
        .with_seed(seed)
        .with_cluster(controllers)
        .with_horizon_hours(hours);
    cfg.record_flow_latencies = true;
    cfg.responses = false;
    cfg.bucket_hours = 0.25;
    cfg.sync_interval_ms = 5_000;
    cfg.keepalive_interval_ms = 10_000;
    cfg
}

/// Like [`cluster_testbed`], but every steady-phase flow *ingresses* in
/// the first half of the switch-clusters — with round-robin group
/// ownership this concentrates the whole control load on a subset of
/// members, the churn the rebalancer must fix.
pub(super) fn skewed_testbed(clusters: usize, hours: f64) -> Trace {
    let mut trace = cluster_testbed(clusters, hours);
    let hosts_per_cluster = 6u32;
    let half = (clusters as u32 / 2).max(1) * hosts_per_cluster;
    let steady_start = SimTime::from_hours(1.0).as_nanos();
    for f in &mut trace.flows {
        if f.time_ns >= steady_start {
            // Fold every source into the first half of the clusters,
            // keeping the destination (and hence inter-shard pressure).
            f.src = HostId::new(f.src.0 % half);
        }
    }
    trace.flows.retain(|f| f.src != f.dst);
    trace.name = format!("cluster-skewed-{clusters}");
    trace
}

/// Like [`skewed_testbed`], but the fold is *asymmetric*: ¾ of the steady
/// ingress lands in cluster 0 and ¼ in cluster 1. Whatever group indices
/// SGI hands the clusters and however round-robin ownership splits them,
/// one controller ends up with more than the skew threshold's share —
/// so the rebalance trigger is independent of the grouping seed.
pub(super) fn asymmetric_skewed_testbed(clusters: usize, hours: f64) -> Trace {
    let mut trace = cluster_testbed(clusters, hours);
    let hosts_per_cluster = 6u32;
    let steady_start = SimTime::from_hours(1.0).as_nanos();
    for f in &mut trace.flows {
        if f.time_ns >= steady_start {
            let fold_cluster = u32::from(f.src.0 % 4 == 3);
            f.src = HostId::new(fold_cluster * hosts_per_cluster + f.src.0 % hosts_per_cluster);
        }
    }
    trace.flows.retain(|f| f.src != f.dst);
    trace.name = format!("cluster-skewed-asym-{clusters}");
    trace
}

/// Results of the controller-crash-under-load scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterCrashReport {
    /// The full run report (cluster section populated).
    pub report: crate::ExperimentReport,
    /// Delivered flows that ingressed at the failed shard, emitted before
    /// the crash.
    pub affected_before: u64,
    /// ... emitted during the outage window (crash → takeover settled).
    pub affected_during_outage: u64,
    /// ... emitted after takeover settled. Must be positive for the
    /// scenario to count as recovered.
    pub affected_after_takeover: u64,
    /// Delivered flows ingressing at *surviving* shards during the outage
    /// window (devolved + sharded control keeps these flowing).
    pub survivor_during_outage: u64,
}

/// Crash-under-load with the full per-shard reachability analysis: a
/// cluster of `controllers` runs the testbed, one non-leader member is
/// killed mid-run, the leader's Table-I detector declares it dead, and
/// its groups fail over to the survivors (C-LIBs seeded from the
/// replicas). Reachability of the failed shard's traffic must return
/// after takeover.
///
/// The registry entry [`CrashUnderLoad`] runs the same plan with
/// report-level checks; this function additionally splits delivered flows
/// by shard and crash phase, which needs the per-flow latency log.
pub fn controller_crash(controllers: usize, seed: u64) -> ClusterCrashReport {
    assert!(
        controllers >= 2,
        "crash scenario needs at least two controllers"
    );
    // Detection worst case: miss_factor (3) × heartbeat (1 s) + one more
    // heartbeat tick + takeover propagation. 30 s is a generous settle.
    let settled_at = CRASH_AT_HOURS + 30.0 / 3600.0;
    let trace = cluster_testbed(4, CRASH_RUN_HOURS);
    let victim = (controllers - 1) as u32; // never the initial leader
    let cfg = cluster_config(controllers, seed, CRASH_RUN_HOURS)
        .with_plan(EventPlan::new().crash_controller(CRASH_AT_HOURS, victim));

    let topology = trace.topology.clone();
    let run = Experiment::new(trace, cfg).run_detailed();
    let cluster = run
        .report
        .cluster
        .clone()
        .expect("cluster run must produce a cluster report");

    // The failed shard = groups moved by failover takeover.
    let failed_groups: std::collections::HashSet<usize> =
        cluster.failover_groups.iter().copied().collect();
    let crash_ns = SimTime::from_hours(CRASH_AT_HOURS).as_nanos();
    let settled_ns = SimTime::from_hours(settled_at).as_nanos();
    let (mut before, mut outage, mut after, mut survivor_outage) = (0u64, 0u64, 0u64, 0u64);
    for ((src, _dst, emit_ns), _ms) in &run.flow_latencies {
        let ingress = topology.switch_of(HostId::new(*src));
        let group = cluster
            .switch_groups
            .get(ingress.index())
            .copied()
            .flatten();
        let affected = group.map(|g| failed_groups.contains(&g)).unwrap_or(false);
        if affected {
            if *emit_ns < crash_ns {
                before += 1;
            } else if *emit_ns < settled_ns {
                outage += 1;
            } else {
                after += 1;
            }
        } else if (crash_ns..settled_ns).contains(emit_ns) {
            survivor_outage += 1;
        }
    }
    ClusterCrashReport {
        report: run.report,
        affected_before: before,
        affected_during_outage: outage,
        affected_after_takeover: after,
        survivor_during_outage: survivor_outage,
    }
}

/// Results of the shard-rebalance-under-churn scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterRebalanceReport {
    /// The full run report (cluster section populated).
    pub report: crate::ExperimentReport,
    /// Requests handled per controller.
    pub requests_per_controller: Vec<u64>,
    /// Rebalancing transfers executed.
    pub rebalance_transfers: u64,
}

/// Shard-rebalance-under-churn: all steady-state traffic ingresses at the
/// shard of one controller; the leader's skew check must move group
/// ownership until the load spreads.
pub fn shard_rebalance(seed: u64) -> ClusterRebalanceReport {
    let hours = 1.5;
    let clusters = 4;
    let trace = skewed_testbed(clusters, hours);
    let cfg = cluster_config(2, seed, hours);
    let run = Experiment::new(trace, cfg).run_detailed();
    let cluster = run
        .report
        .cluster
        .clone()
        .expect("cluster run must produce a cluster report");
    ClusterRebalanceReport {
        requests_per_controller: cluster.requests_per_controller.clone(),
        rebalance_transfers: cluster.rebalance_transfers,
        report: run.report,
    }
}

/// Controller-crash-under-load as a registry entry: kill a non-leader
/// member of a two-controller cluster mid-run; the Table-I ring detector
/// must declare it dead and fail its groups over to the survivor.
pub struct CrashUnderLoad;

impl Scenario for CrashUnderLoad {
    fn name(&self) -> &'static str {
        "crash_under_load"
    }

    fn summary(&self) -> &'static str {
        "kill a cluster member under steady load; detection + failover takeover must follow"
    }

    fn build(&self, seed: u64) -> (Trace, ExperimentConfig, EventPlan) {
        let trace = cluster_testbed(ScenarioScale::from_env().clusters(), CRASH_RUN_HOURS);
        let cfg = cluster_config(2, seed, CRASH_RUN_HOURS);
        let plan = EventPlan::new().crash_controller(CRASH_AT_HOURS, 1);
        (trace, cfg, plan)
    }

    fn check(&self, report: &ExperimentReport) -> ScenarioVerdict {
        let mut v = ScenarioVerdict::new();
        let Some(cluster) = report.cluster.as_ref() else {
            v.require(false, "cluster run must produce a cluster report");
            return v;
        };
        v.require(
            cluster.confirmed_dead == vec![1],
            format!(
                "victim must be declared dead, got {:?}",
                cluster.confirmed_dead
            ),
        );
        v.require(
            !cluster.takeovers.is_empty() && cluster.failover_transfers > 0,
            "takeover must have moved the dead member's groups",
        );
        v.require(report.delivered_flows > 0, "no traffic delivered");
        v.note(format!(
            "failover moved {} groups in {} transfers; {} flows delivered",
            cluster.failover_groups.len(),
            cluster.failover_transfers,
            report.delivered_flows
        ));
        v
    }
}

/// Crash + recovery: the victim restarts long after the takeover, so
/// detection, takeover and comeback all execute in one run.
pub struct CrashRecover;

impl Scenario for CrashRecover {
    fn name(&self) -> &'static str {
        "crash_recover"
    }

    fn summary(&self) -> &'static str {
        "crash a cluster member, then restart it; nobody may still believe it dead at end of run"
    }

    fn build(&self, seed: u64) -> (Trace, ExperimentConfig, EventPlan) {
        let hours = 1.6;
        let trace = cluster_testbed(ScenarioScale::from_env().clusters(), hours);
        let cfg = cluster_config(2, seed, hours);
        // Crash member 1 at 1.1 h; restart it at 1.4 h — long after the
        // takeover, so detection, takeover, and comeback all execute.
        let plan = EventPlan::new()
            .crash_controller(1.1, 1)
            .recover_controller(1.4, 1);
        (trace, cfg, plan)
    }

    fn check(&self, report: &ExperimentReport) -> ScenarioVerdict {
        let mut v = ScenarioVerdict::new();
        let Some(cluster) = report.cluster.as_ref() else {
            v.require(false, "cluster run must produce a cluster report");
            return v;
        };
        v.require(
            cluster.failover_transfers > 0,
            "crash must have triggered a takeover",
        );
        // The restarted member heartbeats again, so by end of run nobody
        // believes it dead (its groups stay with the takeover owner until
        // rebalancing hands them back).
        v.require(
            cluster.confirmed_dead.is_empty(),
            format!(
                "recovered member still believed dead: {:?}",
                cluster.confirmed_dead
            ),
        );
        v.require(report.delivered_flows > 0, "no traffic delivered");
        v.note(format!(
            "takeover transfers: {}, rebalance transfers: {}",
            cluster.failover_transfers, cluster.rebalance_transfers
        ));
        v
    }
}

/// Peer-sync storm: heavy C-LIB churn (host-migration batches plus a
/// traffic burst) on a 4-controller cluster, replicated over a chosen
/// dissemination strategy. The scenario that exercises the relay overlay
/// (bundling, dedup, anti-entropy) under the workload it exists for, and
/// whose report carries the per-member peer-sync accounting the
/// O(n²)→O(n) comparison reads.
pub struct PeerSyncStorm {
    /// The dissemination strategy under test. The registry entry runs
    /// Ring (the overlay path); tests construct the other variants
    /// directly or override `ExperimentConfig::cluster_dissemination`.
    pub strategy: DisseminationStrategy,
}

impl Default for PeerSyncStorm {
    fn default() -> Self {
        PeerSyncStorm {
            strategy: DisseminationStrategy::Ring,
        }
    }
}

impl Scenario for PeerSyncStorm {
    fn name(&self) -> &'static str {
        "peer_sync_storm"
    }

    fn summary(&self) -> &'static str {
        "migration + burst churn floods the replication fabric; the overlay must converge at O(n) cost"
    }

    fn build(&self, seed: u64) -> (Trace, ExperimentConfig, EventPlan) {
        let hours = 1.5;
        let trace = cluster_testbed(ScenarioScale::from_env().clusters(), hours);
        let num_hosts = trace.topology.num_hosts() as u32;
        let cfg = cluster_config(4, seed, hours).with_dissemination(self.strategy);
        // Three migration waves (each wave withdraws and re-learns host
        // locations — exactly the deltas peer sync replicates) and one
        // synthetic burst of fresh pairs between them.
        let batch = (num_hosts / 4).max(2);
        let plan = EventPlan::new()
            .migrate_hosts(1.05, batch)
            .traffic_burst(1.15, 0.5)
            .migrate_hosts(1.25, batch)
            .migrate_hosts(1.35, batch);
        (trace, cfg, plan)
    }

    fn check(&self, report: &ExperimentReport) -> ScenarioVerdict {
        let mut v = ScenarioVerdict::new();
        let Some(cluster) = report.cluster.as_ref() else {
            v.require(false, "cluster run must produce a cluster report");
            return v;
        };
        v.require(
            cluster.dissemination == self.strategy.label(),
            format!(
                "report must carry the configured strategy, got {:?}",
                cluster.dissemination
            ),
        );
        v.require(report.delivered_flows > 0, "no traffic delivered");
        v.require(
            cluster.peer_sync_messages_total() > 0,
            "storm produced no peer-sync traffic at all",
        );
        v.require(
            cluster.replica_sizes.iter().all(|&s| s > 0),
            format!(
                "every member must hold replicated state after the storm: {:?}",
                cluster.replica_sizes
            ),
        );
        let n = cluster.controllers as f64;
        let cost = cluster.messages_per_chunk();
        // Flood pays n−1 messages per chunk; the overlays must amortize
        // strictly below that (the O(n) property, with slack for
        // anti-entropy catch-up traffic).
        if self.strategy != DisseminationStrategy::Flood {
            v.require(
                cost < n - 1.0,
                format!(
                    "overlay fan-out cost {cost:.2} should beat flood's {:.2}",
                    n - 1.0
                ),
            );
        }
        v.note(format!(
            "{}: {} msgs / {} chunks → {:.2} msgs per delta chunk ({} bytes total)",
            cluster.dissemination,
            cluster.peer_sync_messages_total(),
            cluster.peer_sync_chunks.iter().sum::<u64>(),
            cost,
            cluster.peer_sync_bytes_total(),
        ));
        v.note(format!(
            "anti-entropy: {} digests, {} catch-up syncs",
            cluster.anti_entropy_digests.iter().sum::<u64>(),
            cluster.anti_entropy_catchups.iter().sum::<u64>(),
        ));
        v
    }
}

/// Shard-rebalance-under-churn as a registry entry.
pub struct ShardRebalance;

impl Scenario for ShardRebalance {
    fn name(&self) -> &'static str {
        "shard_rebalance"
    }

    fn summary(&self) -> &'static str {
        "skew all ingress load onto one shard; the leader must move group ownership until it spreads"
    }

    fn build(&self, seed: u64) -> (Trace, ExperimentConfig, EventPlan) {
        let hours = 1.5;
        let trace = asymmetric_skewed_testbed(ScenarioScale::from_env().clusters(), hours);
        let cfg = cluster_config(2, seed, hours);
        (trace, cfg, EventPlan::new())
    }

    fn check(&self, report: &ExperimentReport) -> ScenarioVerdict {
        let mut v = ScenarioVerdict::new();
        let Some(cluster) = report.cluster.as_ref() else {
            v.require(false, "cluster run must produce a cluster report");
            return v;
        };
        v.require(
            cluster.rebalance_transfers > 0,
            format!(
                "skewed load must trigger at least one ownership move: {:?}",
                cluster.requests_per_controller
            ),
        );
        v.require(
            cluster.requests_per_controller.iter().all(|&c| c > 0),
            format!(
                "after rebalancing every member must carry load: {:?}",
                cluster.requests_per_controller
            ),
        );
        v.note(format!(
            "{} rebalance transfers, requests/controller {:?}",
            cluster.rebalance_transfers, cluster.requests_per_controller
        ));
        v
    }
}
