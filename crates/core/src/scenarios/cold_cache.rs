//! The §V-E cold-cache micro-scenario: first-packet latency for fresh
//! flows among newly deployed hosts.

use lazyctrl_net::{HostId, SwitchId, TenantId};
use lazyctrl_proto::EventPlan;
use lazyctrl_trace::{FlowRecord, NominalParams, Topology, Trace};
use serde::{Deserialize, Serialize};

use super::{Scenario, ScenarioVerdict};
use crate::{ControlMode, Experiment, ExperimentConfig, ExperimentReport};

/// Start of the cold-cache phase (just past the bootstrap hour).
const COLD_START_NS: u64 = 3_700_000_000_000;

/// Results of the §V-E cold-cache experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColdCacheReport {
    /// Mean first-packet latency for intra-group flows (ms). Paper: 0.83 ms
    /// (LazyCtrl) vs 15.06 ms (OpenFlow).
    pub intra_group_ms: f64,
    /// Mean first-packet latency for inter-group flows (ms). Paper:
    /// 5.38 ms (LazyCtrl).
    pub inter_group_ms: f64,
    /// Flows measured.
    pub flows: u64,
}

/// The cold-cache micro-topology and trace: two groups of switches with
/// freshly deployed hosts, 45 fresh intra-group flows among 5 new hosts
/// plus an inter-group tail. Returns the trace and the (intra, inter)
/// pair sets the cold phase measures.
#[allow(clippy::type_complexity)]
fn cold_cache_trace() -> (Trace, Vec<(u32, u32)>, Vec<(u32, u32)>) {
    // Topology: 6 switches; hosts 0..5 on switches 0..2 (group A by
    // traffic), hosts 5..10 on switches 3..5 (group B).
    let num_switches = 6;
    let hosts_per_switch = 2;
    let num_hosts = num_switches * hosts_per_switch;
    let host_switch: Vec<SwitchId> = (0..num_hosts)
        .map(|h| SwitchId::new((h / hosts_per_switch) as u32))
        .collect();
    let host_tenant: Vec<TenantId> = (0..num_hosts)
        .map(|h| TenantId::new(if h < num_hosts / 2 { 1 } else { 2 }))
        .collect();
    let topology = Topology {
        num_switches,
        host_switch,
        host_tenant,
    };

    // Bootstrap window traffic (hour 0): establishes the two groups.
    let mut flows = Vec::new();
    let mut t = 60_000_000_000u64; // start at 1 min
    for round in 0..40u32 {
        for (a, b) in [(0u32, 2u32), (1, 3), (2, 4), (7, 9), (6, 8), (9, 11)] {
            flows.push(FlowRecord {
                time_ns: t,
                src: HostId::new(a),
                dst: HostId::new(b),
                bytes: 200,
            });
            t += 7_000_000_000 + (round as u64 % 3) * 1_000_000_000;
        }
    }
    // Cold-cache phase (after bootstrap + grouping): 45 fresh intra-group
    // flows among "newly deployed" host pairs that never communicated...
    let mut t = COLD_START_NS;
    let mut intra_pairs = Vec::new();
    for a in 0..5u32 {
        for b in 0..5u32 {
            if a < b {
                intra_pairs.push((a, b));
            }
        }
    }
    // ...plus fresh inter-group flows for the 5.38 ms number.
    let mut inter_pairs = Vec::new();
    for a in 0..5u32 {
        inter_pairs.push((a, 6 + a));
    }
    for &(a, b) in intra_pairs.iter().chain(&inter_pairs) {
        flows.push(FlowRecord {
            time_ns: t,
            src: HostId::new(a),
            dst: HostId::new(b),
            bytes: 100,
        });
        t += 2_000_000_000;
    }
    flows.sort_by_key(|f| f.time_ns);

    let trace = Trace {
        name: "cold-cache".into(),
        topology,
        flows,
        duration_ns: t + 10_000_000_000,
        nominal: NominalParams::default(),
    };
    (trace, intra_pairs, inter_pairs)
}

fn cold_cache_config(mode: ControlMode, seed: u64) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::new(mode)
        .with_group_size_limit(3)
        .with_seed(seed);
    cfg.emit_arp = true;
    cfg.record_flow_latencies = true;
    cfg.bucket_hours = 0.25;
    cfg.sync_interval_ms = 5_000;
    cfg.keepalive_interval_ms = 10_000;
    cfg
}

/// Runs the §V-E cold-cache experiment and splits the cold-phase
/// latencies into intra-/inter-group means.
///
/// `mode` selects the control plane; the same trace runs under both so the
/// comparison is like-for-like.
pub fn cold_cache(mode: ControlMode, seed: u64) -> ColdCacheReport {
    let (trace, intra_pairs, inter_pairs) = cold_cache_trace();
    let cfg = cold_cache_config(mode, seed);

    let intra_set: std::collections::HashSet<(u32, u32)> = intra_pairs.into_iter().collect();
    let inter_set: std::collections::HashSet<(u32, u32)> = inter_pairs.into_iter().collect();

    let run = Experiment::new(trace, cfg).run_detailed();
    let mut intra = Vec::new();
    let mut inter = Vec::new();
    for ((src, dst, at_ns), ms) in &run.flow_latencies {
        if *at_ns < COLD_START_NS {
            continue;
        }
        let key = (*src, *dst);
        if intra_set.contains(&key) {
            intra.push(*ms);
        } else if inter_set.contains(&key) {
            inter.push(*ms);
        }
    }
    let mean = |v: &[f64]| {
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    };
    ColdCacheReport {
        intra_group_ms: mean(&intra),
        inter_group_ms: mean(&inter),
        flows: (intra.len() + inter.len()) as u64,
    }
}

/// The §V-E cold-cache scenario under LazyCtrl, as a registry entry.
pub struct ColdCache;

impl Scenario for ColdCache {
    fn name(&self) -> &'static str {
        "cold_cache"
    }

    fn summary(&self) -> &'static str {
        "§V-E: first-packet latency for fresh flows among newly deployed hosts"
    }

    fn build(&self, seed: u64) -> (Trace, ExperimentConfig, EventPlan) {
        let (trace, _, _) = cold_cache_trace();
        (
            trace,
            cold_cache_config(ControlMode::LazyStatic, seed),
            EventPlan::new(),
        )
    }

    fn check(&self, report: &ExperimentReport) -> ScenarioVerdict {
        let mut v = ScenarioVerdict::new();
        v.require(
            report.num_groups == Some(2),
            format!(
                "bootstrap grouping must find the two traffic clusters, got {:?}",
                report.num_groups
            ),
        );
        v.require(report.delivered_flows > 0, "no traffic delivered");
        v.require(
            report.delivered_flows * 10 >= report.flows_started * 9,
            format!(
                "≥90% of flows must deliver: {}/{}",
                report.delivered_flows, report.flows_started
            ),
        );
        v.require(
            report.mean_latency_ms < 10.0,
            format!(
                "lazy-mode mean latency must stay below 10 ms, got {:.3}",
                report.mean_latency_ms
            ),
        );
        v.note(format!(
            "mean first-packet latency {:.3} ms over {} delivered flows",
            report.mean_latency_ms, report.delivered_flows
        ));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lazyctrl_beats_openflow_on_cold_cache() {
        let lazy = cold_cache(ControlMode::LazyStatic, 1);
        let base = cold_cache(ControlMode::Baseline, 1);
        assert!(lazy.flows > 0 && base.flows > 0);
        // The paper's headline gap: intra-group cold-cache latency is an
        // order of magnitude below the baseline (0.83 ms vs 15.06 ms).
        assert!(
            lazy.intra_group_ms < base.intra_group_ms / 3.0,
            "intra-group: lazy {} vs baseline {}",
            lazy.intra_group_ms,
            base.intra_group_ms
        );
        // Intra-group resolution never touches the controller, so it is
        // also far below LazyCtrl's own inter-group path (0.83 vs 5.38).
        assert!(
            lazy.intra_group_ms < lazy.inter_group_ms / 2.0,
            "locality dividend missing: intra {} vs inter {}",
            lazy.intra_group_ms,
            lazy.inter_group_ms
        );
        // Inter-group flows pay one controller round trip in both designs;
        // LazyCtrl must not be meaningfully slower than the baseline there.
        // (The paper's 5.38-vs-15.06 gap additionally reflects Floodlight's
        // slow passive topology learning, which our leaner baseline does
        // not model — see EXPERIMENTS.md.)
        assert!(
            lazy.inter_group_ms <= base.inter_group_ms * 2.0,
            "inter-group: lazy {} vs baseline {}",
            lazy.inter_group_ms,
            base.inter_group_ms
        );
    }
}
