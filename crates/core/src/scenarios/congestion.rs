//! Control-plane overload scenarios: flow-setup storms against bounded
//! ingress queues, bandwidth-saturated controller uplinks, and elephant
//! replication transfers contending with interactive control traffic.
//!
//! These are the workloads the degradation ladder exists for: shed the
//! *right* class (flow setups first, never heartbeats or elections),
//! signal the sources (ECN-style [`CongestionNotice`]), and keep the
//! cluster's liveness machinery — detection, leases, elections —
//! untouched while the data-plane tail degrades gracefully.
//!
//! [`CongestionNotice`]: lazyctrl_proto::CongestionNoticeMsg

use lazyctrl_proto::EventPlan;
use lazyctrl_sim::{BandwidthModel, ChannelClass};
use lazyctrl_trace::Trace;

use super::cluster::{cluster_config, cluster_testbed};
use super::{Scenario, ScenarioScale, ScenarioVerdict};
use crate::{ExperimentConfig, ExperimentReport};

/// Run length shared by the congestion scenarios (hours).
const HOURS: f64 = 1.5;

/// When the overload window opens (hours) — after bootstrap grouping and
/// an hour of steady state, so pre-storm behaviour is the baseline.
const STORM_AT: f64 = 1.1;

/// Ingress-queue depth for the storm scenario, in admission slots.
const STORM_SLOTS: usize = 4;

/// Virtual per-message admission cost for the storm scenario (200 ms ⇒ a
/// member drains 5 requests/sec; the storm offers several times that).
const STORM_COST_NS: u64 = 200_000_000;

/// Tail bound every congestion verdict enforces (ms). Generous — pacing
/// backs off to at most ~320 ms windows and saturated links drain within
/// the burst window — but finite: an unbounded tail means the ladder
/// failed and flow setups sat in a queue forever.
const TAIL_BOUND_MS: f64 = 60_000.0;

fn delivered_ratio(report: &ExperimentReport) -> f64 {
    if report.flows_started == 0 {
        return 0.0;
    }
    report.delivered_flows as f64 / report.flows_started as f64
}

/// Liveness checks common to all three scenarios: whatever the overload
/// does to flow setups, it must never reach the critical class. No member
/// may be falsely declared dead, no election may double-commit, and no
/// leader may lose its lease — the observable consequences heartbeat or
/// election shedding would have.
fn require_critical_class_untouched(v: &mut ScenarioVerdict, report: &ExperimentReport) {
    let Some(cluster) = report.cluster.as_ref() else {
        v.require(false, "congestion scenarios run on a cluster");
        return;
    };
    v.require(
        cluster.confirmed_dead.is_empty(),
        format!(
            "overload must not starve heartbeats into false death declarations: {:?}",
            cluster.confirmed_dead
        ),
    );
    v.require(
        cluster.double_leader_events == 0,
        format!(
            "overload must not corrupt elections: {} double-leader events",
            cluster.double_leader_events
        ),
    );
    v.require(
        cluster.lease_step_downs.iter().all(|&s| s == 0),
        format!(
            "overload must not cost any leader its lease: {:?}",
            cluster.lease_step_downs
        ),
    );
}

/// Flow-setup storm against bounded prioritized ingress queues: a flash
/// crowd of fresh pairs offers several times the members' drain rate, the
/// leaky-bucket admission sheds the excess `PacketIn`s, congestion
/// notices pace the switches' punts, and the critical class sails
/// through untouched.
pub struct FlowSetupStorm;

impl Scenario for FlowSetupStorm {
    fn name(&self) -> &'static str {
        "flow_setup_storm"
    }

    fn summary(&self) -> &'static str {
        "overload bounded ingress queues with a setup storm; shed setups, signal switches, never touch heartbeats"
    }

    fn build(&self, seed: u64) -> (Trace, ExperimentConfig, EventPlan) {
        let trace = cluster_testbed(ScenarioScale::from_env().clusters(), HOURS);
        let num_hosts = trace.topology.num_hosts() as u32;
        let cfg = cluster_config(2, seed, HOURS)
            .with_ingress_slots(STORM_SLOTS)
            .with_ingress_cost_ns(STORM_COST_NS);
        // Each wave first migrates half the hosts (invalidating learned
        // locations, so the burst's pairs punt again instead of hitting
        // warm tables), then floods ~300 × hosts arrivals over a minute —
        // an offered setup rate several multiples of the drain rate.
        let batch = (num_hosts / 2).max(2);
        let plan = EventPlan::new()
            .migrate_hosts(STORM_AT - 0.01, batch)
            .traffic_burst(STORM_AT, 300.0)
            .migrate_hosts(STORM_AT + 0.04, batch)
            .traffic_burst(STORM_AT + 0.05, 300.0);
        (trace, cfg, plan)
    }

    fn check(&self, report: &ExperimentReport) -> ScenarioVerdict {
        let mut v = ScenarioVerdict::new();
        require_critical_class_untouched(&mut v, report);
        let Some(cluster) = report.cluster.as_ref() else {
            return v;
        };
        v.require(
            cluster.setups_shed_total() > 0,
            "the storm must overflow the ingress queue and shed flow setups",
        );
        v.require(
            cluster.congestion_signals_total() > 0,
            "shedding must emit congestion notices back to the switches",
        );
        v.require(
            cluster.queue_highwater.iter().any(|&h| h > 0),
            format!(
                "the queue high-water mark must move: {:?}",
                cluster.queue_highwater
            ),
        );
        v.require(
            report.p999_latency_ms < TAIL_BOUND_MS,
            format!(
                "delivered setups must keep a bounded tail: p999 {:.1} ms",
                report.p999_latency_ms
            ),
        );
        v.require(report.delivered_flows > 0, "no traffic delivered");
        v.note(format!(
            "shed {} setups ({} notices, highwater {:?}); p99 {:.1} ms, p999 {:.1} ms",
            cluster.setups_shed_total(),
            cluster.congestion_signals_total(),
            cluster.queue_highwater,
            report.p99_latency_ms,
            report.p999_latency_ms,
        ));
        v
    }
}

/// Controller incast: the control-channel links carry a byte capacity and
/// a flash crowd serializes through them. With *unbounded* ingress queues
/// nothing may ever be shed — contention shows up purely as queueing
/// delay in the tail, and the cluster's liveness machinery rides it out.
pub struct ControllerIncast;

/// Control-class capacity (bytes/sec of virtual time) for the incast
/// scenario: low enough that a punt storm queues behind itself on each
/// uplink, high enough that keep-alives (a few hundred bytes every 10 s)
/// never back up across detection windows.
const INCAST_CONTROL_BPS: u64 = 20_000;

impl Scenario for ControllerIncast {
    fn name(&self) -> &'static str {
        "controller_incast"
    }

    fn summary(&self) -> &'static str {
        "saturate capacitated control links with a punt storm; latency tail grows, nothing is shed"
    }

    fn build(&self, seed: u64) -> (Trace, ExperimentConfig, EventPlan) {
        let trace = cluster_testbed(ScenarioScale::from_env().clusters(), HOURS);
        let bw =
            BandwidthModel::unmodeled().with_capacity(ChannelClass::Control, INCAST_CONTROL_BPS);
        let cfg = cluster_config(2, seed, HOURS).with_bandwidth(bw);
        let plan = EventPlan::new().traffic_burst(STORM_AT, 150.0);
        (trace, cfg, plan)
    }

    fn check(&self, report: &ExperimentReport) -> ScenarioVerdict {
        let mut v = ScenarioVerdict::new();
        require_critical_class_untouched(&mut v, report);
        let Some(cluster) = report.cluster.as_ref() else {
            return v;
        };
        // No bounded queue is configured, so the shed counters are a
        // structural invariant: bandwidth contention delays, never drops.
        v.require(
            cluster.setups_shed_total() == 0 && cluster.congestion_signals_total() == 0,
            format!(
                "unbounded queues must never shed: {} shed, {} signals",
                cluster.setups_shed_total(),
                cluster.congestion_signals_total()
            ),
        );
        v.require(
            delivered_ratio(report) > 0.7,
            format!(
                "most flows must survive the incast: {}/{}",
                report.delivered_flows, report.flows_started
            ),
        );
        v.require(
            report.p999_latency_ms < TAIL_BOUND_MS,
            format!(
                "the serialization tail must stay bounded: p999 {:.1} ms",
                report.p999_latency_ms
            ),
        );
        v.note(format!(
            "delivered {}/{} flows; mean {:.2} ms, p99 {:.1} ms, p999 {:.1} ms",
            report.delivered_flows,
            report.flows_started,
            report.mean_latency_ms,
            report.p99_latency_ms,
            report.p999_latency_ms,
        ));
        v
    }
}

/// Elephant replication transfers on capacitated controller-peer links:
/// migration waves generate large C-LIB deltas that serialize slowly
/// through the ctrl-peer channel, contending with the heartbeats and
/// elections that share it. Replication must still converge and the
/// liveness machinery must ride out the backlog.
pub struct ElephantPeerSync;

/// Ctrl-peer capacity (bytes/sec): elephant sync bundles take visible
/// wall-clock to serialize, but the backlog stays well under the 3 s
/// detection window so no heartbeat deadline is breached.
const ELEPHANT_CTRL_PEER_BPS: u64 = 50_000;

impl Scenario for ElephantPeerSync {
    fn name(&self) -> &'static str {
        "elephant_peer_sync"
    }

    fn summary(&self) -> &'static str {
        "squeeze elephant sync transfers through thin ctrl-peer links; replication converges, liveness holds"
    }

    fn build(&self, seed: u64) -> (Trace, ExperimentConfig, EventPlan) {
        let trace = cluster_testbed(ScenarioScale::from_env().clusters(), HOURS);
        let num_hosts = trace.topology.num_hosts() as u32;
        let bw = BandwidthModel::unmodeled()
            .with_capacity(ChannelClass::CtrlPeer, ELEPHANT_CTRL_PEER_BPS)
            .with_capacity(ChannelClass::Peer, ELEPHANT_CTRL_PEER_BPS);
        let cfg = cluster_config(4, seed, HOURS).with_bandwidth(bw);
        // Migration waves churn host locations — exactly the deltas peer
        // sync replicates — with a burst of fresh pairs in between to keep
        // interactive flow setups contending with the elephants.
        let batch = (num_hosts / 4).max(2);
        let plan = EventPlan::new()
            .migrate_hosts(STORM_AT, batch)
            .traffic_burst(STORM_AT + 0.05, 50.0)
            .migrate_hosts(STORM_AT + 0.1, batch)
            .migrate_hosts(STORM_AT + 0.2, batch);
        (trace, cfg, plan)
    }

    fn check(&self, report: &ExperimentReport) -> ScenarioVerdict {
        let mut v = ScenarioVerdict::new();
        require_critical_class_untouched(&mut v, report);
        let Some(cluster) = report.cluster.as_ref() else {
            return v;
        };
        v.require(
            cluster.peer_sync_bytes_total() > 0,
            "the migration waves must generate replication traffic",
        );
        v.require(
            cluster.replica_sizes.iter().all(|&s| s > 0),
            format!(
                "replication must converge through the thin links: {:?}",
                cluster.replica_sizes
            ),
        );
        v.require(
            delivered_ratio(report) > 0.8,
            format!(
                "flow setups must not starve behind the elephants: {}/{}",
                report.delivered_flows, report.flows_started
            ),
        );
        v.require(
            report.p999_latency_ms < TAIL_BOUND_MS,
            format!(
                "the interactive tail must stay bounded: p999 {:.1} ms",
                report.p999_latency_ms
            ),
        );
        v.note(format!(
            "replicated {} bytes over {} msgs; delivered {}/{}; p999 {:.1} ms",
            cluster.peer_sync_bytes_total(),
            cluster.peer_sync_messages_total(),
            report.delivered_flows,
            report.flows_started,
            report.p999_latency_ms,
        ));
        v
    }
}
