//! Fault- and churn-injection scenarios enabled by the `EventPlan`
//! vocabulary: switch failures, degraded control networks, host-migration
//! storms and traffic bursts — all on a single (devolved) controller.

use lazyctrl_net::SwitchId;
use lazyctrl_proto::EventPlan;
use lazyctrl_sim::ChannelClass;
use lazyctrl_trace::Trace;

use super::cluster::cluster_testbed;
use super::{Scenario, ScenarioScale, ScenarioVerdict};
use crate::{ControlMode, ExperimentConfig, ExperimentReport};

/// Single-controller config for the fault scenarios (same knobs as the
/// cluster testbed config, minus the cluster).
fn single_config(seed: u64, hours: f64) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::new(ControlMode::LazyStatic)
        .with_group_size_limit(3)
        .with_seed(seed)
        .with_horizon_hours(hours);
    cfg.responses = false;
    cfg.bucket_hours = 0.25;
    cfg.sync_interval_ms = 5_000;
    cfg.keepalive_interval_ms = 10_000;
    cfg
}

/// Clusters for the single-controller fault testbeds (half the cluster
/// scenarios' size; these runs don't shard load).
fn fault_clusters() -> usize {
    (ScenarioScale::from_env().clusters() / 2).max(2)
}

fn delivered_ratio(report: &ExperimentReport) -> f64 {
    if report.flows_started == 0 {
        return 0.0;
    }
    report.delivered_flows as f64 / report.flows_started as f64
}

/// Two switches go dark mid-run; one reboots. The keep-alive wheel's ring
/// neighbours must report the silence, the controller's Table-I inference
/// must take exactly the still-dead switch out of its group, and the
/// §III-E.3 comeback must clear the rebooted one.
pub struct SwitchFailure;

/// The switch that stays dead.
const PERMANENT_VICTIM: u32 = 1;
/// The switch that reboots. Deliberately *ring-adjacent* to the permanent
/// victim (same 3-switch cluster/group): Table-I needs silence reports
/// from both ring directions, so confirming the permanent victim depends
/// on the rebooted neighbour's wheel reporting the stale keep-alive after
/// power-on — the hardest detection path.
const REBOOTING_VICTIM: u32 = 2;

impl Scenario for SwitchFailure {
    fn name(&self) -> &'static str {
        "switch_failure"
    }

    fn summary(&self) -> &'static str {
        "kill two switches, reboot one; wheel detection must flag exactly the still-dead one"
    }

    fn build(&self, seed: u64) -> (Trace, ExperimentConfig, EventPlan) {
        let hours = 1.5;
        let trace = cluster_testbed(fault_clusters(), hours);
        let cfg = single_config(seed, hours);
        let plan = EventPlan::new()
            .crash_switch(1.05, SwitchId::new(PERMANENT_VICTIM))
            .crash_switch(1.05, SwitchId::new(REBOOTING_VICTIM))
            .recover_switch(1.25, SwitchId::new(REBOOTING_VICTIM));
        (trace, cfg, plan)
    }

    fn check(&self, report: &ExperimentReport) -> ScenarioVerdict {
        let mut v = ScenarioVerdict::new();
        v.require(
            report.down_switches.contains(&PERMANENT_VICTIM),
            format!(
                "the dead switch must be inferred down, got {:?}",
                report.down_switches
            ),
        );
        v.require(
            !report.down_switches.contains(&REBOOTING_VICTIM),
            format!(
                "the rebooted switch must have come back, got {:?}",
                report.down_switches
            ),
        );
        // Two of six switches are dark for a third of the run, so a solid
        // chunk of ingress/egress is legitimately unreachable; the bound
        // asserts the *rest* of the fabric never stalls.
        v.require(
            delivered_ratio(report) > 0.55,
            format!(
                "the rest of the fabric must keep delivering: {}/{}",
                report.delivered_flows, report.flows_started
            ),
        );
        v.note(format!(
            "down at end of run: {:?}; delivered {}/{} flows",
            report.down_switches, report.delivered_flows, report.flows_started
        ));
        v
    }
}

/// The control network browns out: control/state latency ×20 plus 5%
/// control-message loss for a quarter hour. Devolved intra-group control
/// must keep the traffic flowing.
pub struct DegradedControlNet;

impl Scenario for DegradedControlNet {
    fn name(&self) -> &'static str {
        "degraded_control_net"
    }

    fn summary(&self) -> &'static str {
        "brown out the control network ×20 latency + 5% loss; devolved control must carry traffic"
    }

    fn build(&self, seed: u64) -> (Trace, ExperimentConfig, EventPlan) {
        let hours = 1.5;
        let trace = cluster_testbed(fault_clusters(), hours);
        let cfg = single_config(seed, hours);
        let plan = EventPlan::new()
            .degrade_links(1.05, ChannelClass::Control, 20.0)
            .degrade_links(1.05, ChannelClass::State, 20.0)
            .link_loss(1.05, ChannelClass::Control, 0.05)
            .degrade_links(1.3, ChannelClass::Control, 0.05)
            .degrade_links(1.3, ChannelClass::State, 0.05)
            .link_loss(1.3, ChannelClass::Control, 0.0);
        (trace, cfg, plan)
    }

    fn check(&self, report: &ExperimentReport) -> ScenarioVerdict {
        let mut v = ScenarioVerdict::new();
        v.require(
            delivered_ratio(report) > 0.9,
            format!(
                "≥90% of flows must survive the brownout: {}/{}",
                report.delivered_flows, report.flows_started
            ),
        );
        v.require(
            report.controller_messages > 0,
            "the controller must still see traffic",
        );
        v.note(format!(
            "delivered {}/{} flows at mean {:.3} ms through the brownout",
            report.delivered_flows, report.flows_started, report.mean_latency_ms
        ));
        v
    }
}

/// VM-migration churn: two batches of hosts move to other switches
/// mid-run, re-announce themselves, and keep communicating. Learning and
/// C-LIB state must converge on the new locations.
pub struct HostMigrationStorm;

impl Scenario for HostMigrationStorm {
    fn name(&self) -> &'static str {
        "host_migration_storm"
    }

    fn summary(&self) -> &'static str {
        "migrate two batches of hosts mid-run; learning must converge on the new locations"
    }

    fn build(&self, seed: u64) -> (Trace, ExperimentConfig, EventPlan) {
        let hours = 1.6;
        let trace = cluster_testbed(fault_clusters(), hours);
        let cfg = single_config(seed, hours);
        let plan = EventPlan::new().migrate_hosts(1.1, 6).migrate_hosts(1.3, 6);
        (trace, cfg, plan)
    }

    fn check(&self, report: &ExperimentReport) -> ScenarioVerdict {
        let mut v = ScenarioVerdict::new();
        v.require(
            delivered_ratio(report) > 0.85,
            format!(
                "≥85% of flows must survive the migration churn: {}/{}",
                report.delivered_flows, report.flows_started
            ),
        );
        v.require(
            report.down_switches.is_empty(),
            format!(
                "migration must not be mistaken for failure: {:?}",
                report.down_switches
            ),
        );
        v.note(format!(
            "delivered {}/{} flows across 12 migrations",
            report.delivered_flows, report.flows_started
        ));
        v
    }
}

/// A flash crowd: a burst of fresh-pair flows lands on top of the steady
/// trace. Every burst flow must be driven (counted as started) and the
/// fabric must absorb it.
pub struct TrafficBurstScenario;

/// Burst size as a multiple of the host count.
const BURST_SCALE: f64 = 2.0;

impl TrafficBurstScenario {
    fn hours() -> f64 {
        1.5
    }

    /// `(trace flows, burst flows)` — the exact arrival counts the run
    /// must produce. The testbed is built once per process and cached
    /// (keyed by the scale-dependent cluster count), so `check` does not
    /// regenerate tens of thousands of `FlowRecord`s per run.
    fn expected_flows() -> (u64, u64) {
        fn count(clusters: usize) -> (u64, u64) {
            let trace = cluster_testbed(clusters, TrafficBurstScenario::hours());
            let burst = (BURST_SCALE * trace.topology.num_hosts() as f64).ceil() as u64;
            (trace.num_flows() as u64, burst)
        }
        static CACHE: std::sync::OnceLock<(usize, (u64, u64))> = std::sync::OnceLock::new();
        let clusters = fault_clusters();
        let &(cached_clusters, counts) = CACHE.get_or_init(|| (clusters, count(clusters)));
        if cached_clusters == clusters {
            counts
        } else {
            count(clusters)
        }
    }
}

impl Scenario for TrafficBurstScenario {
    fn name(&self) -> &'static str {
        "traffic_burst"
    }

    fn summary(&self) -> &'static str {
        "inject a flash crowd of fresh-pair flows; the fabric must absorb every one"
    }

    fn build(&self, seed: u64) -> (Trace, ExperimentConfig, EventPlan) {
        let trace = cluster_testbed(fault_clusters(), Self::hours());
        let cfg = single_config(seed, Self::hours());
        let plan = EventPlan::new().traffic_burst(1.2, BURST_SCALE);
        (trace, cfg, plan)
    }

    fn check(&self, report: &ExperimentReport) -> ScenarioVerdict {
        let mut v = ScenarioVerdict::new();
        let (trace_flows, burst_flows) = Self::expected_flows();
        let expected = trace_flows + burst_flows;
        v.require(
            report.flows_started == expected,
            format!(
                "every trace + burst flow must start: {} vs expected {}",
                report.flows_started, expected
            ),
        );
        v.require(
            delivered_ratio(report) > 0.9,
            format!(
                "≥90% of flows must deliver through the burst: {}/{}",
                report.delivered_flows, report.flows_started
            ),
        );
        v.note(format!(
            "absorbed {} flows ({burst_flows} from the burst window)",
            report.flows_started
        ));
        v
    }
}
