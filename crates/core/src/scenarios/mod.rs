//! Canned scenarios: the paper's evaluation family plus fault-injection
//! workloads, behind one composable API.
//!
//! A [`Scenario`] bundles three things:
//!
//! 1. **`build`** — a deterministic function from a seed to the complete
//!    experiment input: a [`Trace`], an [`ExperimentConfig`] and an
//!    [`EventPlan`] of injected faults/perturbations;
//! 2. **`check`** — the scenario's acceptance contract over the resulting
//!    [`ExperimentReport`], as a [`ScenarioVerdict`];
//! 3. **a name** — so benches, tests and the `repro_scenario` binary can
//!    discover it through the [`ScenarioRegistry`].
//!
//! Adding a scenario is a one-file change: implement the trait (usually a
//! few dozen lines combining an existing testbed with an `EventPlan`) and
//! register it in [`ScenarioRegistry::builtin`]. Nothing in the driver,
//! config or world needs to know about it.
//!
//! # Determinism
//!
//! `build(seed)` must be a pure function of the seed (and the
//! [`ScenarioScale`] environment override), and every injected event rides
//! the simulation's event queue with the same insertion-order tie-breaks
//! as organic traffic — so `run_scenario` with the same seed produces
//! bit-identical reports, crash-and-burst scenarios included. The
//! registry test asserts this for every built-in scenario.

mod cluster;
mod cold_cache;
mod congestion;
mod faults;
mod partition;

use lazyctrl_proto::EventPlan;
use lazyctrl_trace::Trace;

use crate::experiment::DetailedRun;
use crate::{Experiment, ExperimentConfig, ExperimentReport};

pub use cluster::{
    controller_crash, shard_rebalance, ClusterCrashReport, ClusterRebalanceReport, CrashRecover,
    CrashUnderLoad, PeerSyncStorm, ShardRebalance,
};
pub use cold_cache::{cold_cache, ColdCache, ColdCacheReport};
pub use congestion::{ControllerIncast, ElephantPeerSync, FlowSetupStorm};
pub use faults::{DegradedControlNet, HostMigrationStorm, SwitchFailure, TrafficBurstScenario};
pub use partition::{
    PartitionCtrlIsland, PartitionFlapping, PartitionSplit, PartitionSwitchOrphan,
};

/// Scenario testbed sizing, from the `LAZYCTRL_SCALE` environment
/// variable. `ci` (the default, also used for unset/`quick`) keeps every
/// scenario laptop-and-CI sized; `paper` grows the cluster testbeds
/// towards the paper's topology scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScenarioScale {
    /// Small deterministic testbeds (seconds per scenario).
    Ci,
    /// Paper-shaped testbeds (minutes per scenario).
    Paper,
}

impl ScenarioScale {
    /// Reads `LAZYCTRL_SCALE` (`ci`/`quick` default, `paper` scales up).
    pub fn from_env() -> Self {
        match std::env::var("LAZYCTRL_SCALE").as_deref() {
            Ok("paper") => ScenarioScale::Paper,
            _ => ScenarioScale::Ci,
        }
    }

    /// Number of switch-clusters in the shared cluster testbed.
    pub(crate) fn clusters(self) -> usize {
        match self {
            ScenarioScale::Ci => 4,
            ScenarioScale::Paper => 16,
        }
    }
}

/// One named, checkable experiment: input construction and acceptance
/// contract in one object.
pub trait Scenario {
    /// Registry/CLI name (`snake_case`).
    fn name(&self) -> &'static str;

    /// One-line description for `repro_scenario --list`.
    fn summary(&self) -> &'static str;

    /// Builds the complete experiment input for `seed`. Must be a pure
    /// function of the seed (plus [`ScenarioScale`]).
    fn build(&self, seed: u64) -> (Trace, ExperimentConfig, EventPlan);

    /// Judges a finished run against the scenario's contract.
    fn check(&self, report: &ExperimentReport) -> ScenarioVerdict;
}

/// The outcome of [`Scenario::check`]: a list of failed expectations
/// (empty ⇒ pass) plus free-form notes for human readers.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ScenarioVerdict {
    /// Violated expectations, one message each.
    pub failures: Vec<String>,
    /// Informational observations (always shown by `repro_scenario`).
    pub notes: Vec<String>,
}

impl ScenarioVerdict {
    /// A verdict with no findings yet.
    pub fn new() -> Self {
        ScenarioVerdict::default()
    }

    /// Records a failed expectation unless `ok` holds.
    pub fn require(&mut self, ok: bool, expectation: impl Into<String>) {
        if !ok {
            self.failures.push(expectation.into());
        }
    }

    /// Adds an informational note.
    pub fn note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// True if every expectation held.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// A finished scenario run: the report plus its verdict.
#[derive(Debug, Clone)]
pub struct ScenarioRun {
    /// The scenario's registry name.
    pub name: &'static str,
    /// The full experiment report.
    pub report: ExperimentReport,
    /// The scenario's judgement of that report.
    pub verdict: ScenarioVerdict,
}

/// Builds, runs and checks `scenario` at `seed`.
///
/// # Panics
///
/// Panics if the built config/trace/plan fail validation (a scenario bug,
/// not a run outcome — run outcomes land in the verdict).
pub fn run_scenario(scenario: &dyn Scenario, seed: u64) -> ScenarioRun {
    let (trace, cfg, plan) = scenario.build(seed);
    run_built(scenario, trace, cfg, plan)
}

/// Like [`run_scenario`], but from an already-built input — for callers
/// that inspected the plan first and should not pay for a second
/// [`Scenario::build`].
pub fn run_built(
    scenario: &dyn Scenario,
    trace: Trace,
    cfg: ExperimentConfig,
    plan: EventPlan,
) -> ScenarioRun {
    run_built_detailed(scenario, trace, cfg, plan).0
}

/// Like [`run_built`], but also returns the full [`DetailedRun`] (per-flow
/// latencies, phase timings, and — when the config enables observability —
/// the flight recorder and engine profile).
///
/// When observability is on with `dump_on_failure` and the verdict fails,
/// the recorder is dumped automatically to `<dump_dir>/<scenario>.trace.jsonl`
/// (+ `.chrome.json` + `.telemetry.json`) — the dumps `repro_trace` reads.
pub fn run_built_detailed(
    scenario: &dyn Scenario,
    trace: Trace,
    cfg: ExperimentConfig,
    plan: EventPlan,
) -> (ScenarioRun, DetailedRun) {
    let detailed = Experiment::new(trace, cfg.with_plan(plan)).run_detailed();
    let verdict = scenario.check(&detailed.report);
    if !verdict.passed() {
        if let Some(obs) = &detailed.obs {
            if obs.config.dump_on_failure {
                dump_on_failure(scenario.name(), &detailed);
            }
        }
    }
    (
        ScenarioRun {
            name: scenario.name(),
            report: detailed.report.clone(),
            verdict,
        },
        detailed,
    )
}

/// Best-effort flight-recorder dump for a failed verdict. IO failures are
/// reported to stderr, never propagated: a broken disk must not turn a
/// scenario failure into a crash.
fn dump_on_failure(name: &str, detailed: &DetailedRun) {
    let Some(obs) = &detailed.obs else { return };
    let dir = std::path::Path::new(&obs.config.dump_dir);
    let write = |file: String, contents: String| {
        let path = dir.join(file);
        if let Err(e) = std::fs::write(&path, contents) {
            eprintln!("obs: failed to write {}: {e}", path.display());
        }
    };
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("obs: failed to create {}: {e}", dir.display());
        return;
    }
    write(
        format!("{name}.trace.jsonl"),
        lazyctrl_obs::jsonl_dump(&obs.recorder),
    );
    write(
        format!("{name}.chrome.json"),
        lazyctrl_obs::chrome_trace_json(&obs.recorder, name),
    );
    write(
        format!("{name}.telemetry.json"),
        crate::telemetry::telemetry_json(detailed).to_json_pretty(),
    );
    eprintln!(
        "obs: verdict failed; flight recorder dumped to {}/{name}.trace.jsonl",
        dir.display()
    );
}

/// Name-indexed collection of scenarios.
#[derive(Default)]
pub struct ScenarioRegistry {
    entries: Vec<Box<dyn Scenario>>,
}

impl ScenarioRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        ScenarioRegistry::default()
    }

    /// Every scenario this crate ships.
    pub fn builtin() -> Self {
        let mut reg = ScenarioRegistry::new();
        reg.register(Box::new(cold_cache::ColdCache));
        reg.register(Box::new(cluster::CrashUnderLoad));
        reg.register(Box::new(cluster::CrashRecover));
        reg.register(Box::new(cluster::ShardRebalance));
        reg.register(Box::new(cluster::PeerSyncStorm::default()));
        reg.register(Box::new(faults::SwitchFailure));
        reg.register(Box::new(faults::DegradedControlNet));
        reg.register(Box::new(faults::HostMigrationStorm));
        reg.register(Box::new(faults::TrafficBurstScenario));
        reg.register(Box::new(partition::PartitionSplit));
        reg.register(Box::new(partition::PartitionCtrlIsland));
        reg.register(Box::new(partition::PartitionSwitchOrphan));
        reg.register(Box::new(partition::PartitionFlapping));
        reg.register(Box::new(congestion::FlowSetupStorm));
        reg.register(Box::new(congestion::ControllerIncast));
        reg.register(Box::new(congestion::ElephantPeerSync));
        reg
    }

    /// Adds a scenario.
    ///
    /// # Panics
    ///
    /// Panics if a scenario with the same name is already registered.
    pub fn register(&mut self, scenario: Box<dyn Scenario>) {
        assert!(
            self.get(scenario.name()).is_none(),
            "duplicate scenario name {:?}",
            scenario.name()
        );
        self.entries.push(scenario);
    }

    /// Looks a scenario up by name.
    pub fn get(&self, name: &str) -> Option<&dyn Scenario> {
        self.entries
            .iter()
            .find(|s| s.name() == name)
            .map(|s| s.as_ref())
    }

    /// All scenarios, in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &dyn Scenario> {
        self.entries.iter().map(|s| s.as_ref())
    }

    /// All registered names, in registration order.
    pub fn names(&self) -> Vec<&'static str> {
        self.entries.iter().map(|s| s.name()).collect()
    }

    /// Number of registered scenarios.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no scenario is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_registry_is_discoverable() {
        let reg = ScenarioRegistry::builtin();
        assert!(reg.len() >= 6, "registry too small: {:?}", reg.names());
        assert!(reg.get("cold_cache").is_some());
        assert!(reg.get("crash_under_load").is_some());
        assert!(reg.get("no_such_scenario").is_none());
        for s in reg.iter() {
            assert!(!s.summary().is_empty(), "{} has no summary", s.name());
        }
    }

    #[test]
    #[should_panic(expected = "duplicate scenario name")]
    fn duplicate_names_rejected() {
        let mut reg = ScenarioRegistry::builtin();
        reg.register(Box::new(cold_cache::ColdCache));
    }

    #[test]
    fn verdict_collects_failures() {
        let mut v = ScenarioVerdict::new();
        v.require(true, "fine");
        assert!(v.passed());
        v.note("observation");
        v.require(false, "broken");
        assert!(!v.passed());
        assert_eq!(v.failures, vec!["broken".to_string()]);
        assert_eq!(v.notes, vec!["observation".to_string()]);
    }
}
