//! Network-partition scenarios: the cluster under split fabrics.
//!
//! Four members of one family, each a different cut of the reachability
//! graph (see `InjectedEvent::PartitionNetwork` for the island
//! semantics — listed groups are mutually severed, unlisted nodes reach
//! everyone):
//!
//! * [`PartitionSplit`] — a clean split: a majority island (two members
//!   plus half the switches) and a minority island (one member plus the
//!   rest). Exercises the whole degradation ladder at once: majority
//!   takeover, minority read-only demotion, switch re-homing, and
//!   post-heal convergence.
//! * [`PartitionCtrlIsland`] — the *leader* is cut off from its peers on
//!   the controller ring only (switches still reach everyone). The
//!   leader-lease guard must demote it before its detector can confirm
//!   cross-partition "deaths", and the majority must elect a successor
//!   without ever producing two leaders in one term.
//! * [`PartitionSwitchOrphan`] — one switch-cluster loses every
//!   controller while the control plane itself stays whole. No failover
//!   may fire (no controller is unreachable from any *member*), and the
//!   orphans' traffic must resume after the heal.
//! * [`PartitionFlapping`] — the controller-island cut applied and
//!   healed repeatedly. The protocols must absorb the flapping without
//!   split-brain or a permanently-latched death.
//!
//! Every verdict leans on the plane's cross-member election-safety
//! monitor (`double_leader_events`) — the "no two leaders share a term"
//! acceptance criterion — plus `confirmed_dead` emptiness at end of run
//! as the post-heal convergence bound (heartbeats clear a latched death
//! within one interval once reachability returns, well inside the
//! post-heal tail every plan leaves).

use lazyctrl_cluster::ctrl_pseudo_switch;
use lazyctrl_proto::EventPlan;
use lazyctrl_trace::Trace;

use super::cluster::{cluster_config, cluster_testbed};
use super::{Scenario, ScenarioScale, ScenarioVerdict};
use crate::{ExperimentConfig, ExperimentReport};

/// When the single-cut scenarios partition the fabric (hours).
const PARTITION_AT_HOURS: f64 = 1.2;
/// When the single-cut scenarios heal it (hours).
const HEAL_AT_HOURS: f64 = 1.45;
/// Single-cut run length (hours) — leaves a long post-heal tail so
/// convergence is judged settled, not in flight.
const RUN_HOURS: f64 = 2.0;

/// The controller-ring pseudo-node id of member `m` (the id partition
/// groups use to cut controllers).
fn ctrl(m: u32) -> u32 {
    ctrl_pseudo_switch(m).0
}

/// Switch ids of testbed switch-clusters `range` (3 switches each).
fn switches_of_clusters(range: std::ops::Range<usize>) -> Vec<u32> {
    (range.start * 3..range.end * 3).map(|s| s as u32).collect()
}

/// Shared verdict core: the safety invariants every partition scenario
/// must uphold regardless of which cut it applies.
fn require_partition_invariants(v: &mut ScenarioVerdict, report: &ExperimentReport) {
    let Some(cluster) = report.cluster.as_ref() else {
        v.require(false, "cluster run must produce a cluster report");
        return;
    };
    v.require(
        cluster.double_leader_events == 0,
        format!(
            "two members led the same term {} time(s) — split-brain",
            cluster.double_leader_events
        ),
    );
    v.require(
        cluster.confirmed_dead.is_empty(),
        format!(
            "members still believed dead after the heal: {:?}",
            cluster.confirmed_dead
        ),
    );
    v.require(report.delivered_flows > 0, "no traffic delivered");
}

/// Clean split: majority island {members 0,1 + first half of the
/// switches}, minority island {member 2 + the rest}.
pub struct PartitionSplit;

impl Scenario for PartitionSplit {
    fn name(&self) -> &'static str {
        "partition_split"
    }

    fn summary(&self) -> &'static str {
        "split fabric into majority/minority islands; takeover, re-homing and heal must all land"
    }

    fn build(&self, seed: u64) -> (Trace, ExperimentConfig, EventPlan) {
        let clusters = ScenarioScale::from_env().clusters();
        let trace = cluster_testbed(clusters, RUN_HOURS);
        let cfg = cluster_config(3, seed, RUN_HOURS);
        let half = clusters / 2;
        let mut majority = switches_of_clusters(0..half);
        majority.extend([ctrl(0), ctrl(1)]);
        let mut minority = switches_of_clusters(half..clusters);
        minority.push(ctrl(2));
        let plan = EventPlan::new()
            .partition_network(PARTITION_AT_HOURS, vec![majority, minority])
            .heal_partition(HEAL_AT_HOURS);
        (trace, cfg, plan)
    }

    fn check(&self, report: &ExperimentReport) -> ScenarioVerdict {
        let mut v = ScenarioVerdict::new();
        require_partition_invariants(&mut v, report);
        let Some(cluster) = report.cluster.as_ref() else {
            return v;
        };
        // The majority side must have confirmed the minority member dead
        // and moved its groups — partition tolerance is not "freeze until
        // heal". (It un-deads above once heartbeats resume.)
        v.require(
            cluster.failover_transfers > 0,
            "majority never took over the minority member's groups",
        );
        v.require(
            cluster.requests_per_controller.iter().all(|&r| r > 0),
            format!(
                "every member should have handled traffic: {:?}",
                cluster.requests_per_controller
            ),
        );
        v.note(format!(
            "failover transfers {}, retransmits {:?}, lease step-downs {:?}",
            cluster.failover_transfers, cluster.transfer_retransmits, cluster.lease_step_downs
        ));
        v
    }
}

/// The leader alone on one side of a controller-ring-only cut.
pub struct PartitionCtrlIsland;

impl Scenario for PartitionCtrlIsland {
    fn name(&self) -> &'static str {
        "partition_ctrl_island"
    }

    fn summary(&self) -> &'static str {
        "isolate the leader on the controller ring; the lease must demote it before any takeover"
    }

    fn build(&self, seed: u64) -> (Trace, ExperimentConfig, EventPlan) {
        let trace = cluster_testbed(ScenarioScale::from_env().clusters(), RUN_HOURS);
        let cfg = cluster_config(3, seed, RUN_HOURS);
        // Member 0 leads from bootstrap; cut it from its peers only —
        // switches stay connected to everyone (ctrl-to-ctrl cut).
        let plan = EventPlan::new()
            .partition_network(
                PARTITION_AT_HOURS,
                vec![vec![ctrl(0)], vec![ctrl(1), ctrl(2)]],
            )
            .heal_partition(HEAL_AT_HOURS);
        (trace, cfg, plan)
    }

    fn check(&self, report: &ExperimentReport) -> ScenarioVerdict {
        let mut v = ScenarioVerdict::new();
        require_partition_invariants(&mut v, report);
        let Some(cluster) = report.cluster.as_ref() else {
            return v;
        };
        v.require(
            cluster.lease_step_downs.first().copied().unwrap_or(0) > 0,
            format!(
                "the isolated leader never demoted itself: step-downs {:?}",
                cluster.lease_step_downs
            ),
        );
        v.note(format!(
            "lease step-downs {:?}, transfer retransmits {:?}, lookup timeouts {:?}",
            cluster.lease_step_downs, cluster.transfer_retransmits, cluster.lookup_timeouts
        ));
        v
    }
}

/// One switch-cluster cut from every controller; the control plane
/// itself stays whole.
pub struct PartitionSwitchOrphan;

impl Scenario for PartitionSwitchOrphan {
    fn name(&self) -> &'static str {
        "partition_switch_orphan"
    }

    fn summary(&self) -> &'static str {
        "orphan one switch-cluster from all controllers; no failover may fire, traffic resumes on heal"
    }

    fn build(&self, seed: u64) -> (Trace, ExperimentConfig, EventPlan) {
        let trace = cluster_testbed(ScenarioScale::from_env().clusters(), RUN_HOURS);
        let cfg = cluster_config(2, seed, RUN_HOURS);
        let orphans = switches_of_clusters(0..1);
        let plan = EventPlan::new()
            .partition_network(PARTITION_AT_HOURS, vec![orphans, vec![ctrl(0), ctrl(1)]])
            .heal_partition(HEAL_AT_HOURS);
        (trace, cfg, plan)
    }

    fn check(&self, report: &ExperimentReport) -> ScenarioVerdict {
        let mut v = ScenarioVerdict::new();
        require_partition_invariants(&mut v, report);
        let Some(cluster) = report.cluster.as_ref() else {
            return v;
        };
        // The members never lost each other: a switch-side cut must not
        // look like a member failure to the cluster layer.
        v.require(
            cluster.failover_transfers == 0 && cluster.takeovers.is_empty(),
            format!(
                "switch orphaning must not trigger member failover ({} transfers, {:?})",
                cluster.failover_transfers, cluster.takeovers
            ),
        );
        v.require(
            cluster.lease_step_downs.iter().all(|&s| s == 0),
            format!(
                "no member lost its lease — the ring was whole: {:?}",
                cluster.lease_step_downs
            ),
        );
        v.note(format!(
            "requests/controller {:?}",
            cluster.requests_per_controller
        ));
        v
    }
}

/// The controller-island cut applied and healed in rapid cycles.
pub struct PartitionFlapping;

impl Scenario for PartitionFlapping {
    fn name(&self) -> &'static str {
        "partition_flapping"
    }

    fn summary(&self) -> &'static str {
        "flap a controller-ring cut on and off; no split-brain, no latched death may survive"
    }

    fn build(&self, seed: u64) -> (Trace, ExperimentConfig, EventPlan) {
        let trace = cluster_testbed(ScenarioScale::from_env().clusters(), RUN_HOURS);
        let cfg = cluster_config(3, seed, RUN_HOURS);
        // Four 90 s flap cycles (45 s cut, 45 s healed), long enough per
        // phase for detection and lease machinery to engage each time.
        let mut plan = EventPlan::new();
        for cycle in 0..4u32 {
            let at = 1.1 + f64::from(cycle) * 0.025;
            plan = plan
                .partition_network(at, vec![vec![ctrl(0)], vec![ctrl(1), ctrl(2)]])
                .heal_partition(at + 0.0125);
        }
        (trace, cfg, plan)
    }

    fn check(&self, report: &ExperimentReport) -> ScenarioVerdict {
        let mut v = ScenarioVerdict::new();
        require_partition_invariants(&mut v, report);
        let Some(cluster) = report.cluster.as_ref() else {
            return v;
        };
        v.note(format!(
            "lease step-downs {:?} across 4 flap cycles; retransmits {:?}",
            cluster.lease_step_downs, cluster.transfer_retransmits
        ));
        v
    }
}
