//! Sharded-engine driver: partitions a built [`DataCenterWorld`] along
//! the control plane's own switch grouping and runs it on the
//! conservative parallel executor (`lazyctrl_sim::run_sharded`).
//!
//! The partition function reuses LazyCtrl's thesis structurally: most
//! control traffic stays inside a switch group, so placing whole groups
//! on one partition keeps the dominant event kinds (local frames, peer
//! syncs, tunnels within a group) partition-local. Partition 0 — the
//! *hub* — owns the entire control plane (central controller or cluster)
//! plus any switches whose group hashes there; the measured event mix is
//! ~95% switch-subsystem, so the hub's serial share stays small.
//!
//! Shard count is fixed by configuration (default 16), deliberately
//! independent of the worker-thread count: results are a function of the
//! layout, threads only change wall clock.

use std::sync::Arc;

use lazyctrl_net::SwitchId;
use lazyctrl_proto::InjectedEvent;
use lazyctrl_sim::{
    run_sharded, EventQueue, Outbox, Scheduler, ShardOpts, ShardWorld, SimDuration, SimTime, World,
};

use crate::world::{AnyController, DataCenterWorld, Ev};

/// Default shard count when `cfg.shards` is unset. Chosen to leave
/// headroom over common core counts while keeping per-partition state
/// (topology + link clones) modest.
const DEFAULT_SHARDS: usize = 16;

/// Outcome of a sharded run, post-merge.
pub(crate) struct ShardedRun {
    /// The reassembled world (hub + all shards), ready for the unchanged
    /// report-collection path.
    pub(crate) world: DataCenterWorld,
    /// Events processed across all partitions, including one per applied
    /// global — the sharded analogue of `queue.popped_total()`.
    pub(crate) events_processed: u64,
}

/// `owner[switch] = partition` along the controller's grouping: whole
/// groups land on one shard (1..=shards); ungrouped switches (and every
/// switch under the Baseline controller) fall back to their own ID so the
/// map still spreads them. Partition 0 is reserved for the hub; it owns
/// no switches by default, only the control plane.
///
/// This is a *placement* function evaluated once, at split time: later
/// regroups or migrations do not re-shard (events for a moved host are
/// forwarded by the ownership checks in the world's dispatcher).
fn partition_map(world: &DataCenterWorld, shards: usize) -> Vec<u16> {
    let n = world.trace.topology.num_switches;
    (0..n)
        .map(|s| {
            let id = SwitchId::new(s as u32);
            let group = match &world.controller {
                AnyController::Lazy(c) => c.grouping().group_of(id),
                AnyController::Cluster(p) => p.group_of_switch(id),
                AnyController::Baseline(_) => None,
            }
            .unwrap_or(s);
            (1 + group % shards) as u16
        })
        .collect()
}

/// Which partition an event belongs to; `None` marks a global (injected)
/// event, which the executor applies to every partition at a barrier.
fn target_partition(world: &DataCenterWorld, owner: &[u16], ev: &Ev) -> Option<u16> {
    let of = |s: SwitchId| owner[s.index()];
    match ev {
        Ev::FlowArrival(i) => Some(of(world
            .trace
            .topology
            .switch_of(world.trace.flows[*i].src))),
        Ev::SyntheticFlow { src, .. } => Some(of(world.trace.topology.switch_of(*src))),
        Ev::LocalFrame { switch, .. } => Some(of(*switch)),
        Ev::TunnelArrive { to, .. } => Some(of(*to)),
        Ev::MsgToSwitch { to, .. } => Some(of(*to)),
        Ev::SwitchTimer { switch, .. } => Some(of(*switch)),
        Ev::MsgToController { .. }
        | Ev::ControllerTimer(_)
        | Ev::CtrlPeerMsg { .. }
        | Ev::ClusterTimer(_) => Some(0),
        Ev::Injected(_) => None,
    }
}

/// Redistributes the sequential bootstrap queue into per-partition queues
/// plus the global-event list. Draining in `(time, seq)` order and
/// re-inserting preserves relative order within each destination, so the
/// split is itself deterministic.
fn split_queue(
    world: &DataCenterWorld,
    owner: &[u16],
    nparts: u16,
    mut queue: EventQueue<Ev>,
) -> (Vec<EventQueue<Ev>>, Vec<(SimTime, InjectedEvent)>) {
    let kind = queue.kind();
    let mut queues: Vec<EventQueue<Ev>> =
        (0..nparts).map(|_| EventQueue::with_kind(kind)).collect();
    let mut globals = Vec::new();
    while let Some((at, ev)) = queue.pop() {
        if let Ev::Injected(g) = ev {
            globals.push((at, g));
            continue;
        }
        let p = target_partition(world, owner, &ev).expect("only Injected is global");
        queues[usize::from(p)].schedule(at, ev);
    }
    (queues, globals)
}

/// Adapter: one partition world as a [`ShardWorld`]. Handlers run the
/// ordinary [`World`] dispatch, then move any cross-partition sends the
/// world staged into the executor's outbox.
struct CoreShard(DataCenterWorld);

fn drain_staged(world: &mut DataCenterWorld, outbox: &mut Outbox<Ev>) {
    if let Some(p) = &mut world.part {
        for (dst, at, ev) in p.staged.drain(..) {
            outbox.send(usize::from(dst), at, ev);
        }
    }
}

impl ShardWorld for CoreShard {
    type Event = Ev;
    type Global = InjectedEvent;

    fn handle(
        &mut self,
        now: SimTime,
        event: Ev,
        sched: &mut Scheduler<'_, Ev>,
        outbox: &mut Outbox<Ev>,
    ) {
        World::handle(&mut self.0, now, event, sched);
        drain_staged(&mut self.0, outbox);
    }

    fn apply_global(
        &mut self,
        now: SimTime,
        global: &InjectedEvent,
        sched: &mut Scheduler<'_, Ev>,
        outbox: &mut Outbox<Ev>,
    ) {
        self.0.handle_global(now, global, sched);
        drain_staged(&mut self.0, outbox);
    }
}

/// Runs a bootstrapped world + queue on the sharded engine with
/// `workers` threads, then reassembles one world for report collection.
/// Shard-layer counters land in the merged metrics (prefixed `shard_`);
/// only worker-count-independent quantities are recorded, preserving
/// bit-identical reports across worker counts.
pub(crate) fn run_sharded_experiment(
    world: DataCenterWorld,
    queue: EventQueue<Ev>,
    horizon: SimTime,
    workers: usize,
) -> ShardedRun {
    let num_switches = world.trace.topology.num_switches;
    let shards = world
        .cfg
        .shards
        .unwrap_or(DEFAULT_SHARDS)
        .min(num_switches.max(1));
    let window = world
        .cfg
        .shard_window_us
        .map(SimDuration::from_micros)
        .unwrap_or_else(|| world.lookahead_floor());
    let owner = Arc::new(partition_map(&world, shards));
    let nparts = (shards + 1) as u16; // + the hub
    let (queues, globals) = split_queue(&world, &owner, nparts, queue);
    let worlds = world.split(owner, nparts);
    let shards_in: Vec<(CoreShard, EventQueue<Ev>)> =
        worlds.into_iter().map(CoreShard).zip(queues).collect();

    let (parts, stats) = run_sharded(shards_in, globals, horizon, ShardOpts { workers, window });

    let mut events_processed = stats.globals_applied;
    let mut worlds = Vec::with_capacity(parts.len());
    for (shard, queue) in parts {
        events_processed += queue.popped_total();
        worlds.push(shard.0);
    }
    let mut world = DataCenterWorld::merge_partitions(worlds);
    world.metrics.count("shard_rounds", stats.rounds);
    world
        .metrics
        .count("shard_cross_events", stats.cross_events);
    world
        .metrics
        .count("shard_bumped_events", stats.bumped_events);
    world
        .metrics
        .count("shard_globals_applied", stats.globals_applied);
    ShardedRun {
        world,
        events_processed,
    }
}
