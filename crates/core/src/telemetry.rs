//! Versioned telemetry snapshot: one JSON schema for benches, CI and
//! future rebalancing policies to consume.
//!
//! A telemetry document bundles the aggregate [`ExperimentReport`](crate::ExperimentReport), the
//! end-of-run metric counters, the cluster plane's [`ClusterReport`](crate::ClusterReport) (when
//! present), the flight recorder's occupancy stats, the sampled engine
//! profile, and the run's phase walls. [`validate_telemetry`] checks the
//! structural contract so CI can round-trip what the engine wrote.

use lazyctrl_obs::intern::subsys;
use lazyctrl_obs::json::Value;

use crate::experiment::DetailedRun;
use crate::world::EVENT_KIND_NAMES;

/// Telemetry document schema version. Bump on breaking shape changes.
pub const TELEMETRY_SCHEMA: u64 = 1;

fn num(n: f64) -> Value {
    Value::Num(n)
}

fn nums_u64(xs: impl IntoIterator<Item = u64>) -> Value {
    Value::Arr(xs.into_iter().map(|x| num(x as f64)).collect())
}

fn series(points: &[crate::report::SeriesPoint]) -> Value {
    Value::Arr(
        points
            .iter()
            .map(|p| Value::obj(vec![("hour", num(p.hour)), ("value", num(p.value))]))
            .collect(),
    )
}

/// Render a finished run as a versioned telemetry document.
pub fn telemetry_json(run: &DetailedRun) -> Value {
    let r = &run.report;
    let mut pairs = vec![
        ("schema", num(TELEMETRY_SCHEMA as f64)),
        ("mode", Value::Str(r.mode.clone())),
        ("trace", Value::Str(r.trace.clone())),
        (
            "report",
            Value::obj(vec![
                ("controller_messages", num(r.controller_messages as f64)),
                ("packet_ins", num(r.packet_ins as f64)),
                ("flows_started", num(r.flows_started as f64)),
                ("delivered_flows", num(r.delivered_flows as f64)),
                ("events_processed", num(r.events_processed as f64)),
                ("mean_latency_ms", num(r.mean_latency_ms)),
                ("p99_latency_ms", num(r.p99_latency_ms)),
                ("p999_latency_ms", num(r.p999_latency_ms)),
                ("max_gfib_bytes", num(r.max_gfib_bytes as f64)),
                (
                    "num_groups",
                    r.num_groups.map_or(Value::Null, |n| num(n as f64)),
                ),
                ("final_winter", r.final_winter.map_or(Value::Null, num)),
                ("workload_rps", series(&r.workload_rps)),
                ("latency_ms", series(&r.latency_ms)),
                ("updates_per_hour", series(&r.updates_per_hour)),
            ]),
        ),
        (
            "counters",
            Value::Obj(
                run.counters
                    .iter()
                    .map(|(k, v)| (k.clone(), num(*v as f64)))
                    .collect(),
            ),
        ),
        (
            "phases",
            Value::obj(vec![
                ("build_s", num(run.phases.build_s)),
                ("run_s", num(run.phases.run_s)),
                ("report_s", num(run.phases.report_s)),
            ]),
        ),
    ];
    if let Some(c) = &r.cluster {
        pairs.push((
            "cluster",
            Value::obj(vec![
                ("controllers", num(c.controllers as f64)),
                ("dissemination", Value::Str(c.dissemination.clone())),
                (
                    "requests_per_controller",
                    nums_u64(c.requests_per_controller.iter().copied()),
                ),
                (
                    "peer_sync_messages",
                    nums_u64(c.peer_sync_messages.iter().copied()),
                ),
                (
                    "peer_sync_bytes",
                    nums_u64(c.peer_sync_bytes.iter().copied()),
                ),
                ("rebalance_transfers", num(c.rebalance_transfers as f64)),
                ("failover_transfers", num(c.failover_transfers as f64)),
                ("ctrl_peer_messages", num(c.ctrl_peer_messages as f64)),
                ("setups_shed", nums_u64(c.setups_shed.iter().copied())),
                (
                    "queue_highwater",
                    nums_u64(c.queue_highwater.iter().copied()),
                ),
                (
                    "congestion_signals",
                    nums_u64(c.congestion_signals.iter().copied()),
                ),
                (
                    "confirmed_dead",
                    nums_u64(c.confirmed_dead.iter().map(|&d| d as u64)),
                ),
            ]),
        ));
    }
    if let Some(obs) = &run.obs {
        pairs.push((
            "recorder",
            Value::obj(vec![
                ("capacity", num(obs.stats.capacity as f64)),
                ("recorded", num(obs.stats.recorded as f64)),
                ("retained", num(obs.stats.retained as f64)),
                ("dropped", num(obs.stats.dropped as f64)),
            ]),
        ));
        let kinds: Vec<Value> = obs
            .profile
            .kind_profiles()
            .iter()
            .map(|k| {
                Value::obj(vec![
                    (
                        "kind",
                        Value::Str(EVENT_KIND_NAMES[k.kind as usize].to_string()),
                    ),
                    ("subsys", Value::Str(subsys::name(k.subsys).to_string())),
                    ("count", num(k.count as f64)),
                    ("sampled", num(k.ns.len() as f64)),
                    ("mean_ns", k.ns.mean().map_or(Value::Null, num)),
                    ("p99_ns", k.ns.quantile(0.99).map_or(Value::Null, num)),
                ])
            })
            .collect();
        pairs.push((
            "profile",
            Value::obj(vec![
                ("samples", num(obs.profile.samples() as f64)),
                ("total_events", num(obs.profile.total_events() as f64)),
                ("kinds", Value::Arr(kinds)),
            ]),
        ));
    }
    Value::obj(pairs)
}

/// Validate a parsed telemetry document against the schema contract.
pub fn validate_telemetry(doc: &Value) -> Result<(), String> {
    let schema = doc
        .get("schema")
        .and_then(|v| v.as_f64())
        .ok_or("missing numeric `schema`")?;
    if schema != TELEMETRY_SCHEMA as f64 {
        return Err(format!(
            "schema version {schema} != supported {TELEMETRY_SCHEMA}"
        ));
    }
    for key in ["mode", "trace"] {
        doc.get(key)
            .and_then(|v| v.as_str())
            .ok_or_else(|| format!("missing string `{key}`"))?;
    }
    let report = doc.get("report").ok_or("missing `report`")?;
    for key in [
        "controller_messages",
        "packet_ins",
        "flows_started",
        "delivered_flows",
        "events_processed",
        "mean_latency_ms",
    ] {
        report
            .get(key)
            .and_then(|v| v.as_f64())
            .ok_or_else(|| format!("missing numeric `report.{key}`"))?;
    }
    let phases = doc.get("phases").ok_or("missing `phases`")?;
    for key in ["build_s", "run_s", "report_s"] {
        phases
            .get(key)
            .and_then(|v| v.as_f64())
            .ok_or_else(|| format!("missing numeric `phases.{key}`"))?;
    }
    if !matches!(doc.get("counters"), Some(Value::Obj(_))) {
        return Err("missing object `counters`".to_string());
    }
    if let Some(recorder) = doc.get("recorder") {
        for key in ["capacity", "recorded", "retained", "dropped"] {
            recorder
                .get(key)
                .and_then(|v| v.as_f64())
                .ok_or_else(|| format!("missing numeric `recorder.{key}`"))?;
        }
        let profile = doc.get("profile").ok_or("recorder without `profile`")?;
        profile
            .get("kinds")
            .and_then(|v| v.as_arr())
            .ok_or("missing array `profile.kinds`")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ControlMode, Experiment, ExperimentConfig};
    use lazyctrl_obs::{json, ObsConfig};
    use lazyctrl_trace::realistic::{generate, RealTraceConfig};

    fn tiny_run(obs: ObsConfig) -> DetailedRun {
        let mut cfg = RealTraceConfig::small();
        cfg.num_flows = 500;
        let trace = generate(&cfg);
        Experiment::new(
            trace,
            ExperimentConfig::new(ControlMode::LazyDynamic)
                .with_group_size_limit(10)
                .with_obs(obs),
        )
        .run_detailed()
    }

    #[test]
    fn telemetry_round_trips_and_validates() {
        let run = tiny_run(ObsConfig::full());
        let doc = telemetry_json(&run);
        let text = doc.to_json_pretty();
        let parsed = json::parse(&text).expect("telemetry parses");
        assert_eq!(parsed, doc);
        validate_telemetry(&parsed).expect("telemetry validates");
        assert!(parsed.get("recorder").is_some(), "obs run exports recorder");
        assert!(parsed.get("profile").is_some());
    }

    #[test]
    fn telemetry_without_obs_still_validates() {
        let run = tiny_run(ObsConfig::default());
        assert!(run.obs.is_none());
        let doc = telemetry_json(&run);
        let parsed = json::parse(&doc.to_json()).unwrap();
        validate_telemetry(&parsed).expect("validates without recorder");
        assert!(parsed.get("recorder").is_none());
    }

    #[test]
    fn validate_rejects_wrong_schema() {
        let doc = Value::obj(vec![("schema", Value::Num(999.0))]);
        assert!(validate_telemetry(&doc).is_err());
    }
}
