//! The simulated data center: switches + controller + links as one
//! [`World`] for the discrete-event kernel.

use std::collections::HashSet;

use lazyctrl_cluster::{
    ctrl_pseudo_switch, ClusterConfig, ClusterControlPlane, ClusterOutput, ClusterTimer, StepModel,
};
use lazyctrl_controller::{
    BaselineController, ControllerOutput, ControllerTimer, LazyConfig, LazyController,
};
use lazyctrl_net::{
    EncapsulatedFrame, EtherType, EthernetFrame, HostId, MacAddr, PortNo, SwitchId, TenantId,
    VlanTag,
};
use lazyctrl_obs::{
    dst_trace_id,
    intern::{kind as tk, subsys as ts},
    pair_trace_id, EngineProfile, FlightRecorder,
};
use lazyctrl_proto::{InjectedEvent, LazyMsg, Message, OfMessage, OutputSink};
use lazyctrl_sim::{
    BandwidthModel, ChannelClass, LatencyModel, LinkId, LinkState, MetricsSink, Scheduler,
    SimDuration, SimTime, World,
};
use lazyctrl_switch::{EdgeSwitch, SwitchOutput, SwitchTimer};
use lazyctrl_trace::Trace;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{ControlMode, ExperimentConfig};

/// Events driving the simulated data center.
#[derive(Debug)]
pub(crate) enum Ev {
    /// The i-th flow of the trace starts: its first packet enters the
    /// ingress switch.
    FlowArrival(usize),
    /// A synthetic frame (ARP reply, response flow) enters a switch from a
    /// local host.
    LocalFrame {
        /// The ingress switch.
        switch: SwitchId,
        /// Ingress port.
        port: PortNo,
        /// The frame.
        frame: EthernetFrame,
    },
    /// An encapsulated packet crosses the underlay.
    TunnelArrive {
        /// The egress switch.
        to: SwitchId,
        /// The packet.
        packet: EncapsulatedFrame,
    },
    /// A control-channel message reaches a switch.
    MsgToSwitch {
        /// Receiving switch.
        to: SwitchId,
        /// Sender (`SwitchId::CONTROLLER` for the controller).
        from: SwitchId,
        /// The message.
        msg: Message,
    },
    /// A message reaches the controller.
    MsgToController {
        /// Sending switch.
        from: SwitchId,
        /// The message.
        msg: Message,
    },
    /// A switch timer fires.
    SwitchTimer {
        /// The switch.
        switch: SwitchId,
        /// Which timer.
        timer: SwitchTimer,
    },
    /// A controller timer fires.
    ControllerTimer(ControllerTimer),
    /// A controller-to-controller message crosses the ctrl-peer link
    /// (cluster runs only).
    CtrlPeerMsg {
        /// Sending cluster member.
        from: u32,
        /// Receiving cluster member.
        to: u32,
        /// The message.
        msg: Message,
    },
    /// A cluster timer fires (cluster runs only).
    ClusterTimer(ClusterTimer),
    /// A fault/workload event from the experiment's `EventPlan`
    /// (controller/switch crashes, link degradation, migrations, bursts)
    /// reaches its injection time.
    Injected(InjectedEvent),
    /// A synthetic flow from an injected traffic burst starts: its first
    /// packet enters the ingress switch, exactly like a trace flow.
    SyntheticFlow {
        /// Source host.
        src: HostId,
        /// Destination host.
        dst: HostId,
    },
}

/// Display names of the dense event kinds (`Ev::kind_idx` order) —
/// the vocabulary of the engine profiler's per-kind rows.
pub const EVENT_KIND_NAMES: [&str; 11] = [
    "flow_arrival",
    "local_frame",
    "tunnel_arrive",
    "msg_to_switch",
    "msg_to_controller",
    "switch_timer",
    "controller_timer",
    "ctrl_peer_msg",
    "cluster_timer",
    "injected",
    "synthetic_flow",
];

/// Subsystem attribution per dense event kind (same order as
/// [`EVENT_KIND_NAMES`]), using `lazyctrl_obs::intern::subsys` IDs.
pub const EVENT_KIND_SUBSYS: [u16; 11] = [
    ts::WORLD,      // flow_arrival
    ts::SWITCH,     // local_frame
    ts::SWITCH,     // tunnel_arrive
    ts::SWITCH,     // msg_to_switch
    ts::CONTROLLER, // msg_to_controller
    ts::SWITCH,     // switch_timer
    ts::CONTROLLER, // controller_timer
    ts::CLUSTER,    // ctrl_peer_msg
    ts::CLUSTER,    // cluster_timer
    ts::WORLD,      // injected
    ts::WORLD,      // synthetic_flow
];

impl Ev {
    /// Dense kind index for profiling/tracing (see [`EVENT_KIND_NAMES`]).
    fn kind_idx(&self) -> u32 {
        match self {
            Ev::FlowArrival(_) => 0,
            Ev::LocalFrame { .. } => 1,
            Ev::TunnelArrive { .. } => 2,
            Ev::MsgToSwitch { .. } => 3,
            Ev::MsgToController { .. } => 4,
            Ev::SwitchTimer { .. } => 5,
            Ev::ControllerTimer(_) => 6,
            Ev::CtrlPeerMsg { .. } => 7,
            Ev::ClusterTimer(_) => 8,
            Ev::Injected(_) => 9,
            Ev::SyntheticFlow { .. } => 10,
        }
    }
}

/// The per-run observability state: flight recorder + sampling profiler.
/// Boxed behind an `Option` on the world so the disabled path costs one
/// `is_none` branch per event and zero memory beyond the pointer.
pub(crate) struct WorldObs {
    pub(crate) recorder: FlightRecorder,
    pub(crate) profile: EngineProfile,
}

/// Flow-correlation ID for a raw frame's (src, dst) MAC pair: the pair ID
/// when both are synthetic host MACs, the dst-only ID when only the
/// destination is, `0` otherwise (ARP broadcasts, control traffic).
fn mac_pair_trace_id(src: MacAddr, dst: MacAddr) -> u64 {
    match (src.host_id(), dst.host_id()) {
        (Some(s), Some(d)) => pair_trace_id(s, d),
        (None, Some(d)) => dst_trace_id(d),
        _ => 0,
    }
}

/// Flow-correlation ID for raw packet bytes (Ethernet layout: dst 6B,
/// src 6B) as carried by PacketIn/PacketOut.
fn packet_bytes_trace_id(data: &[u8]) -> u64 {
    if data.len() < 12 {
        return 0;
    }
    let dst = MacAddr::new(data[0..6].try_into().expect("6 bytes"));
    let src = MacAddr::new(data[6..12].try_into().expect("6 bytes"));
    mac_pair_trace_id(src, dst)
}

/// Flow-correlation ID for a control-plane message: PacketIn/PacketOut
/// join by the punted frame's MAC pair, FlowMods by their match fields
/// (controllers install `to_dst` rules, so these are dst-joinable).
fn message_trace_id(msg: &Message) -> u64 {
    match msg.as_of() {
        Some(OfMessage::PacketIn(pi)) => packet_bytes_trace_id(&pi.data),
        Some(OfMessage::PacketOut(po)) => packet_bytes_trace_id(&po.data),
        Some(OfMessage::FlowMod(fm)) => {
            let src = fm.flow_match.dl_src.and_then(|m| m.host_id());
            let dst = fm.flow_match.dl_dst.and_then(|m| m.host_id());
            match (src, dst) {
                (Some(s), Some(d)) => pair_trace_id(s, d),
                (_, Some(d)) => dst_trace_id(d),
                _ => 0,
            }
        }
        _ => 0,
    }
}

/// Trace-record kind for a message headed to the controller.
fn to_controller_kind(msg: &Message) -> u16 {
    match msg.as_of() {
        Some(OfMessage::PacketIn(_)) => tk::PACKET_IN_SENT,
        _ => tk::MSG_TO_CONTROLLER,
    }
}

/// Trace-record kind for a message headed to a switch.
fn to_switch_kind(msg: &Message) -> u16 {
    if let Some(lazyctrl_proto::LazyMsg::CongestionNotice(_)) = msg.as_lazy() {
        return tk::CONGESTION_NOTICE;
    }
    match msg.as_of() {
        Some(OfMessage::FlowMod(_)) => tk::FLOW_MOD_SENT,
        Some(OfMessage::PacketOut(_)) => tk::PACKET_OUT_SENT,
        _ => tk::MSG_TO_SWITCH,
    }
}

/// Any control-plane flavour behind one dispatch surface.
pub(crate) enum AnyController {
    Baseline(BaselineController),
    Lazy(Box<LazyController>),
    /// A sharded multi-controller cluster; its outputs are dispatched by
    /// [`DataCenterWorld::dispatch_cluster_outputs`] (per-member service
    /// times, ctrl-peer links).
    Cluster(Box<ClusterControlPlane>),
}

impl AnyController {
    fn on_timer(
        &mut self,
        now_ns: u64,
        timer: ControllerTimer,
        out: &mut OutputSink<ControllerOutput>,
    ) {
        match self {
            AnyController::Baseline(_) | AnyController::Cluster(_) => {}
            AnyController::Lazy(c) => c.on_timer(now_ns, timer, out),
        }
    }

    fn service_time_ns(&self, now_ns: u64) -> u64 {
        match self {
            AnyController::Baseline(c) => c.meter().service_time_ns(now_ns),
            AnyController::Lazy(c) => c.meter().service_time_ns(now_ns),
            // Unused: the cluster path computes per-member service times.
            AnyController::Cluster(_) => 0,
        }
    }

    pub(crate) fn lazy(&self) -> Option<&LazyController> {
        match self {
            AnyController::Lazy(c) => Some(c),
            AnyController::Baseline(_) | AnyController::Cluster(_) => None,
        }
    }

    pub(crate) fn cluster(&self) -> Option<&ClusterControlPlane> {
        match self {
            AnyController::Cluster(c) => Some(c),
            _ => None,
        }
    }
}

/// Partition context for the sharded engine (`cfg.workers`): present only
/// on worlds produced by [`DataCenterWorld::split`]. Partition 0 is the
/// *hub* — it owns the entire control plane plus its share of switches;
/// partitions 1.. own switches only. The owner map is a placement
/// function over switch IDs, fixed for the whole run (migrations and
/// regroups do not re-shard; see the forwarding checks in
/// `dispatch_event`).
pub(crate) struct PartitionCtx {
    /// This partition's index (0 = hub).
    pub(crate) id: u16,
    /// `owner[switch] = partition index` for every switch.
    pub(crate) owner: std::sync::Arc<Vec<u16>>,
    /// Cross-partition sends staged during the current event; drained
    /// into the shard executor's outbox after each handler.
    pub(crate) staged: Vec<(u16, SimTime, Ev)>,
    /// RNG used while applying *global* (injected) events. Identically
    /// seeded on every partition and only ever advanced by globals —
    /// which all partitions apply in lockstep — so replicated draws
    /// (migration targets, burst pairs) agree everywhere by construction.
    pub(crate) global_rng: StdRng,
}

/// Per-switch controller re-homing state (hub only, cluster mode).
///
/// A switch cannot observe network reachability directly — it observes
/// silence. This models the detection lag: the first blocked message
/// starts a timer, messages during the detection window are lost, and
/// once the deadline passes the switch steers its controller traffic to
/// a reachable stand-in member. While re-homed it periodically re-probes
/// its true owner with jittered exponential backoff, so a healed fabric
/// is rejoined without a thundering herd of simultaneous returns.
#[derive(Debug, Clone, Copy)]
struct RehomeState {
    /// When the owner first became unreachable for this switch (ns).
    blocked_since_ns: u64,
    /// Stand-in member carrying the traffic, once detection fired.
    standin: Option<u32>,
    /// Next owner re-probe time (ns); before it, a re-homed switch keeps
    /// using the stand-in even if the owner is reachable again.
    next_probe_ns: u64,
    /// Failed owner probes since re-homing (drives the backoff).
    attempts: u32,
}

/// Where a switch's controller-bound message lands under the current
/// reachability map (cluster mode; decided at the hub, which owns both
/// the ownership map and the re-homing state).
enum CtrlRoute {
    /// Normal path: the plane routes by group ownership.
    Owner,
    /// Owner unreachable and no stand-in available (or detection still
    /// pending): the message is lost in the partition.
    Lost,
    /// Re-homed: deliver at this stand-in member.
    Standin(u32),
}

/// The composed simulation state.
pub(crate) struct DataCenterWorld {
    pub(crate) cfg: ExperimentConfig,
    pub(crate) trace: Trace,
    /// Slot per switch; `None` for switches owned by another partition
    /// (always all `Some` on the single-threaded path and after merge).
    pub(crate) switches: Vec<Option<EdgeSwitch>>,
    pub(crate) controller: AnyController,
    pub(crate) links: LinkState,
    latency: LatencyModel,
    /// Fair-share bandwidth model pricing *load* on capacitated links
    /// (serialization + queueing, closed-form, zero RNG). Cloned into
    /// every partition at `split` — sound because each directed link's
    /// sender dispatches in exactly one partition, so its watermark is
    /// only ever touched there.
    bandwidth: BandwidthModel,
    rng: StdRng,
    pub(crate) metrics: MetricsSink,
    /// Port of each host on its switch.
    host_port: Vec<PortNo>,
    /// Next free port per switch (migrated hosts get a fresh port at
    /// their new switch, as a re-plugged VM would).
    next_port: Vec<u16>,
    /// Host-level pairs that have exchanged traffic (for fresh-pair logic).
    seen_pairs: HashSet<(u32, u32)>,
    /// Pairs whose response frame has been generated.
    responded: HashSet<(u32, u32)>,
    workload_bucket: SimDuration,
    /// Periodic switch-timer chains severed while a switch was powered
    /// off (the firing was dropped); re-armed on recovery.
    severed_timers: std::collections::BTreeSet<(u32, SwitchTimer)>,
    /// Cache of updates_applied to detect regroup events.
    last_updates_applied: u64,
    /// Per-flow latency log: ((src host, dst host, emit ns), latency ms).
    pub(crate) flow_latencies: Vec<((u32, u32, u64), f64)>,
    /// Reusable output scratch buffers, one per handler family: every
    /// event's outputs are pushed here by the state machines and drained
    /// in place by the dispatcher — zero steady-state allocation on the
    /// per-event path (see `DESIGN.md` §7).
    switch_sink: OutputSink<SwitchOutput>,
    ctrl_sink: OutputSink<ControllerOutput>,
    cluster_sink: OutputSink<ClusterOutput>,
    /// Cluster state fingerprints captured at every injected controller
    /// crash/recovery (the schedule-sensitive moments). Reported as
    /// checkpoints so determinism tests can localize a divergence to the
    /// first checkpoint that differs instead of diffing whole reports.
    pub(crate) cluster_fingerprints: Vec<u64>,
    /// Controller re-homing state per switch (see [`RehomeState`]).
    /// Populated only at the hub, where controller-bound traffic lands.
    rehome: std::collections::BTreeMap<u32, RehomeState>,
    /// Flight recorder + profiler, present only when `cfg.obs.enabled`.
    /// Strictly read-only observers: nothing here may touch the RNG,
    /// scheduling, or any quantity that feeds the report.
    pub(crate) obs: Option<Box<WorldObs>>,
    /// Sharded-engine partition context; `None` on the single-threaded
    /// path, where every routing helper degenerates to a local schedule.
    pub(crate) part: Option<Box<PartitionCtx>>,
}

impl DataCenterWorld {
    pub(crate) fn new(trace: Trace, mut cfg: ExperimentConfig) -> Self {
        cfg.validate();
        // Checked once here so the per-message latency sampling can skip
        // the assertion.
        cfg.latency.validate();
        let n = trace.topology.num_switches;
        let mut switches: Vec<EdgeSwitch> = (0..n)
            .map(|i| {
                let mut sw = EdgeSwitch::new(SwitchId::new(i as u32));
                sw.report_false_positives = cfg.report_false_positives;
                sw.datapath_learning = cfg.mode.is_lazy();
                sw
            })
            .collect();

        // Host → port mapping (dense per switch), and bootstrap L-FIB
        // population for lazy modes: the paper's hosts announce themselves
        // via ARP broadcast at bootstrap (§III-D.3 live dissemination).
        let mut next_port = vec![1u16; n];
        let mut host_port = Vec::with_capacity(trace.topology.num_hosts());
        let mut boot_sink = OutputSink::new();
        for h in 0..trace.topology.num_hosts() {
            let host = HostId::new(h as u32);
            let s = trace.topology.switch_of(host);
            let port = PortNo::new(next_port[s.index()]);
            next_port[s.index()] += 1;
            host_port.push(port);
            if cfg.mode.is_lazy() {
                let frame = gratuitous_announcement(host, trace.topology.tenant_of(host));
                // Learning only; the announcement itself produces no output
                // before group assignment.
                switches[s.index()].handle_local_frame(0, port, frame, &mut boot_sink);
                boot_sink.clear();
            }
        }

        let ids: Vec<SwitchId> = (0..n as u32).map(SwitchId::new).collect();
        let controller = match (cfg.mode, cfg.cluster_controllers) {
            (ControlMode::Baseline, _) => AnyController::Baseline(BaselineController::new(ids)),
            (mode, maybe_cluster) => {
                let lazy_cfg = LazyConfig {
                    sync_interval_ms: cfg.sync_interval_ms,
                    keepalive_interval_ms: cfg.keepalive_interval_ms,
                    group_size_limit: cfg.group_size_limit,
                    triggers: cfg.triggers,
                    dynamic_updates: mode == ControlMode::LazyDynamic,
                    enable_arp_blocking: true,
                    enable_preload: cfg.preload,
                    flow_idle_timeout_s: 30,
                    sgi_parallelism: cfg.sgi_parallelism,
                    seed: cfg.seed,
                };
                match maybe_cluster {
                    Some(members) => {
                        let mut cluster_cfg = ClusterConfig {
                            num_controllers: members,
                            dissemination: cfg.cluster_dissemination,
                            lazy: lazy_cfg,
                            ..ClusterConfig::default()
                        };
                        if let Some(ms) = cfg.cluster_flush_interval_ms {
                            cluster_cfg.replica_flush_interval_ms = ms;
                            // Digests that fire faster than deltas can
                            // circulate only trigger redundant catch-up;
                            // keep anti-entropy slower than the flush.
                            cluster_cfg.anti_entropy_interval_ms =
                                cluster_cfg.anti_entropy_interval_ms.max(2 * ms);
                        }
                        if let Some(slots) = cfg.cluster_ingress_slots {
                            cluster_cfg.ingress_queue_slots = slots;
                        }
                        if let Some(cost) = cfg.cluster_ingress_cost_ns {
                            cluster_cfg.ingress_cost_ns = cost;
                        }
                        AnyController::Cluster(Box::new(ClusterControlPlane::new(n, cluster_cfg)))
                    }
                    None => AnyController::Lazy(Box::new(LazyController::new(ids, lazy_cfg))),
                }
            }
        };

        let workload_bucket = SimDuration::from_secs_f64(cfg.bucket_hours * 3600.0);
        let obs = cfg.obs.enabled.then(|| {
            Box::new(WorldObs {
                recorder: FlightRecorder::new(cfg.obs.ring_capacity),
                profile: EngineProfile::new(
                    EVENT_KIND_NAMES.len(),
                    EVENT_KIND_SUBSYS.to_vec(),
                    cfg.obs.profile_sample_every,
                ),
            })
        });
        DataCenterWorld {
            rng: StdRng::seed_from_u64(cfg.seed ^ 0x57a7e),
            // The live (fault-degradable) latency model moves out of the
            // config instead of being cloned; the config copy is not read
            // again after world construction.
            latency: std::mem::take(&mut cfg.latency),
            // Same move-out as the latency model: the live (per-link
            // watermark) copy is the world's, not the config's.
            bandwidth: std::mem::take(&mut cfg.bandwidth),
            cfg,
            trace,
            switches: switches.into_iter().map(Some).collect(),
            controller,
            links: LinkState::new(),
            metrics: MetricsSink::new(),
            host_port,
            next_port,
            seen_pairs: HashSet::new(),
            responded: HashSet::new(),
            workload_bucket,
            severed_timers: std::collections::BTreeSet::new(),
            last_updates_applied: 0,
            flow_latencies: Vec::new(),
            switch_sink: boot_sink,
            ctrl_sink: OutputSink::new(),
            cluster_sink: OutputSink::new(),
            cluster_fingerprints: Vec::new(),
            rehome: std::collections::BTreeMap::new(),
            obs,
            part: None,
        }
    }

    /// Runs the control plane's bootstrap (IniGroup from the leading
    /// window of the trace) and dispatches its outputs at t=0.
    pub(crate) fn bootstrap(&mut self, sched: &mut Scheduler<'_, Ev>) {
        if matches!(self.controller, AnyController::Baseline(_)) {
            return;
        }
        let window_ns = SimTime::from_hours(self.cfg.bootstrap_hours).as_nanos();
        let graph = if window_ns == 0 {
            lazyctrl_partition::WeightedGraph::new(self.trace.topology.num_switches)
        } else {
            lazyctrl_trace::IntensityMatrix::from_trace_window(&self.trace, 0, window_ns.max(1))
                .to_graph()
        };
        match &mut self.controller {
            AnyController::Lazy(controller) => {
                controller.bootstrap(0, graph, &mut self.ctrl_sink);
                self.dispatch_controller_outputs(SimTime::ZERO, sched);
            }
            AnyController::Cluster(plane) => {
                plane.bootstrap(0, graph, &mut self.cluster_sink);
                self.dispatch_cluster_outputs(SimTime::ZERO, sched);
            }
            AnyController::Baseline(_) => unreachable!("filtered above"),
        }
    }

    pub(crate) fn port_of(&self, host: HostId) -> PortNo {
        self.host_port[host.index()]
    }

    /// Builds a flow's first packet; the emission timestamp rides in the
    /// payload so delivery latency is measured exactly, with no ambiguity
    /// when copies are dropped or pairs repeat.
    fn frame_for_flow(&self, src: HostId, dst: HostId, emit_ns: u64) -> EthernetFrame {
        EthernetFrame::tagged(
            src.mac(),
            dst.mac(),
            VlanTag::for_tenant(self.trace.topology.tenant_of(src)),
            EtherType::IPV4,
            // One shared buffer per flow; every copy the fabric makes of
            // this frame from here on is a refcount bump.
            emit_ns.to_be_bytes(),
        )
    }

    fn note_emission(&mut self, _now: SimTime, _frame: &EthernetFrame) {
        self.metrics.count("frames_emitted", 1);
    }

    fn note_delivery(&mut self, now: SimTime, frame: &EthernetFrame) {
        // The emission timestamp rides in the payload (see
        // `frame_for_flow`), so the sample is exact per delivered packet.
        if frame.ethertype != EtherType::IPV4 || frame.payload.len() != 8 {
            return;
        }
        let emit_ns = u64::from_be_bytes(frame.payload[..8].try_into().expect("8 bytes"));
        if emit_ns > now.as_nanos() {
            return;
        }
        let ms = (now.as_nanos() - emit_ns) as f64 / 1e6;
        if let Some(obs) = &mut self.obs {
            obs.recorder.record(
                now.as_nanos(),
                mac_pair_trace_id(frame.src, frame.dst),
                tk::FRAME_DELIVERED,
                ts::SWITCH,
                0,
                0,
            );
        }
        self.metrics
            .series_mut("latency_ms", self.workload_bucket)
            .record(now, ms);
        // Log2 buckets + exact sum/count: bounded memory over 67 M-event
        // runs, and `mean()` accumulates in the same order as the old
        // full-sample histogram did, so reports are unchanged.
        self.metrics.log2_histogram_mut("latency_all_ms").record(ms);
        self.metrics.count("delivered_flows", 1);
        if self.cfg.record_flow_latencies {
            if let (Some(s), Some(d)) = (frame.src.host_id(), frame.dst.host_id()) {
                self.flow_latencies
                    .push(((s as u32, d as u32, emit_ns), ms));
            }
        }
    }

    /// Drains the switch scratch sink: schedule deliveries with channel
    /// latencies, record local deliveries, arm timers. The buffer's
    /// allocation returns to the sink afterwards, so steady-state dispatch
    /// never touches the heap.
    fn dispatch_switch_outputs(
        &mut self,
        now: SimTime,
        from: SwitchId,
        sched: &mut Scheduler<'_, Ev>,
    ) {
        let mut buf = self.switch_sink.take_buf();
        for out in buf.drain(..) {
            match out {
                SwitchOutput::ToController(msg) => {
                    let link = LinkId::new(from.0, SwitchId::CONTROLLER.0, ChannelClass::Control);
                    if self.links.delivers(link, &mut self.rng) {
                        if let Some(obs) = &mut self.obs {
                            obs.recorder.record(
                                now.as_nanos(),
                                message_trace_id(&msg),
                                to_controller_kind(&msg),
                                ts::SWITCH,
                                from.0,
                                0,
                            );
                        }
                        let mut delay = self.latency.sample(ChannelClass::Control, &mut self.rng);
                        if self.bandwidth.class_enabled(ChannelClass::Control) {
                            delay += self.bandwidth.delay(link, msg.wire_len() as u64, now);
                        }
                        self.route_to_hub(now, delay, Ev::MsgToController { from, msg }, sched);
                    }
                }
                SwitchOutput::ToState(msg) => {
                    let link = LinkId::new(from.0, SwitchId::CONTROLLER.0, ChannelClass::State);
                    if self.links.delivers(link, &mut self.rng) {
                        if let Some(obs) = &mut self.obs {
                            obs.recorder.record(
                                now.as_nanos(),
                                0,
                                tk::MSG_TO_CONTROLLER,
                                ts::SWITCH,
                                from.0,
                                1,
                            );
                        }
                        let mut delay = self.latency.sample(ChannelClass::State, &mut self.rng);
                        if self.bandwidth.class_enabled(ChannelClass::State) {
                            delay += self.bandwidth.delay(link, msg.wire_len() as u64, now);
                        }
                        self.route_to_hub(now, delay, Ev::MsgToController { from, msg }, sched);
                    }
                }
                SwitchOutput::ToPeer(to, msg) => {
                    let link = LinkId::new(from.0, to.0, ChannelClass::Peer);
                    if self.links.delivers(link, &mut self.rng) {
                        if let Some(obs) = &mut self.obs {
                            obs.recorder.record(
                                now.as_nanos(),
                                0,
                                tk::MSG_TO_SWITCH,
                                ts::SWITCH,
                                from.0,
                                to.0,
                            );
                        }
                        let mut delay = self.latency.sample(ChannelClass::Peer, &mut self.rng);
                        if self.bandwidth.class_enabled(ChannelClass::Peer) {
                            delay += self.bandwidth.delay(link, msg.wire_len() as u64, now);
                        }
                        self.route_to_switch(
                            now,
                            delay,
                            to,
                            Ev::MsgToSwitch { to, from, msg },
                            sched,
                        );
                    }
                }
                SwitchOutput::Tunnel(to, packet) => {
                    let link = LinkId::new(from.0, to.0, ChannelClass::Data);
                    if self.links.delivers(link, &mut self.rng) {
                        if let Some(obs) = &mut self.obs {
                            obs.recorder.record(
                                now.as_nanos(),
                                mac_pair_trace_id(packet.inner.src, packet.inner.dst),
                                tk::TUNNEL_SENT,
                                ts::SWITCH,
                                from.0,
                                to.0,
                            );
                        }
                        let mut delay = self.latency.sample(ChannelClass::Data, &mut self.rng);
                        if self.bandwidth.class_enabled(ChannelClass::Data) {
                            delay += self.bandwidth.delay(link, packet.wire_len() as u64, now);
                        }
                        self.route_to_switch(
                            now,
                            delay,
                            to,
                            Ev::TunnelArrive { to, packet },
                            sched,
                        );
                    }
                }
                SwitchOutput::DeliverLocal(_port, frame) => {
                    self.note_delivery(now, &frame);
                    self.maybe_respond(now, &frame, sched);
                }
                SwitchOutput::FloodLocal(frame) => {
                    self.handle_flood(now, from, frame, sched);
                }
                SwitchOutput::SetTimer(timer, delay_ns) => {
                    sched.schedule_in(
                        now,
                        SimDuration::from_nanos(delay_ns),
                        Ev::SwitchTimer {
                            switch: from,
                            timer,
                        },
                    );
                }
            }
        }
        self.switch_sink.put_back(buf);
    }

    /// A local flood: unicast frames reach their host if it lives here;
    /// ARP requests draw a reply from the target host if it lives here.
    fn handle_flood(
        &mut self,
        now: SimTime,
        at: SwitchId,
        frame: EthernetFrame,
        sched: &mut Scheduler<'_, Ev>,
    ) {
        if frame.dst.is_unicast() {
            if let Some(h) = frame.dst.host_id() {
                let host = HostId::new(h as u32);
                if (host.index()) < self.trace.topology.num_hosts()
                    && self.trace.topology.switch_of(host) == at
                {
                    self.note_delivery(now, &frame);
                    self.maybe_respond(now, &frame, sched);
                }
            }
            return;
        }
        // Broadcast: ARP requests get answered by a local target.
        let Some(arp) = frame.as_arp() else {
            return;
        };
        if arp.op != lazyctrl_net::ArpOp::Request {
            return;
        }
        let Some(target) = HostId::from_ip(arp.target_ip) else {
            return;
        };
        if target.index() >= self.trace.topology.num_hosts()
            || self.trace.topology.switch_of(target) != at
        {
            return;
        }
        let reply = lazyctrl_net::ArpPacket::reply_to(&arp, target.mac());
        let reply_frame = EthernetFrame::tagged(
            target.mac(),
            arp.sender_mac,
            VlanTag::for_tenant(self.trace.topology.tenant_of(target)),
            EtherType::ARP,
            reply.encode(),
        );
        let port = self.port_of(target);
        // Host think time ≈ 100 µs.
        sched.schedule_in(
            now,
            SimDuration::from_micros(100),
            Ev::LocalFrame {
                switch: at,
                port,
                frame: reply_frame,
            },
        );
    }

    /// First delivery of a fresh pair triggers the destination's response
    /// frame (reverse-path learning).
    fn maybe_respond(
        &mut self,
        now: SimTime,
        frame: &EthernetFrame,
        sched: &mut Scheduler<'_, Ev>,
    ) {
        if !self.cfg.responses {
            return;
        }
        let (Some(s), Some(d)) = (frame.src.host_id(), frame.dst.host_id()) else {
            return;
        };
        if frame.ethertype != EtherType::IPV4 {
            return;
        }
        let key = ((s as u32).min(d as u32), (s as u32).max(d as u32));
        if !self.responded.insert(key) {
            return;
        }
        let dst_host = HostId::new(d as u32);
        if dst_host.index() >= self.trace.topology.num_hosts() {
            return;
        }
        let emit = now + SimDuration::from_micros(200);
        let response = self.frame_for_flow(dst_host, HostId::new(s as u32), emit.as_nanos());
        let at = self.trace.topology.switch_of(dst_host);
        let port = self.port_of(dst_host);
        self.note_emission(emit, &response);
        self.route_to_switch(
            now,
            SimDuration::from_micros(200),
            at,
            Ev::LocalFrame {
                switch: at,
                port,
                frame: response,
            },
            sched,
        );
    }

    fn dispatch_controller_outputs(&mut self, now: SimTime, sched: &mut Scheduler<'_, Ev>) {
        // Model controller processing: outputs leave after the current
        // service time (M/M/1-style, load dependent).
        let service = SimDuration::from_nanos(self.controller.service_time_ns(now.as_nanos()));
        let mut buf = self.ctrl_sink.take_buf();
        for out in buf.drain(..) {
            match out {
                ControllerOutput::ToSwitch(to, msg) => {
                    let link = LinkId::new(SwitchId::CONTROLLER.0, to.0, ChannelClass::Control);
                    if self.links.delivers(link, &mut self.rng) {
                        if let Some(obs) = &mut self.obs {
                            obs.recorder.record(
                                now.as_nanos(),
                                message_trace_id(&msg),
                                to_switch_kind(&msg),
                                ts::CONTROLLER,
                                to.0,
                                0,
                            );
                        }
                        let mut delay =
                            service + self.latency.sample(ChannelClass::Control, &mut self.rng);
                        if self.bandwidth.class_enabled(ChannelClass::Control) {
                            delay += self.bandwidth.delay(link, msg.wire_len() as u64, now);
                        }
                        self.route_to_switch(
                            now,
                            delay,
                            to,
                            Ev::MsgToSwitch {
                                to,
                                from: SwitchId::CONTROLLER,
                                msg,
                            },
                            sched,
                        );
                    }
                }
                ControllerOutput::SetTimer(timer, delay_ns) => {
                    sched.schedule_in(
                        now,
                        SimDuration::from_nanos(delay_ns),
                        Ev::ControllerTimer(timer),
                    );
                }
            }
        }
        self.ctrl_sink.put_back(buf);
    }

    /// Applies cluster-plane outputs: per-member service times, control
    /// links towards switches, ctrl-peer links between members.
    fn dispatch_cluster_outputs(&mut self, now: SimTime, sched: &mut Scheduler<'_, Ev>) {
        let mut buf = self.cluster_sink.take_buf();
        for out in buf.drain(..) {
            match out {
                ClusterOutput::ToSwitch { from, to, msg } => {
                    let AnyController::Cluster(plane) = &self.controller else {
                        continue;
                    };
                    let service =
                        SimDuration::from_nanos(plane.service_time_ns(from, now.as_nanos()));
                    // The sending *member's* pseudo-id, not the CONTROLLER
                    // sentinel: a partition that cuts this member off from
                    // the switch must also cut its FlowMods, or the
                    // minority side would keep programming switches it can
                    // no longer hear.
                    let link = LinkId::new(ctrl_pseudo_switch(from).0, to.0, ChannelClass::Control);
                    if self.links.delivers(link, &mut self.rng) {
                        if let Some(obs) = &mut self.obs {
                            obs.recorder.record(
                                now.as_nanos(),
                                message_trace_id(&msg),
                                to_switch_kind(&msg),
                                ts::CLUSTER,
                                to.0,
                                from,
                            );
                        }
                        let mut delay =
                            service + self.latency.sample(ChannelClass::Control, &mut self.rng);
                        if self.bandwidth.class_enabled(ChannelClass::Control) {
                            delay += self.bandwidth.delay(link, msg.wire_len() as u64, now);
                        }
                        self.route_to_switch(
                            now,
                            delay,
                            to,
                            Ev::MsgToSwitch {
                                to,
                                from: SwitchId::CONTROLLER,
                                msg,
                            },
                            sched,
                        );
                    }
                }
                ClusterOutput::ToCtrl { from, to, msg } => {
                    let AnyController::Cluster(plane) = &self.controller else {
                        continue;
                    };
                    let service =
                        SimDuration::from_nanos(plane.service_time_ns(from, now.as_nanos()));
                    let link = LinkId::new(
                        ctrl_pseudo_switch(from).0,
                        ctrl_pseudo_switch(to).0,
                        ChannelClass::CtrlPeer,
                    );
                    if self.links.delivers(link, &mut self.rng) {
                        if let Some(obs) = &mut self.obs {
                            obs.recorder.record(
                                now.as_nanos(),
                                0,
                                tk::CTRL_PEER_SEND,
                                ts::CLUSTER,
                                from,
                                to,
                            );
                        }
                        let mut delay =
                            service + self.latency.sample(ChannelClass::CtrlPeer, &mut self.rng);
                        if self.bandwidth.class_enabled(ChannelClass::CtrlPeer) {
                            delay += self.bandwidth.delay(link, msg.wire_len() as u64, now);
                        }
                        sched.schedule_in(now, delay, Ev::CtrlPeerMsg { from, to, msg });
                    }
                }
                ClusterOutput::SetTimer(timer, delay_ns) => {
                    sched.schedule_in(
                        now,
                        SimDuration::from_nanos(delay_ns),
                        Ev::ClusterTimer(timer),
                    );
                }
            }
        }
        self.cluster_sink.put_back(buf);
    }

    /// Decides where a switch's controller-bound message lands under the
    /// current reachability map (cluster mode; see [`RehomeState`] for
    /// the detection/return model). Pure link-state consultation — no
    /// RNG is drawn, so the hub-only call site cannot desynchronize the
    /// sharded engine's replicated streams.
    fn cluster_route(&mut self, now: SimTime, from: SwitchId) -> CtrlRoute {
        let Some(plane) = self.controller.cluster() else {
            return CtrlRoute::Owner;
        };
        // Fast path: fabric whole and no switch still re-homed.
        if !self.links.partitioned() && self.rehome.is_empty() {
            return CtrlRoute::Owner;
        }
        let Some(owner) = plane.owner_of_switch(from) else {
            return CtrlRoute::Owner;
        };
        let now_ns = now.as_nanos();
        let cfg = plane.config();
        // The switch-side detection deadline mirrors the cluster's own
        // failure detector (Table-I): miss_factor silent heartbeats.
        let deadline_ns =
            u64::from(cfg.heartbeat_miss_factor) * u64::from(cfg.heartbeat_interval_ms) * 1_000_000;
        let n = plane.num_controllers() as u32;
        let reachable_member =
            |links: &LinkState, m: u32| links.reachable(from.0, ctrl_pseudo_switch(m).0);
        let pick = |links: &LinkState, plane: &ClusterControlPlane| -> Option<u32> {
            (0..n)
                .filter(|&m| m != owner && !plane.is_crashed(m))
                .find(|&m| reachable_member(links, m))
        };

        if reachable_member(&self.links, owner) {
            let Some(entry) = self.rehome.get(&from.0) else {
                return CtrlRoute::Owner;
            };
            let Some(standin) = entry.standin else {
                // Blip shorter than the detection window; forget it.
                self.rehome.remove(&from.0);
                return CtrlRoute::Owner;
            };
            // A re-homed switch only discovers the heal at its next
            // jitter-staggered probe (or when its stand-in dies under it)
            // — never all at once across the fabric.
            if now_ns >= entry.next_probe_ns
                || plane.is_crashed(standin)
                || !reachable_member(&self.links, standin)
            {
                self.rehome.remove(&from.0);
                self.metrics.count("switch_rehome_returns", 1);
                return CtrlRoute::Owner;
            }
            return CtrlRoute::Standin(standin);
        }

        let entry = self.rehome.entry(from.0).or_insert(RehomeState {
            blocked_since_ns: now_ns,
            standin: None,
            next_probe_ns: 0,
            attempts: 0,
        });
        if entry.standin.is_none() {
            if now_ns.saturating_sub(entry.blocked_since_ns) < deadline_ns {
                // Detection window: the switch still trusts its owner, so
                // the message is lost in the partition.
                self.metrics.count("ctrl_unreachable_drops", 1);
                return CtrlRoute::Lost;
            }
            let Some(m) = pick(&self.links, plane) else {
                self.metrics.count("ctrl_unreachable_drops", 1);
                return CtrlRoute::Lost;
            };
            entry.standin = Some(m);
            entry.attempts = 0;
            entry.next_probe_ns = now_ns
                .saturating_add(deadline_ns)
                .saturating_add(rehome_jitter_ns(self.cfg.seed, from.0, 0, deadline_ns / 2));
            self.metrics.count("switch_rehomes", 1);
            return CtrlRoute::Standin(m);
        }
        // Re-homed and due for a probe: the owner is still dark, so the
        // probe fails and the backoff doubles (capped), with fresh jitter.
        if now_ns >= entry.next_probe_ns {
            entry.attempts = entry.attempts.saturating_add(1);
            let backoff = deadline_ns.saturating_mul(1u64 << entry.attempts.min(5));
            entry.next_probe_ns = now_ns
                .saturating_add(backoff)
                .saturating_add(rehome_jitter_ns(
                    self.cfg.seed,
                    from.0,
                    entry.attempts,
                    backoff / 2,
                ));
        }
        let standin = entry.standin.expect("checked above");
        if !plane.is_crashed(standin) && reachable_member(&self.links, standin) {
            return CtrlRoute::Standin(standin);
        }
        // Stand-in lost too; fail over to the next reachable member.
        let Some(m) = pick(&self.links, plane) else {
            self.metrics.count("ctrl_unreachable_drops", 1);
            return CtrlRoute::Lost;
        };
        self.rehome.get_mut(&from.0).expect("present").standin = Some(m);
        self.metrics.count("switch_rehomes", 1);
        CtrlRoute::Standin(m)
    }

    /// Applies one event from the experiment's fault-injection plan.
    ///
    /// Every effect flows through state the simulation already models —
    /// the link switchboard, the latency model, the cluster plane, the
    /// topology — so injected faults interact with detection and recovery
    /// machinery exactly as organic ones would.
    fn apply_injected(
        &mut self,
        now: SimTime,
        event: InjectedEvent,
        sched: &mut Scheduler<'_, Ev>,
    ) {
        // Under the sharded engine this runs on *every* partition (with
        // the replicated global RNG swapped in — see `handle_global`).
        // Shared state (topology, links, latency) mutates identically
        // everywhere; run-wide effects (counters, traces, fingerprints)
        // are gated to the hub; per-switch effects to the owner. The
        // lockstep invariant: a draw from `self.rng` in this scope must
        // happen on every partition or on none — anything gated to the
        // hub (or an owner) has to swap the partition-local RNG back in
        // first.
        let hub = self.is_hub();
        if let Some(obs) = self.obs.as_mut().filter(|_| hub) {
            let (kind, a, b) = match &event {
                InjectedEvent::CrashController(id) => (tk::CRASH_CONTROLLER, *id, 0),
                InjectedEvent::RecoverController(id) => (tk::RECOVER_CONTROLLER, *id, 0),
                InjectedEvent::CrashSwitch(s) => (tk::CRASH_SWITCH, s.0, 0),
                InjectedEvent::RecoverSwitch(s) => (tk::RECOVER_SWITCH, s.0, 0),
                InjectedEvent::LinkDegrade { factor, .. } => {
                    (tk::LINK_DEGRADE, (*factor * 1000.0) as u32, 0)
                }
                InjectedEvent::LinkLoss { loss, .. } => (tk::LINK_LOSS, (*loss * 1000.0) as u32, 0),
                InjectedEvent::MigrateHosts { batch } => (tk::MIGRATE_HOSTS, *batch, 0),
                InjectedEvent::TrafficBurst { scale } => {
                    (tk::TRAFFIC_BURST, (*scale * 1000.0) as u32, 0)
                }
                InjectedEvent::PartitionNetwork { groups } => {
                    (tk::PARTITION_NETWORK, groups.len() as u32, 0)
                }
                InjectedEvent::HealPartition => (tk::HEAL_PARTITION, 0, 0),
            };
            obs.recorder
                .record(now.as_nanos(), 0, kind, ts::WORLD, a, b);
        }
        match event {
            InjectedEvent::CrashController(id) => {
                if hub {
                    self.metrics.count("controller_crashes", 1);
                }
                if let AnyController::Cluster(plane) = &mut self.controller {
                    plane.step_crash(id);
                    self.cluster_fingerprints.push(plane.fingerprint());
                }
            }
            InjectedEvent::RecoverController(id) => {
                if let AnyController::Cluster(plane) = &mut self.controller {
                    plane.step_recover(id, &mut self.cluster_sink);
                    self.cluster_fingerprints.push(plane.fingerprint());
                }
                // Recovery outputs exist only on the hub (shards hold a
                // placeholder controller), so any delivery/latency draws
                // the dispatch makes must come from the partition-local
                // stream: drawing them from the replicated global RNG
                // would advance the hub's copy past every shard's and
                // silently desynchronize later replicated draws
                // (migration targets, burst pairs). Swap the local RNG
                // back in around the dispatch.
                self.swap_global_rng();
                self.dispatch_cluster_outputs(now, sched);
                self.swap_global_rng();
            }
            InjectedEvent::CrashSwitch(s) => {
                if hub {
                    self.metrics.count("switch_crashes", 1);
                }
                self.links.set_node_down(s.0, true);
            }
            InjectedEvent::RecoverSwitch(s) => {
                self.links.set_node_down(s.0, false);
                // Periodic chains severed during the outage resume a
                // moment after power-on (the handlers re-arm themselves).
                for timer in [SwitchTimer::KeepAlive, SwitchTimer::PeerSync] {
                    if self.severed_timers.remove(&(s.0, timer)) {
                        sched.schedule_in(
                            now,
                            SimDuration::from_millis(2),
                            Ev::SwitchTimer { switch: s, timer },
                        );
                    }
                }
                // §III-E.3 comeback: the rebooted switch pings the
                // controller, which resynchronizes its group state. The
                // latency draw is unconditional (every partition's
                // replicated RNG must advance in lockstep); only the
                // switch's owner emits the ping.
                let delay = self.latency.sample(ChannelClass::Control, &mut self.rng);
                if self.owns_switch(s.0) {
                    self.route_to_hub(
                        now,
                        delay,
                        Ev::MsgToController {
                            from: s,
                            msg: Message::of(0, lazyctrl_proto::OfMessage::Hello),
                        },
                        sched,
                    );
                }
            }
            InjectedEvent::LinkDegrade { class, factor } => {
                if hub {
                    self.metrics.count("link_degrades", 1);
                }
                self.latency.degrade(class, factor);
            }
            InjectedEvent::LinkLoss { class, loss } => {
                if hub {
                    self.metrics.count("link_loss_changes", 1);
                }
                self.links.set_class_loss(class, loss);
            }
            InjectedEvent::MigrateHosts { batch } => {
                self.migrate_hosts(now, batch, sched);
            }
            InjectedEvent::TrafficBurst { scale } => {
                self.traffic_burst(now, scale, sched);
            }
            InjectedEvent::PartitionNetwork { groups } => {
                if hub {
                    self.metrics.count("network_partitions", 1);
                }
                // Reachability is a pure link-state mutation, identical
                // on every partition and drawing no randomness — the
                // lockstep RNG invariant holds trivially.
                self.links.set_partition(&groups);
            }
            InjectedEvent::HealPartition => {
                if hub {
                    self.metrics.count("partition_heals", 1);
                }
                self.links.heal_partition();
            }
        }
    }

    /// Live-migrates `batch` hosts to other switches: each moved host gets
    /// a fresh port at a different switch and re-announces itself from
    /// there (gratuitous ARP), so datapath learning and C-LIB state
    /// converge on the new location while stale entries age out.
    fn migrate_hosts(&mut self, now: SimTime, batch: u32, sched: &mut Scheduler<'_, Ev>) {
        let num_hosts = self.trace.topology.num_hosts();
        let num_switches = self.trace.topology.num_switches;
        if num_switches < 2 || num_hosts == 0 {
            return;
        }
        // Distinct hosts per batch (sampling with replacement would move
        // fewer VMs than the event promises); the batch is capped by the
        // host population.
        let mut moved = std::collections::BTreeSet::new();
        let target = (batch as usize).min(num_hosts);
        while moved.len() < target {
            let host = HostId::new(self.rng.gen_range(0..num_hosts as u32));
            if !moved.insert(host.0) {
                continue;
            }
            let k = moved.len() - 1;
            let old = self.trace.topology.switch_of(host);
            // Only powered-on switches can receive a migrated VM — landing
            // one on a dark switch would silently drop its announcement
            // and leave location state stale forever.
            let candidates: Vec<u32> = (0..num_switches as u32)
                .filter(|&s| s != old.0 && self.links.is_node_up(s))
                .collect();
            if candidates.is_empty() {
                continue;
            }
            let pick: usize = self.rng.gen_range(0..candidates.len());
            let new = SwitchId::new(candidates[pick]);
            self.trace.topology.host_switch[host.index()] = new;
            let port = PortNo::new(self.next_port[new.index()]);
            self.next_port[new.index()] += 1;
            self.host_port[host.index()] = port;
            if self.is_hub() {
                self.metrics.count("host_migrations", 1);
            }
            // The re-plugged host announces itself from its new switch;
            // migrations in one batch land a millisecond apart. Only the
            // new switch's owner emits the (strictly local) announcement.
            if self.owns_switch(new.0) {
                let frame = gratuitous_announcement(host, self.trace.topology.tenant_of(host));
                sched.schedule_in(
                    now,
                    SimDuration::from_millis(1 + k as u64),
                    Ev::LocalFrame {
                        switch: new,
                        port,
                        frame,
                    },
                );
            }
        }
    }

    /// Injects `scale × hosts` synthetic flow arrivals between random host
    /// pairs, spread over a one-minute window.
    fn traffic_burst(&mut self, now: SimTime, scale: f64, sched: &mut Scheduler<'_, Ev>) {
        let num_hosts = self.trace.topology.num_hosts() as u32;
        if num_hosts < 2 {
            return;
        }
        let n = ((scale * num_hosts as f64).ceil() as u64).max(1);
        let spacing = SimDuration::from_nanos(SimDuration::from_secs(60).as_nanos() / n);
        let mut offset = SimDuration::ZERO;
        for _ in 0..n {
            // Draws are unconditional (lockstep RNG); each arrival is
            // scheduled only by the partition owning its ingress switch.
            let src = HostId::new(self.rng.gen_range(0..num_hosts));
            let hop = 1 + self.rng.gen_range(0..num_hosts - 1);
            let dst = HostId::new((src.0 + hop) % num_hosts);
            offset += spacing;
            if self.owns_switch(self.trace.topology.switch_of(src).0) {
                sched.schedule_in(now, offset, Ev::SyntheticFlow { src, dst });
            }
        }
    }

    /// Starts one flow — trace arrival or injected burst, both take the
    /// identical first-packet path (ingress power gate, fresh-pair
    /// tracking, optional ARP-before-data).
    fn start_flow(
        &mut self,
        now: SimTime,
        src: HostId,
        dst: HostId,
        sched: &mut Scheduler<'_, Ev>,
    ) {
        let at = self.trace.topology.switch_of(src);
        let port = self.port_of(src);
        if !self.links.is_node_up(at.0) {
            // Ingress switch is powered off: the flow has nowhere to
            // enter the fabric — and the pair stays *fresh*, since
            // nothing of it ever reached the network.
            self.metrics.count("ingress_down_drops", 1);
            return;
        }
        let pair = (src.0.min(dst.0), src.0.max(dst.0));
        let fresh = self.seen_pairs.insert(pair);
        if let Some(obs) = &mut self.obs {
            obs.recorder.record(
                now.as_nanos(),
                pair_trace_id(src.0 as u64, dst.0 as u64),
                tk::FLOW_START,
                ts::WORLD,
                at.0,
                port.0 as u32,
            );
        }

        if fresh && self.cfg.emit_arp {
            // Fresh pair: the source ARPs for the destination first.
            let arp = lazyctrl_net::ArpPacket::request(src.mac(), src.ip(), dst.ip());
            let arp_frame = EthernetFrame::tagged(
                src.mac(),
                MacAddr::BROADCAST,
                VlanTag::for_tenant(self.trace.topology.tenant_of(src)),
                EtherType::ARP,
                arp.encode(),
            );
            self.switches[at.index()]
                .as_mut()
                .expect("flow starts at an owned switch")
                .handle_local_frame(now.as_nanos(), port, arp_frame, &mut self.switch_sink);
            self.dispatch_switch_outputs(now, at, sched);
            // The data packet follows shortly after resolution.
            let emit = now + SimDuration::from_millis(1);
            let frame = self.frame_for_flow(src, dst, emit.as_nanos());
            self.note_emission(emit, &frame);
            sched.schedule_in(
                now,
                SimDuration::from_millis(1),
                Ev::LocalFrame {
                    switch: at,
                    port,
                    frame,
                },
            );
        } else {
            let frame = self.frame_for_flow(src, dst, now.as_nanos());
            self.note_emission(now, &frame);
            self.switches[at.index()]
                .as_mut()
                .expect("flow starts at an owned switch")
                .handle_local_frame(now.as_nanos(), port, frame, &mut self.switch_sink);
            self.dispatch_switch_outputs(now, at, sched);
        }
    }

    /// Record a regroup event when the grouping manager advanced.
    fn track_regroups(&mut self, now: SimTime) {
        if let Some(lazy) = self.controller.lazy() {
            let updates = lazy.grouping().updates_applied();
            if updates > self.last_updates_applied {
                let delta = updates - self.last_updates_applied;
                if let Some(obs) = &mut self.obs {
                    obs.recorder.record(
                        now.as_nanos(),
                        0,
                        tk::REGROUP,
                        ts::CONTROLLER,
                        delta as u32,
                        0,
                    );
                }
                self.metrics
                    .series_mut("regroup_updates", SimDuration::from_secs(3600))
                    .record(now, delta as f64);
                self.last_updates_applied = updates;
            }
        }
    }

    /// True when this partition owns switch `s` (always true on the
    /// single-threaded path).
    #[inline]
    fn owns_switch(&self, s: u32) -> bool {
        self.part
            .as_ref()
            .is_none_or(|p| p.owner[s as usize] == p.id)
    }

    /// True on the hub partition — the one holding the control plane and
    /// run-wide counters (always true on the single-threaded path).
    /// Inside a *global* event handler this gates everything that must
    /// happen exactly once per run rather than once per partition.
    #[inline]
    fn is_hub(&self) -> bool {
        self.part.as_ref().is_none_or(|p| p.id == 0)
    }

    /// Schedules `ev` for switch `to`'s partition: locally when owned,
    /// otherwise staged for the cross-partition exchange.
    fn route_to_switch(
        &mut self,
        now: SimTime,
        delay: SimDuration,
        to: SwitchId,
        ev: Ev,
        sched: &mut Scheduler<'_, Ev>,
    ) {
        match &mut self.part {
            Some(p) if p.owner[to.index()] != p.id => {
                p.staged.push((p.owner[to.index()], now + delay, ev));
            }
            _ => sched.schedule_in(now, delay, ev),
        }
    }

    /// Schedules `ev` for the hub (controller/cluster) partition.
    fn route_to_hub(
        &mut self,
        now: SimTime,
        delay: SimDuration,
        ev: Ev,
        sched: &mut Scheduler<'_, Ev>,
    ) {
        match &mut self.part {
            Some(p) if p.id != 0 => p.staged.push((0, now + delay, ev)),
            _ => sched.schedule_in(now, delay, ev),
        }
    }

    /// Swaps the partition's global-event RNG into place (and back): see
    /// [`PartitionCtx::global_rng`]. No-op on the single-threaded path.
    fn swap_global_rng(&mut self) {
        if let Some(p) = &mut self.part {
            std::mem::swap(&mut self.rng, &mut p.global_rng);
        }
    }

    /// Applies one global (injected) event under the replicated RNG. The
    /// shard executor calls this on *every* partition at the event's
    /// barrier; effect gating (`is_hub`/`owns_switch`) inside
    /// `apply_injected` keeps run-wide effects single-shot while shared
    /// state (topology, links, latency) mutates identically everywhere.
    pub(crate) fn handle_global(
        &mut self,
        now: SimTime,
        event: &InjectedEvent,
        sched: &mut Scheduler<'_, Ev>,
    ) {
        self.swap_global_rng();
        self.apply_injected(now, event.clone(), sched);
        self.swap_global_rng();
    }

    /// The minimum cross-partition delivery latency — the sharded
    /// engine's default (timing-exact) synchronization window. CtrlPeer
    /// is excluded: controller-to-controller traffic never leaves the
    /// hub partition.
    pub(crate) fn lookahead_floor(&self) -> SimDuration {
        self.latency.lookahead_floor(&[
            ChannelClass::Data,
            ChannelClass::Control,
            ChannelClass::State,
            ChannelClass::Peer,
        ])
    }

    /// Splits this world into `nparts` partition worlds along `owner`
    /// (`owner[switch] = partition`). Partition 0 — the hub — keeps the
    /// whole control plane, the run RNG, metrics and observability;
    /// partitions 1.. get fresh per-partition state, deterministically
    /// derived RNG streams, and their owned switches. Shared read-mostly
    /// state (topology, links, latency) is replicated and kept identical
    /// by the lockstep global-event protocol.
    pub(crate) fn split(
        mut self,
        owner: std::sync::Arc<Vec<u16>>,
        nparts: u16,
    ) -> Vec<DataCenterWorld> {
        assert!(nparts >= 1, "need at least the hub partition");
        assert_eq!(owner.len(), self.switches.len(), "owner map size mismatch");
        let global_seed = self.cfg.seed ^ 0x610ba1;
        let mut parts: Vec<DataCenterWorld> = Vec::with_capacity(nparts as usize);
        for p in 1..nparts {
            let cfg = self.cfg.clone();
            let obs = cfg.obs.enabled.then(|| {
                Box::new(WorldObs {
                    recorder: FlightRecorder::new(cfg.obs.ring_capacity),
                    profile: EngineProfile::new(
                        EVENT_KIND_NAMES.len(),
                        EVENT_KIND_SUBSYS.to_vec(),
                        cfg.obs.profile_sample_every,
                    ),
                })
            });
            parts.push(DataCenterWorld {
                // A distinct, seed-derived stream per partition (golden
                // ratio stride): which jitter samples a message draws
                // depends on the partition layout, not on thread timing,
                // so any fixed layout is deterministic at every worker
                // count.
                rng: StdRng::seed_from_u64(
                    cfg.seed ^ 0x57a7e ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(u64::from(p) + 1),
                ),
                latency: self.latency.clone(),
                bandwidth: self.bandwidth.clone(),
                trace: self.trace.clone(),
                switches: (0..self.switches.len()).map(|_| None).collect(),
                // Placeholder: shard partitions never dispatch to a
                // controller (controller-bound traffic routes to the hub).
                controller: AnyController::Baseline(BaselineController::new(Vec::new())),
                links: self.links.clone(),
                metrics: MetricsSink::new(),
                host_port: self.host_port.clone(),
                next_port: self.next_port.clone(),
                seen_pairs: HashSet::new(),
                responded: HashSet::new(),
                workload_bucket: self.workload_bucket,
                severed_timers: std::collections::BTreeSet::new(),
                last_updates_applied: 0,
                flow_latencies: Vec::new(),
                switch_sink: OutputSink::new(),
                ctrl_sink: OutputSink::new(),
                cluster_sink: OutputSink::new(),
                cluster_fingerprints: Vec::new(),
                rehome: std::collections::BTreeMap::new(),
                obs,
                part: Some(Box::new(PartitionCtx {
                    id: p,
                    owner: owner.clone(),
                    staged: Vec::new(),
                    global_rng: StdRng::seed_from_u64(global_seed),
                })),
                cfg,
            });
        }
        // Hand each shard its switches; the hub keeps the remainder.
        for (s, slot) in self.switches.iter_mut().enumerate() {
            let o = owner[s];
            if o != 0 {
                parts[usize::from(o) - 1].switches[s] = slot.take();
            }
        }
        self.part = Some(Box::new(PartitionCtx {
            id: 0,
            owner,
            staged: Vec::new(),
            global_rng: StdRng::seed_from_u64(global_seed),
        }));
        parts.insert(0, self);
        parts
    }

    /// Reassembles one world from the partitions a sharded run produced:
    /// the hub absorbs every shard's switches, metrics, flow latencies
    /// and observability (in partition order, so the merge is
    /// deterministic). Report collection then runs unchanged.
    pub(crate) fn merge_partitions(parts: Vec<DataCenterWorld>) -> DataCenterWorld {
        let mut iter = parts.into_iter();
        let mut hub = iter.next().expect("hub partition");
        for mut shard in iter {
            for (slot, taken) in hub.switches.iter_mut().zip(shard.switches.iter_mut()) {
                if taken.is_some() {
                    debug_assert!(slot.is_none(), "switch owned by two partitions");
                    *slot = taken.take();
                }
            }
            hub.metrics.merge(&shard.metrics);
            // Concatenated in partition order (not globally time-sorted):
            // deterministic, and downstream consumers aggregate anyway.
            hub.flow_latencies.append(&mut shard.flow_latencies);
            if let (Some(hobs), Some(sobs)) = (hub.obs.as_deref_mut(), shard.obs.as_deref()) {
                hobs.profile.merge(&sobs.profile);
                hobs.recorder.merge(&sobs.recorder);
            }
        }
        hub.part = None;
        hub
    }
}

/// Deterministic per-switch probe jitter (splitmix64 of seed, switch and
/// attempt, reduced into `window_ns`). Hash-derived rather than drawn
/// from the run RNG so re-homing perturbs no other sampling stream —
/// bit-identical runs across worker counts come for free.
fn rehome_jitter_ns(seed: u64, switch: u32, attempts: u32, window_ns: u64) -> u64 {
    if window_ns == 0 {
        return 0;
    }
    let mut x = seed ^ (u64::from(switch) << 32) ^ u64::from(attempts);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x % window_ns
}

/// Builds the gratuitous announcement frame a host sends at boot.
fn gratuitous_announcement(host: HostId, tenant: TenantId) -> EthernetFrame {
    let arp = lazyctrl_net::ArpPacket::request(host.mac(), host.ip(), host.ip());
    EthernetFrame::tagged(
        host.mac(),
        MacAddr::BROADCAST,
        VlanTag::for_tenant(tenant),
        EtherType::ARP,
        arp.encode(),
    )
}

impl DataCenterWorld {
    /// The event dispatch proper (the body of [`World::handle`], split out
    /// so the observability wrapper can bracket it without touching it).
    fn dispatch_event(&mut self, now: SimTime, event: Ev, sched: &mut Scheduler<'_, Ev>) {
        match event {
            Ev::FlowArrival(i) => {
                let flow = self.trace.flows[i];
                // The partition map places arrivals by the source host's
                // switch *at split time*; a later migration can move the
                // host, so re-resolve and forward to the current owner.
                // The zero-delay forward lands below the merge floor and
                // is bumped to the epoch horizon (counted in
                // `ShardStats::bumped_events`), so a migrated host's
                // flow starts up to one window late — deterministically,
                // and only for hosts a fault moved across partitions.
                let ingress = self.trace.topology.switch_of(flow.src);
                if !self.owns_switch(ingress.0) {
                    self.route_to_switch(
                        now,
                        SimDuration::ZERO,
                        ingress,
                        Ev::FlowArrival(i),
                        sched,
                    );
                    return;
                }
                self.metrics.count("flows_started", 1);
                self.start_flow(now, flow.src, flow.dst, sched);
            }
            Ev::LocalFrame {
                switch,
                port,
                frame,
            } => {
                if !self.links.is_node_up(switch.0) {
                    return;
                }
                self.switches[switch.index()]
                    .as_mut()
                    .expect("local frame routed to its owner")
                    .handle_local_frame(now.as_nanos(), port, frame, &mut self.switch_sink);
                self.dispatch_switch_outputs(now, switch, sched);
            }
            Ev::TunnelArrive { to, packet } => {
                if !self.links.is_node_up(to.0) {
                    return;
                }
                let is_flood = packet.inner.is_flood();
                self.switches[to.index()]
                    .as_mut()
                    .expect("tunnel routed to its owner")
                    .handle_tunnel_packet(now.as_nanos(), packet, &mut self.switch_sink);
                if self.switch_sink.is_empty() && !is_flood {
                    self.metrics.count("tunnel_drops", 1);
                }
                self.dispatch_switch_outputs(now, to, sched);
            }
            Ev::MsgToSwitch { to, from, msg } => {
                if !self.links.is_node_up(to.0) {
                    return;
                }
                if let Some(obs) = &mut self.obs {
                    if from == SwitchId::CONTROLLER {
                        if let Some(OfMessage::FlowMod(_)) = msg.as_of() {
                            obs.recorder.record(
                                now.as_nanos(),
                                message_trace_id(&msg),
                                tk::FLOW_MOD_RECV,
                                ts::SWITCH,
                                to.0,
                                0,
                            );
                        }
                    }
                }
                let sw = self.switches[to.index()]
                    .as_mut()
                    .expect("control message routed to its owner");
                if from == SwitchId::CONTROLLER {
                    sw.handle_control_message(now.as_nanos(), &msg, &mut self.switch_sink);
                } else {
                    sw.handle_peer_message(now.as_nanos(), from, &msg, &mut self.switch_sink);
                }
                self.dispatch_switch_outputs(now, to, sched);
            }
            Ev::MsgToController { from, msg } => {
                self.metrics
                    .series_mut("workload", self.workload_bucket)
                    .increment(now);
                self.metrics.count("controller_messages", 1);
                if let Some(lazyctrl_proto::OfMessage::PacketIn(pi)) = msg.as_of() {
                    self.metrics.count("packet_ins", 1);
                    if pi.reason == lazyctrl_proto::PacketInReason::FalsePositive {
                        self.metrics.count("fp_reports", 1);
                    }
                    if let Some(obs) = &mut self.obs {
                        obs.recorder.record(
                            now.as_nanos(),
                            packet_bytes_trace_id(&pi.data),
                            tk::PACKET_IN_RECV,
                            ts::CONTROLLER,
                            from.0,
                            pi.reason as u32,
                        );
                    }
                }
                match msg.as_lazy() {
                    Some(LazyMsg::StateReport(_)) => self.metrics.count("state_reports", 1),
                    Some(LazyMsg::LfibSync(_)) => self.metrics.count("lfib_syncs", 1),
                    Some(LazyMsg::WheelReport(_)) => self.metrics.count("wheel_reports", 1),
                    _ => {}
                }
                match &mut self.controller {
                    AnyController::Baseline(c) => {
                        c.handle_message(now.as_nanos(), from, &msg, &mut self.ctrl_sink);
                        self.dispatch_controller_outputs(now, sched);
                    }
                    AnyController::Lazy(c) => {
                        c.handle_message(now.as_nanos(), from, &msg, &mut self.ctrl_sink);
                        self.dispatch_controller_outputs(now, sched);
                        self.track_regroups(now);
                    }
                    AnyController::Cluster(_) => {
                        let route = self.cluster_route(now, from);
                        let AnyController::Cluster(plane) = &mut self.controller else {
                            unreachable!("matched Cluster above");
                        };
                        match route {
                            CtrlRoute::Owner => {
                                plane.step_switch(
                                    now.as_nanos(),
                                    from,
                                    &msg,
                                    &mut self.cluster_sink,
                                );
                                self.dispatch_cluster_outputs(now, sched);
                            }
                            CtrlRoute::Standin(m) => {
                                plane.handle_switch_message_at(
                                    now.as_nanos(),
                                    m,
                                    from,
                                    &msg,
                                    &mut self.cluster_sink,
                                );
                                self.dispatch_cluster_outputs(now, sched);
                            }
                            // Owner unreachable, detection pending (or no
                            // stand-in exists): the message dies in the
                            // partition.
                            CtrlRoute::Lost => {}
                        }
                    }
                }
            }
            Ev::CtrlPeerMsg { from, to, msg } => {
                self.metrics.count("ctrl_peer_messages", 1);
                match msg.as_cluster() {
                    Some(lazyctrl_proto::ClusterMsg::PeerSync(_)) => {
                        self.metrics.count("peer_syncs", 1);
                    }
                    Some(lazyctrl_proto::ClusterMsg::SyncRelay(_)) => {
                        self.metrics.count("sync_relays", 1);
                    }
                    Some(lazyctrl_proto::ClusterMsg::SyncDigest(_)) => {
                        self.metrics.count("sync_digests", 1);
                    }
                    Some(lazyctrl_proto::ClusterMsg::Heartbeat(_)) => {
                        self.metrics.count("ctrl_heartbeats", 1);
                    }
                    Some(lazyctrl_proto::ClusterMsg::LookupRequest(_)) => {
                        self.metrics.count("ctrl_lookups", 1);
                    }
                    Some(lazyctrl_proto::ClusterMsg::OwnershipTransfer(_)) => {
                        self.metrics.count("ownership_transfer_msgs", 1);
                        if let Some(obs) = &mut self.obs {
                            obs.recorder.record(
                                now.as_nanos(),
                                0,
                                tk::OWNERSHIP_TRANSFER,
                                ts::CLUSTER,
                                from,
                                to,
                            );
                        }
                    }
                    _ => {}
                }
                if let AnyController::Cluster(plane) = &mut self.controller {
                    plane.step_ctrl(now.as_nanos(), from, to, &msg, &mut self.cluster_sink);
                }
                self.dispatch_cluster_outputs(now, sched);
            }
            Ev::ClusterTimer(timer) => {
                if let AnyController::Cluster(plane) = &mut self.controller {
                    plane.step_timer(now.as_nanos(), timer, &mut self.cluster_sink);
                }
                self.dispatch_cluster_outputs(now, sched);
            }
            Ev::Injected(event) => self.apply_injected(now, event, sched),
            Ev::SyntheticFlow { src, dst } => {
                // Same owner re-resolution as `FlowArrival`: a migration
                // may have moved the source host since scheduling (and
                // the same bump-to-horizon consequence for the forward).
                let ingress = self.trace.topology.switch_of(src);
                if !self.owns_switch(ingress.0) {
                    self.route_to_switch(
                        now,
                        SimDuration::ZERO,
                        ingress,
                        Ev::SyntheticFlow { src, dst },
                        sched,
                    );
                    return;
                }
                self.metrics.count("flows_started", 1);
                self.metrics.count("burst_flows", 1);
                self.start_flow(now, src, dst, sched);
            }
            Ev::SwitchTimer { switch, timer } => {
                // A powered-off switch cannot probe the wheel or sync its
                // peers: letting those timers run would latch the wheel's
                // reported-flags (and swallow the L-FIB delta) while every
                // output is dropped on the dark links, leaving a silent
                // neighbour permanently unreported after a reboot. The
                // chain is severed here and re-armed by `RecoverSwitch`.
                // `LfibAge`/`EpochGrace` are internal bookkeeping and keep
                // running, like a firmware clock.
                if !self.links.is_node_up(switch.0)
                    && matches!(timer, SwitchTimer::KeepAlive | SwitchTimer::PeerSync)
                {
                    self.severed_timers.insert((switch.0, timer));
                    return;
                }
                self.switches[switch.index()]
                    .as_mut()
                    .expect("timer routed to its owner")
                    .on_timer(now.as_nanos(), timer, &mut self.switch_sink);
                self.dispatch_switch_outputs(now, switch, sched);
            }
            Ev::ControllerTimer(timer) => {
                self.controller
                    .on_timer(now.as_nanos(), timer, &mut self.ctrl_sink);
                self.dispatch_controller_outputs(now, sched);
                self.track_regroups(now);
            }
        }
    }
}

impl World for DataCenterWorld {
    type Event = Ev;

    fn handle(&mut self, now: SimTime, event: Ev, sched: &mut Scheduler<'_, Ev>) {
        // Disabled observability is one `is_none` branch, then the
        // unchanged dispatch path.
        if self.obs.is_none() {
            return self.dispatch_event(now, event, sched);
        }
        let kind = event.kind_idx();
        let subsys = EVENT_KIND_SUBSYS[kind as usize];
        let t_ns = now.as_nanos();
        // Engine-level pop/outcome records follow the profiler's sampling
        // stride: writing two ring slots (a full cache line) on *every*
        // dispatch evicts the simulator's working set and costs ~35%
        // throughput, while sampling keeps tracing within the 10% budget.
        // Flow-scoped records (the causal chains) are never sampled.
        let (sampled, before) = {
            let obs = self.obs.as_deref_mut().expect("checked above");
            let sampled = obs.profile.will_sample();
            if sampled {
                obs.recorder.record(t_ns, 0, tk::EVENT_POP, subsys, kind, 0);
            }
            obs.profile.dispatch_begin(kind);
            (sampled, obs.recorder.recorded())
        };
        self.dispatch_event(now, event, sched);
        let obs = self.obs.as_deref_mut().expect("checked above");
        obs.profile.dispatch_end();
        if sampled {
            // Handler outcome: how many records the dispatch emitted is a
            // compact proxy for "what this event caused".
            let emitted = (obs.recorder.recorded() - before).min(u32::MAX as u64) as u32;
            obs.recorder
                .record(t_ns, 0, tk::HANDLER_DONE, subsys, kind, emitted);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The driver-level layout contract: a scheduled `Ev` is copied into
    /// and out of the payload slab once per event, so its inline size is
    /// a per-event constant. The fat members are the `Message`-carrying
    /// variants — `size_of::<Message>() ≤ 64` (enforced in
    /// `lazyctrl-proto`) keeps the whole event under 88 bytes.
    #[test]
    fn event_payload_stays_compact() {
        use std::mem::size_of;
        assert!(
            size_of::<Ev>() <= 88,
            "Ev grew to {} bytes; check Message and frame layouts",
            size_of::<Ev>()
        );
    }

    /// Regression for the sharded engine's replicated-RNG lockstep:
    /// `RecoverController` dispatches the recovered member's outputs on
    /// the hub only (shard partitions hold a placeholder controller), so
    /// any delivery/latency draw that dispatch makes must come from the
    /// partition-local RNG. Drawing from the replicated global stream
    /// would advance the hub's copy past every shard's, and the next
    /// replicated draw (`MigrateHosts` here) would pick different hosts
    /// per partition — silently diverging `host_switch`/`next_port`.
    /// The workers-1-vs-4-vs-8 differential tests cannot catch this
    /// (every worker count shares the layout, and with it the
    /// divergence), so this test drives the global barrier by hand and
    /// compares the partitions' replicated state directly.
    #[test]
    fn recover_controller_keeps_global_rng_lockstep() {
        use crate::scenarios::{CrashRecover, Scenario};
        use lazyctrl_sim::EventQueue;

        let (trace, cfg, _plan) = CrashRecover.build(0x1C);
        let mut queue: EventQueue<Ev> = EventQueue::new();
        let mut world = DataCenterWorld::new(trace, cfg);
        {
            let mut sched = Scheduler::over(&mut queue);
            world.bootstrap(&mut sched);
        }
        // Hub + two shards, alternating ownership; any fixed layout
        // works — the lockstep invariant must hold for all of them.
        let nparts = 3u16;
        let owner: Vec<u16> = (0..world.trace.topology.num_switches)
            .map(|s| 1 + (s % 2) as u16)
            .collect();
        let mut parts = world.split(std::sync::Arc::new(owner), nparts);
        let mut queues: Vec<EventQueue<Ev>> = (0..nparts).map(|_| EventQueue::new()).collect();

        // One global barrier, exactly as the shard coordinator runs it:
        // the event applied to every partition, in partition order.
        let at = SimTime::from_secs(3600);
        fn barrier(
            parts: &mut [DataCenterWorld],
            queues: &mut [EventQueue<Ev>],
            at: SimTime,
            g: InjectedEvent,
        ) {
            for (p, q) in parts.iter_mut().zip(queues.iter_mut()) {
                let mut sched = Scheduler::over(q);
                p.handle_global(at, &g, &mut sched);
            }
        }
        barrier(
            &mut parts,
            &mut queues,
            at,
            InjectedEvent::CrashController(1),
        );
        // `recover` currently emits only timer outputs; pre-load a
        // message output so the recovery dispatch exercises the
        // delivery/latency draws a chattier comeback protocol would
        // make. Hub only — exactly what a real cluster plane could do.
        parts[0].cluster_sink.push(ClusterOutput::ToSwitch {
            from: 1,
            to: SwitchId::new(0),
            msg: Message::of(0, OfMessage::Hello),
        });
        barrier(
            &mut parts,
            &mut queues,
            at,
            InjectedEvent::RecoverController(1),
        );
        barrier(
            &mut parts,
            &mut queues,
            at,
            InjectedEvent::MigrateHosts { batch: 8 },
        );

        let stream = |w: &DataCenterWorld| -> Vec<u64> {
            let mut r = w.part.as_ref().expect("split world").global_rng.clone();
            (0..4).map(|_| r.gen()).collect()
        };
        let hub_stream = stream(&parts[0]);
        for (i, p) in parts.iter().enumerate().skip(1) {
            assert_eq!(
                hub_stream,
                stream(p),
                "partition {i}: replicated global RNG stream diverged from the hub"
            );
            assert_eq!(
                parts[0].trace.topology.host_switch, p.trace.topology.host_switch,
                "partition {i}: replicated host placement diverged"
            );
            assert_eq!(
                parts[0].next_port, p.next_port,
                "partition {i}: replicated port allocator diverged"
            );
            assert_eq!(
                parts[0].host_port, p.host_port,
                "partition {i}: replicated host-port map diverged"
            );
        }
    }
}
