//! Chaos test: randomized `EventPlan`s over the cluster testbed.
//!
//! A hand-rolled splitmix64 generator (the core crate deliberately has no
//! property-testing dependency) derives a random but *well-formed* fault
//! schedule from each chaos seed: crash/recover pairs for controllers and
//! switches, latency degradations, loss windows, migration batches,
//! traffic bursts and partition/heal pairs, all inside the steady-state
//! window. Every schedule must (a) run to completion without panicking,
//! (b) never produce a double leader, (c) converge — every crashed node
//! recovered and nobody still believed dead at end of run — and (d) be
//! bit-identically reproducible at the same seed.

use lazyctrl_core::scenarios::ScenarioRegistry;
use lazyctrl_core::Experiment;
use lazyctrl_net::SwitchId;
use lazyctrl_proto::EventPlan;
use lazyctrl_sim::ChannelClass;

/// splitmix64: the 64-bit finalizer-based PRNG (public-domain constants).
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`.
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }

    /// Uniform f64 in `[lo, hi)`.
    fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (self.next() as f64 / u64::MAX as f64) * (hi - lo)
    }
}

/// Derives a well-formed random plan: a sequence of non-overlapping fault
/// windows in `[1.05 h, 1.45 h]`, each opened by one random perturbation
/// and (for the stateful kinds) closed by its repair before the next
/// window opens — so at end of run everything has recovered.
fn random_plan(seed: u64, num_switches: usize, num_hosts: u32, controllers: u32) -> EventPlan {
    let mut rng = SplitMix64(seed);
    let mut plan = EventPlan::new();
    let windows = 3 + rng.below(3); // 3..=5 fault windows
    let span = 0.40 / windows as f64;
    for w in 0..windows {
        let open = 1.05 + w as f64 * span + rng.range_f64(0.0, span * 0.2);
        let close = open + span * rng.range_f64(0.3, 0.7);
        plan = match rng.below(7) {
            0 => {
                let victim = rng.below(controllers as u64) as u32;
                plan.crash_controller(open, victim)
                    .recover_controller(close, victim)
            }
            1 => {
                let victim = SwitchId::new(rng.below(num_switches as u64) as u32);
                plan.crash_switch(open, victim)
                    .recover_switch(close, victim)
            }
            2 => {
                let class = [
                    ChannelClass::Control,
                    ChannelClass::State,
                    ChannelClass::CtrlPeer,
                ][rng.below(3) as usize];
                let factor = rng.range_f64(2.0, 20.0);
                plan.degrade_links(open, class, factor)
                    .degrade_links(close, class, 1.0 / factor)
            }
            3 => {
                let loss = rng.range_f64(0.01, 0.20);
                plan.link_loss(open, ChannelClass::Control, loss).link_loss(
                    close,
                    ChannelClass::Control,
                    0.0,
                )
            }
            4 => plan.migrate_hosts(open, 1 + rng.below(num_hosts as u64 / 2) as u32),
            5 => plan.traffic_burst(open, rng.range_f64(0.5, 4.0)),
            _ => {
                // Split the switch fabric into two islands, then heal.
                let cut = 1 + rng.below(num_switches as u64 - 1) as u32;
                let (left, right): (Vec<u32>, Vec<u32>) =
                    (0..num_switches as u32).partition(|&s| s < cut);
                plan.partition_network(open, vec![left, right])
                    .heal_partition(close)
            }
        };
    }
    plan
}

/// One chaos run: borrow the crash-recover scenario's testbed and config
/// (a 2-controller cluster over the standard testbed), replace its plan
/// with the derived random schedule, and run to completion.
fn chaos_run(chaos_seed: u64) -> lazyctrl_core::ExperimentReport {
    let reg = ScenarioRegistry::builtin();
    let s = reg.get("crash_recover").expect("registered");
    let (trace, cfg, _scripted) = s.build(0xC1);
    let plan = random_plan(
        chaos_seed,
        trace.topology.num_switches,
        trace.topology.num_hosts() as u32,
        2,
    );
    plan.validate();
    Experiment::new(trace, cfg.with_plan(plan)).run()
}

#[test]
fn random_event_plans_converge_and_replay_bit_identically() {
    for chaos_seed in [0x5EED_0001u64, 0x5EED_0002] {
        let a = chaos_run(chaos_seed);
        let cluster = a
            .cluster
            .as_ref()
            .expect("cluster run must produce a cluster report");
        assert_eq!(
            cluster.double_leader_events, 0,
            "chaos seed {chaos_seed:#x}: two leaders shared a term"
        );
        assert!(
            cluster.confirmed_dead.is_empty(),
            "chaos seed {chaos_seed:#x}: every crash recovered, yet {:?} still believed dead",
            cluster.confirmed_dead
        );
        assert!(
            a.delivered_flows > 0,
            "chaos seed {chaos_seed:#x}: nothing delivered"
        );
        let b = chaos_run(chaos_seed);
        assert_eq!(
            a, b,
            "chaos seed {chaos_seed:#x}: same-seed replay diverged"
        );
    }
}

/// The generator itself must be deterministic and produce sorted,
/// validating plans across a spread of seeds — the guarantee that lets
/// the convergence test above blame the engine, not the schedule.
#[test]
fn random_plans_are_valid_and_deterministic() {
    for seed in 0..50u64 {
        let p1 = random_plan(seed, 12, 24, 2);
        let p2 = random_plan(seed, 12, 24, 2);
        assert_eq!(p1, p2, "seed {seed}: generator not a pure function");
        p1.validate();
        assert!(!p1.is_empty());
        assert!(
            p1.events().windows(2).all(|w| w[0].at <= w[1].at),
            "seed {seed}: plan not sorted"
        );
    }
}
