//! Integration tests for the `lazyctrl-cluster` control plane driven
//! end-to-end through the simulated data center.

use lazyctrl_core::scenarios::{controller_crash, shard_rebalance};
use lazyctrl_core::{ControlMode, DisseminationStrategy, EventPlan, Experiment, ExperimentConfig};
use lazyctrl_trace::realistic::{generate, RealTraceConfig};

fn small_cluster_cfg(controllers: usize, seed: u64) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::new(ControlMode::LazyStatic)
        .with_group_size_limit(8)
        .with_seed(seed)
        .with_cluster(controllers)
        .with_horizon_hours(2.0);
    cfg.sync_interval_ms = 10_000;
    cfg.keepalive_interval_ms = 30_000;
    cfg
}

fn small_trace(flows: usize, seed: u64) -> lazyctrl_trace::Trace {
    let mut tc = RealTraceConfig::small();
    tc.num_flows = flows;
    tc.seed = seed;
    generate(&tc)
}

#[test]
fn cluster_runs_and_shards_the_workload() {
    let trace = small_trace(6_000, 11);
    let report = Experiment::new(trace, small_cluster_cfg(2, 7)).run();
    let cluster = report.cluster.expect("cluster section");
    assert_eq!(cluster.controllers, 2);
    assert!(report.delivered_flows > 0, "no traffic delivered");
    // Both shards must actually handle work.
    assert!(
        cluster.requests_per_controller.iter().all(|&r| r > 0),
        "workload not sharded: {:?}",
        cluster.requests_per_controller
    );
    // Replication must have propagated host locations between shards.
    assert!(
        cluster.replica_sizes.iter().any(|&s| s > 0),
        "no C-LIB replication happened: {:?}",
        cluster.replica_sizes
    );
    assert!(cluster.ctrl_peer_messages > 0);
    assert!(cluster.confirmed_dead.is_empty());
}

#[test]
fn same_seed_runs_are_bit_identical() {
    let run = || {
        let trace = small_trace(4_000, 23);
        Experiment::new(trace, small_cluster_cfg(2, 41)).run()
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "same-seed cluster runs diverged");
}

#[test]
fn adding_controllers_drops_per_controller_rate() {
    let max_rps = |controllers: usize| {
        let trace = small_trace(6_000, 31);
        let report = Experiment::new(trace, small_cluster_cfg(controllers, 9)).run();
        report
            .cluster
            .expect("cluster section")
            .max_controller_rps()
    };
    let one = max_rps(1);
    let two = max_rps(2);
    let four = max_rps(4);
    assert!(one > 0.0);
    assert!(
        two < one && four < two,
        "per-controller rate must drop as the cluster grows: 1×={one:.2} 2×={two:.2} 4×={four:.2}"
    );
}

#[test]
fn controller_crash_recovers_inter_group_reachability() {
    let r = controller_crash(2, 5);
    let cluster = r.report.cluster.as_ref().expect("cluster section");
    assert_eq!(
        cluster.confirmed_dead,
        vec![1],
        "victim must be declared dead"
    );
    assert!(
        !cluster.takeovers.is_empty() && cluster.failover_transfers > 0,
        "takeover must have moved the dead member's groups"
    );
    assert!(r.affected_before > 0, "failed shard idle before the crash?");
    assert!(
        r.affected_after_takeover > 0,
        "failed shard unreachable after takeover: {r:?}"
    );
    assert!(
        r.survivor_during_outage > 0,
        "surviving shards must keep flowing through the outage"
    );
}

#[test]
fn crash_scenario_is_deterministic() {
    let a = controller_crash(2, 77);
    let b = controller_crash(2, 77);
    assert_eq!(a, b, "same-seed crash scenarios diverged");
}

#[test]
fn crashed_controller_can_recover() {
    let run = || {
        let trace = small_trace(5_000, 19);
        // Crash member 1 at 0.5 h; restart it at 1.0 h — long after the
        // takeover, so detection, takeover, and comeback all execute.
        let cfg = small_cluster_cfg(2, 29).with_plan(
            EventPlan::new()
                .crash_controller(0.5, 1)
                .recover_controller(1.0, 1),
        );
        Experiment::new(trace, cfg).run()
    };
    let report = run();
    let cluster = report.cluster.as_ref().expect("cluster section");
    assert!(
        cluster.failover_transfers > 0,
        "crash must have triggered a takeover"
    );
    // The restarted member heartbeats again, so by end of run nobody
    // believes it dead (its groups stay with the takeover owner until
    // rebalancing hands them back).
    assert!(
        cluster.confirmed_dead.is_empty(),
        "recovered member still believed dead: {:?}",
        cluster.confirmed_dead
    );
    let again = run();
    assert_eq!(report, again, "crash+recover runs diverged");
}

/// The dissemination acceptance contract: on the same workload, flood
/// pays ≈ n−1 peer-sync messages per delta chunk (O(n²) per flush round
/// across n members), while ring and tree amortize bundled relays to a
/// per-chunk cost that stays flat in n (O(n) per round) — and still
/// converge end-to-end. Run at n = 8 with a flush cadence long enough
/// for bundling to aggregate, which is exactly how the paper-scale
/// `repro_cluster` configuration operates.
#[test]
fn ring_and_tree_cut_peer_sync_traffic_to_linear() {
    let n = 8usize;
    let run = |strategy: DisseminationStrategy| {
        let trace = small_trace(20_000, 11);
        let mut cfg = small_cluster_cfg(n, 7)
            .with_group_size_limit(4)
            .with_dissemination(strategy)
            .with_cluster_flush_ms(20_000);
        cfg.record_flow_latencies = false;
        let report = Experiment::new(trace, cfg).run();
        report.cluster.expect("cluster section")
    };
    let flood = run(DisseminationStrategy::Flood);
    let ring = run(DisseminationStrategy::Ring);
    let tree = run(DisseminationStrategy::tree());

    // Flood really is the quadratic baseline: every chunk to every peer.
    assert!(
        (flood.messages_per_chunk() - (n as f64 - 1.0)).abs() < 0.2,
        "flood must pay ~n-1 messages per chunk, got {:.2}",
        flood.messages_per_chunk()
    );
    for overlay in [&ring, &tree] {
        // The overlays still replicate into every member...
        assert!(
            overlay.replica_sizes.iter().all(|&s| s > 0),
            "{}: replication broke: {:?}",
            overlay.dissemination,
            overlay.replica_sizes
        );
        // ...at strictly sub-flood per-delta cost (the O(n) property;
        // the gap widens further with n — at n = 16 flood pays 15).
        assert!(
            overlay.messages_per_chunk() < flood.messages_per_chunk() / 1.5,
            "{}: {:.2} msgs/chunk should be well under flood's {:.2}",
            overlay.dissemination,
            overlay.messages_per_chunk(),
            flood.messages_per_chunk()
        );
        // And in absolute wire traffic too.
        assert!(
            overlay.peer_sync_messages_total() < flood.peer_sync_messages_total(),
            "{}: total {} should undercut flood's {}",
            overlay.dissemination,
            overlay.peer_sync_messages_total(),
            flood.peer_sync_messages_total()
        );
    }
}

#[test]
fn skewed_load_triggers_rebalancing() {
    let r = shard_rebalance(13);
    assert!(
        r.rebalance_transfers > 0,
        "skewed load must trigger at least one ownership move: {:?}",
        r.requests_per_controller
    );
    assert!(
        r.requests_per_controller.iter().all(|&c| c > 0),
        "after rebalancing every member must carry load: {:?}",
        r.requests_per_controller
    );
}
