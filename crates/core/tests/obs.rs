//! Observability contract tests: the flight recorder and profiler are
//! strictly read-only — reports must be bit-identical with tracing on or
//! off — and a traced run must contain reconstructable per-flow causal
//! chains.

use lazyctrl_core::scenarios::{
    run_built, run_built_detailed, Scenario, ScenarioRegistry, ScenarioVerdict,
};
use lazyctrl_core::{
    ControlMode, EventPlan, Experiment, ExperimentConfig, ExperimentReport, ObsConfig,
};
use lazyctrl_obs::intern::kind;
use lazyctrl_trace::realistic::{generate, RealTraceConfig};
use lazyctrl_trace::Trace;

/// Full tracing, but no dump side-effects from a test run.
fn test_obs() -> ObsConfig {
    let mut obs = ObsConfig::full();
    obs.dump_on_failure = false;
    obs
}

/// The regression matrix from the issue: `cold_cache`, `crash_under_load`
/// and `peer_sync_storm` reports must be bit-identical with the flight
/// recorder enabled vs disabled.
#[test]
fn reports_bit_identical_with_recorder_on_vs_off() {
    let reg = ScenarioRegistry::builtin();
    for name in ["cold_cache", "crash_under_load", "peer_sync_storm"] {
        let scenario = reg.get(name).expect(name);
        let seed = 7;
        let (trace, cfg, plan) = scenario.build(seed);
        let off = run_built(scenario, trace, cfg, plan);
        let (trace, cfg, plan) = scenario.build(seed);
        let on = run_built(scenario, trace, cfg.with_obs(test_obs()), plan);
        assert_eq!(
            off.report, on.report,
            "{name}: report diverged with tracing enabled"
        );
    }
}

fn traced_run(mode: ControlMode) -> lazyctrl_core::DetailedRun {
    let mut tc = RealTraceConfig::small();
    tc.num_flows = 800;
    let trace = generate(&tc);
    let mut cfg = ExperimentConfig::new(mode)
        .with_group_size_limit(10)
        .with_obs(test_obs().with_ring_capacity(1 << 18));
    cfg.record_flow_latencies = true;
    Experiment::new(trace, cfg).run_detailed()
}

/// Acceptance criterion: from a traced run, `flow_chain` reconstructs a
/// complete PacketIn → FlowMod → delivery chain for at least one flow.
#[test]
fn flow_chain_reconstructs_packet_in_to_delivery() {
    // Baseline (reactive OpenFlow) punts every fresh pair to the
    // controller, so PacketIn → FlowMod → delivery is the common path.
    let run = traced_run(ControlMode::Baseline);
    let obs = run.obs.as_ref().expect("obs enabled");
    assert!(obs.stats.recorded > 0, "recorder captured nothing");

    let mut complete = 0u32;
    for ((src, dst, _emit), _ms) in &run.flow_latencies {
        let chain = obs.recorder.flow_chain(*src as u64, *dst as u64);
        let has = |k: u16| chain.iter().any(|r| r.kind == k);
        if !(has(kind::PACKET_IN_SENT)
            && has(kind::PACKET_IN_RECV)
            && has(kind::FLOW_MOD_SENT)
            && has(kind::FLOW_MOD_RECV)
            && has(kind::FRAME_DELIVERED))
        {
            continue;
        }
        // Causal ordering: FlowMod records join on destination, so the
        // chain may also contain installs triggered by *other* sources
        // talking to the same destination earlier. A complete causal
        // instance is: a PacketIn, followed by a FlowMod install at or
        // after it, followed by a delivery at or after that.
        let t_pi = chain
            .iter()
            .find(|r| r.kind == kind::PACKET_IN_SENT)
            .unwrap()
            .t_ns;
        let fm_after = chain
            .iter()
            .filter(|r| r.kind == kind::FLOW_MOD_RECV && r.t_ns >= t_pi)
            .map(|r| r.t_ns)
            .next();
        let Some(t_fm) = fm_after else { continue };
        if chain
            .iter()
            .any(|r| r.kind == kind::FRAME_DELIVERED && r.t_ns >= t_fm)
        {
            complete += 1;
        }
    }
    assert!(
        complete > 0,
        "no flow had a complete PacketIn→FlowMod→delivery chain ({} flows, {} records)",
        run.flow_latencies.len(),
        obs.stats.recorded
    );
}

/// The profiler's exact event counts must equal the kernel's pop count,
/// and phase walls must be populated.
#[test]
fn profile_counts_match_events_and_phases_are_positive() {
    let run = traced_run(ControlMode::LazyDynamic);
    let obs = run.obs.as_ref().expect("obs enabled");
    assert_eq!(
        obs.profile.total_events(),
        run.report.events_processed,
        "profiler count diverged from kernel pop count"
    );
    assert!(
        obs.profile.samples() > 0,
        "sampling profiler took no samples"
    );
    assert!(run.phases.run_s > 0.0);
    assert!(run.phases.total_s() >= run.phases.run_s);
}

/// Test-only wrapper: a real scenario's build, a verdict that always
/// fails — the trigger for the automatic flight-recorder dump.
struct AlwaysFails<'a>(&'a dyn Scenario);

impl Scenario for AlwaysFails<'_> {
    fn name(&self) -> &'static str {
        "always_fails_obs"
    }
    fn summary(&self) -> &'static str {
        "test-only: forces a failed verdict to exercise dump-on-failure"
    }
    fn build(&self, seed: u64) -> (Trace, ExperimentConfig, EventPlan) {
        self.0.build(seed)
    }
    fn check(&self, _report: &ExperimentReport) -> ScenarioVerdict {
        let mut v = ScenarioVerdict::new();
        v.require(false, "forced failure (dump-on-failure test)");
        v
    }
}

/// Acceptance criterion, end to end: a failed-verdict run emits a dump
/// from which a complete PacketIn → FlowMod → delivery chain is
/// reconstructable for at least one flow — here re-parsed from the
/// `.trace.jsonl` artifact itself, not from in-memory state.
#[test]
fn failed_verdict_dumps_recorder_and_chain_survives_round_trip() {
    let dir = "target/obs-test-dump";
    let _ = std::fs::remove_dir_all(dir);

    let reg = ScenarioRegistry::builtin();
    let scenario = AlwaysFails(reg.get("cold_cache").expect("built-in"));
    let (trace, cfg, plan) = scenario.build(7);
    let cfg = cfg.with_obs(
        ObsConfig::full()
            .with_ring_capacity(1 << 18)
            .with_dump_dir(dir),
    );
    let (run, _detailed) = run_built_detailed(&scenario, trace, cfg, plan);
    assert!(!run.verdict.passed(), "wrapper must fail its verdict");

    let jsonl = std::fs::read_to_string(format!("{dir}/always_fails_obs.trace.jsonl"))
        .expect("failed verdict must dump .trace.jsonl");
    for suffix in ["chrome.json", "telemetry.json"] {
        assert!(
            std::fs::metadata(format!("{dir}/always_fails_obs.{suffix}")).is_ok(),
            "failed verdict must dump .{suffix}"
        );
    }

    // Reconstruct a causal chain from the dumped records alone.
    let mut records = Vec::new();
    for line in jsonl.lines() {
        let v = lazyctrl_obs::json::parse(line).expect("dump line parses");
        let field = |k: &str| v.get(k).and_then(|x| x.as_f64()).unwrap_or(0.0);
        let kind = v
            .get("kind")
            .and_then(|x| x.as_str())
            .expect("kind field")
            .to_owned();
        records.push((field("t_ns") as u64, field("trace_id") as u64, kind));
    }
    assert!(!records.is_empty(), "dump must contain records");

    let complete = records
        .iter()
        .filter(|(_, id, k)| *id != 0 && k == "packet_in_sent")
        .any(|&(t_pi, pair_id, _)| {
            let dst_id = pair_id & 0xffff_ffff;
            records
                .iter()
                .filter(|(t, id, k)| *id == dst_id && k == "flow_mod_recv" && *t >= t_pi)
                .any(|&(t_fm, _, _)| {
                    records
                        .iter()
                        .any(|(t, id, k)| *id == pair_id && k == "frame_delivered" && *t >= t_fm)
                })
        });
    assert!(
        complete,
        "no PacketIn→FlowMod→delivery chain reconstructable from the dump"
    );
}
