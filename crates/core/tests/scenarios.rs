//! Registry-level scenario tests: every built-in scenario's `build`
//! validates, its `check` passes, and same-seed runs are bit-identical —
//! the contract `repro_scenario` and CI rely on. Cluster scenarios are
//! additionally pinned bit-identical under *every* dissemination
//! strategy, so the relay overlays cannot silently break determinism.

use lazyctrl_core::scenarios::{run_built, run_scenario, ScenarioRegistry};
use lazyctrl_core::{DisseminationStrategy, ExperimentReport};

/// Compares the cluster fingerprint checkpoints of two same-seed runs
/// *before* the full reports, so a determinism break is localized to the
/// first crash/recovery checkpoint where the protocol state diverged —
/// far more actionable than a whole-report diff.
fn assert_fingerprints_agree(name: &str, label: &str, a: &ExperimentReport, b: &ExperimentReport) {
    let (Some(ca), Some(cb)) = (&a.cluster, &b.cluster) else {
        return;
    };
    assert_eq!(
        ca.fingerprint_checkpoints.len(),
        cb.fingerprint_checkpoints.len(),
        "{name} [{label}]: runs took different numbers of crash/recovery checkpoints"
    );
    for (i, (fa, fb)) in ca
        .fingerprint_checkpoints
        .iter()
        .zip(&cb.fingerprint_checkpoints)
        .enumerate()
    {
        assert_eq!(
            fa,
            fb,
            "{name} [{label}]: cluster state diverged at checkpoint {i} \
             (of {}): {fa:#018x} vs {fb:#018x}",
            ca.fingerprint_checkpoints.len()
        );
    }
    assert_eq!(
        ca.state_fingerprint, cb.state_fingerprint,
        "{name} [{label}]: end-of-run cluster fingerprints diverged"
    );
}

/// Builds (without running) every scenario and validates the inputs.
#[test]
fn every_builtin_scenario_builds_valid_inputs() {
    let reg = ScenarioRegistry::builtin();
    assert!(reg.len() >= 6, "registry too small: {:?}", reg.names());
    for s in reg.iter() {
        let (trace, cfg, plan) = s.build(0xC1);
        trace.validate();
        plan.validate();
        cfg.with_plan(plan).validate();
    }
}

/// Runs one scenario twice at the same seed: the verdict must pass and
/// the reports must be bit-identical.
fn assert_passes_deterministically(name: &str) {
    let reg = ScenarioRegistry::builtin();
    let s = reg.get(name).unwrap_or_else(|| panic!("{name} registered"));
    let a = run_scenario(s, 0xC1);
    assert!(
        a.verdict.passed(),
        "{name} failed: {:?}",
        a.verdict.failures
    );
    let b = run_scenario(s, 0xC1);
    assert_fingerprints_agree(name, "same-seed", &a.report, &b.report);
    assert_eq!(a.report, b.report, "{name}: same-seed reports diverged");
    assert_eq!(a.verdict, b.verdict, "{name}: same-seed verdicts diverged");
}

#[test]
fn cold_cache_passes_deterministically() {
    assert_passes_deterministically("cold_cache");
}

#[test]
fn crash_under_load_passes_deterministically() {
    assert_passes_deterministically("crash_under_load");
}

#[test]
fn crash_recover_passes_deterministically() {
    assert_passes_deterministically("crash_recover");
}

#[test]
fn shard_rebalance_passes_deterministically() {
    assert_passes_deterministically("shard_rebalance");
}

#[test]
fn switch_failure_passes_deterministically() {
    assert_passes_deterministically("switch_failure");
}

#[test]
fn degraded_control_net_passes_deterministically() {
    assert_passes_deterministically("degraded_control_net");
}

#[test]
fn host_migration_storm_passes_deterministically() {
    assert_passes_deterministically("host_migration_storm");
}

#[test]
fn traffic_burst_passes_deterministically() {
    assert_passes_deterministically("traffic_burst");
}

#[test]
fn peer_sync_storm_passes_deterministically() {
    assert_passes_deterministically("peer_sync_storm");
}

#[test]
fn partition_split_passes_deterministically() {
    assert_passes_deterministically("partition_split");
}

#[test]
fn partition_ctrl_island_passes_deterministically() {
    assert_passes_deterministically("partition_ctrl_island");
}

#[test]
fn partition_switch_orphan_passes_deterministically() {
    assert_passes_deterministically("partition_switch_orphan");
}

#[test]
fn partition_flapping_passes_deterministically() {
    assert_passes_deterministically("partition_flapping");
}

#[test]
fn flow_setup_storm_passes_deterministically() {
    assert_passes_deterministically("flow_setup_storm");
}

#[test]
fn controller_incast_passes_deterministically() {
    assert_passes_deterministically("controller_incast");
}

#[test]
fn elephant_peer_sync_passes_deterministically() {
    assert_passes_deterministically("elephant_peer_sync");
}

/// The cluster scenarios must produce bit-identical reports at a fixed
/// seed under each dissemination strategy — crash/recovery interleaved
/// with relay circulation and anti-entropy included.
fn assert_deterministic_under_every_strategy(name: &str) {
    let reg = ScenarioRegistry::builtin();
    let s = reg.get(name).unwrap_or_else(|| panic!("{name} registered"));
    for strategy in [
        DisseminationStrategy::Flood,
        DisseminationStrategy::Ring,
        DisseminationStrategy::tree(),
    ] {
        let run_once = || {
            let (trace, cfg, plan) = s.build(0xC1);
            run_built(s, trace, cfg.with_dissemination(strategy), plan)
        };
        let a = run_once();
        let b = run_once();
        assert_fingerprints_agree(name, strategy.label(), &a.report, &b.report);
        assert_eq!(
            a.report,
            b.report,
            "{name}: same-seed reports diverged under {}",
            strategy.label()
        );
        assert_eq!(
            a.report.cluster.as_ref().map(|c| c.dissemination.as_str()),
            Some(strategy.label()),
            "{name}: report must carry the strategy label"
        );
    }
}

#[test]
fn crash_under_load_is_deterministic_under_every_strategy() {
    assert_deterministic_under_every_strategy("crash_under_load");
}

#[test]
fn peer_sync_storm_is_deterministic_under_every_strategy() {
    assert_deterministic_under_every_strategy("peer_sync_storm");
}

/// A different seed still passes (scenarios must not be tuned to one
/// lucky seed); checked on the cheapest scenario to bound runtime.
#[test]
fn seeds_are_not_cherry_picked() {
    let reg = ScenarioRegistry::builtin();
    let s = reg.get("cold_cache").expect("registered");
    for seed in [1u64, 42, 0xDEAD] {
        let run = run_scenario(s, seed);
        assert!(
            run.verdict.passed(),
            "cold_cache failed at seed {seed}: {:?}",
            run.verdict.failures
        );
    }
}

/// Runs one scenario under both scheduler backends at the same seed: the
/// reports must be bit-identical. This is the experiment-level half of
/// the scheduler equivalence argument (the kernel-level half is the
/// differential proptest in `lazyctrl-sim`), and it is what lets the
/// timing wheel replace the heap without invalidating any prior result.
fn assert_identical_across_schedulers(name: &str) {
    use lazyctrl_core::SchedulerKind;
    let reg = ScenarioRegistry::builtin();
    let s = reg.get(name).unwrap_or_else(|| panic!("{name} registered"));
    let run_with = |kind: SchedulerKind| {
        let (trace, cfg, plan) = s.build(0xC1);
        run_built(s, trace, cfg.with_scheduler(kind), plan)
    };
    let wheel = run_with(SchedulerKind::Wheel);
    let heap = run_with(SchedulerKind::Heap);
    assert!(
        wheel.verdict.passed(),
        "{name} failed on the wheel: {:?}",
        wheel.verdict.failures
    );
    assert_fingerprints_agree(name, "wheel-vs-heap", &wheel.report, &heap.report);
    assert_eq!(
        wheel.report, heap.report,
        "{name}: wheel and heap reports diverged"
    );
    assert_eq!(wheel.verdict, heap.verdict);
}

#[test]
fn cold_cache_is_identical_across_schedulers() {
    assert_identical_across_schedulers("cold_cache");
}

#[test]
fn crash_under_load_is_identical_across_schedulers() {
    assert_identical_across_schedulers("crash_under_load");
}

#[test]
fn peer_sync_storm_is_identical_across_schedulers() {
    assert_identical_across_schedulers("peer_sync_storm");
}

#[test]
fn partition_split_is_identical_across_schedulers() {
    assert_identical_across_schedulers("partition_split");
}

/// The bandwidth model and the ingress shed/pace machinery are pure
/// functions of virtual time (no RNG draws), so overload scenarios keep
/// the scheduler-backend equivalence intact.
#[test]
fn flow_setup_storm_is_identical_across_schedulers() {
    assert_identical_across_schedulers("flow_setup_storm");
}

#[test]
fn controller_incast_is_identical_across_schedulers() {
    assert_identical_across_schedulers("controller_incast");
}

#[test]
fn elephant_peer_sync_is_identical_across_schedulers() {
    assert_identical_across_schedulers("elephant_peer_sync");
}

/// Runs one scenario with the parallel SGI merge/split at 4 workers vs
/// the sequential default: bit-identical reports, because the re-splits
/// are pure per-pair functions applied in deterministic order.
fn assert_identical_across_sgi_parallelism(name: &str) {
    let reg = ScenarioRegistry::builtin();
    let s = reg.get(name).unwrap_or_else(|| panic!("{name} registered"));
    let run_with = |n: usize| {
        let (trace, cfg, plan) = s.build(0xC1);
        run_built(s, trace, cfg.with_sgi_parallelism(n), plan)
    };
    let serial = run_with(1);
    let parallel = run_with(4);
    assert_fingerprints_agree(name, "sgi-parallelism", &serial.report, &parallel.report);
    assert_eq!(
        serial.report, parallel.report,
        "{name}: SGI parallelism changed the report"
    );
    assert_eq!(serial.verdict, parallel.verdict);
}

#[test]
fn cold_cache_is_identical_across_sgi_parallelism() {
    assert_identical_across_sgi_parallelism("cold_cache");
}

#[test]
fn crash_under_load_is_identical_across_sgi_parallelism() {
    assert_identical_across_sgi_parallelism("crash_under_load");
}

#[test]
fn peer_sync_storm_is_identical_across_sgi_parallelism() {
    assert_identical_across_sgi_parallelism("peer_sync_storm");
}

/// Runs one scenario on the sharded engine at 1, 4 and 8 workers: the
/// reports must be bit-identical, because the shard layout (and thus every
/// partition's event stream) is fixed by configuration — worker threads
/// only change which core drains which partition, never the results.
fn assert_identical_across_workers(name: &str) {
    let reg = ScenarioRegistry::builtin();
    let s = reg.get(name).unwrap_or_else(|| panic!("{name} registered"));
    let run_with = |n: usize| {
        let (trace, cfg, plan) = s.build(0xC1);
        run_built(s, trace, cfg.with_workers(n), plan)
    };
    let one = run_with(1);
    let four = run_with(4);
    let eight = run_with(8);
    assert_fingerprints_agree(name, "workers-1-vs-4", &one.report, &four.report);
    assert_fingerprints_agree(name, "workers-1-vs-8", &one.report, &eight.report);
    assert_eq!(
        one.report, four.report,
        "{name}: worker count 4 changed the report"
    );
    assert_eq!(
        one.report, eight.report,
        "{name}: worker count 8 changed the report"
    );
    assert_eq!(one.verdict, four.verdict);
    assert_eq!(one.verdict, eight.verdict);
}

#[test]
fn cold_cache_is_identical_across_workers() {
    assert_identical_across_workers("cold_cache");
}

#[test]
fn crash_under_load_is_identical_across_workers() {
    assert_identical_across_workers("crash_under_load");
}

#[test]
fn peer_sync_storm_is_identical_across_workers() {
    assert_identical_across_workers("peer_sync_storm");
}

/// Partition events mutate shared link state on every shard in lockstep
/// and re-homing decisions are hub-local hash-jittered (no RNG), so a
/// split fabric must not cost any worker-count determinism.
#[test]
fn partition_split_is_identical_across_workers() {
    assert_identical_across_workers("partition_split");
}

#[test]
fn partition_ctrl_island_is_identical_across_workers() {
    assert_identical_across_workers("partition_ctrl_island");
}

/// Per-link bandwidth watermarks are cloned into every shard but each
/// directed link's sender dispatches in exactly one partition, and the
/// ingress buckets live on the hub — so congestion scenarios must be
/// worker-count invariant like everything else.
#[test]
fn flow_setup_storm_is_identical_across_workers() {
    assert_identical_across_workers("flow_setup_storm");
}

#[test]
fn controller_incast_is_identical_across_workers() {
    assert_identical_across_workers("controller_incast");
}

#[test]
fn elephant_peer_sync_is_identical_across_workers() {
    assert_identical_across_workers("elephant_peer_sync");
}

/// Dynamic-mode regrouping actually exercises the parallel merge/split
/// path (the static scenarios freeze their grouping), so this is the
/// end-to-end proof that worker count does not leak into results.
#[test]
fn dynamic_regrouping_is_identical_across_sgi_parallelism() {
    use lazyctrl_core::{ControlMode, Experiment, ExperimentConfig};
    let base = lazyctrl_bench_free_trace();
    let run_with = |n: usize| {
        let cfg = ExperimentConfig::new(ControlMode::LazyDynamic)
            .with_group_size_limit(10)
            .with_seed(77)
            .with_sgi_parallelism(n);
        Experiment::new(base.clone(), cfg).run()
    };
    let serial = run_with(1);
    let parallel = run_with(4);
    assert_eq!(serial, parallel, "dynamic SGI diverged across parallelism");
    let updates: f64 = serial.updates_per_hour.iter().map(|p| p.value).sum();
    assert!(
        updates > 0.0,
        "dynamic mode never regrouped — test is vacuous"
    );
}

/// A shifting-hotspot trace that forces incremental regroups (mirrors the
/// end-to-end dynamic test's construction, without depending on bench).
fn lazyctrl_bench_free_trace() -> lazyctrl_trace::Trace {
    use lazyctrl_trace::expand::expand;
    use lazyctrl_trace::realistic::{generate, RealTraceConfig};
    let mut cfg = RealTraceConfig::small();
    cfg.num_flows = 20_000;
    let base = generate(&cfg);
    expand(&base, 0.40, 8.0, 24.0, 11)
}
