//! Registry-level scenario tests: every built-in scenario's `build`
//! validates, its `check` passes, and same-seed runs are bit-identical —
//! the contract `repro_scenario` and CI rely on. Cluster scenarios are
//! additionally pinned bit-identical under *every* dissemination
//! strategy, so the relay overlays cannot silently break determinism.

use lazyctrl_core::scenarios::{run_built, run_scenario, ScenarioRegistry};
use lazyctrl_core::DisseminationStrategy;

/// Builds (without running) every scenario and validates the inputs.
#[test]
fn every_builtin_scenario_builds_valid_inputs() {
    let reg = ScenarioRegistry::builtin();
    assert!(reg.len() >= 6, "registry too small: {:?}", reg.names());
    for s in reg.iter() {
        let (trace, cfg, plan) = s.build(0xC1);
        trace.validate();
        plan.validate();
        cfg.with_plan(plan).validate();
    }
}

/// Runs one scenario twice at the same seed: the verdict must pass and
/// the reports must be bit-identical.
fn assert_passes_deterministically(name: &str) {
    let reg = ScenarioRegistry::builtin();
    let s = reg.get(name).unwrap_or_else(|| panic!("{name} registered"));
    let a = run_scenario(s, 0xC1);
    assert!(
        a.verdict.passed(),
        "{name} failed: {:?}",
        a.verdict.failures
    );
    let b = run_scenario(s, 0xC1);
    assert_eq!(a.report, b.report, "{name}: same-seed reports diverged");
    assert_eq!(a.verdict, b.verdict, "{name}: same-seed verdicts diverged");
}

#[test]
fn cold_cache_passes_deterministically() {
    assert_passes_deterministically("cold_cache");
}

#[test]
fn crash_under_load_passes_deterministically() {
    assert_passes_deterministically("crash_under_load");
}

#[test]
fn crash_recover_passes_deterministically() {
    assert_passes_deterministically("crash_recover");
}

#[test]
fn shard_rebalance_passes_deterministically() {
    assert_passes_deterministically("shard_rebalance");
}

#[test]
fn switch_failure_passes_deterministically() {
    assert_passes_deterministically("switch_failure");
}

#[test]
fn degraded_control_net_passes_deterministically() {
    assert_passes_deterministically("degraded_control_net");
}

#[test]
fn host_migration_storm_passes_deterministically() {
    assert_passes_deterministically("host_migration_storm");
}

#[test]
fn traffic_burst_passes_deterministically() {
    assert_passes_deterministically("traffic_burst");
}

#[test]
fn peer_sync_storm_passes_deterministically() {
    assert_passes_deterministically("peer_sync_storm");
}

/// The cluster scenarios must produce bit-identical reports at a fixed
/// seed under each dissemination strategy — crash/recovery interleaved
/// with relay circulation and anti-entropy included.
fn assert_deterministic_under_every_strategy(name: &str) {
    let reg = ScenarioRegistry::builtin();
    let s = reg.get(name).unwrap_or_else(|| panic!("{name} registered"));
    for strategy in [
        DisseminationStrategy::Flood,
        DisseminationStrategy::Ring,
        DisseminationStrategy::tree(),
    ] {
        let run_once = || {
            let (trace, cfg, plan) = s.build(0xC1);
            run_built(s, trace, cfg.with_dissemination(strategy), plan)
        };
        let a = run_once();
        let b = run_once();
        assert_eq!(
            a.report,
            b.report,
            "{name}: same-seed reports diverged under {}",
            strategy.label()
        );
        assert_eq!(
            a.report.cluster.as_ref().map(|c| c.dissemination.as_str()),
            Some(strategy.label()),
            "{name}: report must carry the strategy label"
        );
    }
}

#[test]
fn crash_under_load_is_deterministic_under_every_strategy() {
    assert_deterministic_under_every_strategy("crash_under_load");
}

#[test]
fn peer_sync_storm_is_deterministic_under_every_strategy() {
    assert_deterministic_under_every_strategy("peer_sync_storm");
}

/// A different seed still passes (scenarios must not be tuned to one
/// lucky seed); checked on the cheapest scenario to bound runtime.
#[test]
fn seeds_are_not_cherry_picked() {
    let reg = ScenarioRegistry::builtin();
    let s = reg.get("cold_cache").expect("registered");
    for seed in [1u64, 42, 0xDEAD] {
        let run = run_scenario(s, seed);
        assert!(
            run.verdict.passed(),
            "cold_cache failed at seed {seed}: {:?}",
            run.verdict.failures
        );
    }
}
