//! The exploration engines: exhaustive DFS with fingerprint
//! deduplication, and seeded random walks for state spaces too large to
//! exhaust.

use std::collections::HashSet;

use crate::event::{enabled_events, spend, FaultBudget, McEvent};
use crate::invariants::{check_safety, check_terminal, Ghost};
use crate::settle::settle;
use crate::state::McState;
use crate::trace::{label_event, Counterexample, TraceStep};

/// How to explore.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Iterative-deepening DFS over every enabled event, deduplicating
    /// on state fingerprints within each deepening round: complete up to
    /// the depth/state bounds, and — because shallow frontiers are
    /// exhausted before deep ones — guaranteed to report a *minimal*
    /// violating schedule even when the state cap truncates the run.
    Exhaustive,
    /// `walks` independent schedules of `depth` uniformly random enabled
    /// events each, from a deterministic seed: incomplete, but reaches
    /// depths DFS cannot, and scales to bigger clusters.
    RandomWalk {
        /// Number of independent walks.
        walks: u64,
        /// Events per walk.
        depth: usize,
        /// PRNG seed (same seed, same walks — bit for bit).
        seed: u64,
    },
}

/// Exploration bounds and fault model.
#[derive(Debug, Clone, Copy)]
pub struct CheckerConfig {
    /// The exploration engine.
    pub mode: Mode,
    /// DFS depth bound (events per schedule).
    pub max_depth: usize,
    /// Cap on distinct states before the run reports itself truncated.
    pub max_states: u64,
    /// Adversary budget per schedule.
    pub budget: FaultBudget,
    /// In-flight message cap (duplication stops at this backlog).
    pub max_pending: usize,
    /// Virtual settling horizon before terminal invariants are checked.
    pub settle_horizon_ns: u64,
    /// Settle-and-check every k-th leaf (and every k-th walk); settling
    /// runs hundreds of steps, so checking a sample of leaves buys most
    /// of the coverage at a fraction of the cost. 0 disables terminal
    /// checks entirely.
    pub settle_every: u64,
}

impl Default for CheckerConfig {
    fn default() -> Self {
        CheckerConfig {
            mode: Mode::Exhaustive,
            max_depth: 12,
            max_states: 500_000,
            budget: FaultBudget::none(),
            max_pending: 12,
            settle_horizon_ns: 45_000_000_000,
            settle_every: 64,
        }
    }
}

/// What an exploration did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckStats {
    /// Transitions executed.
    pub explored: u64,
    /// Distinct state fingerprints reached.
    pub distinct: u64,
    /// Revisits pruned by fingerprint deduplication.
    pub deduped: u64,
    /// Depth-bound leaves reached (deepest round only, for exhaustive
    /// mode).
    pub leaves: u64,
    /// Frontier states settled and terminally checked.
    pub settled: u64,
    /// True if the distinct-state cap stopped the exploration early.
    pub truncated: bool,
}

/// An exploration's verdict.
#[derive(Debug, Clone)]
pub struct CheckOutcome {
    /// Counters.
    pub stats: CheckStats,
    /// The first violating schedule found, if any.
    pub violation: Option<Counterexample>,
}

impl CheckOutcome {
    /// True if no invariant was violated.
    pub fn passed(&self) -> bool {
        self.violation.is_none()
    }
}

/// One DFS stack entry: a reached state, what remains to try from it,
/// and the path bookkeeping that got us here.
struct Frame {
    state: McState,
    ghost: Ghost,
    budget: FaultBudget,
    events: Vec<McEvent>,
    next: usize,
    step: Option<TraceStep>,
}

/// Explores `initial` under `cfg` and reports the outcome.
pub fn check(initial: &McState, cfg: &CheckerConfig) -> CheckOutcome {
    match cfg.mode {
        Mode::Exhaustive => check_exhaustive(initial, cfg),
        Mode::RandomWalk { walks, depth, seed } => check_walks(initial, cfg, walks, depth, seed),
    }
}

fn trace_of(stack: &[Frame], last: TraceStep) -> Vec<TraceStep> {
    let mut steps: Vec<TraceStep> = stack.iter().filter_map(|f| f.step.clone()).collect();
    steps.push(last);
    steps
}

fn check_exhaustive(initial: &McState, cfg: &CheckerConfig) -> CheckOutcome {
    let mut stats = CheckStats::default();
    let mut distinct: HashSet<u64> = HashSet::new();
    distinct.insert(initial.fingerprint());

    let mut root_ghost = Ghost::default();
    if let Some(v) = check_safety(initial, &mut root_ghost) {
        stats.distinct = distinct.len() as u64;
        return CheckOutcome {
            stats,
            violation: Some(Counterexample {
                steps: vec![],
                violation: v,
                settle_horizon_ns: 0,
            }),
        };
    }

    // Iterative deepening: a plain DFS commits its entire state budget to
    // the first child's subtree before ever trying the second event at
    // the root, so a two-step bug can hide behind a million-state cap.
    // Re-exploring the shallow prefixes costs a constant factor and buys
    // completeness-in-order: the first violation reported is a shortest
    // one.
    let mut violation = None;
    let mut cutoffs: u64 = 0;
    'deepening: for depth_limit in 1..=cfg.max_depth {
        let last_round = depth_limit == cfg.max_depth;
        // Dedup is per round: a state first reached at depth d must be
        // re-expandable in later rounds, where more depth remains below
        // it.
        let mut visited: HashSet<u64> = HashSet::new();
        visited.insert(initial.fingerprint());

        let mut stack = vec![Frame {
            state: initial.clone(),
            ghost: root_ghost.clone(),
            budget: cfg.budget,
            events: enabled_events(initial, cfg.budget, cfg.max_pending),
            next: 0,
            step: None,
        }];

        while let Some(top) = stack.last_mut() {
            if top.next >= top.events.len() || stats.truncated {
                stack.pop();
                continue;
            }
            let ev = top.events[top.next];
            top.next += 1;

            let label = label_event(&top.state, ev);
            let mut child = top.state.clone();
            let mut ghost = top.ghost.clone();
            let mut budget = top.budget;
            spend(&mut budget, ev);
            let outs = child.apply(ev);
            stats.explored += 1;

            let bad = ghost
                .note_outputs(&outs)
                .or_else(|| check_safety(&child, &mut ghost));
            let fp = child.fingerprint();
            let step = TraceStep {
                event: ev,
                label,
                now_ns: child.now_ns,
                fingerprint: fp,
            };
            if let Some(v) = bad {
                violation = Some(Counterexample {
                    steps: trace_of(&stack, step),
                    violation: v,
                    settle_horizon_ns: 0,
                });
                break 'deepening;
            }
            if !visited.insert(fp) {
                stats.deduped += 1;
                continue;
            }
            if distinct.insert(fp) && distinct.len() as u64 >= cfg.max_states {
                stats.truncated = true;
            }

            if stack.len() >= depth_limit {
                // Only the deepest round's frontier counts as leaves —
                // earlier rounds' cut-offs are interior states it will
                // expand — but every round's cut-offs feed the sampled
                // terminal check, so a run truncated before its last
                // round still exercises the liveness invariants.
                cutoffs += 1;
                if last_round {
                    stats.leaves += 1;
                }
                if cfg.settle_every > 0 && cutoffs % cfg.settle_every == 1 {
                    stats.settled += 1;
                    let settled = settle(&child, cfg.settle_horizon_ns);
                    if let Some(v) = check_terminal(&settled) {
                        violation = Some(Counterexample {
                            steps: trace_of(&stack, step),
                            violation: v,
                            settle_horizon_ns: cfg.settle_horizon_ns,
                        });
                        break 'deepening;
                    }
                }
                continue;
            }
            let events = enabled_events(&child, budget, cfg.max_pending);
            stack.push(Frame {
                state: child,
                ghost,
                budget,
                events,
                next: 0,
                step: Some(step),
            });
        }
        if stats.truncated {
            break;
        }
    }
    stats.distinct = distinct.len() as u64;
    CheckOutcome { stats, violation }
}

fn check_walks(
    initial: &McState,
    cfg: &CheckerConfig,
    walks: u64,
    depth: usize,
    seed: u64,
) -> CheckOutcome {
    let mut stats = CheckStats::default();
    let mut visited: HashSet<u64> = HashSet::new();
    visited.insert(initial.fingerprint());
    stats.distinct = 1;
    let mut rng = seed ^ 0x5DEECE66D;

    for walk in 0..walks {
        let mut state = initial.clone();
        let mut ghost = Ghost::default();
        let mut budget = cfg.budget;
        let mut steps: Vec<TraceStep> = Vec::new();
        for _ in 0..depth {
            let events = enabled_events(&state, budget, cfg.max_pending);
            if events.is_empty() {
                break;
            }
            let ev = events[(splitmix64(&mut rng) % events.len() as u64) as usize];
            let label = label_event(&state, ev);
            spend(&mut budget, ev);
            let outs = state.apply(ev);
            stats.explored += 1;
            let fp = state.fingerprint();
            if visited.insert(fp) {
                stats.distinct += 1;
            } else {
                stats.deduped += 1;
            }
            steps.push(TraceStep {
                event: ev,
                label,
                now_ns: state.now_ns,
                fingerprint: fp,
            });
            let violation = ghost
                .note_outputs(&outs)
                .or_else(|| check_safety(&state, &mut ghost));
            if let Some(v) = violation {
                return CheckOutcome {
                    stats,
                    violation: Some(Counterexample {
                        steps,
                        violation: v,
                        settle_horizon_ns: 0,
                    }),
                };
            }
        }
        stats.leaves += 1;
        if cfg.settle_every > 0 && walk % cfg.settle_every == 0 {
            stats.settled += 1;
            let settled = settle(&state, cfg.settle_horizon_ns);
            if let Some(v) = check_terminal(&settled) {
                return CheckOutcome {
                    stats,
                    violation: Some(Counterexample {
                        steps,
                        violation: v,
                        settle_horizon_ns: cfg.settle_horizon_ns,
                    }),
                };
            }
        }
    }
    CheckOutcome {
        stats,
        violation: None,
    }
}

/// SplitMix64: a tiny, deterministic, well-mixed PRNG — the checker
/// cannot use `rand` (wall-clock seeding would break replay).
fn splitmix64(s: &mut u64) -> u64 {
    *s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *s;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}
