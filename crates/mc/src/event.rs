//! Event enumeration: what the adversary (the network and the fault
//! injector) can do next in a given state.

use lazyctrl_cluster::{hash_wire_ignoring_xid, Fnv64};

use crate::state::McState;

/// One adversarial choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum McEvent {
    /// Deliver in-flight message `pending[i]`.
    Deliver(usize),
    /// Drop in-flight message `pending[i]` (consumes drop budget).
    Drop(usize),
    /// Deliver a copy of `pending[i]`, leaving the original in flight
    /// (consumes duplicate budget).
    Duplicate(usize),
    /// Fire the earliest-due armed timer, advancing the clock to it.
    FireTimer,
    /// Crash a functioning member (consumes crash budget).
    Crash(u32),
    /// Restart a crashed member.
    Recover(u32),
    /// Sever member `m` from every peer (consumes partition budget). On
    /// a fabric of members only, every two-way cut is "isolate one
    /// member" up to symmetry, so this single shape covers the clean
    /// split and the leader-island cut alike. In-flight messages across
    /// the cut are destroyed, and messages sent across it while the
    /// partition stands never enter the in-flight set.
    Partition(u32),
    /// Restore full reachability (consumes heal budget).
    Heal,
}

/// How much damage the adversary may do along one schedule. Bounding the
/// budget is what keeps exhaustive exploration finite *and* matches the
/// fairness assumptions the liveness invariants need (a network that
/// drops everything forever converges on nothing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultBudget {
    /// Message drops available.
    pub drops: u32,
    /// Message duplications available.
    pub dups: u32,
    /// Member crashes available.
    pub crashes: u32,
    /// Partition starts available (each isolates one member from every
    /// peer until healed).
    pub partitions: u32,
    /// Partition heals available. Liveness does not depend on the
    /// adversary spending these: [`crate::settle`] heals unconditionally
    /// before the terminal invariants are checked — the standard
    /// "partitions eventually heal" fairness assumption.
    pub heals: u32,
}

impl FaultBudget {
    /// No faults: pure reordering exploration.
    pub fn none() -> FaultBudget {
        FaultBudget {
            drops: 0,
            dups: 0,
            crashes: 0,
            partitions: 0,
            heals: 0,
        }
    }
}

/// Enumerates the events enabled in `state` under `budget`, in a fixed
/// deterministic order.
///
/// Symmetry reduction: two in-flight messages that are bit-identical on
/// the same link (xid blinded) lead to identical successor states, so
/// only the first enumerates Deliver/Drop/Duplicate branches.
pub fn enabled_events(state: &McState, budget: FaultBudget, max_pending: usize) -> Vec<McEvent> {
    let mut events = Vec::new();
    let mut seen_wires: Vec<u64> = Vec::new();
    let mut distinct: Vec<usize> = Vec::new();
    for (i, p) in state.pending.iter().enumerate() {
        let mut h = Fnv64::new();
        h.u32(p.from).u32(p.to);
        hash_wire_ignoring_xid(&mut h, &p.msg.encode());
        let w = h.finish();
        if !seen_wires.contains(&w) {
            seen_wires.push(w);
            distinct.push(i);
        }
    }
    for &i in &distinct {
        events.push(McEvent::Deliver(i));
    }
    if budget.drops > 0 {
        for &i in &distinct {
            events.push(McEvent::Drop(i));
        }
    }
    if budget.dups > 0 && state.pending.len() < max_pending {
        for &i in &distinct {
            events.push(McEvent::Duplicate(i));
        }
    }
    if !state.timers.is_empty() {
        events.push(McEvent::FireTimer);
    }
    let members = state.plane.num_controllers() as u32;
    if budget.crashes > 0 {
        // Never crash the last functioning member: with nobody left to
        // act, every invariant holds vacuously and the subtree is noise.
        if state.functioning().len() > 1 {
            for id in 0..members {
                if !state.plane.is_crashed(id) {
                    events.push(McEvent::Crash(id));
                }
            }
        }
    }
    for id in 0..members {
        if state.plane.is_crashed(id) {
            events.push(McEvent::Recover(id));
        }
    }
    // One partition at a time: a second cut before the heal would only
    // re-partition an already-severed fabric, and keeping the partition
    // state a single island bound keeps the space small.
    if budget.partitions > 0 && state.partition.is_none() && state.functioning().len() > 1 {
        for id in 0..members {
            if !state.plane.is_crashed(id) {
                events.push(McEvent::Partition(id));
            }
        }
    }
    if budget.heals > 0 && state.partition.is_some() {
        events.push(McEvent::Heal);
    }
    events
}

/// Deducts the cost of `ev` from `budget`.
pub fn spend(budget: &mut FaultBudget, ev: McEvent) {
    match ev {
        McEvent::Drop(_) => budget.drops -= 1,
        McEvent::Duplicate(_) => budget.dups -= 1,
        McEvent::Crash(_) => budget.crashes -= 1,
        McEvent::Partition(_) => budget.partitions -= 1,
        McEvent::Heal => budget.heals -= 1,
        McEvent::Deliver(_) | McEvent::FireTimer | McEvent::Recover(_) => {}
    }
}
