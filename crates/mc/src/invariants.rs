//! The invariant predicates and the ghost ledgers that power them.
//!
//! Safety invariants (`check_safety`, plus the output-observing ledger
//! in [`Ghost`]) must hold in *every* reachable state. Terminal
//! invariants (`check_terminal`) are liveness-shaped: they are checked
//! on a deterministically settled copy of a state (see
//! [`crate::settle`]), where the network has calmed down and every
//! repair cadence has had time to run.

use std::collections::BTreeMap;

use lazyctrl_cluster::{ClusterOutput, ElectionRole};
use lazyctrl_proto::{ClusterMsg, MessageBody};

use crate::state::McState;

/// A violated invariant: which one, and what was observed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Short invariant name (stable, used by tests and the repro binary).
    pub invariant: &'static str,
    /// Human-readable account of the violating observation.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.invariant, self.detail)
    }
}

/// History-dependent bookkeeping carried along one exploration path.
/// Cloned with the path, never part of the state fingerprint: it records
/// what *happened*, not what *is*.
#[derive(Debug, Clone, Default)]
pub struct Ghost {
    /// `term -> the one member seen leading it`. A second member leading
    /// the same term — even at a different point of the schedule — is a
    /// split brain.
    pub leaders_by_term: BTreeMap<u64, u32>,
    /// `(forwarder, dest, origin, seq, chunk) -> times forwarded` on the
    /// relay overlay. The dedup window must hold every count at one.
    pub relay_forwards: BTreeMap<(u32, u32, u32, u64, u32), u32>,
}

impl Ghost {
    /// Observes one step's outputs, updating the relay-forwarding ledger
    /// and reporting an at-most-once violation immediately.
    pub fn note_outputs(&mut self, outs: &[ClusterOutput]) -> Option<Violation> {
        for out in outs {
            let ClusterOutput::ToCtrl { from, to, msg } = out else {
                continue;
            };
            let MessageBody::Cluster(ClusterMsg::SyncRelay(bundle)) = &msg.body else {
                continue;
            };
            for sync in &bundle.syncs {
                let key = (*from, *to, sync.origin, sync.seq, sync.chunk);
                let count = self.relay_forwards.entry(key).or_insert(0);
                *count += 1;
                if *count > 1 {
                    return Some(Violation {
                        invariant: "at-most-once-forward",
                        detail: format!(
                            "member {from} forwarded chunk (origin {}, seq {}, chunk {}) \
                             to member {to} {count} times",
                            sync.origin, sync.seq, sync.chunk
                        ),
                    });
                }
            }
        }
        None
    }
}

/// Checks the always-invariants in `state`, updating the ghost's
/// leadership ledger.
pub fn check_safety(state: &McState, ghost: &mut Ghost) -> Option<Violation> {
    let plane = &state.plane;
    let n = plane.num_controllers() as u32;

    // (1) No double apply: no member may have absorbed more foreign
    // chunks than its peers ever created — counts applied twice show up
    // here no matter which path smuggled the duplicate in.
    let chunks: Vec<u64> = (0..n)
        .map(|i| plane.sync_traffic(i).chunks_created)
        .collect();
    let total: u64 = chunks.iter().sum();
    for m in 0..n {
        let t = plane.sync_traffic(m);
        let foreign = total - chunks[m as usize];
        let applied = t.relay_applies + t.direct_applies;
        if applied > foreign {
            return Some(Violation {
                invariant: "no-double-apply",
                detail: format!(
                    "member {m} applied {applied} foreign chunks but only {foreign} exist"
                ),
            });
        }
    }

    // (4) Ownership integrity: every group has exactly one owner and the
    // group count never changes. (Liveness of ownership — the owner being
    // functioning — is a terminal invariant: right after a crash the dead
    // member legitimately still owns its shard.)
    let groups = plane.ownership().len();
    for g in 0..groups {
        if plane.ownership().owner_of(g).is_none() {
            return Some(Violation {
                invariant: "ownership-integrity",
                detail: format!("group {g} has no owner"),
            });
        }
    }

    // (5) Single leader per term, across both space (two functioning
    // leaders now) and time (the ghost remembers every leader ever seen
    // in each term).
    for id in 0..n {
        if plane.is_crashed(id) || plane.election_role(id) != ElectionRole::Leader {
            continue;
        }
        let term = plane.election_term(id);
        let prev = *ghost.leaders_by_term.entry(term).or_insert(id);
        if prev != id {
            return Some(Violation {
                invariant: "single-leader-per-term",
                detail: format!("term {term} was led by both member {prev} and member {id}"),
            });
        }
    }
    None
}

/// Checks the terminal invariants on a settled state: replica
/// convergence, live ownership, and an elected leader. Call this on the
/// output of [`crate::settle::settle`], not on a raw exploration state.
pub fn check_terminal(state: &McState) -> Option<Violation> {
    let plane = &state.plane;
    let functioning = state.functioning();
    if functioning.len() < 2 {
        return None; // convergence needs someone to converge with
    }

    // (2) Convergence: for every origin, every functioning member other
    // than the origin itself holds the same per-origin head as the most
    // advanced functioning member. Anti-entropy had the whole settling
    // horizon to close any gap.
    let heads: BTreeMap<u32, Vec<(u32, u64)>> = functioning
        .iter()
        .map(|&m| (m, plane.replica_heads(m)))
        .collect();
    for origin in 0..plane.num_controllers() as u32 {
        let head_of = |m: u32| -> u64 {
            heads[&m]
                .iter()
                .find(|&&(o, _)| o == origin)
                .map(|&(_, s)| s)
                .unwrap_or(0)
        };
        let observers: Vec<u32> = functioning
            .iter()
            .copied()
            .filter(|&m| m != origin)
            .collect();
        let best = observers.iter().map(|&m| head_of(m)).max().unwrap_or(0);
        for &m in &observers {
            let h = head_of(m);
            if h < best {
                return Some(Violation {
                    invariant: "convergence",
                    detail: format!(
                        "member {m} settled at head {h} for origin {origin}, \
                         but a peer reached {best}"
                    ),
                });
            }
        }
    }

    // (4, liveness half) Every group's owner is functioning: takeover has
    // had time to move a dead member's shard.
    for g in 0..plane.ownership().len() {
        match plane.ownership().owner_of(g) {
            None => {
                return Some(Violation {
                    invariant: "ownership-integrity",
                    detail: format!("group {g} lost its owner during settling"),
                })
            }
            Some(owner) if plane.is_crashed(owner) => {
                return Some(Violation {
                    invariant: "ownership-liveness",
                    detail: format!("group {g} is still owned by crashed member {owner}"),
                })
            }
            Some(_) => {}
        }
    }

    // (5, liveness half) Somebody leads: the election must have filled
    // any leadership hole the faults tore open.
    if plane.leader().is_none() {
        return Some(Violation {
            invariant: "leader-liveness",
            detail: "no functioning leader after settling".to_owned(),
        });
    }
    None
}
