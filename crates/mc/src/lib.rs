//! Bounded model checking for the LazyCtrl cluster protocols.
//!
//! The cluster control plane ([`lazyctrl_cluster::ClusterControlPlane`])
//! is a pure, clonable state machine behind the
//! [`lazyctrl_cluster::StepModel`] seam: every transition is a function
//! of `(state, input, now)`. This crate exploits that purity to explore
//! the protocol's reachable state space mechanically — every reordering,
//! drop, and duplication of in-flight controller-peer messages, plus
//! member crashes, recoveries, and network partitions (isolating any
//! one member until a heal) within a fault budget — and checks
//! invariant predicates in every state it reaches:
//!
//! 1. **No double apply** — no member ever applies more replicated delta
//!    chunks than its peers created.
//! 2. **Convergence** — after a fault-free settling run, every
//!    functioning member agrees on the per-origin replica heads.
//! 3. **At-most-once relay forwarding** — no member forwards the same
//!    `(origin, seq, chunk)` to the same peer twice.
//! 4. **Ownership integrity** — every group has exactly one owner, the
//!    group count never changes, and after settling the owner is a
//!    functioning member.
//! 5. **Single leader per term** — at no observable point do two
//!    functioning members both lead the same election term.
//!
//! Exploration is exhaustive iterative-deepening DFS with
//! state-fingerprint deduplication by default ([`Mode::Exhaustive`]), or
//! guided random walks for larger clusters ([`Mode::RandomWalk`]).
//! A violation yields a [`Counterexample`]: the exact event
//! schedule, replayable step-for-step, with its crash/recovery skeleton
//! exportable as a [`lazyctrl_proto::EventPlan`] for the full simulator.
//!
//! The same transitions the simulator executes are the transitions the
//! checker branches over — there is no separate protocol model to drift
//! out of sync.

mod checker;
mod event;
mod invariants;
mod settle;
mod state;
mod trace;

pub use checker::{check, CheckOutcome, CheckStats, CheckerConfig, Mode};
pub use event::{FaultBudget, McEvent};
pub use invariants::{Ghost, Violation};
pub use settle::settle;
pub use state::{McState, PendingMsg};
pub use trace::{Counterexample, TraceStep};
