//! Deterministic settling: the fair executor the liveness invariants
//! assume.
//!
//! From any exploration state, `settle` runs the system forward with a
//! benign network — every in-flight message delivered promptly in FIFO
//! order, every timer fired on time, no faults — for a bounded virtual
//! horizon. Detection, takeover, election, and anti-entropy all get the
//! time their cadences need, after which the terminal invariants
//! (convergence, live ownership, an elected leader) must hold.

use crate::event::McEvent;
use crate::state::McState;

/// Runs `state` fault-free for `horizon_ns` of virtual time and returns
/// the settled copy. The input state is not modified.
///
/// An active partition is healed first: the liveness invariants assume
/// partitions eventually heal (a permanently split cluster can neither
/// converge nor keep a quorum leader, by design, not by bug), so the
/// terminal check always judges the *post-heal* behavior.
pub fn settle(state: &McState, horizon_ns: u64) -> McState {
    let mut s = state.clone();
    if s.partition.is_some() {
        s.apply(McEvent::Heal);
    }
    let end = s.now_ns.saturating_add(horizon_ns);
    loop {
        if !s.pending.is_empty() {
            s.apply(McEvent::Deliver(0));
            continue;
        }
        match s.min_timer() {
            Some(i) if s.timers[i].0 <= end => {
                s.apply(McEvent::FireTimer);
            }
            _ => break,
        }
    }
    s
}
