//! The checker's world state: a cluster plane plus its network.
//!
//! The plane itself is pure; everything nondeterministic about a real
//! deployment — which in-flight message arrives next, whether it arrives
//! at all, when a timer interleaves — lives here, reified as explicit
//! state the checker can clone and branch on.

use lazyctrl_cluster::{
    hash_wire_ignoring_xid, ClusterConfig, ClusterControlPlane, ClusterOutput, ClusterTimer, Fnv64,
    StepModel,
};
use lazyctrl_net::{MacAddr, PortNo, SwitchId, TenantId};
use lazyctrl_partition::WeightedGraph;
use lazyctrl_proto::{HostEntry, Message, OutputSink};

use crate::event::McEvent;

/// A controller-peer message in flight.
#[derive(Debug, Clone)]
pub struct PendingMsg {
    /// Link-level sender.
    pub from: u32,
    /// Destination member.
    pub to: u32,
    /// The message.
    pub msg: Message,
}

/// One state in the exploration: the plane, the in-flight messages, the
/// armed timers, and the logical clock.
///
/// The clock only advances when a timer fires (to its due time), so
/// message deliveries branch freely *between* timer ticks — the network
/// can reorder anything that is concurrently in flight, which is exactly
/// the asynchrony assumption of the protocols under test.
#[derive(Clone)]
pub struct McState {
    /// The cluster plane (all members).
    pub plane: ClusterControlPlane,
    /// Controller-peer messages in flight, in emission order.
    pub pending: Vec<PendingMsg>,
    /// Armed timers: `(absolute due ns, timer)`.
    pub timers: Vec<(u64, ClusterTimer)>,
    /// The logical clock (ns).
    pub now_ns: u64,
    /// Active network partition: `Some(m)` means member `m` is severed
    /// from every peer (see [`McEvent::Partition`]). Messages across the
    /// cut are discarded at emission, mirroring the simulator's
    /// link-state gate.
    pub partition: Option<u32>,
}

impl std::fmt::Debug for McState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // The plane is a deliberately opaque state machine; identify the
        // state by its canonical hash instead of dumping internals.
        f.debug_struct("McState")
            .field("fingerprint", &format_args!("{:#018x}", self.fingerprint()))
            .field("pending", &self.pending.len())
            .field("timers", &self.timers.len())
            .field("now_ns", &self.now_ns)
            .finish()
    }
}

impl McState {
    /// Builds and bootstraps a cluster of `cfg.num_controllers` members
    /// over `groups` disjoint 3-switch cliques (the same topology the
    /// plane integration tests use), absorbing the bootstrap outputs.
    pub fn bootstrap(groups: usize, cfg: ClusterConfig) -> McState {
        let mut g = WeightedGraph::new(groups * 3);
        for c in 0..groups {
            let base = c * 3;
            for i in 0..3 {
                for j in (i + 1)..3 {
                    g.add_edge(base + i, base + j, 10.0);
                }
            }
        }
        let mut plane = ClusterControlPlane::new(groups * 3, cfg);
        let mut sink = OutputSink::new();
        plane.bootstrap(0, g, &mut sink);
        let mut state = McState {
            plane,
            pending: Vec::new(),
            timers: Vec::new(),
            now_ns: 0,
            partition: None,
        };
        state.absorb(sink.take_buf());
        state
    }

    /// Seeds replication work: member `origin` learns one host, to be
    /// flushed onto the dissemination overlay at its next flush tick.
    pub fn seed_host(&mut self, origin: u32, host: u64) {
        self.plane.enqueue_delta(
            origin,
            vec![HostEntry {
                mac: MacAddr::for_host(host),
                switch: SwitchId::new(0),
                port: PortNo::new(1),
                tenant: TenantId::new(1),
            }],
            vec![],
        );
    }

    /// True if an active partition severs the `a`↔`b` pair.
    fn severed(&self, a: u32, b: u32) -> bool {
        match self.partition {
            Some(p) => (a == p) != (b == p),
            None => false,
        }
    }

    /// Files a step's outputs: peer messages into the in-flight set,
    /// timers into the armed set. Switch-bound messages are discarded —
    /// the checker models the controller fabric, not the data plane.
    /// Messages across an active partition cut are discarded too: the
    /// pending set only ever holds deliverable traffic, so the event
    /// enumeration needs no reachability filter.
    fn absorb(&mut self, outs: Vec<ClusterOutput>) {
        for out in outs {
            match out {
                ClusterOutput::ToCtrl { from, to, msg } => {
                    if self.severed(from, to) {
                        continue;
                    }
                    self.pending.push(PendingMsg { from, to, msg });
                }
                ClusterOutput::SetTimer(timer, delay_ns) => {
                    self.timers.push((self.now_ns + delay_ns, timer));
                }
                ClusterOutput::ToSwitch { .. } => {}
            }
        }
    }

    /// Deterministic pre-roll: fires every timer due by `t_ns` without
    /// delivering any of the messages they emit. Exploration then starts
    /// from a frontier with real traffic in flight — the first heartbeat
    /// and flush round — instead of spending its depth budget replaying
    /// the forced quiet prefix where nothing can interleave. Keep `t_ns`
    /// well inside the failure-detection window: the pre-roll withholds
    /// heartbeats too.
    pub fn advance_to(&mut self, t_ns: u64) {
        while let Some(i) = self.min_timer() {
            if self.timers[i].0 > t_ns {
                break;
            }
            self.apply(McEvent::FireTimer);
        }
        self.now_ns = self.now_ns.max(t_ns);
    }

    /// Index of the earliest-due armed timer (ties broken by node id,
    /// then arm order) — the only timer [`McEvent::FireTimer`] fires,
    /// which is what keeps the logical clock deterministic per schedule.
    pub fn min_timer(&self) -> Option<usize> {
        (0..self.timers.len()).min_by_key(|&i| (self.timers[i].0, self.timers[i].1.node, i))
    }

    /// Applies one event, returning the outputs the step produced (the
    /// checker feeds them to the ghost ledgers). Panics on an event that
    /// is not enabled in this state — callers must choose from the
    /// checker's enabled-event enumeration.
    pub fn apply(&mut self, ev: McEvent) -> Vec<ClusterOutput> {
        let mut sink = OutputSink::new();
        match ev {
            McEvent::Deliver(i) => {
                let m = self.pending.remove(i);
                self.plane
                    .step_ctrl(self.now_ns, m.from, m.to, &m.msg, &mut sink);
            }
            McEvent::Drop(i) => {
                self.pending.remove(i);
            }
            McEvent::Duplicate(i) => {
                let m = self.pending[i].clone();
                self.plane
                    .step_ctrl(self.now_ns, m.from, m.to, &m.msg, &mut sink);
            }
            McEvent::FireTimer => {
                let i = self.min_timer().expect("FireTimer enabled without timers");
                let (due, timer) = self.timers.remove(i);
                self.now_ns = self.now_ns.max(due);
                self.plane.step_timer(self.now_ns, timer, &mut sink);
            }
            McEvent::Crash(id) => {
                self.plane.step_crash(id);
                // The member's armed timers are now stale-generation
                // no-ops; pruning them is behavior-preserving and keeps
                // them from bloating the state space.
                self.timers.retain(|(_, t)| t.node != id);
            }
            McEvent::Recover(id) => {
                self.plane.step_recover(id, &mut sink);
            }
            McEvent::Partition(id) => {
                self.partition = Some(id);
                // The cut destroys in-flight traffic across it (the
                // adversary already had its chance to deliver first —
                // DFS explores those orders as separate schedules).
                self.pending.retain(|p| (p.from == id) == (p.to == id));
            }
            McEvent::Heal => {
                self.partition = None;
            }
        }
        let outs = sink.take_buf();
        self.absorb(outs.clone());
        outs
    }

    /// Canonical fingerprint of this state: the plane's protocol-state
    /// hash plus the in-flight message multiset (wire bytes, xid
    /// blinded), the armed-timer multiset, and the clock. Two schedules
    /// reaching the same fingerprint are indistinguishable to every
    /// future step, so the checker explores from one of them only.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv64::new();
        h.u64(self.plane.fingerprint());
        h.u64(self.now_ns);
        match self.partition {
            Some(p) => h.u32(1).u32(p),
            None => h.u32(0),
        };
        // In-flight messages as a multiset: delivery order is the
        // checker's choice, not part of the state's identity.
        let mut wires: Vec<u64> = self
            .pending
            .iter()
            .map(|p| {
                let mut hm = Fnv64::new();
                hm.u32(p.from).u32(p.to);
                hash_wire_ignoring_xid(&mut hm, &p.msg.encode());
                hm.finish()
            })
            .collect();
        wires.sort_unstable();
        h.usize(wires.len());
        for w in wires {
            h.u64(w);
        }
        // Armed timers, canonically ordered. The kind's Debug form is a
        // stable, total description of the variant.
        let mut arms: Vec<(u64, u32, String, u32)> = self
            .timers
            .iter()
            .map(|&(due, t)| (due, t.node, format!("{:?}", t.kind), t.gen))
            .collect();
        arms.sort();
        h.usize(arms.len());
        for (due, node, kind, gen) in arms {
            h.u64(due).u32(node).bytes(kind.as_bytes()).u32(gen);
        }
        h.finish()
    }

    /// Number of functioning (non-crashed) members.
    pub fn functioning(&self) -> Vec<u32> {
        (0..self.plane.num_controllers() as u32)
            .filter(|&id| !self.plane.is_crashed(id))
            .collect()
    }
}
