//! Counterexample traces: the schedule that broke an invariant,
//! replayable step-for-step and exportable to the full simulator.

use lazyctrl_proto::{ClusterMsg, EventPlan, InjectedEvent, Message, MessageBody};
use lazyctrl_sim::SimTime;

use crate::event::McEvent;
use crate::invariants::{check_safety, check_terminal, Ghost, Violation};
use crate::state::McState;

/// One step of a counterexample schedule.
#[derive(Debug, Clone)]
pub struct TraceStep {
    /// The adversarial choice taken.
    pub event: McEvent,
    /// Readable rendering ("deliver 0→1 heartbeat", "crash member 2").
    pub label: String,
    /// The clock after the step (ns).
    pub now_ns: u64,
    /// The state fingerprint after the step.
    pub fingerprint: u64,
}

/// A schedule that violates an invariant, with enough provenance to
/// replay it deterministically from the same initial state.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// The adversarial schedule, in order.
    pub steps: Vec<TraceStep>,
    /// What broke.
    pub violation: Violation,
    /// Nonzero when the violation is a *terminal* invariant, observed
    /// after settling the final state for this many virtual ns; zero for
    /// safety violations, which reproduce from the steps alone.
    pub settle_horizon_ns: u64,
}

/// Renders the event for trace display, peeking at the in-flight message
/// it refers to (must be called *before* the event is applied).
pub fn label_event(state: &McState, ev: McEvent) -> String {
    let named = |i: usize| {
        let p = &state.pending[i];
        format!("{}→{} {}", p.from, p.to, kind_of(&p.msg))
    };
    match ev {
        McEvent::Deliver(i) => format!("deliver {}", named(i)),
        McEvent::Drop(i) => format!("drop {}", named(i)),
        McEvent::Duplicate(i) => format!("duplicate {}", named(i)),
        McEvent::FireTimer => match state.min_timer() {
            Some(i) => {
                let (due, t) = state.timers[i];
                format!(
                    "fire timer {:?} of member {} at t={:.3}s",
                    t.kind,
                    t.node,
                    due as f64 / 1e9
                )
            }
            None => "fire timer".to_owned(),
        },
        McEvent::Crash(id) => format!("crash member {id}"),
        McEvent::Recover(id) => format!("recover member {id}"),
        McEvent::Partition(id) => format!("partition: isolate member {id}"),
        McEvent::Heal => "heal partition".to_owned(),
    }
}

fn kind_of(msg: &Message) -> &'static str {
    match &msg.body {
        MessageBody::Cluster(c) => match c {
            ClusterMsg::PeerSync(_) => "peer_sync",
            ClusterMsg::SyncRelay(_) => "sync_relay",
            ClusterMsg::SyncDigest(_) => "sync_digest",
            ClusterMsg::Heartbeat(_) => "heartbeat",
            ClusterMsg::OwnershipTransfer(_) => "ownership_transfer",
            ClusterMsg::TransferAck(_) => "transfer_ack",
            ClusterMsg::LookupRequest(_) => "lookup_request",
            ClusterMsg::LookupReply(_) => "lookup_reply",
            ClusterMsg::VoteRequest(_) => "vote_request",
            ClusterMsg::VoteReply(_) => "vote_reply",
            ClusterMsg::LeaderClaim(_) => "leader_claim",
        },
        MessageBody::Lazy(_) => "lazy",
        MessageBody::Of(_) => "of",
    }
}

impl Counterexample {
    /// Re-executes the schedule from `initial` (which must be the same
    /// state the checker started from) and returns the violation the
    /// replay reproduces. `None` means the replay did NOT reproduce —
    /// a checker bug, or a different initial state.
    pub fn replay(&self, initial: &McState) -> Option<Violation> {
        let mut state = initial.clone();
        let mut ghost = Ghost::default();
        for step in &self.steps {
            let outs = state.apply(step.event);
            if let Some(v) = ghost.note_outputs(&outs) {
                return Some(v);
            }
            if let Some(v) = check_safety(&state, &mut ghost) {
                return Some(v);
            }
        }
        if self.settle_horizon_ns > 0 {
            return check_terminal(&crate::settle::settle(&state, self.settle_horizon_ns));
        }
        None
    }

    /// Exports the schedule's fault skeleton — crashes, recoveries,
    /// partitions, heals — as an [`EventPlan`], so the counterexample's
    /// fault pattern can be re-driven through the full discrete-event
    /// simulator (message reorderings are the simulator's own to make).
    /// `members` is the cluster size, needed to render an isolate-one
    /// partition as the simulator's explicit two-island cut over
    /// controller pseudo-node ids.
    pub fn fault_plan(&self, members: usize) -> EventPlan {
        let ctrl = |m: u32| lazyctrl_cluster::ctrl_pseudo_switch(m).0;
        let mut plan = EventPlan::new();
        for step in &self.steps {
            let injected = match step.event {
                McEvent::Crash(id) => InjectedEvent::CrashController(id),
                McEvent::Recover(id) => InjectedEvent::RecoverController(id),
                McEvent::Partition(id) => InjectedEvent::PartitionNetwork {
                    groups: vec![
                        vec![ctrl(id)],
                        (0..members as u32).filter(|&m| m != id).map(ctrl).collect(),
                    ],
                },
                McEvent::Heal => InjectedEvent::HealPartition,
                _ => continue,
            };
            plan.schedule(SimTime::from_nanos(step.now_ns), injected);
        }
        plan
    }
}

impl std::fmt::Display for Counterexample {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "counterexample ({} steps):", self.steps.len())?;
        for (i, step) in self.steps.iter().enumerate() {
            writeln!(
                f,
                "  {i:>3}. [t={:>9.3}s] {}  (state {:#018x})",
                step.now_ns as f64 / 1e9,
                step.label,
                step.fingerprint
            )?;
        }
        write!(f, "  violated: {}", self.violation)
    }
}
