//! Checker-level tests: exploration is deterministic, the invariants
//! hold on the real protocols, and — with the `mc-mutations` bypass
//! compiled in — the checker provably catches a real dedup bug.

use lazyctrl_cluster::{ClusterConfig, DisseminationStrategy};
use lazyctrl_mc::{check, CheckerConfig, FaultBudget, McState, Mode};

const SEC: u64 = 1_000_000_000;

fn mc_config(n: usize) -> ClusterConfig {
    let mut cfg = ClusterConfig::with_controllers(n);
    // Ring, not the flood default: relaying is what gives the checker a
    // forwarding protocol to falsify (flood has no relay path at all).
    cfg.dissemination = DisseminationStrategy::Ring;
    cfg.lazy.group_size_limit = 3;
    cfg.replica_flush_interval_ms = 1_000;
    cfg.heartbeat_interval_ms = 1_000;
    cfg.heartbeat_miss_factor = 3;
    cfg.anti_entropy_interval_ms = 3_000;
    cfg.delta_log_flushes = 10_000;
    cfg
}

fn initial(n: usize) -> McState {
    let mut state = McState::bootstrap(n, mc_config(n));
    state.seed_host(0, 1_001);
    state.seed_host(1, 2_001);
    state.advance_to(SEC);
    state
}

/// Fault-free exhaustive exploration: reorderings alone must never
/// violate an invariant, and the fingerprint dedup must actually fire
/// (diamond interleavings reconverge).
#[test]
#[cfg_attr(feature = "mc-mutations", ignore = "mutation inverts the invariants")]
fn exhaustive_reorderings_hold_invariants() {
    let cfg = CheckerConfig {
        mode: Mode::Exhaustive,
        max_depth: 8,
        max_states: 200_000,
        budget: FaultBudget::none(),
        settle_every: 128,
        ..CheckerConfig::default()
    };
    let state = initial(3);
    let outcome = check(&state, &cfg);
    assert!(outcome.passed(), "violation: {:?}", outcome.violation);
    assert!(
        outcome.stats.distinct > 1_000,
        "too few states: {:?}",
        outcome.stats
    );
    assert!(
        outcome.stats.deduped > 0,
        "dedup never fired: {:?}",
        outcome.stats
    );

    // Same exploration, bit-identical counters: the checker itself is a
    // pure function of its inputs.
    let again = check(&initial(3), &cfg);
    assert_eq!(outcome.stats, again.stats);
}

/// Random walks with the full fault model (drops, duplicates, crashes,
/// recoveries) on a 4-member cluster: still no violations.
#[test]
#[cfg_attr(feature = "mc-mutations", ignore = "mutation inverts the invariants")]
fn faulty_walks_hold_invariants() {
    let cfg = CheckerConfig {
        mode: Mode::RandomWalk {
            walks: 120,
            depth: 160,
            seed: 7,
        },
        budget: FaultBudget {
            drops: 2,
            dups: 2,
            crashes: 2,
            ..FaultBudget::none()
        },
        max_pending: 24,
        settle_every: 16,
        ..CheckerConfig::default()
    };
    let outcome = check(&initial(4), &cfg);
    assert!(outcome.passed(), "violation: {:?}", outcome.violation);
    assert!(outcome.stats.settled > 0, "no walk was terminally checked");
}

/// Random walks with a partition in the fault model: any member may be
/// severed from its peers (and healed, or left cut until settling heals
/// it) alongside drops, duplicates, and a crash. Split-brain safety
/// must hold throughout, and the post-heal settled state must converge.
#[test]
#[cfg_attr(feature = "mc-mutations", ignore = "mutation inverts the invariants")]
fn partitioned_walks_hold_invariants() {
    let cfg = CheckerConfig {
        mode: Mode::RandomWalk {
            walks: 100,
            depth: 200,
            seed: 11,
        },
        budget: FaultBudget {
            drops: 1,
            dups: 1,
            crashes: 1,
            partitions: 1,
            heals: 1,
        },
        max_pending: 24,
        settle_every: 8,
        ..CheckerConfig::default()
    };
    let outcome = check(&initial(3), &cfg);
    assert!(outcome.passed(), "violation: {:?}", outcome.violation);
    assert!(outcome.stats.settled > 0, "no walk was terminally checked");
}

/// Exhaustive exploration from an *already partitioned* state: the
/// isolated member is the bootstrap leader, so every schedule runs the
/// lease machinery against reordered in-island traffic. Heal is in
/// budget; settling heals regardless.
#[test]
#[cfg_attr(feature = "mc-mutations", ignore = "mutation inverts the invariants")]
fn exhaustive_from_partitioned_leader_holds_invariants() {
    let cfg = CheckerConfig {
        mode: Mode::Exhaustive,
        max_depth: 7,
        max_states: 150_000,
        budget: FaultBudget {
            heals: 1,
            ..FaultBudget::none()
        },
        settle_every: 64,
        ..CheckerConfig::default()
    };
    let mut state = initial(3);
    state.apply(lazyctrl_mc::McEvent::Partition(0));
    let outcome = check(&state, &cfg);
    assert!(outcome.passed(), "violation: {:?}", outcome.violation);
    assert!(outcome.stats.settled > 0, "no leaf was terminally checked");
}

/// With the relay-dedup bypass compiled in, a duplicated relay bundle
/// slips through `note_seen` and gets re-forwarded — the checker must
/// find the schedule, and the counterexample must replay.
#[test]
#[cfg(feature = "mc-mutations")]
fn checker_catches_the_dedup_bypass() {
    let cfg = CheckerConfig {
        mode: Mode::Exhaustive,
        max_depth: 12,
        max_states: 2_000_000,
        budget: FaultBudget {
            drops: 0,
            dups: 1,
            crashes: 0,
            ..FaultBudget::none()
        },
        settle_every: 0, // safety hunt only
        ..CheckerConfig::default()
    };
    let state = initial(3);
    let outcome = check(&state, &cfg);
    let cx = outcome.violation.expect("the dedup bypass must be caught");
    assert!(
        cx.violation.invariant == "at-most-once-forward"
            || cx.violation.invariant == "no-double-apply",
        "unexpected invariant: {}",
        cx.violation
    );
    let replayed = cx.replay(&state).expect("counterexample must replay");
    assert_eq!(replayed.invariant, cx.violation.invariant);
}
