use std::fmt;
use std::net::Ipv4Addr;

use bytes::{Buf, BufMut};
use serde::{Deserialize, Serialize};

use crate::{MacAddr, NetError, Result};

/// Wire length of an Ethernet/IPv4 ARP packet body.
const ARP_LEN: usize = 28;

/// ARP operation code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ArpOp {
    /// Who-has request (opcode 1).
    Request,
    /// Is-at reply (opcode 2).
    Reply,
}

impl ArpOp {
    fn to_u16(self) -> u16 {
        match self {
            ArpOp::Request => 1,
            ArpOp::Reply => 2,
        }
    }

    fn from_u16(v: u16) -> Result<Self> {
        match v {
            1 => Ok(ArpOp::Request),
            2 => Ok(ArpOp::Reply),
            other => Err(NetError::InvalidField {
                field: "arp.oper",
                value: other as u64,
            }),
        }
    }
}

impl fmt::Display for ArpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArpOp::Request => write!(f, "request"),
            ArpOp::Reply => write!(f, "reply"),
        }
    }
}

/// An ARP packet for Ethernet/IPv4.
///
/// ARP is the workload driver of LazyCtrl's *live state dissemination*
/// (§III-D.3): a broadcast request first teaches the ingress switch the
/// sender's location (L-FIB insert), then cascades group-wide via the
/// designated switch, and only reaches the controller when the whole group
/// cannot answer.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ArpPacket {
    /// Operation: request or reply.
    pub op: ArpOp,
    /// Sender hardware address.
    pub sender_mac: MacAddr,
    /// Sender protocol (IPv4) address.
    pub sender_ip: Ipv4Addr,
    /// Target hardware address (zero in requests).
    pub target_mac: MacAddr,
    /// Target protocol (IPv4) address.
    pub target_ip: Ipv4Addr,
}

impl ArpPacket {
    /// Builds a who-has broadcast request.
    pub fn request(sender_mac: MacAddr, sender_ip: Ipv4Addr, target_ip: Ipv4Addr) -> Self {
        ArpPacket {
            op: ArpOp::Request,
            sender_mac,
            sender_ip,
            target_mac: MacAddr::ZERO,
            target_ip,
        }
    }

    /// Builds the is-at reply answering `request`.
    ///
    /// # Panics
    ///
    /// Panics if `request` is not an [`ArpOp::Request`].
    pub fn reply_to(request: &ArpPacket, replier_mac: MacAddr) -> Self {
        assert_eq!(request.op, ArpOp::Request, "can only reply to a request");
        ArpPacket {
            op: ArpOp::Reply,
            sender_mac: replier_mac,
            sender_ip: request.target_ip,
            target_mac: request.sender_mac,
            target_ip: request.sender_ip,
        }
    }

    /// Serializes to the 28-byte wire format.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(ARP_LEN);
        self.encode_into(&mut buf);
        buf
    }

    /// Serializes into an existing buffer.
    pub fn encode_into<B: BufMut>(&self, buf: &mut B) {
        buf.put_u16(1); // htype: Ethernet
        buf.put_u16(0x0800); // ptype: IPv4
        buf.put_u8(6); // hlen
        buf.put_u8(4); // plen
        buf.put_u16(self.op.to_u16());
        buf.put_slice(&self.sender_mac.octets());
        buf.put_slice(&self.sender_ip.octets());
        buf.put_slice(&self.target_mac.octets());
        buf.put_slice(&self.target_ip.octets());
    }

    /// Parses from the wire format.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Truncated`] for short buffers and
    /// [`NetError::InvalidField`] for non-Ethernet/IPv4 hardware/protocol
    /// types or unknown opcodes.
    pub fn decode(mut buf: &[u8]) -> Result<Self> {
        if buf.len() < ARP_LEN {
            return Err(NetError::Truncated {
                what: "arp packet",
                needed: ARP_LEN,
                available: buf.len(),
            });
        }
        let htype = buf.get_u16();
        if htype != 1 {
            return Err(NetError::InvalidField {
                field: "arp.htype",
                value: htype as u64,
            });
        }
        let ptype = buf.get_u16();
        if ptype != 0x0800 {
            return Err(NetError::InvalidField {
                field: "arp.ptype",
                value: ptype as u64,
            });
        }
        let hlen = buf.get_u8();
        let plen = buf.get_u8();
        if hlen != 6 || plen != 4 {
            return Err(NetError::InvalidField {
                field: "arp.hlen/plen",
                value: ((hlen as u64) << 8) | plen as u64,
            });
        }
        let op = ArpOp::from_u16(buf.get_u16())?;
        let mut smac = [0u8; 6];
        buf.copy_to_slice(&mut smac);
        let mut sip = [0u8; 4];
        buf.copy_to_slice(&mut sip);
        let mut tmac = [0u8; 6];
        buf.copy_to_slice(&mut tmac);
        let mut tip = [0u8; 4];
        buf.copy_to_slice(&mut tip);
        Ok(ArpPacket {
            op,
            sender_mac: MacAddr::new(smac),
            sender_ip: Ipv4Addr::from(sip),
            target_mac: MacAddr::new(tmac),
            target_ip: Ipv4Addr::from(tip),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_request() -> ArpPacket {
        ArpPacket::request(
            MacAddr::for_host(7),
            Ipv4Addr::new(10, 0, 0, 7),
            Ipv4Addr::new(10, 0, 0, 9),
        )
    }

    #[test]
    fn request_round_trip() {
        let req = sample_request();
        let wire = req.encode();
        assert_eq!(wire.len(), ARP_LEN);
        assert_eq!(ArpPacket::decode(&wire).unwrap(), req);
    }

    #[test]
    fn reply_swaps_endpoints() {
        let req = sample_request();
        let reply = ArpPacket::reply_to(&req, MacAddr::for_host(9));
        assert_eq!(reply.op, ArpOp::Reply);
        assert_eq!(reply.sender_ip, req.target_ip);
        assert_eq!(reply.target_ip, req.sender_ip);
        assert_eq!(reply.target_mac, req.sender_mac);
        assert_eq!(reply.sender_mac, MacAddr::for_host(9));
        let wire = reply.encode();
        assert_eq!(ArpPacket::decode(&wire).unwrap(), reply);
    }

    #[test]
    #[should_panic(expected = "can only reply to a request")]
    fn reply_to_reply_panics() {
        let req = sample_request();
        let reply = ArpPacket::reply_to(&req, MacAddr::for_host(9));
        let _ = ArpPacket::reply_to(&reply, MacAddr::for_host(1));
    }

    #[test]
    fn decode_rejects_bad_fields() {
        let mut wire = sample_request().encode();
        wire[0] = 9; // htype
        assert!(matches!(
            ArpPacket::decode(&wire).unwrap_err(),
            NetError::InvalidField {
                field: "arp.htype",
                ..
            }
        ));

        let mut wire = sample_request().encode();
        wire[3] = 0x33; // ptype low byte
        assert!(matches!(
            ArpPacket::decode(&wire).unwrap_err(),
            NetError::InvalidField {
                field: "arp.ptype",
                ..
            }
        ));

        let mut wire = sample_request().encode();
        wire[7] = 3; // opcode
        assert!(matches!(
            ArpPacket::decode(&wire).unwrap_err(),
            NetError::InvalidField {
                field: "arp.oper",
                value: 3
            }
        ));

        assert!(matches!(
            ArpPacket::decode(&[0; 10]).unwrap_err(),
            NetError::Truncated {
                what: "arp packet",
                ..
            }
        ));
    }

    #[test]
    fn request_has_zero_target_mac() {
        assert_eq!(sample_request().target_mac, MacAddr::ZERO);
    }
}
