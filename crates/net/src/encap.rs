use std::net::Ipv4Addr;

use bytes::{Buf, BufMut};
use serde::{Deserialize, Serialize};

use crate::{EthernetFrame, NetError, Result, TenantId};

/// Wire length of the LazyCtrl encapsulation header.
///
/// Layout (GRE-like, §IV-B "Encap action ... GRE-like encapsulation"):
///
/// ```text
///  0       4       8       12   14   16
///  +-------+-------+-------+----+----+------------------+
///  | magic | srcIP | dstIP | tenant | key (group epoch) |
///  +-------+-------+-------+----+----+------------------+
///   4 bytes 4 bytes 4 bytes 2 bytes  4 bytes  = 18 bytes
/// ```
pub const ENCAP_HEADER_LEN: usize = 18;

const ENCAP_MAGIC: u32 = 0x4c5a_4354; // "LZCT"

/// The outer header a LazyCtrl edge switch prepends when tunnelling a frame
/// across the IP underlay to another edge switch.
///
/// The underlay only ever routes on `src`/`dst` (the edge switches' underlay
/// IPs); `tenant` and `key` ride along so the egress switch can validate the
/// mapping epoch that produced the forwarding decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct EncapHeader {
    /// Underlay IPv4 address of the ingress (encapsulating) edge switch.
    pub src: Ipv4Addr,
    /// Underlay IPv4 address of the egress edge switch.
    pub dst: Ipv4Addr,
    /// Tenant owning the inner frame.
    pub tenant: TenantId,
    /// Grouping epoch under which the forwarding decision was made; the
    /// egress switch drops frames from stale epochs during regrouping unless
    /// preload rules are installed.
    pub key: u32,
}

impl EncapHeader {
    /// Creates a header.
    pub fn new(src: Ipv4Addr, dst: Ipv4Addr, tenant: TenantId, key: u32) -> Self {
        EncapHeader {
            src,
            dst,
            tenant,
            key,
        }
    }

    /// Serializes into an existing buffer.
    pub fn encode_into<B: BufMut>(&self, buf: &mut B) {
        buf.put_u32(ENCAP_MAGIC);
        buf.put_slice(&self.src.octets());
        buf.put_slice(&self.dst.octets());
        buf.put_u16(self.tenant.as_u16());
        buf.put_u32(self.key);
    }

    /// Parses from a buffer, returning the header and the number of bytes
    /// consumed.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Truncated`] for short buffers and
    /// [`NetError::InvalidField`] if the magic does not match.
    pub fn decode(mut buf: &[u8]) -> Result<(Self, usize)> {
        if buf.len() < ENCAP_HEADER_LEN {
            return Err(NetError::Truncated {
                what: "encap header",
                needed: ENCAP_HEADER_LEN,
                available: buf.len(),
            });
        }
        let magic = buf.get_u32();
        if magic != ENCAP_MAGIC {
            return Err(NetError::InvalidField {
                field: "encap.magic",
                value: magic as u64,
            });
        }
        let mut src = [0u8; 4];
        buf.copy_to_slice(&mut src);
        let mut dst = [0u8; 4];
        buf.copy_to_slice(&mut dst);
        let tenant_raw = buf.get_u16();
        if tenant_raw > 0x0fff {
            return Err(NetError::InvalidField {
                field: "encap.tenant",
                value: tenant_raw as u64,
            });
        }
        let key = buf.get_u32();
        Ok((
            EncapHeader {
                src: Ipv4Addr::from(src),
                dst: Ipv4Addr::from(dst),
                tenant: TenantId::new(tenant_raw),
                key,
            },
            ENCAP_HEADER_LEN,
        ))
    }
}

/// A full encapsulated packet: outer LazyCtrl header plus inner Ethernet
/// frame.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct EncapsulatedFrame {
    /// The outer tunnel header.
    pub header: EncapHeader,
    /// The tunnelled Ethernet frame.
    pub inner: EthernetFrame,
}

impl EncapsulatedFrame {
    /// Wraps `inner` for transit from `header.src` to `header.dst`.
    pub fn new(header: EncapHeader, inner: EthernetFrame) -> Self {
        EncapsulatedFrame { header, inner }
    }

    /// Exact serialized size: outer header plus inner frame. What the
    /// bandwidth model charges for a tunnelled packet, without encoding.
    pub fn wire_len(&self) -> usize {
        ENCAP_HEADER_LEN + self.inner.wire_len()
    }

    /// Serializes outer header followed by the inner frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(ENCAP_HEADER_LEN + self.inner.wire_len());
        self.header.encode_into(&mut buf);
        self.inner.encode_into(&mut buf);
        buf
    }

    /// Parses an encapsulated packet.
    ///
    /// # Errors
    ///
    /// Propagates header and inner-frame parse errors.
    pub fn decode(buf: &[u8]) -> Result<Self> {
        let (header, consumed) = EncapHeader::decode(buf)?;
        let inner = EthernetFrame::decode(&buf[consumed..])?;
        Ok(EncapsulatedFrame { header, inner })
    }

    /// Removes the tunnel header, yielding the inner frame.
    pub fn into_inner(self) -> EthernetFrame {
        self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EtherType, MacAddr};

    fn inner() -> EthernetFrame {
        EthernetFrame::new(
            MacAddr::for_host(1),
            MacAddr::for_host(2),
            EtherType::IPV4,
            vec![0xab; 64],
        )
    }

    fn header() -> EncapHeader {
        EncapHeader::new(
            Ipv4Addr::new(192, 168, 0, 1),
            Ipv4Addr::new(192, 168, 0, 2),
            TenantId::new(17),
            0xdead_beef,
        )
    }

    #[test]
    fn round_trip() {
        let pkt = EncapsulatedFrame::new(header(), inner());
        let wire = pkt.encode();
        assert_eq!(wire.len(), pkt.wire_len());
        assert_eq!(EncapsulatedFrame::decode(&wire).unwrap(), pkt);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut wire = EncapsulatedFrame::new(header(), inner()).encode();
        wire[0] = 0;
        assert!(matches!(
            EncapsulatedFrame::decode(&wire).unwrap_err(),
            NetError::InvalidField {
                field: "encap.magic",
                ..
            }
        ));
    }

    #[test]
    fn truncated_header_rejected() {
        assert!(matches!(
            EncapHeader::decode(&[0; 5]).unwrap_err(),
            NetError::Truncated {
                what: "encap header",
                ..
            }
        ));
    }

    #[test]
    fn wide_tenant_rejected() {
        let mut wire = EncapsulatedFrame::new(header(), inner()).encode();
        // tenant field sits at offset 12..14
        wire[12] = 0xff;
        assert!(matches!(
            EncapsulatedFrame::decode(&wire).unwrap_err(),
            NetError::InvalidField {
                field: "encap.tenant",
                ..
            }
        ));
    }

    #[test]
    fn into_inner_strips_tunnel() {
        let pkt = EncapsulatedFrame::new(header(), inner());
        assert_eq!(pkt.into_inner(), inner());
    }

    #[test]
    fn header_len_constant_matches_encoding() {
        let mut buf = Vec::new();
        header().encode_into(&mut buf);
        assert_eq!(buf.len(), ENCAP_HEADER_LEN);
    }
}
