use std::fmt;

/// Errors produced while parsing or constructing packets.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetError {
    /// The buffer ended before the fixed-size header was complete.
    Truncated {
        /// What was being parsed when the buffer ran out.
        what: &'static str,
        /// Bytes required to make progress.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// A field held a value the parser does not understand.
    InvalidField {
        /// Which field was invalid.
        field: &'static str,
        /// The offending value, widened to `u64` for display.
        value: u64,
    },
    /// A textual address failed to parse.
    InvalidAddress(String),
    /// The payload exceeds the maximum frame size.
    Oversized {
        /// Encoded length of the frame.
        len: usize,
        /// Maximum permitted length.
        max: usize,
    },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Truncated {
                what,
                needed,
                available,
            } => write!(
                f,
                "truncated {what}: needed {needed} bytes, only {available} available"
            ),
            NetError::InvalidField { field, value } => {
                write!(f, "invalid value {value:#x} for field {field}")
            }
            NetError::InvalidAddress(s) => write!(f, "invalid address syntax: {s:?}"),
            NetError::Oversized { len, max } => {
                write!(f, "frame of {len} bytes exceeds maximum of {max}")
            }
        }
    }
}

impl std::error::Error for NetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = NetError::Truncated {
            what: "ethernet header",
            needed: 14,
            available: 3,
        };
        let s = e.to_string();
        assert!(s.contains("ethernet header"));
        assert!(s.contains("14"));
        assert!(s.contains('3'));

        let e = NetError::InvalidField {
            field: "arp.oper",
            value: 9,
        };
        assert!(e.to_string().contains("arp.oper"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NetError>();
    }
}
