use std::fmt;

use bytes::{Buf, BufMut, Bytes};
use serde::{Deserialize, Serialize};

use crate::{ArpPacket, MacAddr, NetError, Result, VlanTag, VLAN_TAG_LEN};

/// Length of an untagged Ethernet header (dst + src + ethertype).
pub const ETHERNET_HEADER_LEN: usize = 14;

/// Maximum frame length accepted by the simulated switches (standard MTU
/// payload plus headers plus one VLAN tag plus the LazyCtrl encap header).
pub const MAX_FRAME_LEN: usize = 1600;

/// An EtherType value.
///
/// Only the handful of types the LazyCtrl data plane cares about have named
/// constants; any other value round-trips untouched.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EtherType(pub u16);

impl EtherType {
    /// IPv4, `0x0800`.
    pub const IPV4: EtherType = EtherType(0x0800);
    /// ARP, `0x0806`.
    pub const ARP: EtherType = EtherType(0x0806);
    /// 802.1Q VLAN tag, `0x8100`.
    pub const VLAN: EtherType = EtherType(0x8100);
    /// LazyCtrl GRE-like encapsulation (local experimental ethertype,
    /// `0x88B5` per IEEE 802 local experimental 1).
    pub const LAZYCTRL_ENCAP: EtherType = EtherType(0x88b5);

    /// Raw 16-bit value.
    pub const fn as_u16(self) -> u16 {
        self.0
    }
}

impl fmt::Debug for EtherType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            EtherType::IPV4 => write!(f, "EtherType::IPV4"),
            EtherType::ARP => write!(f, "EtherType::ARP"),
            EtherType::VLAN => write!(f, "EtherType::VLAN"),
            EtherType::LAZYCTRL_ENCAP => write!(f, "EtherType::LAZYCTRL_ENCAP"),
            EtherType(v) => write!(f, "EtherType({v:#06x})"),
        }
    }
}

impl fmt::Display for EtherType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#06x}", self.0)
    }
}

impl fmt::LowerHex for EtherType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::UpperHex for EtherType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}

impl From<u16> for EtherType {
    fn from(v: u16) -> Self {
        EtherType(v)
    }
}

impl From<EtherType> for u16 {
    fn from(t: EtherType) -> Self {
        t.0
    }
}

/// An Ethernet II frame, optionally carrying a single 802.1Q VLAN tag.
///
/// The VLAN tag is how tenant identity travels with a packet in the LazyCtrl
/// prototype (§IV-B, tenant information management), so the frame model keeps
/// it as a first-class field rather than burying it in the payload.
///
/// The payload is a shared [`Bytes`] buffer: cloning a frame — which the
/// simulator does on every broadcast fan-out, tunnel candidate and relay
/// hop — bumps a refcount instead of copying the payload.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct EthernetFrame {
    /// Destination MAC address.
    pub dst: MacAddr,
    /// Source MAC address.
    pub src: MacAddr,
    /// Optional 802.1Q tag (tenant id in this system).
    pub vlan: Option<VlanTag>,
    /// EtherType of the payload.
    pub ethertype: EtherType,
    /// Payload bytes (shared, immutable).
    pub payload: Bytes,
}

impl EthernetFrame {
    /// Creates an untagged frame.
    pub fn new(
        src: MacAddr,
        dst: MacAddr,
        ethertype: EtherType,
        payload: impl Into<Bytes>,
    ) -> Self {
        EthernetFrame {
            dst,
            src,
            vlan: None,
            ethertype,
            payload: payload.into(),
        }
    }

    /// Creates a frame carrying an 802.1Q tenant tag.
    pub fn tagged(
        src: MacAddr,
        dst: MacAddr,
        vlan: VlanTag,
        ethertype: EtherType,
        payload: impl Into<Bytes>,
    ) -> Self {
        EthernetFrame {
            dst,
            src,
            vlan: Some(vlan),
            ethertype,
            payload: payload.into(),
        }
    }

    /// If this is an ARP frame, decodes and returns the ARP body
    /// (borrowing — no frame clone needed to inspect ARP traffic).
    pub fn as_arp(&self) -> Option<ArpPacket> {
        if self.ethertype == EtherType::ARP {
            ArpPacket::decode(&self.payload).ok()
        } else {
            None
        }
    }

    /// Encoded length in bytes.
    pub fn wire_len(&self) -> usize {
        ETHERNET_HEADER_LEN
            + if self.vlan.is_some() { VLAN_TAG_LEN } else { 0 }
            + self.payload.len()
    }

    /// Serializes the frame to its binary wire format.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(self.wire_len());
        self.encode_into(&mut buf);
        buf
    }

    /// Serializes the frame into an existing buffer.
    pub fn encode_into<B: BufMut>(&self, buf: &mut B) {
        buf.put_slice(&self.dst.octets());
        buf.put_slice(&self.src.octets());
        if let Some(tag) = self.vlan {
            buf.put_u16(EtherType::VLAN.as_u16());
            buf.put_u16(tag.tci());
        }
        buf.put_u16(self.ethertype.as_u16());
        buf.put_slice(&self.payload);
    }

    /// Parses a frame from its binary wire format.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Truncated`] if the buffer is shorter than the
    /// (possibly VLAN-tagged) header, and [`NetError::Oversized`] if it
    /// exceeds [`MAX_FRAME_LEN`].
    pub fn decode(mut buf: &[u8]) -> Result<Self> {
        let total = buf.len();
        if total > MAX_FRAME_LEN {
            return Err(NetError::Oversized {
                len: total,
                max: MAX_FRAME_LEN,
            });
        }
        if total < ETHERNET_HEADER_LEN {
            return Err(NetError::Truncated {
                what: "ethernet header",
                needed: ETHERNET_HEADER_LEN,
                available: total,
            });
        }
        let mut dst = [0u8; 6];
        let mut src = [0u8; 6];
        buf.copy_to_slice(&mut dst);
        buf.copy_to_slice(&mut src);
        let mut ethertype = EtherType(buf.get_u16());
        let mut vlan = None;
        if ethertype == EtherType::VLAN {
            if buf.remaining() < 4 {
                return Err(NetError::Truncated {
                    what: "vlan tag",
                    needed: 4,
                    available: buf.remaining(),
                });
            }
            vlan = Some(VlanTag::from_tci(buf.get_u16()));
            ethertype = EtherType(buf.get_u16());
        }
        Ok(EthernetFrame {
            dst: MacAddr::new(dst),
            src: MacAddr::new(src),
            vlan,
            ethertype,
            payload: buf.to_vec().into(),
        })
    }

    /// True if the destination is broadcast or multicast.
    pub fn is_flood(&self) -> bool {
        self.dst.is_broadcast() || self.dst.is_multicast()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TenantId;

    fn mac(n: u8) -> MacAddr {
        MacAddr::new([0x02, 0, 0, 0, 0, n])
    }

    #[test]
    fn untagged_round_trip() {
        let f = EthernetFrame::new(mac(1), mac(2), EtherType::IPV4, vec![1, 2, 3]);
        let wire = f.encode();
        assert_eq!(wire.len(), 17);
        assert_eq!(EthernetFrame::decode(&wire).unwrap(), f);
    }

    #[test]
    fn tagged_round_trip() {
        let tag = VlanTag::new(TenantId::new(42), 3);
        let f = EthernetFrame::tagged(mac(1), mac(2), tag, EtherType::ARP, vec![9; 28]);
        let wire = f.encode();
        assert_eq!(wire.len(), ETHERNET_HEADER_LEN + VLAN_TAG_LEN + 28);
        let back = EthernetFrame::decode(&wire).unwrap();
        assert_eq!(back, f);
        assert_eq!(back.vlan.unwrap().vid().as_u16(), 42);
        assert_eq!(back.vlan.unwrap().pcp(), 3);
    }

    #[test]
    fn decode_rejects_short_buffers() {
        let err = EthernetFrame::decode(&[0; 13]).unwrap_err();
        assert!(matches!(err, NetError::Truncated { needed: 14, .. }));
    }

    #[test]
    fn decode_rejects_truncated_vlan() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&[0; 12]);
        wire.extend_from_slice(&0x8100u16.to_be_bytes());
        wire.push(0); // only 1 of 4 tag bytes
        let err = EthernetFrame::decode(&wire).unwrap_err();
        assert!(matches!(
            err,
            NetError::Truncated {
                what: "vlan tag",
                ..
            }
        ));
    }

    #[test]
    fn decode_rejects_oversized() {
        let wire = vec![0u8; MAX_FRAME_LEN + 1];
        assert!(matches!(
            EthernetFrame::decode(&wire).unwrap_err(),
            NetError::Oversized { .. }
        ));
    }

    #[test]
    fn empty_payload_is_fine() {
        let f = EthernetFrame::new(mac(1), mac(2), EtherType(0x1234), vec![]);
        assert_eq!(EthernetFrame::decode(&f.encode()).unwrap(), f);
    }

    #[test]
    fn flood_detection() {
        let b = EthernetFrame::new(mac(1), MacAddr::BROADCAST, EtherType::ARP, vec![]);
        assert!(b.is_flood());
        let u = EthernetFrame::new(mac(1), mac(2), EtherType::IPV4, vec![]);
        assert!(!u.is_flood());
    }

    #[test]
    fn ethertype_formatting() {
        assert_eq!(format!("{}", EtherType::IPV4), "0x0800");
        assert_eq!(format!("{:x}", EtherType::ARP), "806");
        assert_eq!(format!("{:X}", EtherType::ARP), "806");
        assert_eq!(format!("{:?}", EtherType(0x9999)), "EtherType(0x9999)");
        assert_eq!(format!("{:?}", EtherType::VLAN), "EtherType::VLAN");
    }
}
