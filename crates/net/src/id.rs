//! Identity vocabulary shared across the LazyCtrl stack.
//!
//! Every crate above this one refers to switches, hosts, local control
//! groups and switch ports by these dense integer newtypes. Keeping them in
//! the bottom-most crate avoids a diamond of incompatible id types.

use std::fmt;
use std::net::Ipv4Addr;

use serde::{Deserialize, Serialize};

/// Identifier of an edge switch (dense, assigned by the topology builder).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default)]
pub struct SwitchId(pub u32);

impl SwitchId {
    /// Creates a switch id.
    pub const fn new(id: u32) -> Self {
        SwitchId(id)
    }

    /// Raw index, useful for dense arrays.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Deterministic underlay IPv4 address of this switch's tunnel endpoint.
    ///
    /// The network core in LazyCtrl is "any simple and scalable network
    /// (e.g., an IP unicast network)" (§III-B.1); we give every edge switch a
    /// unique address in `10.0.0.0/8`.
    pub fn underlay_ip(self) -> Ipv4Addr {
        let v = self.0;
        Ipv4Addr::new(10, (v >> 16) as u8, (v >> 8) as u8, v as u8)
    }

    /// Recovers a switch id from its underlay address (inverse of
    /// [`SwitchId::underlay_ip`]).
    pub fn from_underlay_ip(ip: Ipv4Addr) -> Option<SwitchId> {
        let [a, b, c, d] = ip.octets();
        if a != 10 {
            return None;
        }
        Some(SwitchId(((b as u32) << 16) | ((c as u32) << 8) | d as u32))
    }

    /// The sentinel id the control plane uses for the controller itself in
    /// contexts that are keyed by switch id (keep-alives, link ids).
    pub const CONTROLLER: SwitchId = SwitchId(u32::MAX);
}

impl fmt::Debug for SwitchId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

impl fmt::Display for SwitchId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

impl From<u32> for SwitchId {
    fn from(v: u32) -> Self {
        SwitchId(v)
    }
}

/// Identifier of a host (virtual machine) in the data center.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default)]
pub struct HostId(pub u32);

impl HostId {
    /// Creates a host id.
    pub const fn new(id: u32) -> Self {
        HostId(id)
    }

    /// Raw index, useful for dense arrays.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// The MAC address minted for this host by the simulator.
    pub fn mac(self) -> crate::MacAddr {
        crate::MacAddr::for_host(self.0 as u64)
    }

    /// Deterministic IPv4 address for this host in `172.16.0.0/12`-ish space
    /// (purely cosmetic; forwarding is MAC-based).
    pub fn ip(self) -> Ipv4Addr {
        let v = self.0;
        Ipv4Addr::new(172, 16 + ((v >> 16) & 0x0f) as u8, (v >> 8) as u8, v as u8)
    }

    /// Recovers a host id from its address (inverse of [`HostId::ip`]); the
    /// simulated switches use this to resolve ARP target IPs to the MACs
    /// their tables are keyed by.
    pub fn from_ip(ip: Ipv4Addr) -> Option<HostId> {
        let [a, b, c, d] = ip.octets();
        if a != 172 || !(16..32).contains(&b) {
            return None;
        }
        Some(HostId(
            (((b - 16) as u32) << 16) | ((c as u32) << 8) | d as u32,
        ))
    }
}

impl fmt::Debug for HostId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "H{}", self.0)
    }
}

impl fmt::Display for HostId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "H{}", self.0)
    }
}

impl From<u32> for HostId {
    fn from(v: u32) -> Self {
        HostId(v)
    }
}

/// Identifier of a local control group (LCG).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default)]
pub struct GroupId(pub u32);

impl GroupId {
    /// Creates a group id.
    pub const fn new(id: u32) -> Self {
        GroupId(id)
    }

    /// Raw index, useful for dense arrays.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for GroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "G{}", self.0)
    }
}

impl fmt::Display for GroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "G{}", self.0)
    }
}

impl From<u32> for GroupId {
    fn from(v: u32) -> Self {
        GroupId(v)
    }
}

/// A switch port number, following OpenFlow 1.0's reserved-value scheme.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default)]
pub struct PortNo(pub u16);

impl PortNo {
    /// Flood to all physical ports except the ingress port (`0xfffb`).
    pub const FLOOD: PortNo = PortNo(0xfffb);
    /// All physical ports (`0xfffc`).
    pub const ALL: PortNo = PortNo(0xfffc);
    /// Send to the controller over the control link (`0xfffd`).
    pub const CONTROLLER: PortNo = PortNo(0xfffd);
    /// The switch's local networking stack (`0xfffe`).
    pub const LOCAL: PortNo = PortNo(0xfffe);
    /// Not a port (`0xffff`).
    pub const NONE: PortNo = PortNo(0xffff);

    /// Creates a physical port number.
    pub const fn new(n: u16) -> Self {
        PortNo(n)
    }

    /// Raw value.
    pub const fn as_u16(self) -> u16 {
        self.0
    }

    /// True for a real (non-reserved) port.
    pub const fn is_physical(self) -> bool {
        self.0 < 0xff00
    }
}

impl fmt::Debug for PortNo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            PortNo::FLOOD => write!(f, "PortNo::FLOOD"),
            PortNo::ALL => write!(f, "PortNo::ALL"),
            PortNo::CONTROLLER => write!(f, "PortNo::CONTROLLER"),
            PortNo::LOCAL => write!(f, "PortNo::LOCAL"),
            PortNo::NONE => write!(f, "PortNo::NONE"),
            PortNo(n) => write!(f, "PortNo({n})"),
        }
    }
}

impl fmt::Display for PortNo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "port-{}", self.0)
    }
}

impl From<u16> for PortNo {
    fn from(v: u16) -> Self {
        PortNo(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn switch_underlay_ips_are_unique() {
        let a = SwitchId::new(1).underlay_ip();
        let b = SwitchId::new(2).underlay_ip();
        let c = SwitchId::new(257).underlay_ip();
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_eq!(a, Ipv4Addr::new(10, 0, 0, 1));
        assert_eq!(c, Ipv4Addr::new(10, 0, 1, 1));
    }

    #[test]
    fn host_mac_matches_for_host() {
        assert_eq!(HostId::new(42).mac(), crate::MacAddr::for_host(42));
        assert_eq!(HostId::new(42).mac().host_id(), Some(42));
    }

    #[test]
    fn port_classification() {
        assert!(PortNo::new(1).is_physical());
        assert!(!PortNo::FLOOD.is_physical());
        assert!(!PortNo::CONTROLLER.is_physical());
        assert_eq!(format!("{:?}", PortNo::new(3)), "PortNo(3)");
        assert_eq!(format!("{:?}", PortNo::FLOOD), "PortNo::FLOOD");
    }

    #[test]
    fn display_forms() {
        assert_eq!(SwitchId::new(7).to_string(), "S7");
        assert_eq!(HostId::new(7).to_string(), "H7");
        assert_eq!(GroupId::new(7).to_string(), "G7");
        assert_eq!(PortNo::new(7).to_string(), "port-7");
    }

    #[test]
    fn ids_are_ordered_and_indexable() {
        assert!(SwitchId::new(1) < SwitchId::new(2));
        assert_eq!(SwitchId::new(9).index(), 9);
        assert_eq!(HostId::new(9).index(), 9);
        assert_eq!(GroupId::new(9).index(), 9);
    }
}
