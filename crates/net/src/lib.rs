//! Packet model for the LazyCtrl data plane.
//!
//! This crate implements the layer-2/layer-3 packet formats that the LazyCtrl
//! edge switches operate on: Ethernet framing, ARP, 802.1Q VLAN tags (used by
//! the paper to carry tenant identity), and the GRE-like encapsulation header
//! that LazyCtrl edge switches prepend when tunnelling a frame across the IP
//! underlay towards another edge switch.
//!
//! Everything round-trips through an exact binary wire format built on
//! [`bytes`], so higher layers (the OpenFlow-like protocol in
//! `lazyctrl-proto`, the switch datapath in `lazyctrl-switch`) can move real
//! byte buffers around rather than ad-hoc structs.
//!
//! # Example
//!
//! ```
//! # use std::error::Error;
//! # fn main() -> Result<(), Box<dyn Error>> {
//! use lazyctrl_net::{EthernetFrame, EtherType, MacAddr};
//!
//! let frame = EthernetFrame::new(
//!     MacAddr::new([0x02, 0, 0, 0, 0, 0x01]),
//!     MacAddr::new([0x02, 0, 0, 0, 0, 0x02]),
//!     EtherType::IPV4,
//!     vec![0xde, 0xad, 0xbe, 0xef],
//! );
//! let wire = frame.encode();
//! let decoded = EthernetFrame::decode(&wire)?;
//! assert_eq!(decoded, frame);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arp;
mod encap;
mod error;
mod ethernet;
pub mod id;
mod mac;
mod packet;
mod vlan;

pub use arp::{ArpOp, ArpPacket};
pub use encap::{EncapHeader, EncapsulatedFrame, ENCAP_HEADER_LEN};
pub use error::NetError;
pub use ethernet::{EtherType, EthernetFrame, ETHERNET_HEADER_LEN, MAX_FRAME_LEN};
pub use id::{GroupId, HostId, PortNo, SwitchId};
pub use mac::MacAddr;
pub use packet::{Packet, PacketKind};
pub use vlan::{TenantId, VlanTag, VLAN_TAG_LEN};

/// Result alias used across the packet model.
pub type Result<T> = std::result::Result<T, NetError>;
