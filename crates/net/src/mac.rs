use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::NetError;

/// A 48-bit IEEE 802 MAC address.
///
/// The LazyCtrl control plane identifies virtual machines by their MAC
/// address: the L-FIB, G-FIB bloom filters and the controller's C-LIB are all
/// keyed by `MacAddr`. Host addresses in the simulated data center are
/// locally-administered unicast addresses minted by
/// [`MacAddr::for_host`].
///
/// # Example
///
/// ```
/// use lazyctrl_net::MacAddr;
///
/// let mac: MacAddr = "02:00:00:00:12:34".parse().unwrap();
/// assert!(mac.is_unicast());
/// assert!(mac.is_locally_administered());
/// assert_eq!(mac.to_string(), "02:00:00:00:12:34");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default)]
pub struct MacAddr([u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);

    /// The all-zero address, used as a "not yet learned" placeholder.
    pub const ZERO: MacAddr = MacAddr([0; 6]);

    /// Creates an address from its six octets.
    pub const fn new(octets: [u8; 6]) -> Self {
        MacAddr(octets)
    }

    /// Mints a deterministic locally-administered unicast address for a
    /// simulated host, from its dense integer id.
    ///
    /// The top octet is `0x02` (locally administered, unicast) and the
    /// remaining 40 bits carry the host id, so up to 2^40 hosts receive
    /// distinct addresses.
    ///
    /// # Example
    ///
    /// ```
    /// use lazyctrl_net::MacAddr;
    /// let a = MacAddr::for_host(1);
    /// let b = MacAddr::for_host(2);
    /// assert_ne!(a, b);
    /// assert_eq!(MacAddr::for_host(1), a);
    /// ```
    pub const fn for_host(host_id: u64) -> Self {
        let id = host_id & 0xff_ffff_ffff;
        MacAddr([
            0x02,
            (id >> 32) as u8,
            (id >> 24) as u8,
            (id >> 16) as u8,
            (id >> 8) as u8,
            id as u8,
        ])
    }

    /// Recovers the host id encoded by [`MacAddr::for_host`], if this looks
    /// like a simulator-minted address.
    pub fn host_id(&self) -> Option<u64> {
        if self.0[0] != 0x02 {
            return None;
        }
        Some(
            ((self.0[1] as u64) << 32)
                | ((self.0[2] as u64) << 24)
                | ((self.0[3] as u64) << 16)
                | ((self.0[4] as u64) << 8)
                | self.0[5] as u64,
        )
    }

    /// Returns the six octets.
    pub const fn octets(&self) -> [u8; 6] {
        self.0
    }

    /// Builds an address from the low 48 bits of `v`.
    pub const fn from_u64(v: u64) -> Self {
        MacAddr([
            (v >> 40) as u8,
            (v >> 32) as u8,
            (v >> 24) as u8,
            (v >> 16) as u8,
            (v >> 8) as u8,
            v as u8,
        ])
    }

    /// Returns the address as a 48-bit integer (in the high-to-low octet
    /// order used for display).
    pub const fn to_u64(self) -> u64 {
        ((self.0[0] as u64) << 40)
            | ((self.0[1] as u64) << 32)
            | ((self.0[2] as u64) << 24)
            | ((self.0[3] as u64) << 16)
            | ((self.0[4] as u64) << 8)
            | self.0[5] as u64
    }

    /// True if this is the broadcast address.
    pub fn is_broadcast(&self) -> bool {
        *self == Self::BROADCAST
    }

    /// True if the group bit (I/G) is set and the address is not broadcast.
    pub fn is_multicast(&self) -> bool {
        self.0[0] & 0x01 != 0 && !self.is_broadcast()
    }

    /// True if the group bit is clear (an individual address).
    pub fn is_unicast(&self) -> bool {
        self.0[0] & 0x01 == 0
    }

    /// True if the locally-administered (U/L) bit is set.
    pub fn is_locally_administered(&self) -> bool {
        self.0[0] & 0x02 != 0
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            self.0[0], self.0[1], self.0[2], self.0[3], self.0[4], self.0[5]
        )
    }
}

impl fmt::Debug for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MacAddr({self})")
    }
}

impl From<[u8; 6]> for MacAddr {
    fn from(octets: [u8; 6]) -> Self {
        MacAddr(octets)
    }
}

impl From<MacAddr> for [u8; 6] {
    fn from(mac: MacAddr) -> Self {
        mac.0
    }
}

impl AsRef<[u8]> for MacAddr {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl FromStr for MacAddr {
    type Err = NetError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut octets = [0u8; 6];
        let mut parts = s.split(':');
        for octet in octets.iter_mut() {
            let part = parts
                .next()
                .ok_or_else(|| NetError::InvalidAddress(s.to_owned()))?;
            if part.len() != 2 {
                return Err(NetError::InvalidAddress(s.to_owned()));
            }
            *octet =
                u8::from_str_radix(part, 16).map_err(|_| NetError::InvalidAddress(s.to_owned()))?;
        }
        if parts.next().is_some() {
            return Err(NetError::InvalidAddress(s.to_owned()));
        }
        Ok(MacAddr(octets))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_round_trips_through_from_str() {
        let mac = MacAddr::new([0xde, 0xad, 0xbe, 0xef, 0x00, 0x42]);
        let parsed: MacAddr = mac.to_string().parse().unwrap();
        assert_eq!(parsed, mac);
    }

    #[test]
    fn from_str_rejects_malformed_addresses() {
        assert!("".parse::<MacAddr>().is_err());
        assert!("00:11:22:33:44".parse::<MacAddr>().is_err());
        assert!("00:11:22:33:44:55:66".parse::<MacAddr>().is_err());
        assert!("0:11:22:33:44:55".parse::<MacAddr>().is_err());
        assert!("gg:11:22:33:44:55".parse::<MacAddr>().is_err());
        assert!("001122334455".parse::<MacAddr>().is_err());
    }

    #[test]
    fn u64_round_trip() {
        let mac = MacAddr::new([1, 2, 3, 4, 5, 6]);
        assert_eq!(MacAddr::from_u64(mac.to_u64()), mac);
        assert_eq!(
            MacAddr::from_u64(0x0102_0304_0506).octets(),
            [1, 2, 3, 4, 5, 6]
        );
    }

    #[test]
    fn host_addresses_are_unique_and_recoverable() {
        for id in [0u64, 1, 255, 256, 65_535, 1 << 30, (1 << 40) - 1] {
            let mac = MacAddr::for_host(id);
            assert!(mac.is_unicast(), "{mac}");
            assert!(mac.is_locally_administered(), "{mac}");
            assert_eq!(mac.host_id(), Some(id));
        }
    }

    #[test]
    fn classification_flags() {
        assert!(MacAddr::BROADCAST.is_broadcast());
        assert!(!MacAddr::BROADCAST.is_multicast());
        assert!(!MacAddr::BROADCAST.is_unicast());

        let mcast = MacAddr::new([0x01, 0x00, 0x5e, 0, 0, 1]);
        assert!(mcast.is_multicast());
        assert!(!mcast.is_unicast());

        let ucast = MacAddr::new([0x00, 0x1b, 0x21, 0, 0, 1]);
        assert!(ucast.is_unicast());
        assert!(!ucast.is_locally_administered());
    }

    #[test]
    fn host_id_rejects_foreign_prefix() {
        let mac = MacAddr::new([0x00, 0, 0, 0, 0, 7]);
        assert_eq!(mac.host_id(), None);
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(MacAddr::default(), MacAddr::ZERO);
        assert_eq!(format!("{:?}", MacAddr::ZERO), "MacAddr(00:00:00:00:00:00)");
    }
}
