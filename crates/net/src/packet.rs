use serde::{Deserialize, Serialize};

use crate::{ArpPacket, EncapsulatedFrame, EthernetFrame, NetError, Result};

/// What kind of traffic a decoded packet turned out to be.
///
/// This mirrors the first branch of the paper's forwarding routine (Fig. 5):
/// a packet arriving at an edge switch is either *plain* (from a local host)
/// or *encapsulated* (tunnelled from a peer edge switch).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PacketKind {
    /// A plain frame originating from a directly-attached host.
    Plain,
    /// A tunnelled frame from another edge switch.
    Encapsulated,
}

/// A packet as seen by an edge switch port: either a plain Ethernet frame or
/// a LazyCtrl-encapsulated frame.
///
/// # Example
///
/// ```
/// # use std::error::Error;
/// # fn main() -> Result<(), Box<dyn Error>> {
/// use lazyctrl_net::{EtherType, EthernetFrame, MacAddr, Packet};
///
/// let frame = EthernetFrame::new(
///     MacAddr::for_host(1),
///     MacAddr::for_host(2),
///     EtherType::IPV4,
///     vec![1, 2, 3],
/// );
/// let wire = Packet::Plain(frame.clone()).encode();
/// match Packet::decode(&wire)? {
///     Packet::Plain(f) => assert_eq!(f, frame),
///     Packet::Encapsulated(_) => unreachable!(),
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Packet {
    /// A plain frame from a local host.
    Plain(EthernetFrame),
    /// A tunnelled frame from a peer edge switch.
    Encapsulated(EncapsulatedFrame),
}

impl Packet {
    /// Which kind of packet this is.
    pub fn kind(&self) -> PacketKind {
        match self {
            Packet::Plain(_) => PacketKind::Plain,
            Packet::Encapsulated(_) => PacketKind::Encapsulated,
        }
    }

    /// The Ethernet frame this packet carries (the inner frame for
    /// encapsulated packets).
    pub fn frame(&self) -> &EthernetFrame {
        match self {
            Packet::Plain(f) => f,
            Packet::Encapsulated(e) => &e.inner,
        }
    }

    /// If this is a plain ARP frame, decodes and returns the ARP body.
    ///
    /// Returns `None` for non-ARP or encapsulated packets, or if the ARP body
    /// fails to parse.
    pub fn as_arp(&self) -> Option<ArpPacket> {
        match self {
            Packet::Plain(f) => f.as_arp(),
            _ => None,
        }
    }

    /// Serializes the packet; encapsulated packets start with the LazyCtrl
    /// magic so the two variants are distinguishable on the wire.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Packet::Plain(f) => f.encode(),
            Packet::Encapsulated(e) => e.encode(),
        }
    }

    /// Parses a packet from a port buffer.
    ///
    /// A buffer beginning with the LazyCtrl encapsulation magic is decoded as
    /// [`Packet::Encapsulated`]; anything else as a plain frame.
    ///
    /// # Errors
    ///
    /// Propagates frame/header parse errors.
    pub fn decode(buf: &[u8]) -> Result<Self> {
        if buf.len() >= 4 && buf[0..4] == [0x4c, 0x5a, 0x43, 0x54] {
            Ok(Packet::Encapsulated(EncapsulatedFrame::decode(buf)?))
        } else if buf.len() >= 4 {
            Ok(Packet::Plain(EthernetFrame::decode(buf)?))
        } else {
            Err(NetError::Truncated {
                what: "packet",
                needed: 4,
                available: buf.len(),
            })
        }
    }
}

impl From<EthernetFrame> for Packet {
    fn from(f: EthernetFrame) -> Self {
        Packet::Plain(f)
    }
}

impl From<EncapsulatedFrame> for Packet {
    fn from(e: EncapsulatedFrame) -> Self {
        Packet::Encapsulated(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EncapHeader, EtherType, MacAddr, TenantId};
    use std::net::Ipv4Addr;

    fn frame() -> EthernetFrame {
        EthernetFrame::new(
            MacAddr::for_host(5),
            MacAddr::for_host(6),
            EtherType::IPV4,
            vec![0x55; 32],
        )
    }

    #[test]
    fn plain_round_trip() {
        let pkt = Packet::Plain(frame());
        let back = Packet::decode(&pkt.encode()).unwrap();
        assert_eq!(back, pkt);
        assert_eq!(back.kind(), PacketKind::Plain);
    }

    #[test]
    fn encapsulated_round_trip() {
        let hdr = EncapHeader::new(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            TenantId::new(3),
            7,
        );
        let pkt = Packet::Encapsulated(EncapsulatedFrame::new(hdr, frame()));
        let back = Packet::decode(&pkt.encode()).unwrap();
        assert_eq!(back, pkt);
        assert_eq!(back.kind(), PacketKind::Encapsulated);
        assert_eq!(back.frame(), &frame());
    }

    #[test]
    fn arp_extraction() {
        let arp = ArpPacket::request(
            MacAddr::for_host(1),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
        );
        let f = EthernetFrame::new(
            MacAddr::for_host(1),
            MacAddr::BROADCAST,
            EtherType::ARP,
            arp.encode(),
        );
        let pkt = Packet::Plain(f);
        assert_eq!(pkt.as_arp(), Some(arp));
        assert_eq!(Packet::Plain(frame()).as_arp(), None);
    }

    #[test]
    fn tiny_buffer_rejected() {
        assert!(matches!(
            Packet::decode(&[1, 2, 3]).unwrap_err(),
            NetError::Truncated { what: "packet", .. }
        ));
    }

    #[test]
    fn from_impls() {
        let p: Packet = frame().into();
        assert_eq!(p.kind(), PacketKind::Plain);
    }
}
