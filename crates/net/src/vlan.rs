use std::fmt;

use serde::{Deserialize, Serialize};

/// Length in bytes of an 802.1Q tag on the wire (TPID + TCI).
pub const VLAN_TAG_LEN: usize = 4;

/// A tenant identifier.
///
/// The LazyCtrl prototype maps tenants onto VLAN IDs (§IV-B, "tenant
/// information management module is used to manage tenant information such as
/// VLAN IDs"), so tenant ids are 12-bit values like VLAN ids. The value `0`
/// is reserved to mean "untenanted / infrastructure".
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default)]
pub struct TenantId(u16);

impl TenantId {
    /// The reserved "no tenant" id.
    pub const NONE: TenantId = TenantId(0);

    /// Maximum representable tenant id (12 bits, like a VLAN ID).
    pub const MAX: TenantId = TenantId(0x0fff);

    /// Creates a tenant id.
    ///
    /// # Panics
    ///
    /// Panics if `id` exceeds 12 bits (4095).
    pub fn new(id: u16) -> Self {
        assert!(id <= 0x0fff, "tenant id {id} exceeds 12 bits");
        TenantId(id)
    }

    /// Raw numeric id.
    pub const fn as_u16(self) -> u16 {
        self.0
    }

    /// True for the reserved "no tenant" value.
    pub const fn is_none(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Debug for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TenantId({})", self.0)
    }
}

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tenant-{}", self.0)
    }
}

impl From<TenantId> for u16 {
    fn from(t: TenantId) -> u16 {
        t.0
    }
}

/// An 802.1Q tag control information field: priority code point plus VLAN id.
///
/// In this system the VLAN id carries the [`TenantId`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct VlanTag {
    vid: TenantId,
    pcp: u8,
}

impl VlanTag {
    /// Creates a tag for the given tenant with a priority code point.
    ///
    /// # Panics
    ///
    /// Panics if `pcp` exceeds 3 bits (7).
    pub fn new(vid: TenantId, pcp: u8) -> Self {
        assert!(pcp <= 7, "priority code point {pcp} exceeds 3 bits");
        VlanTag { vid, pcp }
    }

    /// Creates a tag with priority 0 for the given tenant.
    pub fn for_tenant(vid: TenantId) -> Self {
        VlanTag { vid, pcp: 0 }
    }

    /// Parses a tag from a raw 16-bit TCI field.
    pub fn from_tci(tci: u16) -> Self {
        VlanTag {
            vid: TenantId(tci & 0x0fff),
            pcp: (tci >> 13) as u8,
        }
    }

    /// Encodes the tag into a raw 16-bit TCI field.
    pub fn tci(&self) -> u16 {
        ((self.pcp as u16) << 13) | self.vid.0
    }

    /// The VLAN id (the tenant id in this system).
    pub fn vid(&self) -> TenantId {
        self.vid
    }

    /// The 3-bit priority code point.
    pub fn pcp(&self) -> u8 {
        self.pcp
    }
}

impl fmt::Debug for VlanTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VlanTag(vid={}, pcp={})", self.vid.0, self.pcp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tci_round_trip() {
        for vid in [0u16, 1, 42, 4095] {
            for pcp in [0u8, 1, 7] {
                let tag = VlanTag::new(TenantId::new(vid), pcp);
                let back = VlanTag::from_tci(tag.tci());
                assert_eq!(back, tag);
                assert_eq!(back.vid().as_u16(), vid);
                assert_eq!(back.pcp(), pcp);
            }
        }
    }

    #[test]
    #[should_panic(expected = "exceeds 12 bits")]
    fn tenant_id_rejects_wide_values() {
        TenantId::new(0x1000);
    }

    #[test]
    #[should_panic(expected = "exceeds 3 bits")]
    fn pcp_rejects_wide_values() {
        VlanTag::new(TenantId::new(1), 8);
    }

    #[test]
    fn none_tenant() {
        assert!(TenantId::NONE.is_none());
        assert!(!TenantId::new(7).is_none());
        assert_eq!(TenantId::default(), TenantId::NONE);
    }

    #[test]
    fn from_tci_ignores_cfi_bit() {
        let tag = VlanTag::from_tci(0x1000 | 42); // CFI bit set
        assert_eq!(tag.vid().as_u16(), 42);
        assert_eq!(tag.pcp(), 0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(TenantId::new(9).to_string(), "tenant-9");
        assert_eq!(
            format!("{:?}", VlanTag::for_tenant(TenantId::new(5))),
            "VlanTag(vid=5, pcp=0)"
        );
    }
}
