//! Property tests: every packet type round-trips through its wire format,
//! and the decoders never panic on arbitrary bytes.

use std::net::Ipv4Addr;

use lazyctrl_net::{
    ArpOp, ArpPacket, EncapHeader, EncapsulatedFrame, EtherType, EthernetFrame, MacAddr, Packet,
    TenantId, VlanTag,
};
use proptest::prelude::*;

fn arb_mac() -> impl Strategy<Value = MacAddr> {
    any::<[u8; 6]>().prop_map(MacAddr::new)
}

fn arb_ipv4() -> impl Strategy<Value = Ipv4Addr> {
    any::<[u8; 4]>().prop_map(Ipv4Addr::from)
}

fn arb_tenant() -> impl Strategy<Value = TenantId> {
    (0u16..=0x0fff).prop_map(TenantId::new)
}

fn arb_vlan() -> impl Strategy<Value = VlanTag> {
    (arb_tenant(), 0u8..=7).prop_map(|(t, pcp)| VlanTag::new(t, pcp))
}

fn arb_ethertype() -> impl Strategy<Value = EtherType> {
    // Exclude the VLAN TPID itself: a payload ethertype of 0x8100 would be
    // re-interpreted as a (different) tagged frame, which real switches also
    // cannot distinguish.
    any::<u16>()
        .prop_filter("not the vlan tpid", |v| *v != 0x8100)
        .prop_map(EtherType)
}

fn arb_frame() -> impl Strategy<Value = EthernetFrame> {
    (
        arb_mac(),
        arb_mac(),
        proptest::option::of(arb_vlan()),
        arb_ethertype(),
        proptest::collection::vec(any::<u8>(), 0..256),
    )
        .prop_map(|(src, dst, vlan, ethertype, payload)| EthernetFrame {
            src,
            dst,
            vlan,
            ethertype,
            payload: payload.into(),
        })
}

fn arb_arp() -> impl Strategy<Value = ArpPacket> {
    (
        prop_oneof![Just(ArpOp::Request), Just(ArpOp::Reply)],
        arb_mac(),
        arb_ipv4(),
        arb_mac(),
        arb_ipv4(),
    )
        .prop_map(
            |(op, sender_mac, sender_ip, target_mac, target_ip)| ArpPacket {
                op,
                sender_mac,
                sender_ip,
                target_mac,
                target_ip,
            },
        )
}

fn arb_encap() -> impl Strategy<Value = EncapsulatedFrame> {
    (
        arb_ipv4(),
        arb_ipv4(),
        arb_tenant(),
        any::<u32>(),
        arb_frame(),
    )
        .prop_map(|(src, dst, tenant, key, inner)| {
            EncapsulatedFrame::new(EncapHeader::new(src, dst, tenant, key), inner)
        })
}

proptest! {
    #[test]
    fn ethernet_round_trips(frame in arb_frame()) {
        let wire = frame.encode();
        let back = EthernetFrame::decode(&wire).unwrap();
        prop_assert_eq!(back, frame);
    }

    #[test]
    fn arp_round_trips(arp in arb_arp()) {
        let back = ArpPacket::decode(&arp.encode()).unwrap();
        prop_assert_eq!(back, arp);
    }

    #[test]
    fn encap_round_trips(pkt in arb_encap()) {
        let back = EncapsulatedFrame::decode(&pkt.encode()).unwrap();
        prop_assert_eq!(back, pkt);
    }

    #[test]
    fn packet_enum_round_trips(pkt in prop_oneof![
        arb_frame().prop_map(Packet::Plain),
        arb_encap().prop_map(Packet::Encapsulated),
    ]) {
        // A plain frame whose first four bytes collide with the encap magic
        // is legitimately ambiguous on the wire; the generator makes this
        // astronomically unlikely, but guard anyway.
        let wire = pkt.encode();
        if wire[0..4] == [0x4c, 0x5a, 0x43, 0x54] && pkt.kind() == lazyctrl_net::PacketKind::Plain {
            return Ok(());
        }
        let back = Packet::decode(&wire).unwrap();
        prop_assert_eq!(back, pkt);
    }

    #[test]
    fn decoders_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = EthernetFrame::decode(&bytes);
        let _ = ArpPacket::decode(&bytes);
        let _ = EncapsulatedFrame::decode(&bytes);
        let _ = Packet::decode(&bytes);
    }

    #[test]
    fn mac_display_parse_round_trips(mac in arb_mac()) {
        let s = mac.to_string();
        let back: MacAddr = s.parse().unwrap();
        prop_assert_eq!(back, mac);
    }
}
