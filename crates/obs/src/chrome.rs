//! chrome://tracing export for flight-recorder dumps.
//!
//! Produces the Trace Event Format's JSON array form: instant events (`"ph":
//! "i"`) on one "thread" per subsystem, timestamps in microseconds of
//! *virtual* time. Load the file in `chrome://tracing` or Perfetto to scrub
//! through a run visually; flows stand out because every record of one flow
//! carries the same `trace_id` arg.

use crate::intern::{kind, subsys};
use crate::json::Value;
use crate::recorder::FlightRecorder;

/// Render the retained records as a chrome://tracing JSON document.
pub fn chrome_trace_json(recorder: &FlightRecorder, process_name: &str) -> String {
    let mut events: Vec<Value> = Vec::with_capacity(recorder.len() + subsys::NAMES.len() + 1);
    events.push(Value::obj(vec![
        ("name", Value::Str("process_name".to_string())),
        ("ph", Value::Str("M".to_string())),
        ("pid", Value::Num(1.0)),
        ("tid", Value::Num(0.0)),
        (
            "args",
            Value::obj(vec![("name", Value::Str(process_name.to_string()))]),
        ),
    ]));
    for (i, name) in subsys::NAMES.iter().enumerate() {
        events.push(Value::obj(vec![
            ("name", Value::Str("thread_name".to_string())),
            ("ph", Value::Str("M".to_string())),
            ("pid", Value::Num(1.0)),
            ("tid", Value::Num(i as f64)),
            (
                "args",
                Value::obj(vec![("name", Value::Str((*name).to_string()))]),
            ),
        ]));
    }
    for rec in recorder.iter() {
        events.push(Value::obj(vec![
            ("name", Value::Str(kind::name(rec.kind).to_string())),
            ("ph", Value::Str("i".to_string())),
            ("s", Value::Str("t".to_string())),
            ("ts", Value::Num(rec.t_ns as f64 / 1000.0)),
            ("pid", Value::Num(1.0)),
            ("tid", Value::Num(rec.subsys as f64)),
            (
                "args",
                Value::obj(vec![
                    ("trace_id", Value::Num(rec.trace_id as f64)),
                    ("a", Value::Num(rec.a as f64)),
                    ("b", Value::Num(rec.b as f64)),
                ]),
            ),
        ]));
    }
    Value::Arr(events).to_json()
}

/// Render the retained records as JSONL: one compact object per line,
/// oldest first, with kind/subsys resolved to names.
pub fn jsonl_dump(recorder: &FlightRecorder) -> String {
    let mut out = String::new();
    for rec in recorder.iter() {
        let line = Value::obj(vec![
            ("t_ns", Value::Num(rec.t_ns as f64)),
            ("trace_id", Value::Num(rec.trace_id as f64)),
            ("kind", Value::Str(kind::name(rec.kind).to_string())),
            ("subsys", Value::Str(subsys::name(rec.subsys).to_string())),
            ("a", Value::Num(rec.a as f64)),
            ("b", Value::Num(rec.b as f64)),
        ]);
        out.push_str(&line.to_json());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn chrome_export_parses_and_counts() {
        let mut fr = FlightRecorder::new(16);
        fr.record(1_000, 7, kind::FLOW_START, subsys::WORLD, 1, 2);
        fr.record(2_000, 7, kind::FRAME_DELIVERED, subsys::SWITCH, 3, 4);
        let doc = json::parse(&chrome_trace_json(&fr, "test")).unwrap();
        let events = doc.as_arr().unwrap();
        // 1 process meta + 5 thread metas + 2 records
        assert_eq!(events.len(), 8);
        let last = &events[7];
        assert_eq!(last.get("name").unwrap().as_str(), Some("frame_delivered"));
        assert_eq!(last.get("ts").unwrap().as_f64(), Some(2.0));
    }

    #[test]
    fn jsonl_is_one_record_per_line() {
        let mut fr = FlightRecorder::new(16);
        fr.record(1, 0, kind::EVENT_POP, subsys::SIM, 0, 0);
        fr.record(2, 0, kind::HANDLER_DONE, subsys::SIM, 0, 3);
        let dump = jsonl_dump(&fr);
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), 2);
        let first = json::parse(lines[0]).unwrap();
        assert_eq!(first.get("kind").unwrap().as_str(), Some("event_pop"));
    }
}
