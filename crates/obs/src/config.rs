//! Observability configuration.

use serde::{Deserialize, Serialize};

/// Master switch + knobs for the observability layer.
///
/// The default is **fully off**: every hook in the hot path sees
/// `enabled == false` and returns immediately, so a run with the default
/// config behaves (and performs) exactly like a build without the layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObsConfig {
    /// Master switch. When `false` no records are captured, no profiling
    /// samples are taken and no dumps are written.
    pub enabled: bool,
    /// Flight-recorder capacity in records. Rounded up to the next power of
    /// two; when full, the oldest records are overwritten (flight-recorder
    /// semantics: the *tail* of the run is what survives).
    pub ring_capacity: usize,
    /// Take one wall-clock profiling sample every N dispatched events.
    /// Engine-level trace records (event pops, handler outcomes) follow the
    /// same stride — recording them on every dispatch streams a cache line
    /// per event through the ring and costs double-digit throughput, while
    /// flow-scoped records (the causal chains) are cheap enough to always
    /// capture. `0` disables the sampling profiler *and* the engine-level
    /// records (flow-scoped tracing still runs).
    pub profile_sample_every: u32,
    /// Automatically dump the recorder (JSONL + chrome://tracing JSON) when
    /// a scenario verdict fails.
    pub dump_on_failure: bool,
    /// Directory for automatic dumps (`<scenario>.trace.jsonl`,
    /// `<scenario>.chrome.json`).
    pub dump_dir: String,
}

impl Default for ObsConfig {
    fn default() -> Self {
        Self {
            enabled: false,
            ring_capacity: 1 << 16,
            profile_sample_every: 64,
            dump_on_failure: true,
            dump_dir: "target/obs".to_string(),
        }
    }
}

impl ObsConfig {
    /// Everything on: tracing, sampling profiler, dump-on-failure.
    pub fn full() -> Self {
        Self {
            enabled: true,
            ..Self::default()
        }
    }

    /// Tracing on with a specific ring capacity.
    pub fn with_ring_capacity(mut self, capacity: usize) -> Self {
        self.ring_capacity = capacity;
        self
    }

    /// Override the profiling sample stride (`0` = profiler off).
    pub fn with_sample_every(mut self, every: u32) -> Self {
        self.profile_sample_every = every;
        self
    }

    /// Override the automatic dump directory.
    pub fn with_dump_dir(mut self, dir: impl Into<String>) -> Self {
        self.dump_dir = dir.into();
        self
    }
}
