//! Interned identifiers for trace records.
//!
//! Records store `u16` IDs, never strings. The engine's vocabulary is known
//! at compile time, so the common path uses fixed constants and static name
//! tables; the dynamic [`Interner`] exists for ad-hoc extension (and to pin
//! interning stability under test).

/// Subsystem IDs (the `subsys` field of a record).
pub mod subsys {
    /// Simulation kernel (scheduler pops, timer churn).
    pub const SIM: u16 = 0;
    /// Switch datapath (frames, table lookups, PacketIn emission).
    pub const SWITCH: u16 = 1;
    /// Controller logic (lazy/baseline handlers, FlowMod emission).
    pub const CONTROLLER: u16 = 2;
    /// Cluster plane (peer sync, regroup, ownership).
    pub const CLUSTER: u16 = 3;
    /// World glue (injected faults, bookkeeping).
    pub const WORLD: u16 = 4;

    /// Display names, indexed by subsystem ID.
    pub const NAMES: [&str; 5] = ["sim", "switch", "controller", "cluster", "world"];

    /// Name for a subsystem ID (`"?"` if out of range).
    pub fn name(id: u16) -> &'static str {
        NAMES.get(id as usize).copied().unwrap_or("?")
    }
}

/// Record-kind IDs (the `kind` field of a record).
pub mod kind {
    /// An event was popped from the queue and dispatched (`a` = dense event kind).
    pub const EVENT_POP: u16 = 0;
    /// A flow setup started (first frame of a pair entered the fabric).
    pub const FLOW_START: u16 = 1;
    /// A data frame reached its destination host.
    pub const FRAME_DELIVERED: u16 = 2;
    /// A switch sent a PacketIn to its controller.
    pub const PACKET_IN_SENT: u16 = 3;
    /// A controller received a PacketIn.
    pub const PACKET_IN_RECV: u16 = 4;
    /// A controller sent a FlowMod.
    pub const FLOW_MOD_SENT: u16 = 5;
    /// A switch received (and installed) a FlowMod.
    pub const FLOW_MOD_RECV: u16 = 6;
    /// A controller sent a PacketOut.
    pub const PACKET_OUT_SENT: u16 = 7;
    /// A control-plane message was queued toward a switch.
    pub const MSG_TO_SWITCH: u16 = 8;
    /// A control-plane message was queued toward a controller.
    pub const MSG_TO_CONTROLLER: u16 = 9;
    /// A controller-to-controller peer message was sent.
    pub const CTRL_PEER_SEND: u16 = 10;
    /// A handler finished (`a` = dense event kind, `b` = outputs emitted).
    pub const HANDLER_DONE: u16 = 11;
    /// Host ownership moved between controllers.
    pub const OWNERSHIP_TRANSFER: u16 = 12;
    /// Injected fault: controller crash.
    pub const CRASH_CONTROLLER: u16 = 13;
    /// Injected fault: controller recovery.
    pub const RECOVER_CONTROLLER: u16 = 14;
    /// Injected fault: switch crash.
    pub const CRASH_SWITCH: u16 = 15;
    /// Injected fault: switch recovery.
    pub const RECOVER_SWITCH: u16 = 16;
    /// Injected fault: link degradation.
    pub const LINK_DEGRADE: u16 = 17;
    /// Injected fault: link loss.
    pub const LINK_LOSS: u16 = 18;
    /// Injected change: hosts migrated.
    pub const MIGRATE_HOSTS: u16 = 19;
    /// Injected change: traffic burst.
    pub const TRAFFIC_BURST: u16 = 20;
    /// Cluster regroup round observed.
    pub const REGROUP: u16 = 21;
    /// A frame left through an inter-switch tunnel.
    pub const TUNNEL_SENT: u16 = 22;
    /// Injected fault: network partitioned into islands (`a` = group count).
    pub const PARTITION_NETWORK: u16 = 23;
    /// Injected repair: all partition islands healed.
    pub const HEAL_PARTITION: u16 = 24;
    /// A controller sent an ECN-style congestion notice to a switch
    /// (`a` = target switch, `b` = sending member).
    pub const CONGESTION_NOTICE: u16 = 25;

    /// Display names, indexed by kind ID.
    pub const NAMES: [&str; 26] = [
        "event_pop",
        "flow_start",
        "frame_delivered",
        "packet_in_sent",
        "packet_in_recv",
        "flow_mod_sent",
        "flow_mod_recv",
        "packet_out_sent",
        "msg_to_switch",
        "msg_to_controller",
        "ctrl_peer_send",
        "handler_done",
        "ownership_transfer",
        "crash_controller",
        "recover_controller",
        "crash_switch",
        "recover_switch",
        "link_degrade",
        "link_loss",
        "migrate_hosts",
        "traffic_burst",
        "regroup",
        "tunnel_sent",
        "partition_network",
        "heal_partition",
        "congestion_notice",
    ];

    /// Name for a kind ID (`"?"` if out of range).
    pub fn name(id: u16) -> &'static str {
        NAMES.get(id as usize).copied().unwrap_or("?")
    }
}

/// A tiny append-only string interner: stable IDs in insertion order.
///
/// Not used on the hot path (the engine's vocabulary is static); this is the
/// extension point for dynamically named record sources, and the unit tests
/// pin its stability guarantee (same insertion sequence → same IDs).
#[derive(Debug, Default, Clone)]
pub struct Interner {
    names: Vec<String>,
}

impl Interner {
    /// New empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Return the ID for `name`, inserting it if unseen.
    ///
    /// IDs are assigned densely in first-seen order, so an identical
    /// insertion sequence always yields identical IDs.
    pub fn intern(&mut self, name: &str) -> u16 {
        if let Some(i) = self.names.iter().position(|n| n == name) {
            return i as u16;
        }
        assert!(self.names.len() < u16::MAX as usize, "interner full");
        self.names.push(name.to_string());
        (self.names.len() - 1) as u16
    }

    /// Resolve an ID back to its name.
    pub fn resolve(&self, id: u16) -> Option<&str> {
        self.names.get(id as usize).map(|s| s.as_str())
    }

    /// Number of interned names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the interner is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_tables_cover_ids() {
        assert_eq!(subsys::name(subsys::CLUSTER), "cluster");
        assert_eq!(kind::name(kind::FLOW_MOD_RECV), "flow_mod_recv");
        assert_eq!(kind::name(999), "?");
    }

    #[test]
    fn interner_is_stable_across_identical_sequences() {
        let seq = ["alpha", "beta", "alpha", "gamma", "beta"];
        let mut a = Interner::new();
        let mut b = Interner::new();
        let ids_a: Vec<u16> = seq.iter().map(|s| a.intern(s)).collect();
        let ids_b: Vec<u16> = seq.iter().map(|s| b.intern(s)).collect();
        assert_eq!(ids_a, ids_b);
        assert_eq!(ids_a, vec![0, 1, 0, 2, 1]);
        assert_eq!(a.resolve(2), Some("gamma"));
        assert_eq!(a.len(), 3);
    }
}
