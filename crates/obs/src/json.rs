//! Minimal JSON tree, writer, and parser.
//!
//! The vendored `serde` is a no-op stub (see `DESIGN.md`), so structured
//! export is hand-rolled. This module gives the observability layer one
//! small, dependency-free JSON representation used for `telemetry.json`,
//! JSONL trace dumps and chrome://tracing files — including a parser so CI
//! can round-trip and schema-check what the engine wrote.

use std::fmt::Write as _;

/// A JSON value. Objects preserve insertion order (deterministic output).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (written via [`write_number`]).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object as an ordered key → value list.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object constructor from pairs.
    pub fn obj(pairs: Vec<(&str, Value)>) -> Value {
        Value::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric accessor.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// String accessor.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array accessor.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Render compact (single line).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Render pretty with two-space indentation.
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => write_number(out, *n),
            Value::Str(s) => write_string(out, s),
            Value::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Value::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_string(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..(width * depth) {
            out.push(' ');
        }
    }
}

/// Write a number the way the rest of the repo's hand-rolled JSON does:
/// integers without a fraction, everything else via `{:?}` (shortest
/// round-trip float formatting). Non-finite values become `null`.
pub fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9.0e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n:?}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a JSON document. Returns an error string with a byte offset on
/// malformed input.
pub fn parse(input: &str) -> Result<Value, String> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => expect_lit(bytes, pos, "null", Value::Null),
        Some(b't') => expect_lit(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => expect_lit(bytes, pos, "false", Value::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Value::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                let value = parse_value(bytes, pos)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Obj(pairs));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(_) => parse_number(bytes, pos).map(Value::Num),
    }
}

fn expect_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("expected '{lit}' at byte {pos}"))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected '\"' at byte {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                            16,
                        )
                        .map_err(|_| "bad \\u escape")?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so boundaries are valid).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|_| "invalid utf-8")?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<f64, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad number at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_document() {
        let doc = Value::obj(vec![
            ("schema", Value::Num(1.0)),
            ("name", Value::Str("cold_cache \"quick\"".to_string())),
            ("ok", Value::Bool(true)),
            ("none", Value::Null),
            (
                "xs",
                Value::Arr(vec![Value::Num(1.0), Value::Num(2.5), Value::Num(-3.0)]),
            ),
            (
                "nested",
                Value::obj(vec![("k", Value::Str("v".to_string()))]),
            ),
        ]);
        for text in [doc.to_json(), doc.to_json_pretty()] {
            let parsed = parse(&text).unwrap();
            assert_eq!(parsed, doc);
        }
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(Value::Num(42.0).to_json(), "42");
        assert_eq!(Value::Num(2.5).to_json(), "2.5");
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{\"a\": }").is_err());
        assert!(parse("[1, 2").is_err());
        assert!(parse("{} extra").is_err());
    }
}
