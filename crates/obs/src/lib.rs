//! Observability for the LazyCtrl engine: flight-recorder tracing, sampled
//! self-profiling, and structured telemetry export.
//!
//! Three pillars (see `DESIGN.md` §8):
//!
//! * [`FlightRecorder`] — a preallocated overwrite-oldest ring of compact
//!   32-byte [`TraceRecord`]s with interned kind/subsystem IDs and a
//!   per-flow `trace_id`, so one flow setup's PacketIn → FlowMod → delivery
//!   causal chain can be reconstructed after the fact;
//! * [`EngineProfile`] — coarse wall-clock attribution per event kind and
//!   subsystem using a sampling countdown (one `Instant::now()` pair per N
//!   dispatches, never per event), plus [`PhaseTimings`] for build/run/report
//!   phase walls;
//! * [`json`]/[`chrome`] — a small self-contained JSON tree with writer *and*
//!   parser (the vendored serde is a no-op stub) backing `telemetry.json`,
//!   JSONL trace dumps and chrome://tracing exports.
//!
//! Everything hangs off [`ObsConfig`]; the default is off, and disabled hooks
//! cost one branch on a `None`/`false` check. The layer is strictly
//! read-only with respect to the simulation: it never touches RNG state,
//! scheduling order, or any quantity that feeds a report, so reports are
//! bit-identical with tracing on or off.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chrome;
mod config;
pub mod intern;
pub mod json;
mod profile;
mod recorder;

pub use chrome::{chrome_trace_json, jsonl_dump};
pub use config::ObsConfig;
pub use intern::Interner;
pub use profile::{EngineProfile, KindProfile, PhaseTimings};
pub use recorder::{
    dst_trace_id, pair_trace_id, trace_id_dst, FlightRecorder, RecorderStats, TraceRecord,
};
