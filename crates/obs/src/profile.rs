//! Engine self-profiling: coarse, sampled wall-clock attribution.
//!
//! Per-event `Instant::now()` would dominate a 2.77 M events/sec dispatch
//! loop, so the profiler samples: a countdown counter decides (branch + dec)
//! whether this dispatch is timed; only one in `sample_every` events pays for
//! two `Instant::now()` calls. The measured nanoseconds land in a fixed-size
//! [`Log2Histogram`] per event kind — no per-sample allocation, bounded
//! memory regardless of run length. Exact event *counts* are kept per kind
//! (they're just increments), so throughput attribution stays precise even
//! though latency attribution is sampled.

use lazyctrl_sim::Log2Histogram;
use std::time::Instant;

/// Wall-clock phase timings for one experiment run, seconds.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PhaseTimings {
    /// Trace/world construction (before the first event pops).
    pub build_s: f64,
    /// The event loop itself.
    pub run_s: f64,
    /// Report collection after the loop drains.
    pub report_s: f64,
}

impl PhaseTimings {
    /// Total across phases.
    pub fn total_s(&self) -> f64 {
        self.build_s + self.run_s + self.report_s
    }
}

/// One event kind's profile row.
#[derive(Debug, Clone)]
pub struct KindProfile {
    /// Dense event-kind index (world-defined).
    pub kind: u32,
    /// Subsystem the kind is attributed to ([`crate::intern::subsys`]).
    pub subsys: u16,
    /// Exact number of dispatches of this kind.
    pub count: u64,
    /// Sampled dispatch-time distribution, nanoseconds.
    pub ns: Log2Histogram,
}

/// Sampling dispatch-time profiler.
///
/// `MAX_KINDS` bounds the dense kind space; the world maps its event enum to
/// `0..n` and registers a subsystem per kind up front.
#[derive(Debug, Clone)]
pub struct EngineProfile {
    sample_every: u32,
    countdown: u32,
    pending: Option<(u32, Instant)>,
    counts: Vec<u64>,
    subsys_of: Vec<u16>,
    ns: Vec<Log2Histogram>,
    samples: u64,
}

impl EngineProfile {
    /// Profiler over `kinds` dense event kinds, sampling one dispatch in
    /// `sample_every` (`0` disables sampling; counts are still exact).
    /// `subsys_of[kind]` attributes each kind to a subsystem.
    pub fn new(kinds: usize, subsys_of: Vec<u16>, sample_every: u32) -> Self {
        assert_eq!(subsys_of.len(), kinds, "one subsystem per kind");
        Self {
            sample_every,
            countdown: sample_every,
            pending: None,
            counts: vec![0; kinds],
            subsys_of,
            ns: vec![Log2Histogram::new(); kinds],
            samples: 0,
        }
    }

    /// Whether the *next* [`dispatch_begin`] call will take a timing
    /// sample. Lets callers gate their own per-dispatch bookkeeping (e.g.
    /// engine-level trace records) on the same sampling stride without
    /// perturbing the timed window.
    ///
    /// [`dispatch_begin`]: EngineProfile::dispatch_begin
    #[inline]
    pub fn will_sample(&self) -> bool {
        self.sample_every != 0 && self.countdown == 1
    }

    /// Called just before an event of `kind` is dispatched. Cheap path is a
    /// count increment plus one countdown decrement; every `sample_every`-th
    /// call also takes a timestamp.
    #[inline]
    pub fn dispatch_begin(&mut self, kind: u32) {
        self.counts[kind as usize] += 1;
        if self.sample_every == 0 {
            return;
        }
        self.countdown -= 1;
        if self.countdown == 0 {
            self.countdown = self.sample_every;
            self.pending = Some((kind, Instant::now()));
        }
    }

    /// Called after the dispatch returns; records the elapsed time if this
    /// dispatch was sampled.
    #[inline]
    pub fn dispatch_end(&mut self) {
        if let Some((kind, start)) = self.pending.take() {
            let ns = start.elapsed().as_nanos() as f64;
            self.ns[kind as usize].record(ns.max(1.0));
            self.samples += 1;
        }
    }

    /// Total sampled dispatches.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Total dispatches (exact).
    pub fn total_events(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Per-kind rows, skipping kinds that never fired.
    pub fn kind_profiles(&self) -> Vec<KindProfile> {
        (0..self.counts.len())
            .filter(|&k| self.counts[k] > 0)
            .map(|k| KindProfile {
                kind: k as u32,
                subsys: self.subsys_of[k],
                count: self.counts[k],
                ns: self.ns[k].clone(),
            })
            .collect()
    }

    /// Fold another profile (same kind space) into this one: exact counts
    /// and sample totals add, sampled latency histograms merge bucket-wise.
    /// Used to roll per-partition profiles up into one run-level profile
    /// after a sharded run.
    pub fn merge(&mut self, other: &EngineProfile) {
        assert_eq!(
            self.counts.len(),
            other.counts.len(),
            "profiles must cover the same kind space"
        );
        assert_eq!(
            self.subsys_of, other.subsys_of,
            "profiles must agree on the kind→subsystem mapping"
        );
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        for (h, o) in self.ns.iter_mut().zip(&other.ns) {
            h.merge(o);
        }
        self.samples += other.samples;
    }

    /// Roll dispatch counts and sampled time up by subsystem:
    /// `(subsys, exact count, sampled ns sum)`.
    pub fn subsys_rollup(&self) -> Vec<(u16, u64, f64)> {
        let max = self.subsys_of.iter().copied().max().map_or(0, |m| m + 1);
        let mut rows: Vec<(u16, u64, f64)> = (0..max).map(|s| (s, 0, 0.0)).collect();
        for k in 0..self.counts.len() {
            let s = self.subsys_of[k] as usize;
            rows[s].1 += self.counts[k];
            rows[s].2 += self.ns[k].sum();
        }
        rows.retain(|&(_, c, _)| c > 0);
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_are_exact_and_sampling_is_strided() {
        let mut p = EngineProfile::new(3, vec![0, 1, 1], 4);
        let mut announced = 0;
        for i in 0..20 {
            let k = i % 3;
            if p.will_sample() {
                announced += 1;
            }
            p.dispatch_begin(k);
            p.dispatch_end();
        }
        assert_eq!(p.total_events(), 20);
        assert_eq!(p.samples(), 5); // every 4th of 20
        assert_eq!(announced, 5, "will_sample must agree with dispatch_begin");
        let rows = p.kind_profiles();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].count, 7);
        let rollup = p.subsys_rollup();
        assert_eq!(rollup[0].0, 0);
        assert_eq!(rollup[0].1, 7);
        assert_eq!(rollup[1].1, 13);
    }

    #[test]
    fn merge_adds_counts_and_samples() {
        let mut a = EngineProfile::new(2, vec![0, 1], 1);
        let mut b = EngineProfile::new(2, vec![0, 1], 1);
        for _ in 0..3 {
            a.dispatch_begin(0);
            a.dispatch_end();
        }
        for _ in 0..5 {
            b.dispatch_begin(1);
            b.dispatch_end();
        }
        a.merge(&b);
        assert_eq!(a.total_events(), 8);
        assert_eq!(a.samples(), 8);
        let rows = a.kind_profiles();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].count, 3);
        assert_eq!(rows[1].count, 5);
        assert_eq!(rows[1].ns.len(), 5, "sampled histograms must merge");
    }

    #[test]
    fn zero_stride_disables_sampling() {
        let mut p = EngineProfile::new(1, vec![0], 0);
        for _ in 0..100 {
            assert!(!p.will_sample());
            p.dispatch_begin(0);
            p.dispatch_end();
        }
        assert_eq!(p.samples(), 0);
        assert_eq!(p.total_events(), 100);
    }
}
