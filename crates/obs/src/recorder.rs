//! The flight recorder: a preallocated ring of compact trace records.
//!
//! Records are 32-byte `Copy` structs; pushing one is an index increment and
//! a slot write — no allocation, no branching beyond the wrap mask. When the
//! ring is full the oldest record is overwritten, so after a long run the
//! recorder holds the *tail* of history: exactly what you want when a verdict
//! fails at the end.

use serde::{Deserialize, Serialize};

/// One trace record. Meaning of `a`/`b` depends on `kind` (see
/// [`crate::intern::kind`]); `trace_id == 0` means "not flow-scoped".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Virtual time of the record, nanoseconds.
    pub t_ns: u64,
    /// Flow-scoped correlation ID (see [`pair_trace_id`]/[`dst_trace_id`]),
    /// or `0` when the record is not tied to a single flow.
    pub trace_id: u64,
    /// Record kind ([`crate::intern::kind`]).
    pub kind: u16,
    /// Originating subsystem ([`crate::intern::subsys`]).
    pub subsys: u16,
    /// Kind-specific payload (e.g. switch ID, controller ID, event kind).
    pub a: u32,
    /// Kind-specific payload (e.g. peer ID, output count).
    pub b: u32,
}

/// Trace ID for a (src, dst) host pair. Host IDs are offset by one so that
/// host 0 still produces a nonzero ID (`0` is reserved for "no flow").
pub fn pair_trace_id(src: u64, dst: u64) -> u64 {
    ((src + 1) << 32) | (dst + 1)
}

/// Trace ID for a destination-only record (FlowMods match on `dl_dst`, so
/// install-side records are only destination-joinable).
pub fn dst_trace_id(dst: u64) -> u64 {
    dst + 1
}

/// Destination host encoded in either form of trace ID (the low half).
pub fn trace_id_dst(trace_id: u64) -> u64 {
    (trace_id & 0xffff_ffff).wrapping_sub(1)
}

/// Recorder occupancy statistics, exported with every telemetry snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct RecorderStats {
    /// Ring capacity in records (power of two).
    pub capacity: u64,
    /// Total records pushed over the run.
    pub recorded: u64,
    /// Records still in the ring (`min(recorded, capacity)`).
    pub retained: u64,
    /// Records overwritten by wraparound (`recorded - retained`).
    pub dropped: u64,
}

/// Fixed-capacity overwrite-oldest ring buffer of [`TraceRecord`]s.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    ring: Vec<TraceRecord>,
    mask: usize,
    /// Total records ever pushed; `head = recorded & mask` is the next slot.
    recorded: u64,
}

impl FlightRecorder {
    /// Create a recorder with at least `capacity` slots (rounded up to a
    /// power of two, minimum 8). The ring is preallocated up front so the
    /// hot path never allocates.
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(8).next_power_of_two();
        let zero = TraceRecord {
            t_ns: 0,
            trace_id: 0,
            kind: 0,
            subsys: 0,
            a: 0,
            b: 0,
        };
        Self {
            ring: vec![zero; cap],
            mask: cap - 1,
            recorded: 0,
        }
    }

    /// Push a record, overwriting the oldest if the ring is full.
    #[inline]
    pub fn push(&mut self, rec: TraceRecord) {
        let slot = (self.recorded as usize) & self.mask;
        self.ring[slot] = rec;
        self.recorded += 1;
    }

    /// Convenience push from parts.
    #[inline]
    pub fn record(&mut self, t_ns: u64, trace_id: u64, kind: u16, subsys: u16, a: u32, b: u32) {
        self.push(TraceRecord {
            t_ns,
            trace_id,
            kind,
            subsys,
            a,
            b,
        });
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.ring.len()
    }

    /// Number of records currently retained.
    pub fn len(&self) -> usize {
        self.recorded.min(self.ring.len() as u64) as usize
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.recorded == 0
    }

    /// Total records ever pushed (hot-path counter read; see [`stats`]
    /// for the full occupancy breakdown).
    ///
    /// [`stats`]: FlightRecorder::stats
    #[inline]
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Occupancy statistics.
    pub fn stats(&self) -> RecorderStats {
        let retained = self.len() as u64;
        RecorderStats {
            capacity: self.ring.len() as u64,
            recorded: self.recorded,
            retained,
            dropped: self.recorded - retained,
        }
    }

    /// Iterate retained records oldest → newest.
    pub fn iter(&self) -> impl Iterator<Item = &TraceRecord> {
        let len = self.len();
        let start = (self.recorded as usize).wrapping_sub(len);
        (0..len).map(move |i| &self.ring[(start + i) & self.mask])
    }

    /// Records for one flow, oldest → newest. Matches records whose
    /// `trace_id` equals `pair_trace_id(src, dst)` *or* `dst_trace_id(dst)`,
    /// so the destination-joinable FlowMod leg is included in the pair chain.
    pub fn flow_chain(&self, src: u64, dst: u64) -> Vec<TraceRecord> {
        let pair = pair_trace_id(src, dst);
        let dst_only = dst_trace_id(dst);
        self.iter()
            .filter(|r| r.trace_id == pair || r.trace_id == dst_only)
            .copied()
            .collect()
    }

    /// Clear all records (capacity is kept).
    pub fn clear(&mut self) {
        self.recorded = 0;
    }

    /// Fold another recorder's retained records into this ring, interleaved
    /// by virtual time (`t_ns`, ties keep this ring's records first — a
    /// total order because each source is already time-sorted). The
    /// `recorded` counter becomes the sum of both, so drop accounting in
    /// [`stats`](FlightRecorder::stats) stays truthful after a sharded run's
    /// per-partition recorders are rolled up.
    pub fn merge(&mut self, other: &FlightRecorder) {
        let total = self.recorded + other.recorded;
        let merged: Vec<TraceRecord> = {
            let mut v = Vec::with_capacity(self.len() + other.len());
            let mut a = self.iter().peekable();
            let mut b = other.iter().peekable();
            while a.peek().is_some() || b.peek().is_some() {
                let take_a = match (a.peek(), b.peek()) {
                    (Some(x), Some(y)) => x.t_ns <= y.t_ns,
                    (Some(_), None) => true,
                    _ => false,
                };
                let rec = if take_a { a.next() } else { b.next() };
                v.push(*rec.expect("one side is non-empty"));
            }
            v
        };
        // Pre-position the counter so pushing the merged tail lands with
        // `recorded == total` and the ring indices stay self-consistent.
        self.recorded = total - merged.len() as u64;
        for rec in merged {
            self.push(rec);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intern::kind;

    fn rec(t: u64, kind: u16) -> TraceRecord {
        TraceRecord {
            t_ns: t,
            trace_id: 0,
            kind,
            subsys: 0,
            a: 0,
            b: 0,
        }
    }

    #[test]
    fn record_is_compact() {
        assert!(std::mem::size_of::<TraceRecord>() <= 32);
    }

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        assert_eq!(FlightRecorder::new(0).capacity(), 8);
        assert_eq!(FlightRecorder::new(9).capacity(), 16);
        assert_eq!(FlightRecorder::new(16).capacity(), 16);
    }

    #[test]
    fn wraparound_keeps_newest() {
        let mut fr = FlightRecorder::new(8);
        for t in 0..20 {
            fr.push(rec(t, 0));
        }
        let stats = fr.stats();
        assert_eq!(stats.capacity, 8);
        assert_eq!(stats.recorded, 20);
        assert_eq!(stats.retained, 8);
        assert_eq!(stats.dropped, 12);
        let times: Vec<u64> = fr.iter().map(|r| r.t_ns).collect();
        assert_eq!(times, (12..20).collect::<Vec<u64>>());
    }

    #[test]
    fn merge_interleaves_by_time_and_sums_recorded() {
        let mut a = FlightRecorder::new(8);
        let mut b = FlightRecorder::new(8);
        for t in [10, 30, 50] {
            a.push(rec(t, 1));
        }
        for t in [20, 30, 60] {
            b.push(rec(t, 2));
        }
        a.merge(&b);
        let seen: Vec<(u64, u16)> = a.iter().map(|r| (r.t_ns, r.kind)).collect();
        // Time-sorted; the t=30 tie keeps self's record first.
        assert_eq!(
            seen,
            vec![(10, 1), (20, 2), (30, 1), (30, 2), (50, 1), (60, 2)]
        );
        assert_eq!(a.recorded(), 6);
        assert_eq!(a.stats().dropped, 0);
    }

    #[test]
    fn merge_past_capacity_keeps_newest_and_counts_drops() {
        let mut a = FlightRecorder::new(8);
        let mut b = FlightRecorder::new(8);
        for t in 0..6 {
            a.push(rec(t, 1));
        }
        for t in 6..12 {
            b.push(rec(t, 2));
        }
        a.merge(&b);
        let stats = a.stats();
        assert_eq!(stats.recorded, 12);
        assert_eq!(stats.retained, 8);
        assert_eq!(stats.dropped, 4);
        let times: Vec<u64> = a.iter().map(|r| r.t_ns).collect();
        assert_eq!(times, (4..12).collect::<Vec<u64>>());
    }

    #[test]
    fn flow_chain_joins_pair_and_dst_ids() {
        let mut fr = FlightRecorder::new(64);
        let (src, dst) = (3, 7);
        fr.record(10, pair_trace_id(src, dst), kind::FLOW_START, 4, 0, 0);
        fr.record(20, pair_trace_id(src, dst), kind::PACKET_IN_SENT, 1, 0, 0);
        fr.record(30, dst_trace_id(dst), kind::FLOW_MOD_SENT, 2, 0, 0);
        fr.record(35, pair_trace_id(9, 9), kind::FLOW_START, 4, 0, 0); // other flow
        fr.record(40, dst_trace_id(dst), kind::FLOW_MOD_RECV, 1, 0, 0);
        fr.record(50, pair_trace_id(src, dst), kind::FRAME_DELIVERED, 1, 0, 0);
        let chain = fr.flow_chain(src, dst);
        let kinds: Vec<u16> = chain.iter().map(|r| r.kind).collect();
        assert_eq!(
            kinds,
            vec![
                kind::FLOW_START,
                kind::PACKET_IN_SENT,
                kind::FLOW_MOD_SENT,
                kind::FLOW_MOD_RECV,
                kind::FRAME_DELIVERED
            ]
        );
        assert_eq!(trace_id_dst(chain[0].trace_id), dst);
    }
}
