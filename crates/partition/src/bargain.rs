//! Group-size negotiation via a modified Rubinstein bargaining model
//! (Appendix C).
//!
//! The controller prefers *large* groups (fewer groups ⇒ less inter-group
//! traffic ⇒ less load); switches prefer *small* groups (smaller L-FIB/G-FIB
//! state and less peer-sync overhead). The paper resolves the tension with
//! an alternating-offers game: "the switches are allowed to dynamically
//! bargain the group size limit with the controller according to their
//! real-time monitored and self-evaluated data."
//!
//! We implement the standard Rubinstein solution over the feasible interval
//! `[min_limit, max_limit]` with per-round discount factors, plus a
//! round-by-round transcript of the concession process so the controller
//! can exchange real `Bargain` protocol messages.

use serde::{Deserialize, Serialize};

/// Parameters of one negotiation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BargainConfig {
    /// Smallest group size the controller would accept (from capacity
    /// planning; going lower overloads the controller).
    pub min_limit: u32,
    /// Largest group size the switches can hold state for (TCAM budget).
    pub max_limit: u32,
    /// Controller's per-round discount factor `δ_c ∈ (0, 1)`; higher means
    /// more patient (an idle controller can wait out the switches).
    pub controller_discount: f64,
    /// Switches' per-round discount factor `δ_s ∈ (0, 1)`.
    pub switch_discount: f64,
    /// Hard cap on rounds before the analytic agreement is imposed.
    pub max_rounds: u32,
}

impl BargainConfig {
    /// A negotiation over `[min_limit, max_limit]` with symmetric patience.
    ///
    /// # Panics
    ///
    /// Panics if `min_limit > max_limit` or either limit is zero.
    pub fn new(min_limit: u32, max_limit: u32) -> Self {
        assert!(min_limit > 0, "limits must be positive");
        assert!(min_limit <= max_limit, "min_limit above max_limit");
        BargainConfig {
            min_limit,
            max_limit,
            controller_discount: 0.9,
            switch_discount: 0.9,
            max_rounds: 16,
        }
    }

    /// Sets the discount factors.
    ///
    /// # Panics
    ///
    /// Panics unless both factors are in `(0, 1)`.
    pub fn with_discounts(mut self, controller: f64, switch: f64) -> Self {
        assert!(
            controller > 0.0 && controller < 1.0 && switch > 0.0 && switch < 1.0,
            "discount factors must be in (0, 1)"
        );
        self.controller_discount = controller;
        self.switch_discount = switch;
        self
    }
}

/// One offer in the transcript.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Offer {
    /// Round number (0-based).
    pub round: u32,
    /// True when the controller made the offer.
    pub from_controller: bool,
    /// The proposed group size limit.
    pub proposed_limit: u32,
    /// True when this offer closes the deal.
    pub accept: bool,
}

/// The result of a negotiation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BargainOutcome {
    /// The agreed group size limit.
    pub agreed_limit: u32,
    /// Rounds taken until acceptance.
    pub rounds: u32,
    /// Full offer transcript.
    pub transcript: Vec<Offer>,
}

/// The analytic Rubinstein split: the controller (first mover) captures the
/// share `x* = (1 − δ_s) / (1 − δ_c·δ_s)` of the surplus.
pub fn rubinstein_share(controller_discount: f64, switch_discount: f64) -> f64 {
    (1.0 - switch_discount) / (1.0 - controller_discount * switch_discount)
}

/// Runs the negotiation, producing the agreed limit and the transcript.
///
/// The controller opens at `max_limit`, switches counter at `min_limit`;
/// each side concedes geometrically towards the Rubinstein point at a rate
/// set by its own discount factor, and a side accepts as soon as the
/// standing offer is at least as good as its own planned next proposal.
/// If `max_rounds` elapses, the analytic agreement is imposed (a "modified"
/// finite-horizon Rubinstein game).
pub fn negotiate(cfg: &BargainConfig) -> BargainOutcome {
    let lo = cfg.min_limit as f64;
    let hi = cfg.max_limit as f64;
    let surplus = hi - lo;
    let share = rubinstein_share(cfg.controller_discount, cfg.switch_discount);
    let equilibrium = lo + share * surplus;

    let mut transcript = Vec::new();
    if cfg.min_limit == cfg.max_limit {
        transcript.push(Offer {
            round: 0,
            from_controller: true,
            proposed_limit: cfg.min_limit,
            accept: true,
        });
        return BargainOutcome {
            agreed_limit: cfg.min_limit,
            rounds: 1,
            transcript,
        };
    }

    // Controller's standing demand and switches' standing offer.
    let mut controller_demand = hi;
    let mut switch_offer = lo;
    for round in 0..cfg.max_rounds {
        let controller_turn = round % 2 == 0;
        if controller_turn {
            // Concede towards equilibrium at rate (1 - δ_c).
            controller_demand =
                equilibrium + (controller_demand - equilibrium) * cfg.controller_discount;
            let proposal = controller_demand.round().clamp(lo, hi) as u32;
            // Switches accept when the demand is no worse than what they'd
            // propose next round (discounted waiting costs them).
            let switches_next = equilibrium + (switch_offer - equilibrium) * cfg.switch_discount;
            let accept = (proposal as f64) <= switches_next.max(equilibrium) + 0.5;
            transcript.push(Offer {
                round,
                from_controller: true,
                proposed_limit: proposal,
                accept,
            });
            if accept {
                return BargainOutcome {
                    agreed_limit: proposal,
                    rounds: round + 1,
                    transcript,
                };
            }
        } else {
            switch_offer = equilibrium + (switch_offer - equilibrium) * cfg.switch_discount;
            let proposal = switch_offer.round().clamp(lo, hi) as u32;
            let controller_next =
                equilibrium + (controller_demand - equilibrium) * cfg.controller_discount;
            let accept = (proposal as f64) >= controller_next.min(equilibrium) - 0.5;
            transcript.push(Offer {
                round,
                from_controller: false,
                proposed_limit: proposal,
                accept,
            });
            if accept {
                return BargainOutcome {
                    agreed_limit: proposal,
                    rounds: round + 1,
                    transcript,
                };
            }
        }
    }
    // Horizon reached: impose the analytic agreement.
    let agreed = equilibrium.round().clamp(lo, hi) as u32;
    transcript.push(Offer {
        round: cfg.max_rounds,
        from_controller: true,
        proposed_limit: agreed,
        accept: true,
    });
    BargainOutcome {
        agreed_limit: agreed,
        rounds: cfg.max_rounds + 1,
        transcript,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetric_patience_lands_near_midpoint_or_above() {
        // With δ_c = δ_s = δ, the first mover's share is 1/(1+δ) > 1/2.
        let cfg = BargainConfig::new(20, 100).with_discounts(0.9, 0.9);
        let out = negotiate(&cfg);
        assert!(out.agreed_limit >= 55, "limit {} too low", out.agreed_limit);
        assert!(out.agreed_limit <= 100);
        assert!(out.rounds >= 1);
    }

    #[test]
    fn patient_controller_extracts_larger_groups() {
        let patient = negotiate(&BargainConfig::new(20, 100).with_discounts(0.99, 0.5));
        let impatient = negotiate(&BargainConfig::new(20, 100).with_discounts(0.5, 0.99));
        assert!(
            patient.agreed_limit > impatient.agreed_limit,
            "patient {} <= impatient {}",
            patient.agreed_limit,
            impatient.agreed_limit
        );
    }

    #[test]
    fn agreement_is_within_bounds() {
        for (dc, ds) in [(0.1, 0.1), (0.9, 0.1), (0.1, 0.9), (0.99, 0.99)] {
            let out = negotiate(&BargainConfig::new(30, 600).with_discounts(dc, ds));
            assert!(
                (30..=600).contains(&out.agreed_limit),
                "limit {} out of bounds for ({dc},{ds})",
                out.agreed_limit
            );
            // Transcript ends with the accepted offer.
            let last = out.transcript.last().unwrap();
            assert!(last.accept);
            assert_eq!(last.proposed_limit, out.agreed_limit);
        }
    }

    #[test]
    fn degenerate_interval_agrees_immediately() {
        let out = negotiate(&BargainConfig::new(46, 46));
        assert_eq!(out.agreed_limit, 46);
        assert_eq!(out.rounds, 1);
    }

    #[test]
    fn rubinstein_share_formula() {
        // δ_s → 0: first mover takes everything.
        assert!((rubinstein_share(0.9, 1e-9) - 1.0).abs() < 1e-6);
        // Symmetric δ: share = 1/(1+δ).
        let s = rubinstein_share(0.8, 0.8);
        assert!((s - 1.0 / 1.8).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "min_limit above max_limit")]
    fn inverted_interval_panics() {
        let _ = BargainConfig::new(10, 5);
    }

    #[test]
    fn transcript_alternates() {
        let out = negotiate(&BargainConfig::new(10, 1000).with_discounts(0.95, 0.95));
        for (i, offer) in out.transcript.iter().enumerate() {
            assert_eq!(offer.round as usize, i.min(out.transcript.len() - 1));
        }
        for pair in out.transcript.windows(2) {
            if pair[1].round < out.transcript.last().unwrap().round {
                assert_ne!(pair[0].from_controller, pair[1].from_controller);
            }
        }
    }
}
