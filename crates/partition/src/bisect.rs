//! Size-capped minimum bisection for `IncUpdate`'s merge-and-split step.
//!
//! The paper re-splits a merged group pair "to ensure minimized
//! communication between the two new groups ... identical to finding a
//! minimum bisection cut" (§III-C.2). True minimum bisection is NP-hard;
//! following the paper's own pragmatics we take the best of:
//!
//! 1. the **Stoer–Wagner** global minimum cut, accepted when both sides fit
//!    the size cap (cheap to check, often optimal when the merged group has
//!    two natural communities), and
//! 2. a **greedy-growing + boundary-refinement** balanced bisection that
//!    always satisfies the cap.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::initial::grow_bisection;
use crate::metrics::edge_cut;
use crate::mincut::stoer_wagner;
use crate::refine::{enforce_limit, refine};
use crate::{Partition, WeightedGraph};

/// Vertex-count threshold above which Stoer–Wagner (O(V³)) is skipped.
const SW_MAX_VERTICES: usize = 192;

/// Splits `graph` into two groups, each of weighted size at most
/// `max_side_weight`, minimizing the cut between them.
///
/// # Panics
///
/// Panics if `2 * max_side_weight` is less than the total vertex weight
/// (no feasible bisection) or if the graph has fewer than 2 vertices.
pub fn min_bisection(graph: &WeightedGraph, max_side_weight: f64, seed: u64) -> Partition {
    let n = graph.num_vertices();
    assert!(n >= 2, "cannot bisect a graph with {n} vertices");
    let total = graph.total_vertex_weight();
    assert!(
        total <= 2.0 * max_side_weight + 1e-9,
        "total weight {total} cannot fit in two sides of {max_side_weight}"
    );
    let mut rng = StdRng::seed_from_u64(seed);

    let mut candidates: Vec<Partition> = Vec::new();

    // Candidate 1: global min cut, if it happens to be balanced enough.
    if n <= SW_MAX_VERTICES {
        if let Some(cut) = stoer_wagner(graph) {
            let assignment: Vec<usize> = cut.side.iter().map(|&s| usize::from(s)).collect();
            let part = Partition::from_assignment(assignment, 2);
            if part.respects_limit(graph, max_side_weight)
                && part.groups().iter().all(|g| !g.is_empty())
            {
                candidates.push(part);
            }
        }
    }

    // Candidate 2: balanced greedy growing + refinement, then hard repair.
    let bucket: Vec<usize> = (0..n).collect();
    let (side_a, _side_b) = grow_bisection(graph, &bucket, total / 2.0, &mut rng);
    let mut assignment = vec![1usize; n];
    for &v in &side_a {
        assignment[v] = 0;
    }
    let mut part = Partition::from_assignment(assignment, 2);
    refine(graph, &mut part, max_side_weight, 8);
    enforce_limit(graph, &mut part, max_side_weight);
    // enforce_limit may create a third group in pathological cases; fold the
    // smallest group into whichever of the first two has room.
    if part.num_groups() > 2 {
        let weights = part.group_weights(graph);
        for g in 2..part.num_groups() {
            for v in part.members(g) {
                let vw = graph.vertex_weight(v);
                let target = if weights[0] + vw <= max_side_weight {
                    0
                } else {
                    1
                };
                part.assign(v, target);
            }
        }
        part.compact();
    }
    if part.respects_limit(graph, max_side_weight) {
        candidates.push(part);
    }

    candidates
        .into_iter()
        .min_by(|a, b| {
            edge_cut(graph, a)
                .partial_cmp(&edge_cut(graph, b))
                .expect("finite cuts")
        })
        .expect("at least the balanced candidate is feasible")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::normalized_inter_group_intensity;

    fn dumbbell(k: usize, bridge: f64) -> WeightedGraph {
        let mut g = WeightedGraph::new(2 * k);
        for i in 0..k {
            for j in (i + 1)..k {
                g.add_edge(i, j, 10.0);
                g.add_edge(k + i, k + j, 10.0);
            }
        }
        g.add_edge(k - 1, k, bridge);
        g
    }

    #[test]
    fn finds_the_bridge() {
        let g = dumbbell(5, 0.5);
        let part = min_bisection(&g, 5.0, 1);
        assert_eq!(part.num_groups(), 2);
        assert!(part.respects_limit(&g, 5.0));
        assert_eq!(edge_cut(&g, &part), 0.5);
    }

    #[test]
    fn balanced_when_mincut_is_lopsided() {
        // A star: min cut isolates one leaf, but the cap forces balance.
        let mut g = WeightedGraph::new(10);
        for v in 1..10 {
            g.add_edge(0, v, 1.0);
        }
        let part = min_bisection(&g, 5.0, 2);
        assert!(part.respects_limit(&g, 5.0));
        let sizes: Vec<usize> = part.groups().iter().map(Vec::len).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert!(sizes.iter().all(|&s| s <= 5));
    }

    #[test]
    fn two_vertices() {
        let mut g = WeightedGraph::new(2);
        g.add_edge(0, 1, 1.0);
        let part = min_bisection(&g, 1.0, 3);
        assert_ne!(part.group_of(0), part.group_of(1));
    }

    #[test]
    #[should_panic(expected = "cannot fit")]
    fn infeasible_cap_panics() {
        let g = WeightedGraph::new(10);
        let _ = min_bisection(&g, 4.0, 1);
    }

    #[test]
    fn deterministic() {
        let g = dumbbell(8, 1.0);
        let a = min_bisection(&g, 8.0, 42);
        let b = min_bisection(&g, 8.0, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn larger_graph_stays_capped_and_low_cut() {
        let g = dumbbell(60, 2.0); // 120 vertices
        let part = min_bisection(&g, 60.0, 9);
        assert!(part.respects_limit(&g, 60.0));
        let frac = normalized_inter_group_intensity(&g, &part);
        assert!(frac < 0.01, "cut fraction {frac} too high for a dumbbell");
    }
}
