//! Graph contraction for the multilevel scheme.

use std::collections::BTreeMap;

use crate::WeightedGraph;

/// One level of the coarsening hierarchy.
#[derive(Debug, Clone)]
pub(crate) struct CoarseLevel {
    /// The contracted graph.
    pub graph: WeightedGraph,
    /// Mapping from fine vertex id to coarse vertex id.
    pub fine_to_coarse: Vec<usize>,
}

/// Contracts matched pairs into single vertices.
///
/// Vertex weights add; parallel edges accumulate; intra-pair edges vanish
/// (they are interior to the coarse vertex).
pub(crate) fn contract(graph: &WeightedGraph, match_of: &[usize]) -> CoarseLevel {
    let n = graph.num_vertices();
    let mut fine_to_coarse = vec![usize::MAX; n];
    let mut next = 0usize;
    for u in 0..n {
        if fine_to_coarse[u] != usize::MAX {
            continue;
        }
        let p = match_of[u];
        fine_to_coarse[u] = next;
        if p != u {
            fine_to_coarse[p] = next;
        }
        next += 1;
    }

    let mut coarse = WeightedGraph::new(next);
    // Accumulate vertex weights.
    let mut vw = vec![0.0; next];
    for u in 0..n {
        vw[fine_to_coarse[u]] += graph.vertex_weight(u);
    }
    for (c, &w) in vw.iter().enumerate() {
        coarse.set_vertex_weight(c, w);
    }
    // Accumulate edges between distinct coarse vertices.
    let mut acc: BTreeMap<(usize, usize), f64> = BTreeMap::new();
    for u in 0..n {
        let cu = fine_to_coarse[u];
        for &(v, w) in graph.neighbors(u) {
            if u < v {
                let cv = fine_to_coarse[v];
                if cu != cv {
                    let key = if cu < cv { (cu, cv) } else { (cv, cu) };
                    *acc.entry(key).or_insert(0.0) += w;
                }
            }
        }
    }
    for ((a, b), w) in acc {
        coarse.add_edge(a, b, w);
    }
    CoarseLevel {
        graph: coarse,
        fine_to_coarse,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contraction_merges_pairs() {
        // Square 0-1-2-3 with matching {0,1} {2,3}.
        let mut g = WeightedGraph::new(4);
        g.add_edge(0, 1, 5.0);
        g.add_edge(1, 2, 1.0);
        g.add_edge(2, 3, 5.0);
        g.add_edge(3, 0, 2.0);
        let level = contract(&g, &[1, 0, 3, 2]);
        assert_eq!(level.graph.num_vertices(), 2);
        assert_eq!(level.graph.num_edges(), 1);
        // Cross edges 1-2 (1.0) and 3-0 (2.0) accumulate.
        assert_eq!(level.graph.edge_weight(0, 1), 3.0);
        assert_eq!(level.graph.vertex_weight(0), 2.0);
        assert_eq!(level.graph.vertex_weight(1), 2.0);
        assert_eq!(level.fine_to_coarse, vec![0, 0, 1, 1]);
    }

    #[test]
    fn unmatched_vertices_survive() {
        let mut g = WeightedGraph::new(3);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 2, 1.0);
        let level = contract(&g, &[1, 0, 2]);
        assert_eq!(level.graph.num_vertices(), 2);
        assert_eq!(level.graph.vertex_weight(level.fine_to_coarse[2]), 1.0);
        assert_eq!(level.graph.edge_weight(0, 1), 1.0);
    }

    #[test]
    fn total_cross_weight_is_preserved() {
        let mut g = WeightedGraph::new(6);
        for (u, v, w) in [
            (0, 1, 1.0),
            (1, 2, 2.0),
            (2, 3, 3.0),
            (3, 4, 4.0),
            (4, 5, 5.0),
        ] {
            g.add_edge(u, v, w);
        }
        let level = contract(&g, &[1, 0, 3, 2, 5, 4]);
        // Interior edges 0-1 (1.0), 2-3 (3.0), 4-5 (5.0) vanish; 2.0 + 4.0 remain.
        assert_eq!(level.graph.total_edge_weight(), 6.0);
        assert_eq!(level.graph.total_vertex_weight(), g.total_vertex_weight());
    }

    #[test]
    fn identity_matching_copies_graph() {
        let mut g = WeightedGraph::new(3);
        g.add_edge(0, 2, 7.0);
        let level = contract(&g, &[0, 1, 2]);
        assert_eq!(level.graph.num_vertices(), 3);
        assert_eq!(level.graph.edge_weight(0, 2), 7.0);
    }
}
