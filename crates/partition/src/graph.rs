use std::collections::{BTreeMap, HashMap};

use serde::{Deserialize, Serialize};

/// An undirected weighted graph with weighted vertices.
///
/// Vertices are dense `usize` indexes (the switch grouping code maps
/// `SwitchId`s onto them). Edge weights are `f64` traffic intensities in
/// new-flows-per-second; vertex weights default to `1.0` (one switch) and
/// accumulate during coarsening.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WeightedGraph {
    adj: Vec<Vec<(usize, f64)>>,
    vwgt: Vec<f64>,
    total_edge_weight: f64,
    num_edges: usize,
}

impl WeightedGraph {
    /// Creates a graph with `n` isolated vertices of weight 1.
    pub fn new(n: usize) -> Self {
        WeightedGraph {
            adj: vec![Vec::new(); n],
            vwgt: vec![1.0; n],
            total_edge_weight: 0.0,
            num_edges: 0,
        }
    }

    /// Builds a graph from `(u, v, w)` triplets, accumulating parallel edges.
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is out of range, on self-loops, or on
    /// non-finite/negative weights.
    pub fn from_triplets<I>(n: usize, triplets: I) -> Self
    where
        I: IntoIterator<Item = (usize, usize, f64)>,
    {
        let mut acc: BTreeMap<(usize, usize), f64> = BTreeMap::new();
        for (u, v, w) in triplets {
            assert!(u < n && v < n, "edge ({u},{v}) out of range for n={n}");
            assert_ne!(u, v, "self-loop on vertex {u}");
            assert!(w.is_finite() && w >= 0.0, "invalid edge weight {w}");
            let key = if u < v { (u, v) } else { (v, u) };
            *acc.entry(key).or_insert(0.0) += w;
        }
        let mut g = WeightedGraph::new(n);
        for ((u, v), w) in acc {
            g.push_edge(u, v, w);
        }
        g
    }

    /// Adds (or accumulates onto) an undirected edge.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range, on self-loops, or on
    /// non-finite/negative weights.
    pub fn add_edge(&mut self, u: usize, v: usize, w: f64) {
        let n = self.adj.len();
        assert!(u < n && v < n, "edge ({u},{v}) out of range for n={n}");
        assert_ne!(u, v, "self-loop on vertex {u}");
        assert!(w.is_finite() && w >= 0.0, "invalid edge weight {w}");
        if let Some(slot) = self.adj[u].iter_mut().find(|(x, _)| *x == v) {
            slot.1 += w;
            if let Some(slot) = self.adj[v].iter_mut().find(|(x, _)| *x == u) {
                slot.1 += w;
            }
            self.total_edge_weight += w;
        } else {
            self.push_edge(u, v, w);
        }
    }

    fn push_edge(&mut self, u: usize, v: usize, w: f64) {
        self.adj[u].push((v, w));
        self.adj[v].push((u, w));
        self.total_edge_weight += w;
        self.num_edges += 1;
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.adj.len()
    }

    /// Number of distinct undirected edges.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Sum of all undirected edge weights.
    pub fn total_edge_weight(&self) -> f64 {
        self.total_edge_weight
    }

    /// Neighbors of `u` with edge weights.
    pub fn neighbors(&self, u: usize) -> &[(usize, f64)] {
        &self.adj[u]
    }

    /// Weighted degree (sum of incident edge weights).
    pub fn weighted_degree(&self, u: usize) -> f64 {
        self.adj[u].iter().map(|(_, w)| w).sum()
    }

    /// The weight of vertex `u` (number of original vertices it represents).
    pub fn vertex_weight(&self, u: usize) -> f64 {
        self.vwgt[u]
    }

    /// Overrides the weight of vertex `u`.
    ///
    /// # Panics
    ///
    /// Panics on non-finite or non-positive weights.
    pub fn set_vertex_weight(&mut self, u: usize, w: f64) {
        assert!(w.is_finite() && w > 0.0, "invalid vertex weight {w}");
        self.vwgt[u] = w;
    }

    /// Total vertex weight.
    pub fn total_vertex_weight(&self) -> f64 {
        self.vwgt.iter().sum()
    }

    /// Weight of the edge `(u, v)` or 0 when absent.
    pub fn edge_weight(&self, u: usize, v: usize) -> f64 {
        self.adj[u]
            .iter()
            .find(|(x, _)| *x == v)
            .map(|(_, w)| *w)
            .unwrap_or(0.0)
    }

    /// Extracts the induced subgraph over `vertices`, returning it together
    /// with the mapping from new indexes back to original vertex ids.
    ///
    /// # Panics
    ///
    /// Panics if `vertices` contains duplicates or out-of-range ids.
    pub fn subgraph(&self, vertices: &[usize]) -> (WeightedGraph, Vec<usize>) {
        let mut index_of: HashMap<usize, usize> = HashMap::with_capacity(vertices.len());
        for (new, &old) in vertices.iter().enumerate() {
            assert!(old < self.num_vertices(), "vertex {old} out of range");
            let prev = index_of.insert(old, new);
            assert!(prev.is_none(), "duplicate vertex {old} in subgraph request");
        }
        let mut sub = WeightedGraph::new(vertices.len());
        for (new_u, &old_u) in vertices.iter().enumerate() {
            sub.vwgt[new_u] = self.vwgt[old_u];
            for &(old_v, w) in &self.adj[old_u] {
                if let Some(&new_v) = index_of.get(&old_v) {
                    if new_u < new_v {
                        sub.push_edge(new_u, new_v, w);
                    }
                }
            }
        }
        (sub, vertices.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query() {
        let mut g = WeightedGraph::new(4);
        g.add_edge(0, 1, 2.0);
        g.add_edge(1, 2, 3.0);
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.total_edge_weight(), 5.0);
        assert_eq!(g.edge_weight(0, 1), 2.0);
        assert_eq!(g.edge_weight(1, 0), 2.0);
        assert_eq!(g.edge_weight(0, 3), 0.0);
        assert_eq!(g.weighted_degree(1), 5.0);
    }

    #[test]
    fn parallel_edges_accumulate() {
        let mut g = WeightedGraph::new(2);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 0, 2.5);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.edge_weight(0, 1), 3.5);
        assert_eq!(g.total_edge_weight(), 3.5);
    }

    #[test]
    fn from_triplets_accumulates() {
        let g = WeightedGraph::from_triplets(3, vec![(0, 1, 1.0), (1, 0, 1.0), (1, 2, 4.0)]);
        assert_eq!(g.edge_weight(0, 1), 2.0);
        assert_eq!(g.edge_weight(2, 1), 4.0);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loops_rejected() {
        let mut g = WeightedGraph::new(2);
        g.add_edge(1, 1, 1.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_rejected() {
        let mut g = WeightedGraph::new(2);
        g.add_edge(0, 5, 1.0);
    }

    #[test]
    #[should_panic(expected = "invalid edge weight")]
    fn nan_weight_rejected() {
        let mut g = WeightedGraph::new(2);
        g.add_edge(0, 1, f64::NAN);
    }

    #[test]
    fn vertex_weights() {
        let mut g = WeightedGraph::new(3);
        assert_eq!(g.total_vertex_weight(), 3.0);
        g.set_vertex_weight(0, 5.0);
        assert_eq!(g.vertex_weight(0), 5.0);
        assert_eq!(g.total_vertex_weight(), 7.0);
    }

    #[test]
    fn subgraph_preserves_internal_edges() {
        let mut g = WeightedGraph::new(5);
        g.add_edge(0, 1, 1.0);
        g.add_edge(1, 2, 2.0);
        g.add_edge(2, 3, 3.0);
        g.add_edge(3, 4, 4.0);
        g.set_vertex_weight(2, 9.0);
        let (sub, map) = g.subgraph(&[1, 2, 3]);
        assert_eq!(sub.num_vertices(), 3);
        assert_eq!(sub.num_edges(), 2); // 1-2 and 2-3; 0-1 and 3-4 cut away
        assert_eq!(sub.edge_weight(0, 1), 2.0);
        assert_eq!(sub.edge_weight(1, 2), 3.0);
        assert_eq!(sub.vertex_weight(1), 9.0);
        assert_eq!(map, vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "duplicate vertex")]
    fn subgraph_rejects_duplicates() {
        let g = WeightedGraph::new(3);
        let _ = g.subgraph(&[0, 0]);
    }
}
