//! Initial partitioning of the coarsest graph: recursive bisection by
//! greedy graph growing.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::{Partition, WeightedGraph};

/// Partitions `graph` into `k` parts by recursive bisection.
///
/// Each bisection grows a region from a seed vertex, repeatedly absorbing
/// the outside vertex most strongly connected to the region, until the
/// region reaches its target weight. Classic greedy graph growing (GGGP).
pub(crate) fn initial_partition<R: Rng>(graph: &WeightedGraph, k: usize, rng: &mut R) -> Partition {
    let n = graph.num_vertices();
    let mut part = Partition::single_group(n);
    if k <= 1 || n == 0 {
        return part;
    }
    // Work queue of (bucket vertices, parts this bucket must become, group id).
    let all: Vec<usize> = (0..n).collect();
    let mut queue: Vec<(Vec<usize>, usize, usize)> = vec![(all, k.min(n), 0)];
    while let Some((bucket, parts, gid)) = queue.pop() {
        if parts <= 1 || bucket.len() <= 1 {
            continue;
        }
        let k1 = parts.div_ceil(2);
        let k2 = parts - k1;
        let bucket_weight: f64 = bucket.iter().map(|&v| graph.vertex_weight(v)).sum();
        let target = bucket_weight * (k1 as f64) / (parts as f64);
        let (side_a, side_b) = grow_bisection(graph, &bucket, target, rng);
        // side_a keeps gid; side_b gets a new group id.
        let new_gid = part.add_group();
        for &v in &side_b {
            part.assign(v, new_gid);
        }
        queue.push((side_a, k1, gid));
        queue.push((side_b, k2, new_gid));
    }
    part
}

/// Splits `bucket` into two sides, the first weighing approximately
/// `target`. Grows from a random seed by maximum connectivity.
pub(crate) fn grow_bisection<R: Rng>(
    graph: &WeightedGraph,
    bucket: &[usize],
    target: f64,
    rng: &mut R,
) -> (Vec<usize>, Vec<usize>) {
    debug_assert!(bucket.len() >= 2, "cannot bisect fewer than 2 vertices");
    let in_bucket: std::collections::HashSet<usize> = bucket.iter().copied().collect();
    let mut grown: Vec<usize> = Vec::new();
    let mut in_grown: std::collections::HashSet<usize> = std::collections::HashSet::new();
    // connectivity[i] = weight from bucket[i] into the grown set
    let mut conn: std::collections::BTreeMap<usize, f64> =
        bucket.iter().map(|&v| (v, 0.0)).collect();

    let seed = *bucket.choose(rng).expect("bucket not empty");
    let mut grown_weight = 0.0;

    let absorb = |v: usize,
                  grown: &mut Vec<usize>,
                  in_grown: &mut std::collections::HashSet<usize>,
                  conn: &mut std::collections::BTreeMap<usize, f64>,
                  grown_weight: &mut f64| {
        grown.push(v);
        in_grown.insert(v);
        *grown_weight += graph.vertex_weight(v);
        conn.remove(&v);
        for &(u, w) in graph.neighbors(v) {
            if in_bucket.contains(&u) && !in_grown.contains(&u) {
                *conn.entry(u).or_insert(0.0) += w;
            }
        }
    };

    absorb(
        seed,
        &mut grown,
        &mut in_grown,
        &mut conn,
        &mut grown_weight,
    );

    while grown_weight < target && grown.len() < bucket.len() - 1 {
        // Strongest-connected candidate; fall back to any remaining vertex
        // (disconnected bucket) — pick the heaviest to converge fast.
        let next = conn
            .iter()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite weights"))
            .map(|(&v, _)| v)
            .expect("candidates remain");
        // Stop early if overshooting the target badly and we already have
        // something: keeps sides closer to balanced.
        let vw = graph.vertex_weight(next);
        if grown_weight + vw > target && (grown_weight + vw - target) > (target - grown_weight) {
            break;
        }
        absorb(
            next,
            &mut grown,
            &mut in_grown,
            &mut conn,
            &mut grown_weight,
        );
    }

    let rest: Vec<usize> = bucket
        .iter()
        .copied()
        .filter(|v| !in_grown.contains(v))
        .collect();
    (grown, rest)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn bisection_respects_target_roughly() {
        let mut g = WeightedGraph::new(10);
        for i in 0..9 {
            g.add_edge(i, i + 1, 1.0);
        }
        let bucket: Vec<usize> = (0..10).collect();
        let (a, b) = grow_bisection(&g, &bucket, 5.0, &mut rng());
        assert_eq!(a.len() + b.len(), 10);
        assert!(!a.is_empty() && !b.is_empty());
        assert!((3..=7).contains(&a.len()), "unbalanced side: {}", a.len());
    }

    #[test]
    fn k_parts_cover_all_vertices() {
        let mut g = WeightedGraph::new(12);
        for i in 0..11 {
            g.add_edge(i, i + 1, 1.0);
        }
        for k in [2usize, 3, 4, 6] {
            let p = initial_partition(&g, k, &mut rng());
            assert_eq!(p.num_groups(), k);
            let groups = p.groups();
            let total: usize = groups.iter().map(Vec::len).sum();
            assert_eq!(total, 12);
            for (gi, members) in groups.iter().enumerate() {
                assert!(!members.is_empty(), "group {gi} empty for k={k}");
            }
        }
    }

    #[test]
    fn k_one_is_identity() {
        let g = WeightedGraph::new(5);
        let p = initial_partition(&g, 1, &mut rng());
        assert_eq!(p.num_groups(), 1);
        assert_eq!(p.members(0).len(), 5);
    }

    #[test]
    fn clusters_stay_together() {
        // Two K4s joined by one weak edge; a 2-way split should cut it.
        let mut g = WeightedGraph::new(8);
        for i in 0..4 {
            for j in (i + 1)..4 {
                g.add_edge(i, j, 10.0);
                g.add_edge(i + 4, j + 4, 10.0);
            }
        }
        g.add_edge(3, 4, 0.5);
        let p = initial_partition(&g, 2, &mut rng());
        let cut = crate::metrics::edge_cut(&g, &p);
        assert_eq!(cut, 0.5, "expected the bridge to be the only cut edge");
    }

    #[test]
    fn disconnected_graph_still_partitions() {
        let g = WeightedGraph::new(6); // no edges at all
        let p = initial_partition(&g, 3, &mut rng());
        assert_eq!(p.num_groups(), 3);
        let total: usize = p.groups().iter().map(Vec::len).sum();
        assert_eq!(total, 6);
    }

    #[test]
    fn k_exceeding_n_caps_at_n() {
        let g = WeightedGraph::new(3);
        let p = initial_partition(&g, 10, &mut rng());
        assert!(p.num_groups() <= 3);
    }
}
