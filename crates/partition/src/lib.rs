//! Graph partitioning for LazyCtrl switch grouping.
//!
//! The controller clusters edge switches into Local Control Groups so that
//! "the size of each group is maximized under a given limit while the
//! inter-group traffic volume is minimized" (§III-C). This crate implements
//! the full algorithmic stack the paper builds on:
//!
//! * [`WeightedGraph`] — the intensity graph (vertices = switches, edge
//!   weights = new flows/sec between switch pairs);
//! * [`mlkp`] — Multi-Level k-way Partitioning (Karypis–Kumar style):
//!   heavy-edge-matching coarsening, greedy-graph-growing initial
//!   partitioning, boundary refinement — plus the paper's *size-constraint*
//!   wrapper (groups are capped, the number of groups is variable);
//! * [`mincut`] — the Stoer–Wagner global minimum cut used by the
//!   incremental update's merge-and-split step;
//! * [`bisect`] — size-capped minimum bisection (Stoer–Wagner when the cut
//!   is balanced enough, Fiduccia–Mattheyses-style refinement otherwise);
//! * [`Sgi`] — the paper's **SGI** algorithm (Fig. 3): `IniGroup` for the
//!   initial grouping and `IncUpdate` for threshold-driven incremental
//!   regrouping, with Appendix-B extensions (host exclusion, parallel
//!   merge/split via crossbeam);
//! * [`bargain`] — the Appendix-C modified Rubinstein bargaining model for
//!   dynamic group-size negotiation.
//!
//! # Example
//!
//! ```
//! use lazyctrl_partition::{mlkp, MlkpConfig, WeightedGraph};
//!
//! // Two natural clusters {0,1,2} and {3,4,5} with a weak bridge.
//! let mut g = WeightedGraph::new(6);
//! for (u, v) in [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)] {
//!     g.add_edge(u, v, 10.0);
//! }
//! g.add_edge(2, 3, 0.1);
//!
//! let part = mlkp(&g, &MlkpConfig::new(2).with_max_part_weight(3.0));
//! assert_eq!(part.group_of(0), part.group_of(1));
//! assert_eq!(part.group_of(3), part.group_of(5));
//! assert_ne!(part.group_of(0), part.group_of(3));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bargain;
pub mod bisect;
mod coarsen;
mod graph;
mod initial;
mod matching;
pub mod metrics;
pub mod mincut;
mod mlkp;
mod partition;
mod refine;
pub mod sgi;

pub use graph::WeightedGraph;
pub use mlkp::{mlkp, MlkpConfig};
pub use partition::{Partition, CONTROLLER_GROUP};
pub use sgi::{IncUpdateReport, Sgi, SgiConfig};
